"""Tests for repro.wireless.modulation."""

import numpy as np
import pytest

from repro.exceptions import ModulationError
from repro.wireless.modulation import (
    available_modulations,
    bits_to_int,
    get_modulation,
    gray_code,
    gray_decode,
    int_to_bits,
)


class TestGrayCode:
    @pytest.mark.parametrize("value", range(32))
    def test_round_trip(self, value):
        assert gray_decode(gray_code(value)) == value

    def test_adjacent_codes_differ_in_one_bit(self):
        for value in range(63):
            diff = gray_code(value) ^ gray_code(value + 1)
            assert bin(diff).count("1") == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            gray_decode(-3)


class TestBitHelpers:
    def test_bits_to_int(self):
        assert bits_to_int([1, 0, 1]) == 5

    def test_int_to_bits(self):
        assert int_to_bits(5, 4) == (0, 1, 0, 1)

    def test_round_trip(self):
        for value in range(16):
            assert bits_to_int(int_to_bits(value, 4)) == value

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            bits_to_int([2, 0])

    def test_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)


class TestGetModulation:
    def test_canonical_names(self):
        assert get_modulation("bpsk").name == "BPSK"
        assert get_modulation("16qam").name == "16-QAM"
        assert get_modulation("64-QAM").name == "64-QAM"
        assert get_modulation("QPSK").name == "QPSK"

    def test_unknown_rejected(self):
        with pytest.raises(ModulationError):
            get_modulation("256-QAM")

    def test_shared_instances(self):
        assert get_modulation("bpsk") is get_modulation("BPSK")

    def test_available_list(self):
        assert available_modulations() == ["BPSK", "QPSK", "16-QAM", "64-QAM"]


class TestConstellationGeometry:
    @pytest.mark.parametrize(
        "name,order,bits", [("BPSK", 2, 1), ("QPSK", 4, 2), ("16-QAM", 16, 4), ("64-QAM", 64, 6)]
    )
    def test_order_and_bits(self, name, order, bits):
        modulation = get_modulation(name)
        assert modulation.order == order
        assert modulation.bits_per_symbol == bits
        assert modulation.points.size == order

    @pytest.mark.parametrize("name", ["BPSK", "QPSK", "16-QAM", "64-QAM"])
    def test_unit_average_energy(self, name):
        assert get_modulation(name).average_energy() == pytest.approx(1.0)

    @pytest.mark.parametrize("name", ["QPSK", "16-QAM", "64-QAM"])
    def test_points_are_distinct(self, name):
        points = get_modulation(name).points
        distances = np.abs(points[:, None] - points[None, :])
        distances[np.diag_indices_from(distances)] = np.inf
        assert distances.min() > 1e-6

    def test_unnormalized_grid(self):
        modulation = get_modulation("16-QAM", normalized=False)
        reals = sorted(set(np.round(modulation.points.real, 6)))
        assert reals == [-3.0, -1.0, 1.0, 3.0]

    def test_minimum_distance_positive(self):
        assert get_modulation("64-QAM").minimum_distance() > 0


class TestBitSymbolMapping:
    @pytest.mark.parametrize("name", ["BPSK", "QPSK", "16-QAM", "64-QAM"])
    def test_modulate_demodulate_round_trip(self, name, rng):
        modulation = get_modulation(name)
        bits = modulation.random_bits(20, rng)
        symbols = modulation.modulate_bits(bits)
        assert np.array_equal(modulation.demodulate_hard(symbols), bits)

    def test_gray_property_neighbouring_amplitudes(self):
        # Adjacent 16-QAM amplitudes along one axis differ in exactly one payload bit.
        modulation = get_modulation("16-QAM")
        by_real = {}
        for index in range(modulation.order):
            point = modulation.points[index]
            by_real.setdefault(round(point.imag, 6), []).append((point.real, index))
        for _, row in by_real.items():
            row.sort()
            for (_, first), (_, second) in zip(row, row[1:]):
                bits_first = modulation.bits_for_index(first)
                bits_second = modulation.bits_for_index(second)
                differing = sum(a != b for a, b in zip(bits_first, bits_second))
                assert differing == 1

    def test_modulate_wrong_length_raises(self):
        with pytest.raises(ModulationError):
            get_modulation("16-QAM").modulate_bits([1, 0, 1])

    def test_modulate_invalid_bits(self):
        with pytest.raises(ModulationError):
            get_modulation("QPSK").modulate_bits([0, 2])

    def test_symbol_index_exact(self):
        modulation = get_modulation("QPSK")
        for index in range(modulation.order):
            assert modulation.symbol_index(modulation.points[index]) == index

    def test_symbol_index_rejects_off_grid(self):
        with pytest.raises(ModulationError):
            get_modulation("QPSK").symbol_index(0.1 + 0.2j)

    def test_nearest_index(self):
        modulation = get_modulation("BPSK")
        assert modulation.nearest_index(0.9) == modulation.symbol_index(modulation.points[1])

    def test_random_symbols_on_constellation(self, rng):
        modulation = get_modulation("64-QAM")
        symbols = modulation.random_symbols(50, rng)
        for symbol in symbols:
            modulation.symbol_index(symbol)

    def test_bits_for_index_out_of_range(self):
        with pytest.raises(ModulationError):
            get_modulation("QPSK").bits_for_index(4)

    def test_modulate_indices_out_of_range(self):
        with pytest.raises(ModulationError):
            get_modulation("QPSK").modulate_indices([4])
