"""Tests for repro.wireless.mimo."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionError
from repro.wireless.channel import IdentityChannel
from repro.wireless.mimo import (
    MIMOConfig,
    MIMOInstance,
    maximum_likelihood_detect,
    residual_energy,
    simulate_transmission,
)


class TestMIMOConfig:
    def test_defaults(self):
        config = MIMOConfig(num_users=4, modulation="QPSK")
        assert config.receive_antennas == 4
        assert config.bits_per_channel_use == 8
        assert config.qubo_variable_count == 8
        assert config.noise_variance == 0.0

    def test_explicit_receive_antennas(self):
        config = MIMOConfig(num_users=2, modulation="BPSK", num_receive_antennas=6)
        assert config.receive_antennas == 6

    def test_snr_gives_noise(self):
        config = MIMOConfig(num_users=2, modulation="QPSK", snr_db=10.0)
        assert config.noise_variance > 0.0

    def test_invalid_users(self):
        with pytest.raises(ConfigurationError):
            MIMOConfig(num_users=0)

    def test_invalid_modulation(self):
        with pytest.raises(Exception):
            MIMOConfig(num_users=2, modulation="1024-QAM")

    @pytest.mark.parametrize(
        "modulation,expected", [("BPSK", 8), ("QPSK", 16), ("16-QAM", 32), ("64-QAM", 48)]
    )
    def test_variable_counts(self, modulation, expected):
        assert MIMOConfig(num_users=8, modulation=modulation).qubo_variable_count == expected


class TestMIMOInstance:
    def test_dimension_check(self, rng):
        with pytest.raises(DimensionError):
            MIMOInstance(
                channel_matrix=rng.standard_normal((3, 2)),
                received=rng.standard_normal(4),
                modulation="BPSK",
            )

    def test_objective_matches_residual(self, mimo_transmission_qpsk):
        instance = mimo_transmission_qpsk.instance
        candidate = mimo_transmission_qpsk.transmitted_symbols
        assert instance.objective(candidate) == pytest.approx(
            residual_energy(instance.channel_matrix, instance.received, candidate)
        )

    def test_noiseless_transmitted_has_zero_objective(self, mimo_transmission_qpsk):
        instance = mimo_transmission_qpsk.instance
        objective = instance.objective(mimo_transmission_qpsk.transmitted_symbols)
        assert objective == pytest.approx(0.0, abs=1e-18)


class TestSimulateTransmission:
    def test_reproducible(self):
        config = MIMOConfig(num_users=3, modulation="16-QAM")
        first = simulate_transmission(config, rng=5)
        second = simulate_transmission(config, rng=5)
        assert np.allclose(first.instance.channel_matrix, second.instance.channel_matrix)
        assert np.array_equal(first.transmitted_bits, second.transmitted_bits)

    def test_bits_match_symbols(self, mimo_transmission_qpsk):
        modulation = mimo_transmission_qpsk.instance.modulation_scheme
        expected = modulation.modulate_bits(mimo_transmission_qpsk.transmitted_bits)
        assert np.allclose(expected, mimo_transmission_qpsk.transmitted_symbols)

    def test_noisy_transmission(self):
        config = MIMOConfig(num_users=2, modulation="QPSK", snr_db=5.0)
        transmission = simulate_transmission(config, rng=3)
        assert transmission.noise_variance > 0
        assert transmission.instance.objective(transmission.transmitted_symbols) > 0

    def test_config_summary(self, mimo_transmission_qpsk):
        assert "QPSK" in mimo_transmission_qpsk.config_summary


class TestMaximumLikelihood:
    def test_recovers_transmission_over_identity_channel(self, rng):
        config = MIMOConfig(num_users=3, modulation="16-QAM")
        transmission = simulate_transmission(config, IdentityChannel(), rng)
        result = maximum_likelihood_detect(transmission.instance)
        assert np.allclose(result.symbols, transmission.transmitted_symbols)
        assert np.array_equal(result.bits, transmission.transmitted_bits)

    def test_recovers_noiseless_random_phase(self, mimo_transmission_qpsk):
        result = maximum_likelihood_detect(mimo_transmission_qpsk.instance)
        assert np.allclose(result.symbols, mimo_transmission_qpsk.transmitted_symbols)
        assert result.objective_value == pytest.approx(0.0, abs=1e-12)

    def test_guard_on_size(self, rng):
        config = MIMOConfig(num_users=10, modulation="64-QAM")
        transmission = simulate_transmission(config, rng=rng)
        with pytest.raises(ConfigurationError):
            maximum_likelihood_detect(transmission.instance)

    def test_metadata_enumeration_count(self, mimo_transmission_qpsk):
        result = maximum_likelihood_detect(mimo_transmission_qpsk.instance)
        assert result.metadata["enumerated"] == 4 ** 3
