"""Golden regression tests for the quick experiment configurations.

Each fixture in ``tests/golden/`` freezes the exact numeric output of one
quick study under the replica-parallel kernels.  These tests re-run the
studies and compare every field bitwise, failing with a readable per-field
diff.  They are the tripwire for unintended numerics changes anywhere in the
stack — kernels, RNG draw discipline, padding, or experiment plumbing.

After an *intentional* numerics change, regenerate with::

    PYTHONPATH=src python scripts/regen_golden.py

The fixtures are recorded under the ``vectorized`` kernel and equally bind
the ``numba`` kernel (bitwise-equal by contract, see tests/test_kernels.py);
under ``reference`` (too slow) or ``legacy`` (different dynamics by design)
the tests skip.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.ablation.presets import ablation_quick_rows
from repro.annealing import kernels
from repro.experiments.fig6_distributions import Figure6Config, run_figure6
from repro.experiments.fig8_tts import Figure8Config, run_figure8
from repro.experiments.network_study import NetworkStudyConfig, run_network_study
from repro.experiments.snr_study import SNRStudyConfig, run_snr_study

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def rows_as_payload(rows) -> list:
    """Result dataclasses as JSON-roundtripped dicts (same as regen_golden)."""
    return json.loads(json.dumps([dataclasses.asdict(row) for row in rows]))

STUDIES = {
    "ablation_quick": ablation_quick_rows,
    "fig6_quick": lambda: run_figure6(Figure6Config.quick()),
    "fig8_quick": lambda: run_figure8(Figure8Config.quick()),
    "network_quick": lambda: run_network_study(NetworkStudyConfig.quick()).rows,
    "snr_quick": lambda: run_snr_study(SNRStudyConfig.quick()),
}


def _diff(expected, actual, path, lines):
    """Collect human-readable mismatch lines between two JSON payloads."""
    if type(expected) is not type(actual):
        lines.append(f"  {path}: expected {expected!r}, got {actual!r} (type changed)")
    elif isinstance(expected, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                lines.append(f"  {path}.{key}: unexpected new field {actual[key]!r}")
            elif key not in actual:
                lines.append(f"  {path}.{key}: missing (golden has {expected[key]!r})")
            else:
                _diff(expected[key], actual[key], f"{path}.{key}", lines)
    elif isinstance(expected, list):
        if len(expected) != len(actual):
            lines.append(
                f"  {path}: expected {len(expected)} entries, got {len(actual)}"
            )
        for index, (left, right) in enumerate(zip(expected, actual)):
            _diff(left, right, f"{path}[{index}]", lines)
    elif expected != actual:
        lines.append(f"  {path}: expected {expected!r}, got {actual!r}")


def _row_label(row) -> str:
    """A short identity for one result row, for diff readability."""
    keys = [
        k
        for k in ("modulation", "method", "switch_s", "snr_db", "placement", "point_id")
        if k in row
    ]
    return "/".join(str(row[k]) for k in keys) or "row"


@pytest.fixture(scope="module", autouse=True)
def _replica_kernel_only():
    kernel = kernels.active_kernel_name()
    if kernel not in ("vectorized", "numba"):
        pytest.skip(f"golden fixtures do not bind the {kernel!r} kernel")


@pytest.mark.parametrize("name", sorted(STUDIES))
def test_quick_study_matches_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing fixture {path.name}; run PYTHONPATH=src python scripts/regen_golden.py"
    )
    golden = json.loads(path.read_text())
    actual = rows_as_payload(STUDIES[name]())

    lines = []
    expected_rows = golden["rows"]
    for index, row in enumerate(expected_rows):
        label = f"{_row_label(row)}"
        if index < len(actual):
            _diff(row, actual[index], label, lines)
        else:
            lines.append(f"  {label}: missing from this run")
    for row in actual[len(expected_rows):]:
        lines.append(f"  {_row_label(row)}: new row not in the golden fixture")

    if lines:
        pytest.fail(
            f"{name} diverged from tests/golden/{name}.json "
            f"({len(lines)} field(s)):\n" + "\n".join(lines) + "\n"
            "If this change is intentional, regenerate with "
            "`PYTHONPATH=src python scripts/regen_golden.py`.",
            pytrace=False,
        )
