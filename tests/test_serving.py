"""Tests for the repro.serving subsystem.

The serving layer's contract, mirrored from the batched engine: jobs that
miss deadlines are *counted* (never dropped), batches never mix incompatible
QUBO shapes, and — because job ``j`` draws exclusively from child generator
``j`` — detection solutions are identical for every batch ceiling and policy
seed, with only the timing changing.
"""

from typing import List, Sequence

import numpy as np
import pytest

from repro.annealing import QuantumAnnealerSimulator, SpinVectorMonteCarloBackend
from repro.exceptions import ConfigurationError
from repro.serving import (
    AnnealerServingBackend,
    BackendPool,
    ClassicalServingBackend,
    EdfPolicy,
    EventQueue,
    FifoPolicy,
    FifoServer,
    RANServingSimulator,
    ServingBackend,
    ServingJob,
    UserProfile,
    build_pool,
    generate_serving_jobs,
    resolve_policy,
    select_batch,
    uniform_cell_profiles,
)
from repro.wireless.mimo import MIMOConfig, simulate_transmission
from repro.wireless.traffic import ChannelUse


# ---------------------------------------------------------------------- #
# Event primitives
# ---------------------------------------------------------------------- #


class TestFifoServer:
    def test_advance_rule(self):
        server = FifoServer()
        first = server.serve(10.0, 5.0)
        assert (first.start_us, first.finish_us) == (10.0, 15.0)
        # Ready before the server frees: starts at free_at, not at ready.
        second = server.serve(12.0, 3.0)
        assert (second.start_us, second.finish_us) == (15.0, 18.0)
        # Ready after the server frees: starts at ready.
        third = server.serve(30.0, 1.0)
        assert third.start_us == 30.0
        assert server.busy_us == pytest.approx(9.0)
        assert server.jobs_served == 3

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            FifoServer().serve(0.0, -1.0)

    def test_idle_and_utilization(self):
        server = FifoServer()
        server.serve(0.0, 4.0)
        assert not server.idle_at(2.0)
        assert server.idle_at(4.0)
        assert server.utilization(8.0) == pytest.approx(0.5)


class TestEventQueue:
    def test_time_order(self):
        queue = EventQueue()
        queue.push(5.0, "late")
        queue.push(1.0, "early")
        queue.push(3.0, "middle")
        assert [queue.pop()[1] for _ in range(3)] == ["early", "middle", "late"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        for label in ("a", "b", "c"):
            queue.push(2.0, label)
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(1.0, None)
        assert queue and len(queue) == 1

    @pytest.mark.parametrize("bad_time", [float("nan"), -1.0, float("inf"), float("-inf")])
    def test_rejects_nan_negative_and_infinite_timestamps(self, bad_time):
        # A NaN compares false against everything, so once pushed it would
        # silently corrupt the heap order; negative/infinite times have no
        # meaning on the simulation clock.  All are rejected up front.
        queue = EventQueue()
        queue.push(1.0, "ok")
        with pytest.raises(ConfigurationError):
            queue.push(bad_time, "bad")
        # The queue is untouched by the rejected push.
        assert len(queue) == 1
        assert queue.pop() == (1.0, "ok")


# ---------------------------------------------------------------------- #
# Workload generation
# ---------------------------------------------------------------------- #


def _profiles(**overrides):
    defaults = dict(
        num_cells=2,
        users_per_cell=2,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=100.0,
        arrival_process="deterministic",
        turnaround_budget_us=500.0,
    )
    defaults.update(overrides)
    return uniform_cell_profiles(**defaults)


class TestWorkload:
    def test_jobs_arrival_ordered_with_sequential_ids(self):
        jobs = generate_serving_jobs(_profiles(), jobs_per_user=5, rng=1)
        assert len(jobs) == 20
        assert [job.job_id for job in jobs] == list(range(20))
        arrivals = [job.arrival_us for job in jobs]
        assert arrivals == sorted(arrivals)

    def test_heterogeneous_user_population(self):
        jobs = generate_serving_jobs(_profiles(), jobs_per_user=3, rng=2)
        assert {job.modulation for job in jobs} == {"QPSK", "16-QAM"}
        assert {job.num_variables for job in jobs} == {4, 8}
        # The compat key separates the two shapes.
        assert len({job.compat_key for job in jobs}) == 2

    def test_reproducible(self):
        first = generate_serving_jobs(_profiles(), jobs_per_user=4, rng=7)
        second = generate_serving_jobs(_profiles(), jobs_per_user=4, rng=7)
        assert [job.arrival_us for job in first] == [job.arrival_us for job in second]
        assert np.allclose(
            first[3].channel_use.transmission.instance.received,
            second[3].channel_use.transmission.instance.received,
        )

    def test_phase_stagger_avoids_synchronized_start_burst(self):
        staggered = generate_serving_jobs(_profiles(), jobs_per_user=2, rng=3)
        arrivals = [job.arrival_us for job in staggered]
        # Two users per cell: offsets 0 and period/2, so at most one job per
        # distinct arrival instant within each cell.
        assert len(set(arrivals)) > len(set(a for a in arrivals if a == 0.0))
        assert sum(1 for a in arrivals if a == 0.0) == 2  # one per cell, not all 4

        burst = generate_serving_jobs(
            _profiles(stagger_phases=False), jobs_per_user=2, rng=3
        )
        assert sum(1 for job in burst if job.arrival_us == 0.0) == 4

    def test_phase_offset_shifts_deadlines_with_arrivals(self):
        jobs = generate_serving_jobs(_profiles(), jobs_per_user=1, rng=3)
        for job in jobs:
            assert job.deadline_us == pytest.approx(job.arrival_us + 500.0)

    def test_negative_phase_offset_rejected(self):
        profile = UserProfile(
            user_id=0, cell_id=0, config=MIMOConfig(2, "QPSK"), phase_offset_us=-1.0
        )
        with pytest.raises(ConfigurationError):
            generate_serving_jobs([profile], jobs_per_user=1, rng=1)

    def test_hotspot_cell_generates_denser_traffic(self):
        profiles = _profiles(cell_load_factors=[1.0, 4.0])
        hot = [profile for profile in profiles if profile.cell_id == 1]
        cold = [profile for profile in profiles if profile.cell_id == 0]
        assert all(profile.symbol_period_us == pytest.approx(25.0) for profile in hot)
        assert all(profile.symbol_period_us == pytest.approx(100.0) for profile in cold)

    def test_duplicate_user_ids_rejected(self):
        profile = UserProfile(user_id=0, cell_id=0, config=MIMOConfig(2, "QPSK"))
        with pytest.raises(ConfigurationError):
            generate_serving_jobs([profile, profile], jobs_per_user=2, rng=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_cells": 0},
            {"users_per_cell": 0},
            {"configs": []},
            {"cell_load_factors": [1.0]},
            {"cell_load_factors": [1.0, -1.0]},
        ],
    )
    def test_invalid_layout(self, kwargs):
        with pytest.raises(ConfigurationError):
            _profiles(**kwargs)

    def test_empty_profiles_and_bad_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_serving_jobs([], jobs_per_user=2, rng=1)
        with pytest.raises(ConfigurationError):
            generate_serving_jobs(_profiles(), jobs_per_user=0, rng=1)


class TestWorkloadImpairments:
    """Channel impairments coupled into the serving workload."""

    def test_no_impairments_is_bitwise_unchanged(self):
        plain = generate_serving_jobs(_profiles(), jobs_per_user=3, rng=9)
        explicit = generate_serving_jobs(
            _profiles(), jobs_per_user=3, rng=9, impairments=None
        )
        for a, b in zip(plain, explicit):
            assert np.array_equal(
                a.channel_use.transmission.instance.received,
                b.channel_use.transmission.instance.received,
            )

    def test_identity_impairments_keep_arrivals_and_perfect_csi(self):
        from repro.wireless import ChannelImpairments

        plain = generate_serving_jobs(_profiles(), jobs_per_user=3, rng=9)
        identity = generate_serving_jobs(
            _profiles(), jobs_per_user=3, rng=9, impairments=ChannelImpairments()
        )
        assert [job.arrival_us for job in identity] == [job.arrival_us for job in plain]
        assert all(
            job.channel_use.transmission.has_perfect_csi for job in identity
        )

    def test_static_load_scales_interference_by_other_cells(self):
        from repro.wireless import ChannelImpairments

        impairments = ChannelImpairments(interference_power=2.0)
        jobs = generate_serving_jobs(
            _profiles(cell_load_factors=[1.0, 4.0]),
            jobs_per_user=2,
            rng=4,
            impairments=impairments,
            cell_load_factors=[1.0, 4.0],
        )
        by_cell = {
            cell: {
                job.channel_use.transmission.interference_power
                for job in jobs
                if job.cell_id == cell
            }
            for cell in (0, 1)
        }
        # Cell 0's users hear the hot neighbour (factor 4); cell 1 hears the
        # cold one (factor 1).
        assert by_cell[0] == {8.0}
        assert by_cell[1] == {2.0}

    def test_scenario_couples_interference_to_the_timeline(self):
        from repro.serving import build_scenario
        from repro.wireless import ChannelImpairments

        scenario = build_scenario("flash-crowd", num_cells=2, horizon_us=4_000.0)
        profiles = _profiles(arrival_process="poisson")
        impairments = ChannelImpairments(interference_power=1.0)
        jobs = generate_serving_jobs(
            profiles,
            jobs_per_user=30,
            rng=6,
            scenario=scenario,
            impairments=impairments,
        )
        # Cell 1 hosts the flash crowd (middle cell of a 2-cell grid), so
        # cell 0's users see time-varying interference that peaks with it.
        powers = [
            job.channel_use.transmission.interference_power
            for job in jobs
            if job.cell_id == 0
        ]
        assert powers, "cell 0 generated no jobs"
        assert max(powers) > 1.5  # the 6x crest, scaled by the ramp
        assert min(powers) < 1.25  # quiet phases sit near background

    def test_scenario_workload_reproducible_under_impairments(self):
        from repro.serving import build_scenario
        from repro.wireless import ChannelImpairments

        scenario = build_scenario("steady", num_cells=2, horizon_us=2_000.0)
        impairments = ChannelImpairments(
            interference_power=0.5, csi_error_variance=0.05, temporal_correlation=0.9
        )
        kwargs = dict(
            jobs_per_user=10, scenario=scenario, impairments=impairments
        )
        first = generate_serving_jobs(
            _profiles(arrival_process="poisson"), rng=8, **kwargs
        )
        second = generate_serving_jobs(
            _profiles(arrival_process="poisson"), rng=8, **kwargs
        )
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.arrival_us == b.arrival_us
            assert np.array_equal(
                a.channel_use.transmission.instance.received,
                b.channel_use.transmission.instance.received,
            )

    def test_cell_load_factors_validation(self):
        from repro.serving import build_scenario
        from repro.wireless import ChannelImpairments

        impairments = ChannelImpairments(interference_power=1.0)
        with pytest.raises(ConfigurationError):
            generate_serving_jobs(
                _profiles(), jobs_per_user=1, rng=1, cell_load_factors=[1.0, 2.0]
            )
        with pytest.raises(ConfigurationError):
            generate_serving_jobs(
                _profiles(),
                jobs_per_user=1,
                rng=1,
                impairments=impairments,
                cell_load_factors=[1.0],  # 2 cells in the layout
            )
        with pytest.raises(ConfigurationError):
            generate_serving_jobs(
                _profiles(arrival_process="poisson"),
                jobs_per_user=1,
                rng=1,
                scenario=build_scenario("steady", num_cells=2),
                impairments=impairments,
                cell_load_factors=[1.0, 1.0],
            )


# ---------------------------------------------------------------------- #
# Scheduling policies and coalescing
# ---------------------------------------------------------------------- #


def _manual_job(job_id, arrival_us, deadline_us, rng, modulation="QPSK", num_users=2):
    transmission = simulate_transmission(MIMOConfig(num_users, modulation), rng=rng)
    use = ChannelUse(
        index=job_id,
        arrival_time_us=arrival_us,
        transmission=transmission,
        deadline_us=deadline_us,
    )
    return ServingJob(job_id=job_id, user_id=job_id, cell_id=0, channel_use=use)


class TestPolicies:
    def test_fifo_orders_by_arrival(self, rng):
        late = _manual_job(0, 10.0, 900.0, rng)
        early = _manual_job(1, 5.0, 100.0, rng)
        policy = FifoPolicy()
        assert min([late, early], key=policy.key) is early

    def test_edf_orders_by_deadline(self, rng):
        relaxed = _manual_job(0, 0.0, 900.0, rng)
        urgent = _manual_job(1, 5.0, 100.0, rng)
        policy = EdfPolicy()
        assert min([relaxed, urgent], key=policy.key) is urgent

    def test_edf_sorts_deadline_free_jobs_last(self, rng):
        best_effort = _manual_job(0, 0.0, None, rng)
        deadline = _manual_job(1, 5.0, 1000.0, rng)
        policy = EdfPolicy()
        assert min([best_effort, deadline], key=policy.key) is deadline

    def test_resolve_policy(self):
        assert resolve_policy("fifo").name == "fifo"
        assert resolve_policy("EDF").name == "edf"
        policy = EdfPolicy()
        assert resolve_policy(policy) is policy
        with pytest.raises(ConfigurationError):
            resolve_policy("lifo")
        with pytest.raises(ConfigurationError):
            resolve_policy(3)

    def test_select_batch_never_mixes_compat_keys(self, rng):
        qpsk = [_manual_job(i, float(i), 900.0, rng, "QPSK") for i in range(3)]
        qam = [_manual_job(10 + i, 0.5 + i, 900.0, rng, "16-QAM") for i in range(2)]
        queue = [qpsk[0], qam[0], qpsk[1], qam[1], qpsk[2]]
        batch = select_batch(queue, FifoPolicy(), max_batch_size=None)
        assert [job.job_id for job in batch] == [0, 1, 2]
        assert len({job.compat_key for job in batch}) == 1
        # The incompatible jobs remain queued.
        assert [job.job_id for job in queue] == [10, 11]

    def test_select_batch_respects_ceiling(self, rng):
        queue = [_manual_job(i, float(i), 900.0, rng) for i in range(5)]
        batch = select_batch(queue, FifoPolicy(), max_batch_size=2)
        assert [job.job_id for job in batch] == [0, 1]
        assert len(queue) == 3

    def test_select_batch_empty(self):
        assert select_batch([], FifoPolicy(), None) == []

    def test_edf_key_is_a_total_order(self, rng):
        # Equal-deadline (and deadline-free) jobs tie-break on arrival and
        # then the unique job_id, mirroring FifoPolicy, so no two jobs
        # compare equal and scheduling never depends on queue order.
        policy = EdfPolicy()
        equal = [_manual_job(job_id, 5.0, 400.0, rng) for job_id in range(4)]
        free = [_manual_job(10 + job_id, 5.0, None, rng) for job_id in range(2)]
        keys = [policy.key(job) for job in equal + free]
        assert len(set(keys)) == len(keys)
        assert min(equal + free, key=policy.key) is equal[0]

    def test_edf_treats_nonfinite_deadline_as_deadline_free(self):
        import types

        policy = EdfPolicy()
        nan_job = types.SimpleNamespace(deadline_us=float("nan"), arrival_us=1.0, job_id=0)
        free_job = types.SimpleNamespace(deadline_us=None, arrival_us=1.0, job_id=1)
        # A NaN deadline would poison tuple comparison (every comparison is
        # false), making min()/sorted() order-dependent; it sorts last instead.
        # Key layout is (priority, deadline, arrival, job_id).
        assert policy.key(nan_job)[1] == float("inf")
        assert policy.key(nan_job) < policy.key(free_job)

    def test_edf_select_batch_invariant_under_permutation(self, rng):
        import itertools

        # Same deadline, same arrival: only the job_id tie-break remains.
        jobs = [_manual_job(job_id, 5.0, 400.0, rng) for job_id in range(4)]
        expected = None
        for permutation in itertools.permutations(jobs):
            queue = list(permutation)
            batch = [job.job_id for job in select_batch(queue, EdfPolicy(), 3)]
            if expected is None:
                expected = batch
            assert batch == expected
        assert expected == [0, 1, 2]


# ---------------------------------------------------------------------- #
# Backends
# ---------------------------------------------------------------------- #


class TestBackends:
    def test_annealer_lane_tiling(self, rng):
        backend = AnnealerServingBackend(
            num_reads=10, lanes=4, programming_overhead_us=2.0, init_time_per_variable_us=0.0
        )
        jobs = [_manual_job(i, 0.0, 900.0, rng) for i in range(5)]
        one_sequence = backend.service_time_us(jobs[:4])
        two_sequences = backend.service_time_us(jobs)
        assert one_sequence == pytest.approx(2.0 + backend.shot_time_us)
        assert two_sequences == pytest.approx(2.0 + 2 * backend.shot_time_us)
        assert backend.service_time_us([]) == 0.0

    def test_qpu_overheads_increase_shot_time(self):
        lean = AnnealerServingBackend(num_reads=10, include_qpu_overheads=False)
        loaded = AnnealerServingBackend(num_reads=10, include_qpu_overheads=True)
        assert loaded.shot_time_us > lean.shot_time_us

    def test_classical_service_linear_in_volume(self, rng):
        backend = ClassicalServingBackend(time_per_variable_us=0.5)
        jobs = [_manual_job(i, 0.0, 900.0, rng) for i in range(3)]  # 4 vars each
        assert backend.service_time_us(jobs) == pytest.approx(6.0)

    def test_solve_reports_optimum_for_noiseless(self, rng, fast_sampler):
        backend = AnnealerServingBackend(sampler=fast_sampler, num_reads=10)
        jobs = [_manual_job(i, 0.0, 900.0, rng) for i in range(2)]
        from repro.utils.rng import spawn_rngs

        solutions = backend.solve(jobs, spawn_rngs(3, 2))
        assert [solution.job_id for solution in solutions] == [0, 1]
        for solution in solutions:
            assert solution.detected_optimum is not None
            assert np.isfinite(solution.best_energy)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"switch_s": 0.0},
            {"num_reads": 0},
            {"lanes": 0},
            {"programming_overhead_us": -1.0},
            {"init_time_per_variable_us": -0.1},
        ],
    )
    def test_invalid_annealer_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            AnnealerServingBackend(**kwargs)

    def test_invalid_classical_config(self):
        with pytest.raises(ConfigurationError):
            ClassicalServingBackend(time_per_variable_us=0.0)


class TestPool:
    def test_build_pool_layout(self):
        pool = build_pool(num_annealer_workers=2, num_classical_workers=1)
        assert len(pool.annealer_workers) == 2
        assert len(pool.classical_workers) == 1
        assert len({worker.name for worker in pool.workers}) == 3

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            BackendPool([])
        with pytest.raises(ConfigurationError):
            build_pool(num_annealer_workers=0, num_classical_workers=0)


# ---------------------------------------------------------------------- #
# The serving simulator
# ---------------------------------------------------------------------- #


class _StubBackend(ServingBackend):
    """Fixed-service-time backend that records every dispatched batch."""

    kind = "annealer"

    def __init__(self, service_us: float, name: str = "stub") -> None:
        self.service_us = service_us
        self.name = name
        self.batches: List[List[int]] = []

    def service_time_us(self, jobs: Sequence[ServingJob]) -> float:
        self.batches.append([job.job_id for job in jobs])
        return self.service_us * max(len(jobs), 1)

    def solve(self, jobs, children):  # pragma: no cover - timing-only stub
        raise NotImplementedError


def _mixed_workload(jobs_per_user=4, symbol_period_us=50.0, budget=500.0, process="deterministic"):
    profiles = _profiles(
        symbol_period_us=symbol_period_us,
        turnaround_budget_us=budget,
        arrival_process=process,
    )
    return generate_serving_jobs(profiles, jobs_per_user=jobs_per_user, rng=5)


class TestServingSimulator:
    def test_every_job_accounted_even_when_all_miss(self):
        # A 1 us budget is unmeetable: every job must miss and still appear.
        jobs = _mixed_workload(budget=1.0)
        report = RANServingSimulator(
            pool=BackendPool([AnnealerServingBackend(num_reads=20)]),
            policy="edf",
            admission_control=False,
        ).run(jobs)
        assert report.num_jobs == len(jobs)
        assert sorted(outcome.job_id for outcome in report.outcomes) == [
            job.job_id for job in jobs
        ]
        assert report.deadline_miss_rate == pytest.approx(1.0)
        assert report.missed_jobs == len(jobs)

    def test_batches_never_mix_qubo_shapes(self):
        jobs = _mixed_workload(jobs_per_user=6, symbol_period_us=5.0, budget=50_000.0)
        stub = _StubBackend(service_us=40.0)
        RANServingSimulator(
            pool=BackendPool([stub]), policy="fifo", max_batch_size=None
        ).run(jobs)
        shapes = {job.job_id: job.compat_key for job in jobs}
        assert sum(len(batch) for batch in stub.batches) == len(jobs)
        for batch in stub.batches:
            assert len({shapes[job_id] for job_id in batch}) == 1

    def test_edf_beats_fifo_on_urgent_jobs(self, rng):
        # Two same-shape jobs arrive together; the later-arriving one has the
        # tighter deadline.  FIFO misses it, EDF reorders and meets both.
        relaxed = _manual_job(0, 0.0, 1000.0, rng)
        urgent = _manual_job(1, 0.0, 150.0, rng)
        jobs = [relaxed, urgent]

        def run(policy):
            return RANServingSimulator(
                pool=BackendPool([_StubBackend(service_us=100.0)]),
                policy=policy,
                max_batch_size=1,
                admission_control=False,
            ).run(jobs)

        fifo = run("fifo")
        edf = run("edf")
        assert fifo.deadline_miss_rate == pytest.approx(0.5)
        assert edf.deadline_miss_rate == pytest.approx(0.0)
        edf_urgent = next(o for o in edf.outcomes if o.job_id == 1)
        assert edf_urgent.start_us == pytest.approx(0.0)

    def test_admission_control_demotes_pressured_jobs(self, rng):
        # One slow annealer: the second job would finish at 1000 us against a
        # 600 us deadline, so admission control routes it to the classical
        # fallback; without admission control it waits and misses.
        jobs = [_manual_job(0, 0.0, 600.0, rng), _manual_job(1, 0.0, 600.0, rng)]
        annealer = AnnealerServingBackend(
            num_reads=100, lanes=1, programming_overhead_us=0.0,
            init_time_per_variable_us=0.0, pause_duration_us=3.82,
        )
        assert annealer.service_time_us(jobs[:1]) == pytest.approx(500.0)

        def run(admission_control):
            return RANServingSimulator(
                pool=BackendPool([annealer, ClassicalServingBackend(time_per_variable_us=1.0)]),
                policy="edf",
                max_batch_size=1,
                admission_control=admission_control,
            ).run(jobs)

        controlled = run(True)
        demoted = [o for o in controlled.outcomes if o.demoted]
        assert len(demoted) == 1
        assert demoted[0].backend_kind == "classical"
        assert controlled.deadline_miss_rate == pytest.approx(0.0)
        assert controlled.demotion_rate == pytest.approx(0.5)

        uncontrolled = run(False)
        assert uncontrolled.demotion_rate == 0.0
        assert uncontrolled.deadline_miss_rate == pytest.approx(0.5)
        assert all(o.backend_kind == "annealer" for o in uncontrolled.outcomes)

    def test_classical_only_pool_serves_everything(self):
        jobs = _mixed_workload(budget=50_000.0)
        report = RANServingSimulator(
            pool=BackendPool([ClassicalServingBackend()]), policy="fifo"
        ).run(jobs)
        assert report.num_jobs == len(jobs)
        assert report.demotion_rate == 0.0
        assert report.deadline_miss_rate == pytest.approx(0.0)

    def test_same_seed_reproduces_report(self):
        jobs = _mixed_workload(process="poisson")
        simulator = RANServingSimulator(pool=build_pool(2, 1), policy="edf")
        first = simulator.run(jobs)
        second = simulator.run(jobs)
        assert [o.finish_us for o in first.outcomes] == [o.finish_us for o in second.outcomes]
        assert first.deadline_miss_rate == second.deadline_miss_rate
        assert first.mean_batch_size == second.mean_batch_size

    def test_solutions_independent_of_batch_ceiling(self):
        # The child-RNG discipline: grouping is an execution detail, so the
        # per-job detection energies must not depend on the batch ceiling.
        jobs = _mixed_workload(jobs_per_user=3, symbol_period_us=10.0, budget=50_000.0)

        def energies(max_batch_size):
            sampler = QuantumAnnealerSimulator(
                backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=8), seed=9
            )
            backend = AnnealerServingBackend(sampler=sampler, num_reads=5)
            report = RANServingSimulator(
                pool=BackendPool([backend, backend]),
                policy="edf",
                max_batch_size=max_batch_size,
                admission_control=False,
                evaluate_solutions=True,
            ).run(jobs, rng=21)
            return {o.job_id: o.best_energy for o in report.outcomes}

        whole = energies(None)
        pairs = energies(2)
        singles = energies(1)
        assert whole == pairs == singles

    def test_report_sanity(self):
        jobs = _mixed_workload(jobs_per_user=6, symbol_period_us=20.0, budget=5_000.0)
        report = RANServingSimulator(pool=build_pool(2, 1), policy="edf").run(jobs)
        assert report.p50_latency_us <= report.p95_latency_us <= report.p99_latency_us
        assert report.mean_batch_size >= 1.0
        assert report.max_batch_size >= 1
        assert report.throughput_jobs_per_ms > 0
        assert len(report.backend_utilization) == 3
        assert sum(stats.jobs for stats in report.backend_utilization) == len(jobs)
        for stats in report.backend_utilization:
            assert stats.utilization >= 0.0

    def test_invalid_inputs_rejected(self, rng):
        simulator = RANServingSimulator()
        with pytest.raises(ConfigurationError):
            simulator.run([])
        job = _manual_job(0, 0.0, 100.0, rng)
        with pytest.raises(ConfigurationError):
            simulator.run([job, job])
        with pytest.raises(ConfigurationError):
            RANServingSimulator(max_batch_size=0)


# ---------------------------------------------------------------------- #
# ServingReport edge cases
# ---------------------------------------------------------------------- #


def _outcome(job_id, arrival, start, finish, deadline, met, demoted=False):
    from repro.serving import JobOutcome

    return JobOutcome(
        job_id=job_id,
        user_id=job_id,
        cell_id=0,
        arrival_us=arrival,
        start_us=start,
        finish_us=finish,
        deadline_us=deadline,
        met_deadline=met,
        backend="annealer#0",
        backend_kind="annealer",
        demoted=demoted,
        batch_size=1,
    )


class TestServingReportEdgeCases:
    def test_zero_completed_jobs_yields_a_zeroed_report(self):
        from repro.serving.report import build_serving_report, format_serving_report

        report = build_serving_report([], policy="edf", backend_utilization=[])
        assert report.num_jobs == 0
        assert report.makespan_us == 0.0
        assert report.offered_load_jobs_per_ms == 0.0
        assert report.throughput_jobs_per_ms == 0.0
        assert report.p50_latency_us == report.p95_latency_us == report.p99_latency_us == 0.0
        assert report.deadline_miss_rate is None
        assert report.missed_jobs == 0
        assert report.optimum_rate is None
        assert report.mean_batch_size == 0.0
        assert report.max_batch_size == 0
        # The empty report still renders.
        assert "jobs served" in format_serving_report(report)

    def test_single_job_report(self):
        from repro.serving.report import build_serving_report

        report = build_serving_report(
            [_outcome(0, 10.0, 12.0, 40.0, 100.0, True)],
            policy="fifo",
            backend_utilization=[],
        )
        assert report.num_jobs == 1
        # A lone arrival has no meaningful offered rate.
        assert report.offered_load_jobs_per_ms == 0.0
        # Every percentile equals the single latency.
        latency = 40.0 - 10.0
        assert report.p50_latency_us == pytest.approx(latency)
        assert report.p95_latency_us == pytest.approx(latency)
        assert report.p99_latency_us == pytest.approx(latency)
        assert report.deadline_miss_rate == pytest.approx(0.0)

    def test_all_missed_workload(self):
        from repro.serving.report import build_serving_report

        outcomes = [
            _outcome(i, float(i), float(i) + 5.0, float(i) + 500.0, float(i) + 100.0, False)
            for i in range(4)
        ]
        report = build_serving_report(outcomes, policy="edf", backend_utilization=[])
        assert report.deadline_miss_rate == pytest.approx(1.0)
        assert report.missed_jobs == 4
        assert report.num_jobs == 4

    def test_tail_percentiles_are_observed_latencies_for_small_populations(self):
        # Regression: with N < 100 jobs, linear percentile interpolation
        # reported a p99 *below any observed latency* (e.g. 99.1 us for
        # latencies 10..100 us).  The conservative "higher" method pins the
        # tail to an actually-observed job.
        from repro.serving.report import build_serving_report

        latencies = [10.0 * (i + 1) for i in range(10)]  # 10, 20, ..., 100
        outcomes = [
            _outcome(i, float(i), float(i), float(i) + latency, None, None)
            for i, latency in enumerate(latencies)
        ]
        report = build_serving_report(outcomes, policy="fifo", backend_utilization=[])
        assert report.p99_latency_us == pytest.approx(100.0)
        assert report.p95_latency_us == pytest.approx(100.0)
        assert report.p99_latency_us in latencies
        assert report.p95_latency_us in latencies
        # The tail never under-reports the slowest observed job at this N.
        assert report.p99_latency_us >= max(latencies)

    def test_tail_percentiles_observed_at_larger_populations(self):
        from repro.serving.report import build_serving_report

        latencies = [float(i + 1) for i in range(60)]  # 1..60
        outcomes = [
            _outcome(i, float(i), float(i), float(i) + latency, None, None)
            for i, latency in enumerate(latencies)
        ]
        report = build_serving_report(outcomes, policy="fifo", backend_utilization=[])
        assert report.p95_latency_us in latencies
        assert report.p99_latency_us in latencies
        # "higher" rounds up to the next observed order statistic.
        assert report.p95_latency_us == pytest.approx(58.0)
        assert report.p99_latency_us == pytest.approx(60.0)
