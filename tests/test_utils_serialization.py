"""Tests for repro.utils.serialization."""

import dataclasses
import json

import numpy as np
import pytest

from repro.utils.serialization import from_jsonable, to_jsonable


@dataclasses.dataclass
class _Sample:
    name: str
    values: np.ndarray
    weight: float


class TestToJsonable:
    def test_builtin_passthrough(self):
        assert to_jsonable({"a": 1, "b": [True, None, "x"]}) == {"a": 1, "b": [True, None, "x"]}

    def test_numpy_scalars(self):
        payload = to_jsonable({"i": np.int64(3), "f": np.float32(1.5), "b": np.bool_(True)})
        assert payload == {"i": 3, "f": 1.5, "b": True}
        json.dumps(payload)

    def test_real_array_round_trip(self):
        array = np.arange(6, dtype=float).reshape(2, 3)
        restored = from_jsonable(json.loads(json.dumps(to_jsonable(array))))
        assert np.allclose(restored, array)

    def test_complex_array_round_trip(self):
        array = np.array([1 + 2j, -3j])
        restored = from_jsonable(to_jsonable(array))
        assert np.allclose(restored, array)

    def test_complex_scalar_round_trip(self):
        restored = from_jsonable(to_jsonable(2 - 5j))
        assert restored == 2 - 5j

    def test_dataclass(self):
        sample = _Sample(name="x", values=np.array([1.0, 2.0]), weight=0.5)
        payload = to_jsonable(sample)
        assert payload["name"] == "x"
        assert from_jsonable(payload)["weight"] == 0.5

    def test_sets_become_lists(self):
        assert sorted(to_jsonable({1, 2, 3})) == [1, 2, 3]

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_nested_structure_serialisable(self):
        nested = {"results": [{"energies": np.array([1.0, -2.0])}, {"energies": np.array([])}]}
        text = json.dumps(to_jsonable(nested))
        restored = from_jsonable(json.loads(text))
        assert np.allclose(restored["results"][0]["energies"], [1.0, -2.0])
