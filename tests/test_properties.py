"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.annealing.schedule import forward_anneal_schedule, reverse_anneal_schedule
from repro.metrics.quality import delta_e_percent
from repro.metrics.tts import time_to_solution
from repro.qubo.ising import bits_to_spins, ising_to_qubo, qubo_to_ising, spins_to_bits
from repro.qubo.model import QUBOModel
from repro.qubo.preprocessing import simplify_qubo
from repro.qubo.energy import brute_force_minimum
from repro.qubo.serialization import qubo_from_dict, qubo_to_dict
from repro.transform.symbol_mapping import (
    amplitude_to_transform_bits,
    transform_bits_to_amplitude,
    gray_bits_to_transform_bits,
    transform_bits_to_gray_bits,
)
from repro.wireless.modulation import get_modulation, gray_code, gray_decode

# Shared strategy: small square coefficient matrices with bounded entries.
_coefficients = st.integers(min_value=2, max_value=7).flatmap(
    lambda n: hnp.arrays(
        dtype=np.float64,
        shape=(n, n),
        elements=st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, width=32),
    )
)

_bits_strategy = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12)

_settings = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestQuboIsingProperties:
    @given(matrix=_coefficients, data=st.data())
    @_settings
    def test_qubo_to_ising_preserves_energy(self, matrix, data):
        qubo = QUBOModel(coefficients=matrix)
        ising = qubo_to_ising(qubo)
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1), min_size=qubo.num_variables, max_size=qubo.num_variables
                )
            )
        )
        assert ising.energy(bits_to_spins(bits)) == pytest.approx(qubo.energy(bits), abs=1e-7)

    @given(matrix=_coefficients, data=st.data())
    @_settings
    def test_ising_round_trip_preserves_energy(self, matrix, data):
        qubo = QUBOModel(coefficients=matrix)
        round_tripped = ising_to_qubo(qubo_to_ising(qubo))
        bits = np.array(
            data.draw(
                st.lists(
                    st.integers(0, 1), min_size=qubo.num_variables, max_size=qubo.num_variables
                )
            )
        )
        assert round_tripped.energy(bits) == pytest.approx(qubo.energy(bits), abs=1e-7)

    @given(matrix=_coefficients)
    @_settings
    def test_serialization_round_trip(self, matrix):
        qubo = QUBOModel(coefficients=matrix)
        restored = qubo_from_dict(qubo_to_dict(qubo))
        assert np.allclose(restored.coefficients, qubo.coefficients)
        assert restored.offset == pytest.approx(qubo.offset)

    @given(matrix=_coefficients, data=st.data())
    @_settings
    def test_energy_delta_flip_consistency(self, matrix, data):
        qubo = QUBOModel(coefficients=matrix)
        n = qubo.num_variables
        bits = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.int8
        )
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        flipped = bits.copy()
        flipped[index] = 1 - flipped[index]
        assert qubo.energy_delta_flip(bits, index) == pytest.approx(
            qubo.energy(flipped) - qubo.energy(bits), abs=1e-7
        )

    @given(matrix=_coefficients)
    @_settings
    def test_preprocessing_never_raises_minimum(self, matrix):
        qubo = QUBOModel(coefficients=matrix)
        exact = brute_force_minimum(qubo)
        report = simplify_qubo(qubo)
        if report.reduced_qubo.num_variables > 0:
            reduced_exact = brute_force_minimum(report.reduced_qubo)
            lifted = report.lift_assignment(reduced_exact.assignment)
        else:
            lifted = report.lift_assignment(np.zeros(0, dtype=int))
        assert qubo.energy(lifted) == pytest.approx(exact.energy, abs=1e-7)


class TestSpinBitProperties:
    @given(bits=_bits_strategy)
    @_settings
    def test_spin_bit_round_trip(self, bits):
        bits = np.array(bits)
        assert np.array_equal(spins_to_bits(bits_to_spins(bits)), bits)

    @given(value=st.integers(min_value=0, max_value=10_000))
    @_settings
    def test_gray_code_bijective(self, value):
        assert gray_decode(gray_code(value)) == value

    @given(width=st.integers(1, 4), data=st.data())
    @_settings
    def test_transform_gray_round_trip(self, width, data):
        bits = tuple(data.draw(st.lists(st.integers(0, 1), min_size=width, max_size=width)))
        assert gray_bits_to_transform_bits(transform_bits_to_gray_bits(bits)) == bits

    @given(width=st.integers(1, 4), scale=st.floats(0.1, 3.0), data=st.data())
    @_settings
    def test_amplitude_round_trip(self, width, scale, data):
        bits = tuple(data.draw(st.lists(st.integers(0, 1), min_size=width, max_size=width)))
        amplitude = transform_bits_to_amplitude(bits, scale=scale)
        assert amplitude_to_transform_bits(amplitude, width, scale=scale) == bits


class TestModulationProperties:
    @given(
        name=st.sampled_from(["BPSK", "QPSK", "16-QAM", "64-QAM"]),
        seed=st.integers(0, 2 ** 16),
    )
    @_settings
    def test_modulate_demodulate_identity(self, name, seed):
        modulation = get_modulation(name)
        rng = np.random.default_rng(seed)
        bits = modulation.random_bits(8, rng)
        assert np.array_equal(modulation.demodulate_hard(modulation.modulate_bits(bits)), bits)


class TestMetricProperties:
    @given(
        ground=st.floats(min_value=-1000.0, max_value=-0.5, allow_nan=False),
        gap_fraction=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    )
    @_settings
    def test_delta_e_non_negative_and_zero_at_ground(self, ground, gap_fraction):
        sample = ground + gap_fraction * abs(ground)
        value = delta_e_percent(sample, ground)
        assert value >= -1e-9
        assert delta_e_percent(ground, ground) == pytest.approx(0.0)

    @given(
        probability=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        duration=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    @_settings
    def test_tts_at_least_one_run(self, probability, duration):
        result = time_to_solution(probability, duration)
        assert result.tts_us >= duration - 1e-9

    @given(
        low=st.floats(min_value=0.01, max_value=0.49, allow_nan=False),
        high=st.floats(min_value=0.5, max_value=0.99, allow_nan=False),
        duration=st.floats(min_value=0.5, max_value=10.0, allow_nan=False),
    )
    @_settings
    def test_tts_monotone_in_probability(self, low, high, duration):
        assert (
            time_to_solution(high, duration).tts_us <= time_to_solution(low, duration).tts_us + 1e-9
        )


class TestScheduleProperties:
    @given(
        switch=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        pause=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @_settings
    def test_reverse_schedule_duration_formula(self, switch, pause):
        schedule = reverse_anneal_schedule(switch, pause)
        assert schedule.duration_us == pytest.approx(2 * (1 - switch) + pause)
        assert schedule.requires_initial_state
        assert schedule.minimum_s == pytest.approx(switch)

    @given(
        anneal_time=st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
        switch=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        pause=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    )
    @_settings
    def test_forward_schedule_duration_formula(self, anneal_time, switch, pause):
        schedule = forward_anneal_schedule(anneal_time, switch, pause)
        assert schedule.duration_us == pytest.approx(anneal_time + pause)
        assert not schedule.requires_initial_state

    @given(
        switch=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
        time_fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @_settings
    def test_interpolated_s_stays_in_range(self, switch, time_fraction):
        schedule = reverse_anneal_schedule(switch, 1.0)
        time = time_fraction * schedule.duration_us
        assert 0.0 <= schedule.s_at(time) <= 1.0
