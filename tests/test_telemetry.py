"""Tests for the repro.telemetry subsystem.

The subsystem's contract, in order of importance:

1. **Bitwise invariance** — enabling telemetry changes *no* experiment
   output: the golden quick studies and the annealing kernels produce
   bitwise-identical results with telemetry on and off.
2. **Disabled is a no-op** — ``telemetry.active()`` is ``None`` by default
   and every instrumented call site is guarded on it.
3. The trace a run records is *faithful*: per-job serving spans reconstruct
   the report's latency percentiles; counters match the cache's own
   bookkeeping; exporters round-trip.
"""

import dataclasses
import json
import logging

import numpy as np
import pytest

import repro.cli as cli
from repro import telemetry
from repro.annealing import kernels
from repro.exceptions import ConfigurationError
from repro.parallel import ParallelRunner, ResultCache, ShardTask
from repro.serving import (
    AnnealerServingBackend,
    BackendPool,
    RANServingSimulator,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.telemetry import exporters
from repro.telemetry.log import configure_logging, get_logger
from repro.utils.rng import spawn_rngs
from repro.wireless.mimo import MIMOConfig


@pytest.fixture(autouse=True)
def _telemetry_disabled():
    """Telemetry is process-global state; every test starts and ends clean."""
    telemetry.disable()
    yield
    telemetry.disable()


def _draw(seed, count=4):
    return np.random.default_rng(seed).random(count)


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #


class TestRegistry:
    def test_counter_get_or_create_and_labels(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("repro_jobs_total", policy="edf").inc()
        registry.counter("repro_jobs_total", policy="edf").inc(2.0)
        registry.counter("repro_jobs_total", policy="fifo").inc()
        assert registry.counter("repro_jobs_total", policy="edf").value == 3.0
        assert registry.counter("repro_jobs_total", policy="fifo").value == 1.0
        assert len(registry) == 2

    def test_counter_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            telemetry.MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = telemetry.MetricsRegistry().gauge("depth")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(3.0)
        assert gauge.value == 3.0

    def test_kind_conflict_is_an_error(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("metric_x")
        with pytest.raises(ConfigurationError):
            registry.gauge("metric_x")

    def test_histogram_value_on_edge_lands_in_that_bucket(self):
        # Prometheus `le` semantics: le means less-than-OR-EQUAL, so an
        # observation exactly on an edge belongs to that edge's bucket.
        histogram = telemetry.MetricsRegistry().histogram("h", edges=(10.0, 20.0))
        histogram.observe(10.0)   # == first edge -> bucket 0
        histogram.observe(10.5)   # bucket 1
        histogram.observe(20.0)   # == second edge -> bucket 1
        histogram.observe(99.0)   # +Inf bucket
        assert histogram.bucket_counts == [1, 2, 1]
        assert histogram.cumulative_counts() == [1, 3, 4]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(139.5)

    def test_histogram_rejects_bad_edges(self):
        registry = telemetry.MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", edges=())
        with pytest.raises(ConfigurationError):
            registry.histogram("unsorted", edges=(2.0, 1.0))

    def test_default_edges_are_the_latency_ladder(self):
        histogram = telemetry.MetricsRegistry().histogram("latency_us")
        assert histogram.edges == telemetry.DEFAULT_LATENCY_BUCKETS_US

    def test_snapshot_shape(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("jobs", policy="edf").inc(4)
        registry.histogram("lat", edges=(1.0,)).observe(0.5)
        view = registry.snapshot()
        assert view["jobs"]["kind"] == "counter"
        assert view["jobs"]["samples"]["policy=edf"] == 4.0
        assert view["lat"]["samples"][""]["buckets"] == {"1.0": 1, "+Inf": 1}


# ---------------------------------------------------------------------- #
# Tracer
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_record_span_sim_clock(self):
        tracer = telemetry.Tracer()
        span_id = tracer.record_span("job", 10.0, 35.0, job_id=7)
        (span,) = tracer.spans_named("job")
        assert (span.span_id, span.parent_id) == (span_id, None)
        assert span.clock == telemetry.CLOCK_SIM
        assert span.duration_us == pytest.approx(25.0)
        assert span.attrs == {"job_id": 7}

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError):
            telemetry.Tracer().record_span("x", 0.0, 1.0, clock="cpu")

    def test_context_spans_nest_and_parents_precede_children(self):
        tracer = telemetry.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick")
        outer, inner, tick = tracer.records
        assert inner.parent_id == outer.span_id
        assert tick.parent_id == inner.span_id  # events auto-parent to stack top
        assert tick.kind == "event" and tick.duration_us == 0.0
        # Buffer order: parent admitted before child.
        assert [r.name for r in tracer.records] == ["outer", "inner", "tick"]
        assert outer.end_us >= inner.end_us >= inner.start_us >= outer.start_us

    def test_span_attrs_may_be_added_in_the_body(self):
        tracer = telemetry.Tracer()
        with tracer.span("work") as span:
            span.attrs["rows"] = 12
        assert tracer.records[0].attrs["rows"] == 12

    def test_bounded_buffer_drops_newest(self):
        tracer = telemetry.Tracer(max_records=2)
        for index in range(5):
            tracer.record_span(f"s{index}", 0.0, 1.0)
        assert [span.name for span in tracer.records] == ["s0", "s1"]
        assert tracer.dropped == 3
        with pytest.raises(ValueError):
            telemetry.Tracer(max_records=0)

    def test_sim_event_keeps_explicit_time(self):
        tracer = telemetry.Tracer()
        tracer.event("autoscale", time_us=125.0, clock=telemetry.CLOCK_SIM, action="grow")
        (event,) = tracer.records
        assert (event.start_us, event.end_us) == (125.0, 125.0)
        assert event.clock == telemetry.CLOCK_SIM


# ---------------------------------------------------------------------- #
# Session lifecycle (disabled must be a no-op)
# ---------------------------------------------------------------------- #


class TestSession:
    def test_disabled_by_default(self):
        assert telemetry.active() is None
        telemetry.emit_progress("study", 1.0)  # must not raise

    def test_enable_is_idempotent_and_disable_returns_final(self):
        first = telemetry.enable()
        first.registry.counter("c").inc()
        assert telemetry.enable() is first
        final = telemetry.disable()
        assert final is first
        assert telemetry.active() is None
        assert telemetry.disable() is None

    def test_session_scope_and_reuse(self):
        with telemetry.session() as tel:
            assert telemetry.active() is tel
            with telemetry.session() as inner:  # nested: reuses, keeps alive
                assert inner is tel
            assert telemetry.active() is tel
        assert telemetry.active() is None

    def test_run_indices_are_deterministic(self):
        session = telemetry.TelemetrySession()
        assert [session.next_run_index() for _ in range(3)] == [0, 1, 2]

    def test_emit_progress_records_event(self):
        with telemetry.session() as tel:
            telemetry.emit_progress("snr-study", 4.0, hybrid_ber=0.1)
            (event,) = tel.tracer.spans_named("experiment.point")
            assert event.attrs == {
                "experiment": "snr-study", "point": "4.0", "hybrid_ber": 0.1,
            }


# ---------------------------------------------------------------------- #
# Exporters
# ---------------------------------------------------------------------- #


class TestJsonlTrace:
    def _tracer(self):
        tracer = telemetry.Tracer()
        parent = tracer.record_span("serving.job", 0.0, 100.0, job_id=1)
        tracer.record_span("serving.solve", 40.0, 100.0, parent_id=parent)
        tracer.event("serving.demotion", time_us=40.0, clock="sim", job_id=1)
        return tracer

    def test_round_trip_and_validation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = exporters.write_trace_jsonl(self._tracer(), path)
        assert written == 3
        records = list(exporters.iter_trace_records(path))
        assert records[0]["kind"] == "meta"
        assert records[0]["schema_version"] == exporters.TRACE_SCHEMA_VERSION
        assert records[0]["records"] == 3 and records[0]["dropped"] == 0
        assert [r["name"] for r in records[1:]] == [
            "serving.job", "serving.solve", "serving.demotion",
        ]
        assert records[2]["parent"] == records[1]["id"]
        counts = exporters.validate_trace_file(path)
        assert counts == {"meta": 1, "span": 2, "event": 1}

    def test_non_jsonable_attrs_degrade_to_repr(self, tmp_path):
        tracer = telemetry.Tracer()
        tracer.record_span("s", 0.0, 1.0, arr=np.arange(2), nested={"k": (1, 2)})
        path = tmp_path / "trace.jsonl"
        exporters.write_trace_jsonl(tracer, path)
        (_, record) = exporters.iter_trace_records(path)
        assert record["attrs"]["nested"] == {"k": [1, 2]}
        assert isinstance(record["attrs"]["arr"], str)  # repr fallback

    @pytest.mark.parametrize(
        "record, reason",
        [
            ([], "must be an object"),
            ({"kind": "mystery"}, "kind"),
            ({"kind": "meta", "schema_version": 99}, "schema_version"),
            (
                {"kind": "span", "id": 1, "name": "x", "clock": "sim",
                 "start_us": 5.0, "end_us": 1.0, "duration_us": -4.0, "attrs": {}},
                "precedes",
            ),
            (
                {"kind": "span", "id": 1, "name": "x", "clock": "cpu",
                 "start_us": 0.0, "end_us": 1.0, "duration_us": 1.0, "attrs": {}},
                "clock",
            ),
            (
                {"kind": "event", "id": 1, "name": "x", "clock": "sim",
                 "start_us": 0.0, "end_us": 3.0, "duration_us": 3.0, "attrs": {}},
                "zero duration",
            ),
            (
                {"kind": "span", "id": 1, "name": "x", "clock": "sim", "parent": None,
                 "start_us": 0.0, "end_us": float("nan"), "duration_us": 0.0,
                 "attrs": {}},
                "finite",
            ),
        ],
    )
    def test_schema_violations(self, record, reason):
        with pytest.raises(ValueError, match=reason):
            exporters.validate_trace_record(record)

    def test_file_must_lead_with_meta(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporters.write_trace_jsonl(self._tracer(), path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:] + lines[:1]) + "\n")
        with pytest.raises(ValueError, match="meta"):
            exporters.validate_trace_file(path)


class TestPrometheus:
    def test_text_round_trip(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("repro_jobs_total", policy="edf").inc(7)
        registry.gauge("repro_queue_depth").set(3.5)
        histogram = registry.histogram("repro_latency_us", edges=(10.0, 100.0))
        for value in (5.0, 10.0, 50.0, 1000.0):
            histogram.observe(value)

        text = exporters.prometheus_text(registry)
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_latency_us histogram" in text

        parsed = exporters.parse_prometheus_text(text)
        assert parsed["repro_jobs_total"][(("policy", "edf"),)] == 7.0
        assert parsed["repro_queue_depth"][()] == 3.5
        buckets = parsed["repro_latency_us_bucket"]
        assert buckets[(("le", "10"),)] == 2.0       # le is cumulative, 10.0 included
        assert buckets[(("le", "100"),)] == 3.0
        assert buckets[(("le", "+Inf"),)] == 4.0
        assert parsed["repro_latency_us_sum"][()] == pytest.approx(1065.0)
        assert parsed["repro_latency_us_count"][()] == 4.0

    def test_label_values_with_commas_and_quotes(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("c", key='a,"b"').inc()
        parsed = exporters.parse_prometheus_text(exporters.prometheus_text(registry))
        assert parsed["c"][(("key", 'a,"b"'),)] == 1.0


class TestRunSummary:
    def _records(self):
        tracer = telemetry.Tracer()
        for index in range(10):
            tracer.record_span("serving.solve", 0.0, 10.0 * (index + 1))
        tracer.event("experiment.point", time_us=0.0, clock="sim", point="1")
        return [exporters.span_to_record(span) for span in tracer.records]

    def test_summarize_percentiles(self):
        summary = exporters.summarize_spans(self._records())
        row = summary["serving.solve"]
        assert row["count"] == 10
        assert row["p50_us"] == 50.0   # nearest-rank on 10..100
        assert row["p95_us"] == 100.0
        assert row["max_us"] == 100.0
        assert row["mean_us"] == pytest.approx(55.0)

    def test_format_contains_stages_events_and_counters(self):
        registry = telemetry.MetricsRegistry()
        registry.counter("repro_jobs_total").inc(3)
        text = exporters.format_run_summary(
            self._records(), metrics_text=exporters.prometheus_text(registry), top=2
        )
        assert "serving.solve" in text
        assert "Top 2 slowest spans:" in text
        assert "experiment.point x1" in text
        assert "repro_jobs_total = 3" in text

    def test_empty_trace_renders(self):
        assert "No spans recorded." in exporters.format_run_summary([])


# ---------------------------------------------------------------------- #
# Structured logging
# ---------------------------------------------------------------------- #


class TestLogging:
    def test_event_key_value_rendering(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.unit"):
            get_logger("unit").info("cache.evict", key="a b", count=2, rate=0.25)
        (record,) = caplog.records
        assert record.name == "repro.unit"
        assert record.message == 'cache.evict key="a b" count=2 rate=0.25'

    def test_verbosity_levels(self):
        root = logging.getLogger("repro")
        try:
            for verbosity, level in ((-1, logging.ERROR), (0, logging.WARNING),
                                     (1, logging.INFO), (2, logging.DEBUG)):
                configure_logging(verbosity)
                assert root.level == level
            # Re-configuring replaces the handler rather than stacking one.
            handlers = [h for h in root.handlers
                        if getattr(h, "_repro_telemetry_handler", False)]
            assert len(handlers) == 1
        finally:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_telemetry_handler", False):
                    root.removeHandler(handler)
            # configure_logging stops propagation (it installs its own
            # handler); restore it so caplog keeps working in later tests.
            root.propagate = True
            root.setLevel(logging.NOTSET)


# ---------------------------------------------------------------------- #
# Bitwise invariance: telemetry can never change results
# ---------------------------------------------------------------------- #


class TestBitwiseInvariance:
    def test_kernel_results_identical_with_telemetry_on(self):
        def run_sa():
            rng = np.random.default_rng(2)
            n = 8
            fields = rng.normal(size=(1, n))
            upper = np.triu(rng.normal(size=(n, n)), 1)
            symmetric = (upper + upper.T)[None]
            mask = np.ones((1, n), dtype=bool)
            children = spawn_rngs(13, 1)
            spins = np.ascontiguousarray(
                children[0].choice([-1.0, 1.0], size=(16, n)).T
            )[None]
            local = kernels.initial_local_fields(fields, symmetric, spins)
            kernels.sa_sweeps(
                spins, local, symmetric, mask, np.array([n]), children,
                [(0.5, 0.5, 0.55, 1.0)] * 6, implementation="vectorized",
            )
            return spins, local

        baseline_spins, baseline_local = run_sa()
        with telemetry.session() as tel:
            traced_spins, traced_local = run_sa()
            assert tel.tracer.spans_named("kernel.sa")  # it *was* instrumented
        np.testing.assert_array_equal(baseline_spins, traced_spins)
        np.testing.assert_array_equal(baseline_local, traced_local)

    @pytest.mark.parametrize("name", ["fig6_quick", "fig8_quick", "snr_quick"])
    def test_golden_studies_identical_with_telemetry_on(self, name):
        if kernels.active_kernel_name() not in ("vectorized", "numba"):
            pytest.skip("golden fixtures bind the replica-parallel kernels only")
        from tests.test_golden_regression import GOLDEN_DIR, STUDIES, rows_as_payload

        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        with telemetry.session():
            actual = rows_as_payload(STUDIES[name]())
        assert actual == golden["rows"], (
            f"{name} changed under telemetry — instrumentation touched the numerics"
        )


# ---------------------------------------------------------------------- #
# Serving instrumentation
# ---------------------------------------------------------------------- #


def _serving_jobs(jobs_per_user=6):
    profiles = uniform_cell_profiles(
        num_cells=2,
        users_per_cell=2,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=150.0,
        turnaround_budget_us=700.0,
    )
    return generate_serving_jobs(profiles, jobs_per_user=jobs_per_user, rng=5)


class TestServingInstrumentation:
    def test_job_spans_reconstruct_report_percentiles(self):
        jobs = _serving_jobs()
        simulator = RANServingSimulator(
            pool=BackendPool([AnnealerServingBackend(num_reads=20)]),
            policy="edf",
            admission_control=False,
        )
        with telemetry.session() as tel:
            report = simulator.run(jobs)
            job_spans = tel.tracer.spans_named("serving.job")
            queue_spans = tel.tracer.spans_named("serving.queue")
            solve_spans = tel.tracer.spans_named("serving.solve")

        assert len(job_spans) == report.num_jobs == len(jobs)
        # Every job span splits exactly into its queue + solve children.
        children = {span.parent_id: span for span in queue_spans}
        solves = {span.parent_id: span for span in solve_spans}
        for span in job_spans:
            queue, solve = children[span.span_id], solves[span.span_id]
            assert queue.start_us == span.start_us
            assert queue.end_us == solve.start_us
            assert solve.end_us == span.end_us

        # The trace reconstructs the report's percentiles (the acceptance
        # criterion): same estimators as build_serving_report.
        latencies = np.array(sorted(span.duration_us for span in job_spans))
        assert float(np.percentile(latencies, 50)) == pytest.approx(
            report.p50_latency_us
        )
        assert float(
            np.percentile(latencies, 95, method="higher")
        ) == pytest.approx(report.p95_latency_us)

        # The run-level event carries the same numbers.
        (run_event,) = tel.tracer.spans_named("serving.run")
        assert run_event.attrs["jobs"] == report.num_jobs
        assert run_event.attrs["p50_latency_us"] == pytest.approx(report.p50_latency_us)
        assert run_event.attrs["p95_latency_us"] == pytest.approx(report.p95_latency_us)

        # Counters and the latency histogram agree with the report.
        jobs_counter = tel.registry.counter("repro_serving_jobs_total", policy="edf")
        assert jobs_counter.value == report.num_jobs
        histogram = tel.registry.histogram("repro_serving_latency_us", policy="edf")
        assert histogram.count == report.num_jobs
        assert histogram.sum == pytest.approx(float(latencies.sum()))

    def test_run_results_identical_with_telemetry_on(self):
        jobs = _serving_jobs()

        def run():
            return RANServingSimulator(
                pool=BackendPool([AnnealerServingBackend(num_reads=20)]),
                policy="edf",
            ).run(jobs)

        baseline = run()
        with telemetry.session():
            traced = run()
        assert [o.finish_us for o in baseline.outcomes] == [
            o.finish_us for o in traced.outcomes
        ]
        assert dataclasses.asdict(baseline) == dataclasses.asdict(traced)


# ---------------------------------------------------------------------- #
# Parallel runner and cache instrumentation
# ---------------------------------------------------------------------- #


class TestParallelInstrumentation:
    def _tasks(self, seeds):
        return [
            ShardTask(key=("draw", seed), fn=_draw, kwargs={"seed": seed})
            for seed in seeds
        ]

    def test_cache_counters_and_shard_spans(self, tmp_path):
        runner = ParallelRunner(cache=ResultCache(tmp_path / "cache"))
        with telemetry.session() as tel:
            runner.run_sharded(self._tasks([1, 2, 3]))   # cold: 3 misses
            runner.run_sharded(self._tasks([1, 2, 3]))   # warm: 3 hits
            registry = tel.registry
            assert registry.counter("repro_parallel_tasks_total").value == 6
            assert registry.counter("repro_parallel_cache_misses_total").value == 3
            assert registry.counter("repro_parallel_cache_hits_total").value == 3
            shard_spans = tel.tracer.spans_named("parallel.shard")
            assert len(shard_spans) == 3  # only executed shards get spans
            assert {span.attrs["key"] for span in shard_spans} == {
                str(("draw", seed)) for seed in (1, 2, 3)
            }

    def test_eviction_is_counted_and_surfaced(self, tmp_path, caplog):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "cd" * 32
        cache.put(fingerprint, [1, 2])
        path = cache._path(fingerprint)
        path.write_bytes(path.read_bytes()[:3])  # truncate the pickle

        with telemetry.session() as tel:
            with caplog.at_level(logging.WARNING, logger="repro.parallel.cache"):
                hit, _ = cache.get(fingerprint, key=("draw", 9))
        assert not hit
        assert cache.evictions == 1
        assert tel.registry.counter("repro_cache_evictions_total").value == 1
        (record,) = caplog.records
        assert "cache.evicted_corrupt_entry" in record.message
        assert "draw" in record.message  # the shard key is named in the warning

    def test_eviction_counter_resets(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.evictions = 3
        cache.reset_counters()
        assert cache.evictions == 0


# ---------------------------------------------------------------------- #
# Kernel instrumentation
# ---------------------------------------------------------------------- #


class TestKernelInstrumentation:
    def test_counters_and_span_attrs(self):
        rng = np.random.default_rng(0)
        n, reads, sweeps = 6, 10, 4
        fields = rng.normal(size=(1, n))
        upper = np.triu(rng.normal(size=(n, n)), 1)
        symmetric = (upper + upper.T)[None]
        mask = np.ones((1, n), dtype=bool)
        children = spawn_rngs(3, 1)
        spins = np.ascontiguousarray(children[0].choice([-1.0, 1.0], size=(reads, n)).T)[None]
        local = kernels.initial_local_fields(fields, symmetric, spins)
        with telemetry.session() as tel:
            kernels.sa_sweeps(
                spins, local, symmetric, mask, np.array([n]), children,
                [(0.5, 0.5, 0.55, 1.0)] * sweeps, implementation="vectorized",
            )
            (span,) = tel.tracer.spans_named("kernel.sa")
            assert span.attrs["implementation"] == "vectorized"
            assert span.attrs["sweeps"] == sweeps
            assert span.attrs["reads"] == reads
            assert span.attrs["read_sweeps_per_s"] > 0
            labels = {"family": "sa", "implementation": "vectorized"}
            registry = tel.registry
            assert registry.counter("repro_kernel_calls_total", **labels).value == 1
            assert registry.counter("repro_kernel_sweeps_total", **labels).value == sweeps
            assert (
                registry.counter("repro_kernel_read_sweeps_total", **labels).value
                == sweeps * reads
            )
            assert registry.counter("repro_kernel_seconds_total", **labels).value > 0


# ---------------------------------------------------------------------- #
# CLI integration
# ---------------------------------------------------------------------- #


class TestCliTelemetry:
    @pytest.fixture(autouse=True)
    def _run_in_tmp(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)

    def test_serve_quick_exports_valid_trace(self, tmp_path):
        out = tmp_path / "tele"
        exit_code = cli.main(
            ["serve", "--quick", "--no-cache", "--telemetry", str(out)]
        )
        assert exit_code == 0
        counts = exporters.validate_trace_file(out / "trace.jsonl")
        assert counts["span"] > 0
        names = {
            record.get("name")
            for record in exporters.iter_trace_records(out / "trace.jsonl")
        }
        assert {"serving.job", "serving.queue", "serving.solve"} <= names
        parsed = exporters.parse_prometheus_text(
            (out / "metrics.prom").read_text(encoding="utf-8")
        )
        assert any(name == "repro_serving_jobs_total" for name in parsed)
        assert "Per-stage latency breakdown" in (out / "summary.txt").read_text(
            encoding="utf-8"
        )
        # The CLI tears the global session down after exporting.
        assert telemetry.active() is None

    def test_quiet_and_verbose_conflict(self):
        with pytest.raises(SystemExit):
            cli.main(["serve", "--quick", "-q", "-v"])

    def test_default_telemetry_dir(self, tmp_path):
        exit_code = cli.main(["snr", "--quick", "--no-cache", "--telemetry"])
        assert exit_code == 0
        trace = tmp_path / cli.DEFAULT_TELEMETRY_DIR / "trace.jsonl"
        counts = exporters.validate_trace_file(trace)
        assert counts["event"] > 0  # experiment.point progress events
