"""Tests for multi-service QoS classes, handover and the QoS study.

Covers the serving layer's QoS contract: the service-class catalog and its
validation, the degradation boundary that class-aware batching must never
cross, bitwise identity of the class-aware machinery on single-class
workloads, handover determinism (the mobility seed tree never perturbs the
traffic draws), per-class report edge cases, and the E-QS experiment
(classless vs class-aware arms, serial == sharded).
"""

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import QoSStudyConfig, format_qos_table, run_qos_study
from repro.network import build_topology
from repro.serving import (
    BEST_EFFORT,
    DEFAULT_CLASS,
    EMBB,
    SERVICE_CLASSES,
    URLLC,
    AnnealerServingBackend,
    BackendPool,
    ClassicalServingBackend,
    EdfPolicy,
    HandoverModel,
    RANServingSimulator,
    ServiceClass,
    ServingJob,
    generate_serving_jobs,
    resolve_service_class,
    select_batch,
    uniform_cell_profiles,
)
from repro.serving.report import BackendUtilization, JobOutcome, build_serving_report
from repro.wireless.mimo import MIMOConfig, simulate_transmission
from repro.wireless.traffic import ChannelUse


# ---------------------------------------------------------------------- #
# Service-class catalog
# ---------------------------------------------------------------------- #


class TestServiceClass:
    def test_catalog_names_resolve_to_their_instances(self):
        assert resolve_service_class("urllc") is URLLC
        assert resolve_service_class("embb") is EMBB
        assert resolve_service_class("best_effort") is BEST_EFFORT
        assert resolve_service_class("default") is DEFAULT_CLASS
        assert set(SERVICE_CLASSES) == {"default", "urllc", "embb", "best_effort"}

    def test_none_resolves_to_the_legacy_default(self):
        assert resolve_service_class(None) is DEFAULT_CLASS
        assert DEFAULT_CLASS.turnaround_budget_us is None
        assert DEFAULT_CLASS.demotable and not DEFAULT_CLASS.sheddable

    def test_instances_pass_through(self):
        custom = ServiceClass(name="gold", priority=0, demotable=False)
        assert resolve_service_class(custom) is custom

    def test_unknown_name_lists_the_catalog(self):
        with pytest.raises(ConfigurationError, match="best_effort"):
            resolve_service_class("platinum")

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError, match="int"):
            resolve_service_class(3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", priority=0),
            dict(name="x", priority=-1),
            dict(name="x", priority=0, turnaround_budget_us=0.0),
            dict(name="x", priority=0, turnaround_budget_us=-5.0),
            # Shedding is a stronger degradation than demotion.
            dict(name="x", priority=0, demotable=False, sheddable=True),
        ],
    )
    def test_invalid_definitions_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceClass(**kwargs)

    def test_degradation_tiers(self):
        assert URLLC.degradation_tier == 0  # protected
        assert EMBB.degradation_tier == 1
        assert BEST_EFFORT.degradation_tier == 1
        assert DEFAULT_CLASS.degradation_tier == 1


# ---------------------------------------------------------------------- #
# Class-aware scheduling and the degradation batching boundary
# ---------------------------------------------------------------------- #


def _job(job_id, arrival_us, deadline_us, rng, service_class=DEFAULT_CLASS, modulation="QPSK"):
    transmission = simulate_transmission(MIMOConfig(2, modulation), rng=rng)
    use = ChannelUse(
        index=job_id,
        arrival_time_us=arrival_us,
        transmission=transmission,
        deadline_us=deadline_us,
    )
    return ServingJob(
        job_id=job_id, user_id=job_id, cell_id=0, channel_use=use, service_class=service_class
    )


class TestClassAwareScheduling:
    def test_priority_prefixes_the_deadline_order(self, rng):
        lax_urllc = _job(0, 0.0, 900.0, rng, service_class=URLLC)
        urgent_bulk = _job(1, 0.0, 100.0, rng, service_class=BEST_EFFORT)
        assert min([urgent_bulk, lax_urllc], key=EdfPolicy().key) is lax_urllc
        # Class-blind EDF falls back to the absolute deadlines.
        blind = EdfPolicy(class_aware=False)
        assert min([urgent_bulk, lax_urllc], key=blind.key) is urgent_bulk

    def test_protected_jobs_never_cobatch_with_degradable_ones(self, rng):
        # Same physical shape on both sides of the degradation boundary: the
        # class-aware coalescer must keep them apart even with batch room.
        queue = [
            _job(0, 0.0, 250.0, rng, service_class=URLLC),
            _job(1, 1.0, 250.0, rng, service_class=URLLC),
            _job(2, 2.0, 900.0, rng, service_class=EMBB),
            _job(3, 3.0, 2500.0, rng, service_class=BEST_EFFORT),
        ]
        batch = select_batch(queue, EdfPolicy(), max_batch_size=8)
        assert [job.job_id for job in batch] == [0, 1]
        assert all(job.service_class.degradation_tier == 0 for job in batch)
        # The degradable remainder coalesces freely across classes.
        second = select_batch(queue, EdfPolicy(), max_batch_size=8)
        assert [job.job_id for job in second] == [2, 3]
        assert {job.service_class.name for job in second} == {"embb", "best_effort"}

    def test_class_blind_batching_ignores_the_boundary(self, rng):
        queue = [
            _job(0, 0.0, 250.0, rng, service_class=URLLC),
            _job(1, 1.0, 900.0, rng, service_class=EMBB),
        ]
        batch = select_batch(
            queue, EdfPolicy(class_aware=False), max_batch_size=8, class_aware=False
        )
        assert [job.job_id for job in batch] == [0, 1]

    def test_compat_key_extends_shape_key_with_the_tier(self, rng):
        protected = _job(0, 0.0, 250.0, rng, service_class=URLLC)
        degradable = _job(1, 0.0, 900.0, rng, service_class=EMBB)
        assert protected.shape_key == degradable.shape_key
        assert protected.compat_key != degradable.compat_key
        assert protected.compat_key == protected.shape_key + (0,)


# ---------------------------------------------------------------------- #
# Single-class identity: class-aware machinery reproduces legacy bitwise
# ---------------------------------------------------------------------- #


def _default_class_workload():
    profiles = uniform_cell_profiles(
        num_cells=2,
        users_per_cell=2,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=60.0,
        arrival_process="poisson",
        turnaround_budget_us=400.0,
    )
    return generate_serving_jobs(profiles, jobs_per_user=6, rng=11)


def _pool():
    return BackendPool(
        [AnnealerServingBackend(num_reads=8, lanes=2), ClassicalServingBackend()]
    )


class TestSingleClassIdentity:
    def test_class_aware_flag_is_bitwise_invisible_on_default_class_jobs(self):
        jobs = _default_class_workload()
        aware = RANServingSimulator(pool=_pool(), max_batch_size=4, class_aware=True).run(
            jobs, rng=5
        )
        blind = RANServingSimulator(pool=_pool(), max_batch_size=4, class_aware=False).run(
            jobs, rng=5
        )
        assert aware.outcomes == blind.outcomes
        assert aware.deadline_miss_rate == blind.deadline_miss_rate
        assert aware.mean_batch_size == blind.mean_batch_size

    def test_default_class_jobs_report_one_class_slice(self):
        report = RANServingSimulator(pool=_pool(), max_batch_size=4).run(
            _default_class_workload(), rng=5
        )
        assert [entry.service_class for entry in report.class_reports] == ["default"]
        assert report.class_reports[0].jobs == report.num_jobs


# ---------------------------------------------------------------------- #
# Handover determinism
# ---------------------------------------------------------------------- #


def _mobile_workload(velocity_mps, seed=3, jobs_per_user=8):
    topology = build_topology("grid", 2, 2)
    profiles = uniform_cell_profiles(
        num_cells=4,
        users_per_cell=2,
        configs=[MIMOConfig(2, "QPSK")],
        symbol_period_us=80.0,
        topology=topology,
    )
    handover = (
        HandoverModel(velocity_mps=velocity_mps, cell_radius_m=250.0, seed=9)
        if velocity_mps is not None
        else None
    )
    return generate_serving_jobs(
        profiles, jobs_per_user=jobs_per_user, rng=seed, topology=topology, handover=handover
    )


#: Fluid-flow crossing rates are per-microsecond, so physical velocities
#: yield ~zero crossings over a ms-scale horizon; tests (like the QoS study)
#: compress time to make crossings observable.
_FAST = 30.0 * 1e4


class TestHandover:
    def test_zero_velocity_reproduces_the_static_workload(self):
        static = _mobile_workload(None)
        parked = _mobile_workload(0.0)
        assert [job.cell_id for job in parked] == [job.cell_id for job in static]
        assert [job.arrival_us for job in parked] == [job.arrival_us for job in static]
        assert not any(job.handed_over for job in parked)
        # home_cell_id is only stamped when mobility is modelled.
        assert all(job.home_cell_id is None for job in static)

    def test_velocity_sweep_never_shifts_the_traffic_draws(self):
        slow = _mobile_workload(_FAST / 4)
        fast = _mobile_workload(_FAST)
        assert [job.arrival_us for job in slow] == [job.arrival_us for job in fast]
        assert [job.deadline_us for job in slow] == [job.deadline_us for job in fast]
        np.testing.assert_array_equal(
            slow[5].channel_use.transmission.instance.received,
            fast[5].channel_use.transmission.instance.received,
        )

    def test_fast_users_hand_over_to_topology_neighbours(self):
        topology = build_topology("grid", 2, 2)
        jobs = _mobile_workload(_FAST)
        moved = [job for job in jobs if job.handed_over]
        assert moved  # the compressed velocity guarantees crossings
        for job in jobs:
            assert job.home_cell_id is not None
            assert 0 <= job.cell_id < topology.num_cells

    def test_handover_reproducible(self):
        first = _mobile_workload(_FAST)
        second = _mobile_workload(_FAST)
        assert [job.cell_id for job in first] == [job.cell_id for job in second]
        assert [job.home_cell_id for job in first] == [job.home_cell_id for job in second]

    def test_handover_requires_a_topology(self):
        profiles = uniform_cell_profiles(
            num_cells=2, users_per_cell=1, configs=[MIMOConfig(2, "QPSK")]
        )
        with pytest.raises(ConfigurationError, match="topology"):
            generate_serving_jobs(
                profiles, jobs_per_user=2, rng=0, handover=HandoverModel(velocity_mps=_FAST)
            )

    def test_negative_velocity_rejected(self):
        with pytest.raises(ConfigurationError):
            HandoverModel(velocity_mps=-1.0)


# ---------------------------------------------------------------------- #
# Per-class report edge cases
# ---------------------------------------------------------------------- #


def _outcome(job_id, service_class, demoted=False, met_deadline=True):
    return JobOutcome(
        job_id=job_id,
        user_id=job_id,
        cell_id=0,
        arrival_us=float(job_id),
        start_us=float(job_id) + 1.0,
        finish_us=float(job_id) + 2.0,
        deadline_us=float(job_id) + 10.0,
        met_deadline=met_deadline,
        backend="stub",
        backend_kind="classical" if demoted else "annealer",
        demoted=demoted,
        batch_size=1,
        service_class=service_class,
    )


class TestPerClassReports:
    def test_absent_class_has_no_entry(self):
        report = build_serving_report(
            [_outcome(0, "urllc"), _outcome(1, "urllc")], policy="edf", backend_utilization=()
        )
        assert [entry.service_class for entry in report.class_reports] == ["urllc"]
        assert report.class_report("best_effort") is None

    def test_all_demoted_class_reports_full_demotion(self):
        outcomes = [
            _outcome(0, "embb", demoted=True, met_deadline=False),
            _outcome(1, "embb", demoted=True),
            _outcome(2, "urllc"),
        ]
        report = build_serving_report(outcomes, policy="edf", backend_utilization=())
        embb = report.class_report("embb")
        assert embb.demotion_rate == 1.0
        assert embb.missed_jobs == 1
        assert embb.deadline_miss_rate == pytest.approx(0.5)
        assert report.class_report("urllc").demotion_rate == 0.0

    def test_empty_run_has_no_class_slices(self):
        report = build_serving_report([], policy="edf", backend_utilization=())
        assert report.class_reports == ()
        assert report.class_report("default") is None


# ---------------------------------------------------------------------- #
# The E-QS study
# ---------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def quick_result():
    return run_qos_study(QoSStudyConfig.quick())


class TestQoSStudy:
    def test_one_row_per_scenario_and_class(self, quick_result):
        config = QoSStudyConfig.quick()
        scenarios = [row.scenario for row in quick_result.rows]
        assert list(dict.fromkeys(scenarios)) == list(config.scenarios)
        for name in config.scenarios:
            classes = {row.service_class for row in quick_result.rows if row.scenario == name}
            assert classes == set(config.service_classes)

    def test_rows_are_sane(self, quick_result):
        for row in quick_result.rows:
            assert row.jobs > 0
            assert 0.0 <= row.handover_fraction <= 1.0
            for rate in (row.classless_miss_rate, row.aware_miss_rate):
                assert rate is None or 0.0 <= rate <= 1.0
            assert row.classless_p99_us > 0 and row.aware_p99_us > 0

    def test_mobility_is_visible(self, quick_result):
        # The compressed velocity must actually re-home traffic.
        assert any(row.handover_fraction > 0 for row in quick_result.rows)

    def test_format_table(self, quick_result):
        table = format_qos_table(quick_result)
        assert "classless vs class-aware" in table
        assert "class-aware serving report" in table
        for name in ("urllc", "embb", "best_effort"):
            assert name in table

    def test_serial_matches_sharded(self):
        config = dataclasses.replace(QoSStudyConfig.quick(), scenarios=("busy-day",))
        serial = run_qos_study(config)
        sharded = run_qos_study(config, workers=2)
        assert serial.rows == sharded.rows

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(scenarios=()),
            dict(scenarios=("rush-hour",)),
            dict(service_classes=()),
            dict(service_classes=("platinum",)),
            dict(annealer_workers=0),
        ],
    )
    def test_invalid_configurations_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            run_qos_study(dataclasses.replace(QoSStudyConfig.quick(), **overrides))

    def test_registered_as_ablation_target(self):
        from repro.ablation import available_targets, get_target
        from repro.experiments.qos_study import QOS_METRICS

        assert "qos" in available_targets()
        target = get_target("qos")
        assert target.metric_names == QOS_METRICS
        assert set(target.presets) >= {"default", "quick", "paper"}


# ---------------------------------------------------------------------- #
# The experiment-driver protocol
# ---------------------------------------------------------------------- #


def _square(value):
    return value * value


class _ToyDriver:
    """Minimal concrete ExperimentDriver for protocol-level assertions."""

    def __new__(cls):
        from repro.experiments.driver import ExperimentDriver
        from repro.parallel import ShardTask

        class Toy(ExperimentDriver):
            name = "toy"
            metric_names = ("total",)

            def tasks(self, config):
                return [
                    ShardTask(key=("toy", value), fn=_square, kwargs={"value": value})
                    for value in config
                ]

            def aggregate(self, config, results):
                return {"rows": list(results), "total": sum(results)}

            def rows(self, result):
                return result["rows"]

            def metrics(self, rows):
                return (("total", float(sum(rows))),)

        return Toy()


class TestExperimentDriver:
    def test_run_driver_feeds_aggregate_in_task_order(self):
        from repro.experiments.driver import run_driver

        result = run_driver(_ToyDriver(), (3, 1, 2))
        assert result["rows"] == [9, 1, 4]
        assert result["total"] == 14

    def test_sharded_run_matches_serial(self):
        from repro.experiments.driver import run_driver

        driver = _ToyDriver()
        assert run_driver(driver, (5, 4, 3, 2)) == run_driver(driver, (5, 4, 3, 2), workers=2)

    def test_from_driver_binds_rows_and_metrics(self):
        from repro.ablation.registry import ExperimentTarget

        target = ExperimentTarget.from_driver(
            _ToyDriver(), presets={"quick": lambda: (1, 2)}, description="toy"
        )
        assert target.name == "toy"
        assert target.metric_names == ("total",)
        config = (1, 2)
        shards = [task.fn(**task.kwargs) for task in target.tasks(config)]
        rows = target.collect(config, shards)
        assert rows == [1, 4]
        assert target.metrics(rows) == (("total", 5.0),)

    def test_every_sweep_study_driver_subclasses_the_protocol(self):
        from repro.experiments.driver import ExperimentDriver
        from repro.experiments.fig6_distributions import Figure6Driver
        from repro.experiments.fig8_tts import Figure8Driver
        from repro.experiments.load_study import LoadStudyDriver
        from repro.experiments.network_study import NetworkStudyDriver
        from repro.experiments.qos_study import QoSStudyDriver
        from repro.experiments.robustness_study import RobustnessStudyDriver
        from repro.experiments.scenario_study import ScenarioStudyDriver
        from repro.experiments.snr_study import SNRStudyDriver

        drivers = [
            Figure6Driver(),
            Figure8Driver(),
            SNRStudyDriver(),
            RobustnessStudyDriver(),
            LoadStudyDriver(),
            ScenarioStudyDriver(),
            NetworkStudyDriver(),
            QoSStudyDriver(),
        ]
        for driver in drivers:
            assert isinstance(driver, ExperimentDriver)
            assert driver.name
        assert len({driver.name for driver in drivers}) == len(drivers)
