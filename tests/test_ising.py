"""Tests for repro.qubo.ising."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.qubo.ising import (
    IsingModel,
    bits_to_spins,
    ising_to_qubo,
    qubo_to_ising,
    spins_to_bits,
)
from repro.qubo.generators import random_ising, random_qubo


class TestSpinBitMaps:
    def test_spins_to_bits(self):
        assert np.array_equal(spins_to_bits([-1, 1, 1, -1]), [0, 1, 1, 0])

    def test_bits_to_spins(self):
        assert np.array_equal(bits_to_spins([0, 1, 1, 0]), [-1, 1, 1, -1])

    def test_round_trip(self, rng):
        bits = rng.integers(0, 2, size=20)
        assert np.array_equal(spins_to_bits(bits_to_spins(bits)), bits)

    def test_invalid_spin(self):
        with pytest.raises(ValueError):
            spins_to_bits([0, 1])

    def test_invalid_bit(self):
        with pytest.raises(ValueError):
            bits_to_spins([2])


class TestIsingModel:
    def test_energy_known(self):
        model = IsingModel(fields=[1.0, -1.0], couplings=np.array([[0.0, 0.5], [0.0, 0.0]]))
        # E = s0 - s1 + 0.5 s0 s1
        assert model.energy([1, 1]) == pytest.approx(0.5)
        assert model.energy([-1, 1]) == pytest.approx(-2.5)

    def test_diagonal_moved_to_offset(self):
        model = IsingModel(fields=[0.0], couplings=np.array([[2.0]]))
        assert model.offset == pytest.approx(2.0)
        assert model.energy([1]) == pytest.approx(2.0)

    def test_lower_triangle_folded(self):
        model = IsingModel(fields=[0.0, 0.0], couplings=np.array([[0.0, 0.0], [1.5, 0.0]]))
        assert model.coupling(0, 1) == pytest.approx(1.5)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            IsingModel(fields=[1.0], couplings=np.zeros((2, 2)))

    def test_batch_energies(self, rng):
        model = random_ising(6, rng=rng)
        spins = rng.choice([-1, 1], size=(10, 6))
        energies = model.energies(spins)
        for row, energy in zip(spins, energies):
            assert energy == pytest.approx(model.energy(row))

    def test_coupling_same_spin_rejected(self):
        model = random_ising(3, rng=1)
        with pytest.raises(ValueError):
            model.coupling(1, 1)

    def test_neighbourhood(self):
        couplings = np.zeros((3, 3))
        couplings[0, 2] = -1.0
        model = IsingModel(fields=np.zeros(3), couplings=couplings)
        assert model.neighbourhood(2) == {0: -1.0}

    def test_max_abs_coefficient(self):
        model = IsingModel(fields=[0.5, -2.0], couplings=np.zeros((2, 2)))
        assert model.max_abs_coefficient() == 2.0


class TestConversions:
    def test_qubo_to_ising_energy_equivalence(self, rng):
        qubo = random_qubo(7, rng=rng)
        ising = qubo_to_ising(qubo)
        for _ in range(20):
            bits = rng.integers(0, 2, size=7)
            assert ising.energy(bits_to_spins(bits)) == pytest.approx(qubo.energy(bits))

    def test_ising_to_qubo_energy_equivalence(self, rng):
        ising = random_ising(6, rng=rng)
        qubo = ising_to_qubo(ising)
        for _ in range(20):
            spins = rng.choice([-1, 1], size=6)
            assert qubo.energy(spins_to_bits(spins)) == pytest.approx(ising.energy(spins))

    def test_double_round_trip(self, rng):
        qubo = random_qubo(5, rng=rng)
        round_tripped = ising_to_qubo(qubo_to_ising(qubo))
        for _ in range(10):
            bits = rng.integers(0, 2, size=5)
            assert round_tripped.energy(bits) == pytest.approx(qubo.energy(bits))

    def test_offset_preserved(self, rng):
        qubo = random_qubo(4, rng=rng)
        shifted = qubo.scale(1.0)
        shifted = type(shifted)(coefficients=shifted.coefficients, offset=3.5)
        ising = qubo_to_ising(shifted)
        bits = rng.integers(0, 2, size=4)
        assert ising.energy(bits_to_spins(bits)) == pytest.approx(shifted.energy(bits))
