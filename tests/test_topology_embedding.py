"""Tests for the Chimera topology and clique minor embedding."""

import networkx as nx
import pytest

from repro.annealing.embedding import (
    Embedding,
    embed_ising,
    find_clique_embedding,
    resolve_chain_breaks,
    unembed_sampleset,
)
from repro.annealing.topology import ChimeraCoordinates, chimera_graph
from repro.exceptions import ConfigurationError, EmbeddingError
from repro.qubo.generators import random_ising


class TestChimeraCoordinates:
    def test_qubit_count(self):
        assert ChimeraCoordinates(16, 16, 4).num_qubits == 2048
        assert ChimeraCoordinates(2, 2, 4).num_qubits == 32

    def test_linear_index_round_trip(self):
        coords = ChimeraCoordinates(3, 4, 4)
        for index in range(coords.num_qubits):
            assert coords.linear_index(*coords.coordinates(index)) == index

    def test_out_of_range(self):
        coords = ChimeraCoordinates(2, 2, 4)
        with pytest.raises(ConfigurationError):
            coords.linear_index(2, 0, 0, 0)
        with pytest.raises(ConfigurationError):
            coords.coordinates(100)

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            ChimeraCoordinates(0, 2)


class TestChimeraGraph:
    def test_node_and_edge_counts_c2(self):
        graph = chimera_graph(2, 2, 4)
        assert graph.number_of_nodes() == 32
        # Each of the 4 cells has 16 internal couplers; the two vertical and
        # two horizontal adjacent cell pairs contribute 4 couplers each.
        expected_edges = 4 * 16 + 2 * 4 + 2 * 4
        assert graph.number_of_edges() == expected_edges

    def test_2000q_size(self):
        graph = chimera_graph(16)
        assert graph.number_of_nodes() == 2048

    def test_degrees_bounded(self):
        graph = chimera_graph(3)
        assert max(dict(graph.degree).values()) <= 6

    def test_connected(self):
        assert nx.is_connected(chimera_graph(3))

    def test_bipartite_within_cell(self):
        graph = chimera_graph(1, 1, 4)
        coords = ChimeraCoordinates(1, 1, 4)
        vertical = [coords.linear_index(0, 0, 0, k) for k in range(4)]
        for qubit_a in vertical:
            for qubit_b in vertical:
                assert not graph.has_edge(qubit_a, qubit_b)


class TestCliqueEmbedding:
    @pytest.mark.parametrize("num_variables", [2, 4, 7, 8, 12, 16])
    def test_valid_embedding(self, num_variables):
        embedding = find_clique_embedding(num_variables)
        embedding.validate()
        assert embedding.num_logical_variables == num_variables

    @pytest.mark.parametrize("num_variables", [4, 9, 13])
    def test_all_pairs_connected(self, num_variables):
        embedding = find_clique_embedding(num_variables)
        for i in range(num_variables):
            for j in range(i + 1, num_variables):
                assert embedding.coupler_between(i, j), f"no coupler between {i} and {j}"

    def test_chain_length(self):
        embedding = find_clique_embedding(12)  # needs a 3x3 lattice
        assert embedding.max_chain_length == 4

    def test_too_small_lattice_rejected(self):
        with pytest.raises(EmbeddingError):
            find_clique_embedding(20, lattice_size=2)

    def test_invalid_size(self):
        with pytest.raises(EmbeddingError):
            find_clique_embedding(0)

    def test_validate_catches_overlap(self):
        graph = chimera_graph(1)
        bad = Embedding(chains=((0, 4), (0, 5)), target_graph=graph)
        with pytest.raises(EmbeddingError):
            bad.validate()

    def test_validate_catches_disconnected_chain(self):
        graph = chimera_graph(1)
        # Qubits 0 and 1 are both on the vertical shore of the same cell: no edge.
        bad = Embedding(chains=((0, 1),), target_graph=graph)
        with pytest.raises(EmbeddingError):
            bad.validate()


class TestEmbedIsing:
    def test_field_shares_sum_to_logical_field(self, rng):
        ising = random_ising(6, rng=rng)
        embedding = find_clique_embedding(6)
        fields, _, _ = embed_ising(ising, embedding)
        for logical, chain in enumerate(embedding.chains):
            total = sum(fields[qubit] for qubit in chain)
            assert total == pytest.approx(ising.fields[logical])

    def test_coupling_shares_sum_to_logical_coupling(self, rng):
        ising = random_ising(5, rng=rng)
        embedding = find_clique_embedding(5)
        _, couplings, strength = embed_ising(ising, embedding)
        for i in range(5):
            for j in range(i + 1, 5):
                available = embedding.coupler_between(i, j)
                total = sum(
                    couplings.get((min(a, b), max(a, b)), 0.0) for a, b in available
                )
                assert total == pytest.approx(ising.couplings[i, j])

    def test_chain_strength_default(self, rng):
        ising = random_ising(4, rng=rng)
        embedding = find_clique_embedding(4)
        _, _, strength = embed_ising(ising, embedding)
        assert strength == pytest.approx(1.5 * ising.max_abs_coefficient())

    def test_size_mismatch(self, rng):
        ising = random_ising(4, rng=rng)
        with pytest.raises(EmbeddingError):
            embed_ising(ising, find_clique_embedding(5))

    def test_invalid_chain_strength(self, rng):
        ising = random_ising(4, rng=rng)
        with pytest.raises(EmbeddingError):
            embed_ising(ising, find_clique_embedding(4), chain_strength=-1.0)


class TestUnembedding:
    def test_resolve_chain_breaks_majority(self):
        spins = {0: 1, 1: 1, 2: -1}
        value, broken = resolve_chain_breaks(spins, (0, 1, 2))
        assert value == 1
        assert broken

    def test_resolve_unbroken(self):
        value, broken = resolve_chain_breaks({0: -1, 1: -1}, (0, 1))
        assert value == -1
        assert not broken

    def test_resolve_tie_random_but_valid(self):
        value, broken = resolve_chain_breaks({0: 1, 1: -1}, (0, 1), rng=0)
        assert value in (-1, 1)
        assert broken

    def test_unembed_energies_use_logical_model(self, rng):
        ising = random_ising(3, rng=rng)
        embedding = find_clique_embedding(3)
        spins = {qubit: 1 for chain in embedding.chains for qubit in chain}
        sampleset = unembed_sampleset([spins], embedding, ising)
        assert sampleset.num_reads == 1
        assert sampleset.first.energy == pytest.approx(ising.energy([1, 1, 1]))
        assert sampleset.first.chain_break_fraction == 0.0

    def test_unembed_counts_broken_chains(self, rng):
        ising = random_ising(2, rng=rng)
        embedding = find_clique_embedding(2)
        spins = {qubit: 1 for chain in embedding.chains for qubit in chain}
        first_chain = embedding.chains[0]
        spins[first_chain[0]] = -1
        if len(first_chain) > 2:
            sampleset = unembed_sampleset([spins], embedding, ising)
            assert sampleset.first.chain_break_fraction == pytest.approx(0.5)
