"""Tests for repro.annealing.sampleset."""

import numpy as np
import pytest

from repro.annealing.sampleset import SampleRecord, SampleSet
from repro.exceptions import DimensionError


def _record(bits, energy, count=1, breaks=0.0):
    return SampleRecord(
        assignment=np.asarray(bits, dtype=np.int8),
        energy=energy,
        num_occurrences=count,
        chain_break_fraction=breaks,
    )


class TestSampleRecord:
    def test_key(self):
        assert _record([1, 0, 1], -1.0).key == (1, 0, 1)

    def test_invalid_occurrences(self):
        with pytest.raises(ValueError):
            _record([1], 0.0, count=0)

    def test_invalid_chain_breaks(self):
        with pytest.raises(ValueError):
            _record([1], 0.0, breaks=1.5)


class TestSampleSetAggregation:
    def test_duplicates_merged(self):
        sampleset = SampleSet([_record([0, 1], -1.0), _record([0, 1], -1.0, count=2)])
        assert len(sampleset) == 1
        assert sampleset.num_reads == 3

    def test_sorted_by_energy(self):
        sampleset = SampleSet([_record([1, 1], 2.0), _record([0, 0], -3.0), _record([1, 0], 0.0)])
        energies = sampleset.energies()
        assert list(energies) == sorted(energies)
        assert sampleset.first.energy == -3.0

    def test_chain_break_weighted_merge(self):
        sampleset = SampleSet(
            [_record([1], 0.0, count=1, breaks=0.0), _record([1], 0.0, count=3, breaks=1.0)]
        )
        assert sampleset.records[0].chain_break_fraction == pytest.approx(0.75)

    def test_mixed_lengths_rejected(self):
        with pytest.raises(DimensionError):
            SampleSet([_record([1], 0.0), _record([1, 0], 0.0)])

    def test_from_arrays(self):
        sampleset = SampleSet.from_arrays(np.array([[0, 1], [0, 1], [1, 1]]), [1.0, 1.0, 2.0])
        assert len(sampleset) == 2
        assert sampleset.num_reads == 3

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(DimensionError):
            SampleSet.from_arrays(np.array([[0, 1]]), [1.0, 2.0])


class TestSampleSetStatistics:
    @pytest.fixture
    def sampleset(self):
        return SampleSet(
            [
                _record([0, 0], -5.0, count=2),
                _record([0, 1], -3.0, count=3),
                _record([1, 1], 1.0, count=5),
            ],
            metadata={"schedule_duration_us": 2.0},
        )

    def test_num_reads_and_variables(self, sampleset):
        assert sampleset.num_reads == 10
        assert sampleset.num_variables == 2

    def test_lowest_energy(self, sampleset):
        assert sampleset.lowest_energy() == -5.0

    def test_expanded_energies(self, sampleset):
        expanded = sampleset.energies(expanded=True)
        assert expanded.size == 10
        assert np.sum(expanded == -5.0) == 2

    def test_success_probability(self, sampleset):
        assert sampleset.success_probability(-5.0) == pytest.approx(0.2)
        assert sampleset.success_probability(-10.0) == 0.0

    def test_expectation(self, sampleset):
        expected = (2 * -5.0 + 3 * -3.0 + 5 * 1.0) / 10
        assert sampleset.expectation_energy() == pytest.approx(expected)

    def test_truncate(self, sampleset):
        truncated = sampleset.truncate(1)
        assert len(truncated) == 1
        assert truncated.first.energy == -5.0

    def test_merge(self, sampleset):
        other = SampleSet([_record([0, 0], -5.0)], metadata={"extra": 1})
        merged = sampleset.merge(other)
        assert merged.num_reads == 11
        assert merged.metadata["schedule_duration_us"] == 2.0
        assert merged.metadata["extra"] == 1

    def test_empty_set_behaviour(self):
        empty = SampleSet([])
        assert len(empty) == 0
        assert empty.num_reads == 0
        assert empty.success_probability(0.0) == 0.0
        with pytest.raises(IndexError):
            _ = empty.first
        with pytest.raises(ValueError):
            empty.expectation_energy()

    def test_iteration_and_indexing(self, sampleset):
        records = list(sampleset)
        assert records[0] is sampleset[0]
        assert len(records) == 3
