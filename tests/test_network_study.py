"""Tests for the city-scale network capacity study and its serving rewiring.

The contracts under test: the study's reactive placement beats the static
equal split on a flash crowd while the oracle bounds both; the sweep is
bitwise-identical serial vs sharded and replays from the shard cache with
restart-stable fingerprints; the aggregate counter sampler scales without
materialising users; and the topology-aware serving paths reproduce the
legacy single-cluster behaviour exactly where the layouts coincide.
"""

import dataclasses

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    NetworkStudyConfig,
    format_network_table,
    run_network_study,
)
from repro.experiments.network_study import network_study_tasks
from repro.network import (
    AggregationConfig,
    NetworkTopology,
    cell_window_counts,
    materialize_cell_jobs,
)
from repro.parallel import ResultCache
from repro.parallel.cache import task_fingerprint
from repro.serving import (
    AutoscaleConfig,
    AutoscaleController,
    build_scenario,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.wireless.mimo import MIMOConfig


@pytest.fixture(scope="module")
def quick_result():
    return run_network_study(NetworkStudyConfig.quick())


def _row(result, placement):
    return next(row for row in result.rows if row.placement == placement)


# ---------------------------------------------------------------------- #
# Study outcomes
# ---------------------------------------------------------------------- #


class TestNetworkStudy:
    def test_one_row_per_placement_in_order(self, quick_result):
        config = NetworkStudyConfig.quick()
        assert [row.placement for row in quick_result.rows] == list(config.placements)
        for row in quick_result.rows:
            assert row.num_cells == config.num_cells
            assert row.simulated_users == config.simulated_users
            assert row.jobs_offered > 0
            assert 0.0 <= row.miss_rate <= 1.0

    def test_reactive_beats_static_and_oracle_bounds_both(self, quick_result):
        static = _row(quick_result, "static")
        reactive = _row(quick_result, "reactive")
        oracle = _row(quick_result, "oracle")
        assert static.miss_rate > 0  # the flash crowd overwhelms equal split
        assert reactive.miss_rate <= 0.5 * static.miss_rate
        assert oracle.miss_rate <= reactive.miss_rate

    def test_reactive_detects_the_flash_crowd(self, quick_result):
        reactive = _row(quick_result, "reactive")
        assert reactive.hotspot_raises >= 1
        assert reactive.detection_latency_windows >= 1
        assert reactive.false_positive_raises == 0
        assert reactive.capacity_moved > 0
        assert reactive.detail_jobs > 0

    def test_static_and_oracle_never_move_capacity(self, quick_result):
        assert _row(quick_result, "static").capacity_moved == 0.0
        assert _row(quick_result, "oracle").capacity_moved == 0.0

    def test_format_table(self, quick_result):
        table = format_network_table(quick_result)
        assert "static vs reactive vs oracle" in table
        assert "grid topology" in table
        for row in quick_result.rows:
            assert row.placement in table

    def test_reproducible(self, quick_result):
        again = run_network_study(NetworkStudyConfig.quick())
        assert again.rows == quick_result.rows

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkStudyConfig(topology_kind="torus")
        with pytest.raises(ConfigurationError):
            NetworkStudyConfig(placements=("static", "mystery"))
        with pytest.raises(ConfigurationError):
            NetworkStudyConfig(scenario="rush-hour")
        with pytest.raises(ConfigurationError):
            NetworkStudyConfig(utilization=0.0)


class TestNetworkStudyDeterminism:
    def test_sharded_run_is_bitwise_identical_to_serial(self, quick_result):
        config = NetworkStudyConfig.quick()
        parallel = run_network_study(config, workers=2)
        assert parallel.rows == quick_result.rows
        assert format_network_table(parallel) == format_network_table(quick_result)

    def test_task_fingerprints_are_restart_stable(self):
        config = NetworkStudyConfig.quick()
        first = [
            task_fingerprint(task.fn, task.kwargs, key=task.key)
            for task in network_study_tasks(config)
        ]
        second = [
            task_fingerprint(task.fn, task.kwargs, key=task.key)
            for task in network_study_tasks(config)
        ]
        assert first == second
        assert len(set(first)) == len(first)

    def test_cached_rerun_is_all_hits_and_identical(self, tmp_path, quick_result):
        config = NetworkStudyConfig.quick()
        cache = ResultCache(tmp_path / "cache")
        num_shards = len(network_study_tasks(config))

        cold = run_network_study(config, cache=cache)
        assert cache.misses == num_shards and cache.hits == 0

        cache.reset_counters()
        warm = run_network_study(config, cache=cache)
        assert cache.hits == num_shards and cache.misses == 0
        assert warm.rows == cold.rows == quick_result.rows

    def test_placement_restriction_reuses_the_shared_arm(self, tmp_path):
        config = NetworkStudyConfig.quick()
        cache = ResultCache(tmp_path / "cache")
        run_network_study(config, cache=cache)

        cache.reset_counters()
        only_static = dataclasses.replace(config, placements=("static",))
        narrowed = run_network_study(only_static, cache=cache)
        assert cache.hits == 1 and cache.misses == 0
        assert narrowed.rows[0].placement == "static"


# ---------------------------------------------------------------------- #
# Aggregate traffic sampling
# ---------------------------------------------------------------------- #


class TestAggregation:
    def test_counter_matrix_shape_and_determinism(self):
        aggregation = AggregationConfig(users_per_cell=1000, window_us=500.0)
        scenario = build_scenario("flash-crowd", num_cells=9, horizon_us=10_000.0)
        first = cell_window_counts(scenario, aggregation, rng=3)
        second = cell_window_counts(scenario, aggregation, rng=3)
        assert first.shape == (20, 9)
        assert first.dtype == np.int64
        assert np.array_equal(first, second)

    def test_city_scale_population_never_materialises_users(self):
        # A million-user city is sampled as counters: memory is the counter
        # matrix, not the population.
        aggregation = AggregationConfig(users_per_cell=10_000, window_us=500.0)
        scenario = build_scenario("steady", num_cells=100, horizon_us=10_000.0)
        counts = cell_window_counts(scenario, aggregation, rng=0)
        assert counts.shape == (20, 100)
        assert counts.nbytes == 20 * 100 * 8

    def test_materialised_cells_are_independent(self):
        aggregation = AggregationConfig(users_per_cell=200, symbol_period_us=150.0)
        scenario = build_scenario("flash-crowd", num_cells=9, horizon_us=10_000.0)
        configs = [MIMOConfig(2, "QPSK")]
        alone = materialize_cell_jobs(
            scenario, [4], aggregation, configs, max_jobs_per_cell=30
        )
        with_neighbour = materialize_cell_jobs(
            scenario, [3, 4], aggregation, configs, max_jobs_per_cell=30
        )
        arrivals_alone = [job.channel_use.arrival_time_us for job in alone]
        arrivals_paired = [
            job.channel_use.arrival_time_us
            for job in with_neighbour
            if job.cell_id == 4
        ]
        assert arrivals_alone == arrivals_paired
        assert all(job.user_id == job.cell_id for job in with_neighbour)

    def test_materialisation_validates_inputs(self):
        aggregation = AggregationConfig()
        scenario = build_scenario("steady", num_cells=4, horizon_us=5_000.0)
        configs = [MIMOConfig(2, "QPSK")]
        with pytest.raises(ConfigurationError):
            materialize_cell_jobs(scenario, [], aggregation, configs)
        with pytest.raises(ConfigurationError):
            materialize_cell_jobs(scenario, [9], aggregation, configs)
        with pytest.raises(ConfigurationError):
            materialize_cell_jobs(scenario, [1, 1], aggregation, configs)


# ---------------------------------------------------------------------- #
# Bitwise compatibility of the topology-aware serving paths
# ---------------------------------------------------------------------- #


class TestLegacyEquivalence:
    def test_line_topology_reproduces_legacy_scenario_jobs_bitwise(self):
        # On a 2-cell line the neighbour set equals "all other cells", so the
        # topology-aware interference path must reproduce the legacy
        # all-others coupling bit for bit.
        profiles = uniform_cell_profiles(
            num_cells=2,
            users_per_cell=2,
            configs=[MIMOConfig(2, "QPSK")],
            symbol_period_us=900.0,
        )
        legacy = generate_serving_jobs(
            profiles, 6, rng=7, scenario=build_scenario("flash-crowd", 2)
        )
        topo = generate_serving_jobs(
            profiles,
            6,
            rng=7,
            scenario=build_scenario(
                "flash-crowd", 2, topology=NetworkTopology.line(2)
            ),
        )
        assert len(legacy) == len(topo)
        for left, right in zip(legacy, topo):
            assert left.channel_use.arrival_time_us == right.channel_use.arrival_time_us
            assert np.array_equal(
                left.channel_use.transmission.instance.received,
                right.channel_use.transmission.instance.received,
            )

    @pytest.mark.parametrize("name", ["hotspot-drift", "cell-outage", "busy-day"])
    def test_line_topology_intensity_field_matches_legacy(self, name):
        legacy = build_scenario(name, 5, horizon_us=10_000.0)
        topo = build_scenario(
            name, 5, horizon_us=10_000.0, topology=NetworkTopology.line(5)
        )
        for cell in range(5):
            for t_us in np.linspace(0.0, 9_999.0, 40):
                assert topo.intensity(cell, float(t_us)) == legacy.intensity(
                    cell, float(t_us)
                )

    def test_scenario_rejects_mismatched_topology(self):
        with pytest.raises(ConfigurationError):
            build_scenario("steady", 4, topology=NetworkTopology.line(5))


# ---------------------------------------------------------------------- #
# The autoscaler's per-cell hotspot signal
# ---------------------------------------------------------------------- #


class TestCellHotspotSignal:
    def _pool(self):
        from repro.serving import AnnealerServingBackend, ElasticBackendPool

        return ElasticBackendPool(
            annealer=AnnealerServingBackend(num_reads=10),
            max_annealer_workers=3,
            initial_annealer_workers=1,
        )

    def test_scales_up_on_single_cell_hotspot(self):
        pool = self._pool()
        controller = AutoscaleController(
            AutoscaleConfig(
                scale_up_queue_per_worker=100.0, hotspot_queue_per_cell=2.0
            )
        )
        controller.begin(0.0, pool)
        event = controller.step(
            10.0, [], pool, pressured_count=0, cell_queue_depths={4: 5}
        )
        assert event is not None
        assert event.action == "scale-up" and event.reason == "cell-hotspot"

    def test_signal_inert_without_threshold_or_depths(self):
        pool = self._pool()
        controller = AutoscaleController(
            AutoscaleConfig(scale_up_queue_per_worker=100.0)
        )
        controller.begin(0.0, pool)
        assert (
            controller.step(10.0, [], pool, 0, cell_queue_depths={4: 500}) is None
        )
        with pytest.raises(ConfigurationError):
            AutoscaleConfig(hotspot_queue_per_cell=0.0)
