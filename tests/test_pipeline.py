"""Tests for repro.hybrid.pipeline (the Figure 2 pipeline simulator)."""

import pytest

from repro.exceptions import PipelineError
from repro.hybrid.pipeline import HybridPipelineSimulator
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import TrafficGenerator


@pytest.fixture
def channel_uses():
    config = MIMOConfig(num_users=2, modulation="QPSK")
    generator = TrafficGenerator(config, symbol_period_us=50.0, turnaround_budget_us=10_000.0)
    return generator.generate(6, rng=3)


@pytest.fixture
def simulator(fast_sampler):
    return HybridPipelineSimulator(
        sampler=fast_sampler, num_reads=5, evaluate_solutions=False
    )


class TestPipelineSimulator:
    def test_report_structure(self, simulator, channel_uses):
        report = simulator.run(channel_uses, pipelined=True, rng=1)
        assert report.num_jobs == 6
        assert report.pipelined
        assert report.mean_latency_us > 0
        assert report.p95_latency_us >= report.mean_latency_us * 0.5
        assert 0 <= report.quantum_utilization <= 1.5

    def test_jobs_preserve_order_and_indices(self, simulator, channel_uses):
        report = simulator.run(channel_uses, pipelined=True, rng=1)
        assert [job.index for job in report.jobs] == list(range(6))

    def test_stage_ordering_within_job(self, simulator, channel_uses):
        report = simulator.run(channel_uses, pipelined=True, rng=1)
        for job in report.jobs:
            assert job.classical.finish_us >= job.classical.start_us
            assert job.quantum.start_us >= job.classical.finish_us
            assert job.completion_us == job.quantum.finish_us
            assert job.latency_us == pytest.approx(job.completion_us - job.arrival_us)

    def test_pipelined_throughput_at_least_serial(self, simulator, channel_uses):
        pipelined = simulator.run(channel_uses, pipelined=True, rng=1)
        serial = simulator.run(channel_uses, pipelined=False, rng=1)
        assert pipelined.throughput_jobs_per_ms >= serial.throughput_jobs_per_ms - 1e-9
        assert pipelined.mean_latency_us <= serial.mean_latency_us + 1e-9

    def test_serial_stages_never_overlap(self, simulator, channel_uses):
        report = simulator.run(channel_uses, pipelined=False, rng=1)
        jobs = report.jobs
        for earlier, later in zip(jobs, jobs[1:]):
            assert later.classical.start_us >= earlier.quantum.finish_us - 1e-9

    def test_pipelined_classical_can_overlap_quantum(self, fast_sampler):
        # With a congested quantum stage the classical stage of job N+1 starts
        # before the quantum stage of job N finishes.
        config = MIMOConfig(num_users=2, modulation="QPSK")
        uses = TrafficGenerator(config, symbol_period_us=1.0).generate(4, rng=5)
        simulator = HybridPipelineSimulator(
            sampler=fast_sampler, num_reads=50, evaluate_solutions=False
        )
        report = simulator.run(uses, pipelined=True, rng=2)
        overlaps = [
            later.classical.start_us < earlier.quantum.finish_us
            for earlier, later in zip(report.jobs, report.jobs[1:])
        ]
        assert any(overlaps)

    def test_deadline_accounting(self, fast_sampler):
        config = MIMOConfig(num_users=2, modulation="QPSK")
        uses = TrafficGenerator(config, symbol_period_us=50.0, turnaround_budget_us=1.0).generate(
            3, rng=7
        )
        simulator = HybridPipelineSimulator(
            sampler=fast_sampler, num_reads=20, evaluate_solutions=False
        )
        report = simulator.run(uses, pipelined=True, rng=3)
        assert report.deadline_miss_rate == pytest.approx(1.0)

    def test_solution_evaluation_reports_optimum_rate(self, fast_sampler, channel_uses):
        simulator = HybridPipelineSimulator(
            sampler=fast_sampler, num_reads=30, evaluate_solutions=True
        )
        report = simulator.run(channel_uses[:3], pipelined=True, rng=4)
        assert report.optimum_rate is not None
        assert 0.0 <= report.optimum_rate <= 1.0

    def test_qpu_overheads_increase_quantum_time(self, fast_sampler, channel_uses):
        lean = HybridPipelineSimulator(
            sampler=fast_sampler,
            num_reads=10,
            include_qpu_overheads=False,
            evaluate_solutions=False,
        ).run(channel_uses, rng=5)
        loaded = HybridPipelineSimulator(
            sampler=fast_sampler, num_reads=10, include_qpu_overheads=True, evaluate_solutions=False
        ).run(channel_uses, rng=5)
        assert loaded.mean_latency_us > lean.mean_latency_us

    def test_empty_stream_rejected(self, simulator):
        with pytest.raises(PipelineError):
            simulator.run([], rng=1)

    @pytest.mark.parametrize("kwargs", [{"switch_s": 0.0}, {"num_reads": 0}])
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(PipelineError):
            HybridPipelineSimulator(**kwargs)
