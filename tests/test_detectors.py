"""Tests for the signal-domain MIMO detectors (ZF, MMSE, sphere decoders)."""

import numpy as np
import pytest

from repro.classical.mmse import MMSEDetector
from repro.classical.sphere_decoder import FixedComplexitySphereDecoder, KBestSphereDecoder
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.exceptions import ConfigurationError, SolverError
from repro.wireless.channel import IdentityChannel, RayleighFadingChannel
from repro.wireless.mimo import (
    MIMOConfig,
    MIMOInstance,
    maximum_likelihood_detect,
    simulate_transmission,
)


def _noiseless_transmission(users=3, modulation="16-QAM", seed=5, receive=None):
    config = MIMOConfig(num_users=users, modulation=modulation, num_receive_antennas=receive)
    return simulate_transmission(config, rng=seed)


class TestZeroForcing:
    def test_exact_on_identity_channel(self):
        transmission = simulate_transmission(
            MIMOConfig(num_users=4, modulation="64-QAM"), IdentityChannel(), rng=1
        )
        detected = ZeroForcingDetector().detect(transmission.instance)
        assert np.allclose(detected, transmission.transmitted_symbols)

    def test_exact_on_noiseless_well_conditioned_channel(self):
        transmission = simulate_transmission(
            MIMOConfig(num_users=2, modulation="QPSK", num_receive_antennas=8),
            RayleighFadingChannel(),
            rng=2,
        )
        detected = ZeroForcingDetector().detect(transmission.instance)
        assert np.allclose(detected, transmission.transmitted_symbols)

    def test_outputs_constellation_points(self):
        transmission = _noiseless_transmission()
        detected = ZeroForcingDetector().detect(transmission.instance)
        modulation = transmission.instance.modulation_scheme
        for symbol in detected:
            modulation.symbol_index(symbol)

    def test_underdetermined_rejected(self, rng):
        instance = MIMOInstance(
            channel_matrix=rng.standard_normal((2, 4)) + 0j,
            received=rng.standard_normal(2) + 0j,
            modulation="QPSK",
        )
        with pytest.raises(SolverError):
            ZeroForcingDetector().detect(instance)

    def test_soft_estimate_close_to_symbols_noiseless(self):
        transmission = _noiseless_transmission(users=2, modulation="QPSK")
        soft = ZeroForcingDetector().soft_estimate(transmission.instance)
        assert np.allclose(soft, transmission.transmitted_symbols, atol=1e-6)


class TestMMSE:
    def test_matches_zero_forcing_without_noise(self):
        transmission = _noiseless_transmission(users=3, modulation="16-QAM", seed=8)
        zf = ZeroForcingDetector().detect(transmission.instance)
        mmse = MMSEDetector().detect(transmission.instance)
        assert np.allclose(zf, mmse)

    def test_noise_variance_override(self):
        transmission = _noiseless_transmission(users=2, modulation="QPSK")
        detected = MMSEDetector(noise_variance=0.5).detect(
            transmission.instance, noise_variance=0.0
        )
        assert np.allclose(detected, transmission.transmitted_symbols)

    def test_negative_variance_rejected(self):
        with pytest.raises(SolverError):
            MMSEDetector(noise_variance=-0.1)

    def test_detects_reasonably_under_noise(self):
        config = MIMOConfig(num_users=2, modulation="QPSK", num_receive_antennas=8, snr_db=15.0)
        transmission = simulate_transmission(config, RayleighFadingChannel(), rng=4)
        detected = MMSEDetector(noise_variance=transmission.noise_variance).detect(
            transmission.instance
        )
        errors = np.mean(np.abs(detected - transmission.transmitted_symbols) > 1e-9)
        assert errors <= 0.5


class TestKBest:
    def test_full_width_matches_ml(self):
        transmission = _noiseless_transmission(users=2, modulation="16-QAM", seed=10)
        ml = maximum_likelihood_detect(transmission.instance)
        detected = KBestSphereDecoder(k_best=256).detect(transmission.instance)
        assert transmission.instance.objective(detected) == pytest.approx(
            ml.objective_value, abs=1e-9
        )

    def test_moderate_width_finds_noiseless_solution(self):
        transmission = _noiseless_transmission(users=3, modulation="QPSK", seed=11)
        detected = KBestSphereDecoder(k_best=8).detect(transmission.instance)
        assert transmission.instance.objective(detected) == pytest.approx(0.0, abs=1e-9)

    def test_objective_improves_with_k(self):
        transmission = _noiseless_transmission(users=3, modulation="16-QAM", seed=12)
        narrow = KBestSphereDecoder(k_best=1).detect(transmission.instance)
        wide = KBestSphereDecoder(k_best=32).detect(transmission.instance)
        assert (
            transmission.instance.objective(wide)
            <= transmission.instance.objective(narrow) + 1e-9
        )

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            KBestSphereDecoder(k_best=0)

    def test_underdetermined_rejected(self, rng):
        instance = MIMOInstance(
            channel_matrix=rng.standard_normal((1, 3)) + 0j,
            received=rng.standard_normal(1) + 0j,
            modulation="BPSK",
        )
        with pytest.raises(SolverError):
            KBestSphereDecoder().detect(instance)


class TestFCSD:
    def test_full_expansion_matches_ml(self):
        transmission = _noiseless_transmission(users=2, modulation="QPSK", seed=13)
        ml = maximum_likelihood_detect(transmission.instance)
        detected = FixedComplexitySphereDecoder(full_expansion_levels=2).detect(
            transmission.instance
        )
        assert transmission.instance.objective(detected) == pytest.approx(
            ml.objective_value, abs=1e-9
        )

    def test_sic_only_runs(self):
        transmission = _noiseless_transmission(users=3, modulation="16-QAM", seed=14)
        detected = FixedComplexitySphereDecoder(full_expansion_levels=0).detect(
            transmission.instance
        )
        assert detected.size == 3

    def test_candidate_count(self):
        transmission = _noiseless_transmission(users=3, modulation="16-QAM", seed=15)
        decoder = FixedComplexitySphereDecoder(full_expansion_levels=2)
        assert decoder.candidate_count(transmission.instance) == 256

    def test_negative_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedComplexitySphereDecoder(full_expansion_levels=-1)

    def test_more_expansion_never_hurts(self):
        transmission = _noiseless_transmission(users=3, modulation="16-QAM", seed=16)
        shallow = FixedComplexitySphereDecoder(full_expansion_levels=0).detect(
            transmission.instance
        )
        deep = FixedComplexitySphereDecoder(full_expansion_levels=2).detect(transmission.instance)
        assert (
            transmission.instance.objective(deep)
            <= transmission.instance.objective(shallow) + 1e-9
        )
