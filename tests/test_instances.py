"""Tests for repro.experiments.instances."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.instances import (
    paper_figure6_configurations,
    synthesize_instance,
    synthesize_instances,
    users_for_variables,
    variables_for,
)
from repro.qubo.energy import brute_force_minimum


class TestSizingHelpers:
    @pytest.mark.parametrize(
        "users,modulation,expected",
        [(8, "BPSK", 8), (8, "QPSK", 16), (8, "16-QAM", 32), (8, "64-QAM", 48)],
    )
    def test_variables_for(self, users, modulation, expected):
        assert variables_for(users, modulation) == expected

    def test_users_for_variables(self):
        assert users_for_variables(36, "QPSK") == 18
        assert users_for_variables(36, "64-QAM") == 6

    def test_users_for_variables_inexact(self):
        with pytest.raises(ConfigurationError):
            users_for_variables(35, "16-QAM")

    def test_figure6_configurations(self):
        configurations = dict(
            (modulation, users) for users, modulation in paper_figure6_configurations(36)
        )
        assert configurations == {"BPSK": 36, "QPSK": 18, "16-QAM": 9, "64-QAM": 6}

    def test_figure6_configurations_partial(self):
        # 20 variables cannot be built from 64-QAM (6 bits/symbol).
        modulations = [modulation for _, modulation in paper_figure6_configurations(20)]
        assert "64-QAM" not in modulations


class TestSynthesizeInstance:
    def test_ground_state_is_transmitted_payload(self):
        bundle = synthesize_instance(3, "QPSK", seed=5)
        assert bundle.ground_energy == pytest.approx(-bundle.encoding.constant)
        assert bundle.encoding.qubo.energy(bundle.ground_state) == pytest.approx(
            bundle.ground_energy
        )

    def test_exhaustive_verification_agrees(self):
        bundle = synthesize_instance(2, "16-QAM", seed=3, verify_exhaustively=True)
        assert bundle.verified_exhaustively
        exact = brute_force_minimum(bundle.encoding.qubo)
        assert exact.energy == pytest.approx(bundle.ground_energy)

    def test_deterministic_by_seed(self):
        first = synthesize_instance(4, "16-QAM", seed=9)
        second = synthesize_instance(4, "16-QAM", seed=9)
        assert np.allclose(
            first.transmission.instance.channel_matrix,
            second.transmission.instance.channel_matrix,
        )
        assert np.array_equal(first.ground_state, second.ground_state)

    def test_different_seeds_differ(self):
        first = synthesize_instance(4, "16-QAM", seed=1)
        second = synthesize_instance(4, "16-QAM", seed=2)
        assert not np.allclose(
            first.transmission.instance.channel_matrix,
            second.transmission.instance.channel_matrix,
        )

    def test_describe(self):
        bundle = synthesize_instance(2, "64-QAM", seed=0)
        description = bundle.describe()
        assert "64-QAM" in description
        assert "12 variables" in description

    def test_properties(self):
        bundle = synthesize_instance(5, "QPSK", seed=0)
        assert bundle.num_users == 5
        assert bundle.num_variables == 10
        assert bundle.modulation == "QPSK"


class TestSynthesizeMany:
    def test_count_and_independence(self):
        bundles = synthesize_instances(3, 2, "QPSK", base_seed=4)
        assert len(bundles) == 3
        assert not np.allclose(
            bundles[0].transmission.instance.channel_matrix,
            bundles[1].transmission.instance.channel_matrix,
        )

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            synthesize_instances(0, 2, "QPSK")
