"""Tests for repro.qubo.energy."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.qubo.energy import (
    brute_force_minimum,
    energy_landscape,
    enumerate_assignments,
    ising_energy,
    qubo_energy,
)
from repro.qubo.generators import random_qubo
from repro.qubo.ising import qubo_to_ising, bits_to_spins
from repro.qubo.model import QUBOModel


class TestEnumerateAssignments:
    def test_counts(self):
        blocks = list(enumerate_assignments(5))
        total = sum(block.shape[0] for block in blocks)
        assert total == 32

    def test_all_unique(self):
        assignments = np.concatenate(list(enumerate_assignments(4)))
        assert len({tuple(row) for row in assignments}) == 16

    def test_blocking(self):
        blocks = list(enumerate_assignments(6, block_bits=2))
        assert all(block.shape[0] <= 4 for block in blocks)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_assignments(-1))


class TestBruteForce:
    def test_small_known_minimum(self, small_qubo):
        result = brute_force_minimum(small_qubo)
        assert result.energy == pytest.approx(-2.0)
        assert np.array_equal(result.assignment, [1, 0])
        assert result.evaluated == 4

    def test_planted_ground_state_found(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        result = brute_force_minimum(qubo)
        assert np.array_equal(result.assignment, planted)

    def test_degeneracy_counted(self):
        # Two decoupled variables with zero coefficients: all 4 states tie.
        result = brute_force_minimum(QUBOModel.empty(2))
        assert result.ground_state_count == 4

    def test_guard(self):
        with pytest.raises(ConfigurationError):
            brute_force_minimum(QUBOModel.empty(30))

    def test_zero_variables(self):
        result = brute_force_minimum(QUBOModel.empty(0))
        assert result.energy == 0.0
        assert result.evaluated == 1

    def test_offset_included(self):
        model = QUBOModel(coefficients=np.array([[1.0]]), offset=-4.0)
        assert brute_force_minimum(model).energy == pytest.approx(-4.0)

    def test_matches_exhaustive_scan(self, rng):
        qubo = random_qubo(10, rng=rng)
        result = brute_force_minimum(qubo)
        assignments, energies = energy_landscape(qubo)
        assert result.energy == pytest.approx(energies.min())


class TestEnergyLandscape:
    def test_shapes(self, random_qubo_8):
        assignments, energies = energy_landscape(random_qubo_8)
        assert assignments.shape == (256, 8)
        assert energies.shape == (256,)

    def test_guard(self):
        with pytest.raises(ConfigurationError):
            energy_landscape(QUBOModel.empty(25))


class TestWrappers:
    def test_qubo_energy_wrapper(self, small_qubo):
        assert qubo_energy(small_qubo, [1, 0]) == small_qubo.energy([1, 0])

    def test_ising_energy_wrapper(self, small_qubo, rng):
        ising = qubo_to_ising(small_qubo)
        bits = rng.integers(0, 2, size=2)
        assert ising_energy(ising, bits_to_spins(bits)) == pytest.approx(small_qubo.energy(bits))
