"""Tests for repro.classical.greedy (the paper's GS module)."""

import numpy as np
import pytest

from repro.classical.greedy import GreedySearchSolver, greedy_field_scores, greedy_search
from repro.exceptions import ConfigurationError
from repro.metrics.quality import delta_e_percent
from repro.qubo.energy import brute_force_minimum
from repro.qubo.generators import planted_solution_qubo, random_qubo
from repro.qubo.ising import qubo_to_ising
from repro.qubo.model import QUBOModel


class TestFieldScores:
    def test_scores_equal_ising_fields(self, random_qubo_8):
        scores = greedy_field_scores(random_qubo_8)
        ising = qubo_to_ising(random_qubo_8)
        assert np.allclose(scores, ising.fields)


class TestGreedySearch:
    def test_solves_trivial_diagonal_model(self):
        model = QUBOModel(coefficients=np.diag([-1.0, 2.0, -3.0, 0.5]))
        assert np.array_equal(greedy_search(model), [1, 0, 1, 0])

    def test_finds_planted_field_dominated_model(self, rng):
        planted = rng.integers(0, 2, size=12)
        qubo = planted_solution_qubo(planted, coupling_strength=0.2, field_strength=1.0, rng=rng)
        assert np.array_equal(greedy_search(qubo), planted)

    @pytest.mark.parametrize("order", ["adaptive", "ascending", "descending"])
    def test_all_orders_return_valid_assignments(self, order, random_qubo_8):
        assignment = greedy_search(random_qubo_8, order=order)
        assert assignment.size == 8
        assert set(np.unique(assignment)).issubset({0, 1})

    def test_invalid_order(self, random_qubo_8):
        with pytest.raises(ConfigurationError):
            greedy_search(random_qubo_8, order="sideways")

    def test_deterministic(self, random_qubo_8):
        assert np.array_equal(greedy_search(random_qubo_8), greedy_search(random_qubo_8))

    def test_empty_model(self):
        assert greedy_search(QUBOModel.empty(0)).size == 0

    def test_quality_close_to_optimum_on_mimo_instances(self):
        # The paper observes GS candidates typically score dE_IS% <= ~10%; allow
        # slack but require the adaptive greedy to stay within 25% on average.
        from repro.experiments.instances import synthesize_instance

        qualities = []
        for seed in range(6):
            bundle = synthesize_instance(4, "16-QAM", seed=seed)
            assignment = greedy_search(bundle.encoding.qubo)
            qualities.append(
                delta_e_percent(bundle.encoding.qubo.energy(assignment), bundle.ground_energy)
            )
        assert np.mean(qualities) < 25.0

    def test_never_worse_than_all_zero_on_random_models(self, rng):
        for _ in range(5):
            qubo = random_qubo(10, rng=rng)
            assignment = greedy_search(qubo)
            assert qubo.energy(assignment) <= qubo.energy(np.zeros(10)) + 1e-9


class TestGreedySearchSolver:
    def test_solution_fields(self, random_qubo_8):
        solution = GreedySearchSolver().solve(random_qubo_8)
        assert solution.solver_name == "greedy-search"
        assert solution.energy == pytest.approx(random_qubo_8.energy(solution.assignment))
        assert solution.iterations == 8

    def test_modelled_time_linear_in_size(self):
        solver = GreedySearchSolver(modelled_time_per_variable_us=0.5)
        solution = solver.solve(QUBOModel.empty(10))
        assert solution.compute_time_us == pytest.approx(5.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            GreedySearchSolver(modelled_time_per_variable_us=-1.0)

    def test_matches_optimum_on_small_planted(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        solution = GreedySearchSolver().solve(qubo)
        exact = brute_force_minimum(qubo)
        assert solution.energy == pytest.approx(exact.energy)
        assert np.array_equal(solution.assignment, planted)

    def test_solve_many(self, random_qubo_8):
        solutions = GreedySearchSolver().solve_many(random_qubo_8, 3, rng=1)
        assert len(solutions) == 3
        # GS is deterministic, so all restarts agree.
        assert all(np.array_equal(s.assignment, solutions[0].assignment) for s in solutions)
