"""Tests for repro.hybrid.solver (the paper's GS + RA prototype)."""

import numpy as np
import pytest

from repro.classical.greedy import GreedySearchSolver
from repro.classical.zero_forcing import ZeroForcingDetector
from repro.exceptions import ConfigurationError
from repro.hybrid.solver import DetectorInitializer, HybridMIMODetector, HybridQuboSolver
from repro.qubo.generators import planted_solution_qubo


@pytest.fixture
def planted(rng):
    bits = rng.integers(0, 2, size=8)
    return planted_solution_qubo(bits, coupling_strength=0.5, field_strength=1.0, rng=rng), bits


class TestHybridQuboSolver:
    def test_result_structure(self, planted, fast_sampler):
        qubo, _ = planted
        solver = HybridQuboSolver(sampler=fast_sampler, num_reads=30)
        result = solver.solve(qubo, rng=1)
        assert result.sampleset.num_reads == 30
        assert result.initial_solution.solver_name == "greedy-search"
        assert result.best_energy == pytest.approx(qubo.energy(result.best_assignment))
        assert result.metadata["classical_solver"] == "greedy-search"

    def test_best_never_worse_than_initial(self, planted, fast_sampler):
        qubo, _ = planted
        result = HybridQuboSolver(sampler=fast_sampler, num_reads=30).solve(qubo, rng=2)
        assert result.best_energy <= result.initial_solution.energy + 1e-9

    def test_finds_planted_optimum(self, planted, fast_sampler):
        qubo, bits = planted
        solver = HybridQuboSolver(sampler=fast_sampler, switch_s=0.45, num_reads=60)
        result = solver.solve(qubo, rng=3)
        assert result.best_energy == pytest.approx(qubo.energy(bits))

    def test_quantum_time_accounting(self, planted, fast_sampler):
        qubo, _ = planted
        solver = HybridQuboSolver(
            sampler=fast_sampler, switch_s=0.5, pause_duration_us=1.0, num_reads=10
        )
        result = solver.solve(qubo, rng=4)
        expected_duration = 2 * (1 - 0.5) + 1.0
        assert result.quantum_time_us == pytest.approx(10 * expected_duration)
        assert result.total_time_us == result.classical_time_us + result.quantum_time_us

    def test_improved_over_initial_flag(self, planted, fast_sampler):
        qubo, bits = planted
        # Initialise from the exact optimum: RA cannot improve on it.
        class _Oracle(GreedySearchSolver):
            def solve(self, model, rng=None):
                solution = super().solve(model, rng)
                return type(solution)(
                    assignment=bits,
                    energy=model.energy(bits),
                    solver_name="oracle",
                )

        result = HybridQuboSolver(
            classical_solver=_Oracle(), sampler=fast_sampler, num_reads=20
        ).solve(qubo, rng=5)
        assert not result.improved_over_initial

    @pytest.mark.parametrize(
        "kwargs",
        [{"switch_s": 0.0}, {"switch_s": 1.0}, {"pause_duration_us": -1.0}, {"num_reads": 0}],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            HybridQuboSolver(**kwargs)


class TestDetectorInitializer:
    def test_zero_forcing_initializer(self, mimo_encoding_16qam, fast_sampler):
        transmission, encoding = mimo_encoding_16qam
        initializer = DetectorInitializer(ZeroForcingDetector(), encoding, modelled_time_us=3.0)
        solution = initializer.solve(encoding.qubo)
        assert solution.compute_time_us == 3.0
        assert solution.num_variables == encoding.num_variables
        assert "zero-forcing" in solution.solver_name

    def test_negative_time_rejected(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        with pytest.raises(ConfigurationError):
            DetectorInitializer(ZeroForcingDetector(), encoding, modelled_time_us=-1.0)


class TestHybridMIMODetector:
    def test_end_to_end_detection_recovers_payload(self, mimo_encoding_16qam, fast_sampler):
        transmission, _ = mimo_encoding_16qam
        detector = HybridMIMODetector(sampler=fast_sampler, switch_s=0.45, num_reads=60)
        result, details = detector.detect_with_details(transmission.instance, rng=6)
        assert result.algorithm == "hybrid-gs-ra"
        # The hybrid may or may not hit the exact optimum on every run, but it
        # must never do worse than the classical initial state.
        bound = (
            details.initial_solution.energy
            + details.sampleset.metadata.get("constant", 0.0)
            + abs(details.initial_solution.energy)
            + 1e9
        )
        assert result.objective_value <= bound  # sanity guard
        assert details.best_energy <= details.initial_solution.energy + 1e-9

    def test_detect_returns_detection_result_only(self, mimo_encoding_16qam, fast_sampler):
        transmission, _ = mimo_encoding_16qam
        detector = HybridMIMODetector(sampler=fast_sampler, num_reads=20)
        result = detector.detect(transmission.instance, rng=7)
        assert result.symbols.size == transmission.instance.num_users
        assert result.bits.size == transmission.instance.qubo_variable_count

    def test_signal_domain_initializer(self, mimo_encoding_16qam, fast_sampler):
        transmission, _ = mimo_encoding_16qam
        detector = HybridMIMODetector(
            initializer=ZeroForcingDetector(), sampler=fast_sampler, num_reads=20
        )
        result, details = detector.detect_with_details(transmission.instance, rng=8)
        assert "zero-forcing" in details.metadata["classical_solver"]
        # ZF is exact on noiseless square unit-gain channels most of the time;
        # at minimum the detection payload must be well-formed.
        assert set(np.unique(result.bits)).issubset({0, 1})

    def test_unknown_initializer_name(self, mimo_encoding_16qam, fast_sampler):
        transmission, _ = mimo_encoding_16qam
        detector = HybridMIMODetector(initializer="magic", sampler=fast_sampler)
        with pytest.raises(ConfigurationError):
            detector.detect(transmission.instance, rng=9)

    def test_invalid_initializer_type(self, mimo_encoding_16qam, fast_sampler):
        transmission, _ = mimo_encoding_16qam
        detector = HybridMIMODetector(initializer=42, sampler=fast_sampler)
        with pytest.raises(ConfigurationError):
            detector.detect(transmission.instance, rng=10)
