"""Sharded-driver contracts: parallel == serial, and cache correctness.

Every rewired experiment driver (fig6, fig8, snr, load, scenarios) must
return results bitwise-identical to its serial path at any worker count, and
a cached re-run of the scenario study must reproduce byte-identical reports
while recomputing nothing; changing one shard's seed recomputes exactly that
shard.
"""

import dataclasses


from repro.experiments import (
    Figure6Config,
    Figure8Config,
    LoadStudyConfig,
    ScenarioStudyConfig,
    SNRStudyConfig,
    format_load_study_table,
    format_scenario_table,
    run_figure6,
    run_figure8,
    run_load_study,
    run_scenario_study,
    run_snr_study,
    scenario_study_tasks,
)
from repro.parallel import ParallelRunner, ResultCache, ShardTask


class TestParallelEqualsSerial:
    def test_figure6(self):
        config = Figure6Config.quick()
        assert run_figure6(config, workers=2) == run_figure6(config)

    def test_figure8(self):
        config = Figure8Config.quick()
        assert run_figure8(config, workers=2) == run_figure8(config)

    def test_figure8_with_fr_oracle(self):
        config = dataclasses.replace(Figure8Config.quick(), include_fr_oracle=True)
        assert run_figure8(config, workers=2) == run_figure8(config)

    def test_snr_study(self):
        config = SNRStudyConfig.quick()
        assert run_snr_study(config, workers=2) == run_snr_study(config)

    def test_load_study(self):
        config = LoadStudyConfig.quick()
        serial = run_load_study(config)
        parallel = run_load_study(config, workers=2)
        assert parallel.rows == serial.rows
        assert format_load_study_table(parallel) == format_load_study_table(serial)

    def test_scenario_study(self):
        config = ScenarioStudyConfig.quick()
        serial = run_scenario_study(config)
        parallel = run_scenario_study(config, workers=2)
        assert parallel.rows == serial.rows
        assert format_scenario_table(parallel) == format_scenario_table(serial)


class TestScenarioCacheCorrectness:
    def test_cached_rerun_is_byte_identical_and_all_hits(self, tmp_path):
        config = ScenarioStudyConfig.quick()
        cache = ResultCache(tmp_path / "cache")
        num_shards = len(scenario_study_tasks(config))

        cold = run_scenario_study(config, cache=cache)
        assert cache.misses == num_shards and cache.hits == 0

        cache.reset_counters()
        warm = run_scenario_study(config, cache=cache)
        assert cache.hits == num_shards and cache.misses == 0
        assert format_scenario_table(warm) == format_scenario_table(cold)
        assert warm.rows == cold.rows

    def test_changed_seed_invalidates_only_the_affected_shard(self, tmp_path):
        config = ScenarioStudyConfig.quick()
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(cache=cache)
        tasks = scenario_study_tasks(config)
        baseline = runner.run_sharded(tasks)

        # Re-seed one scenario arm's workload; every other shard must hit.
        edited = list(tasks)
        kwargs = dict(edited[0].kwargs)
        kwargs["workload_seed"] = kwargs["workload_seed"] + 1
        edited[0] = ShardTask(key=edited[0].key, fn=edited[0].fn, kwargs=kwargs)

        cache.reset_counters()
        results = runner.run_sharded(edited)
        assert cache.misses == 1
        assert cache.hits == len(tasks) - 1
        assert runner.last_run.executed == 1
        # The re-seeded shard genuinely changed; the untouched ones did not.
        assert results[0].outcomes != baseline[0].outcomes
        assert results[1].outcomes == baseline[1].outcomes

    def test_cache_config_sensitivity(self, tmp_path):
        # A plant-parameter change re-keys every shard (the results depend
        # on it); a catalog extension only computes the new scenario.
        config = ScenarioStudyConfig.quick()
        cache = ResultCache(tmp_path / "cache")
        run_scenario_study(config, cache=cache)

        cache.reset_counters()
        extended = dataclasses.replace(config, scenarios=config.scenarios + ("diurnal",))
        run_scenario_study(extended, cache=cache)
        assert cache.hits == 2 * len(config.scenarios)
        assert cache.misses == 2  # the two new diurnal arms

        cache.reset_counters()
        retuned = dataclasses.replace(config, static_workers=config.static_workers + 1)
        run_scenario_study(retuned, cache=cache)
        assert cache.misses == 2 * len(config.scenarios)

    def test_fig8_method_knobs_invalidate_only_their_method(self, tmp_path):
        # intermediate_initial_quality is read only by the RA family shard;
        # toggling it must leave the FA and FR-oracle shards cached.
        config = dataclasses.replace(
            Figure8Config.quick(), include_fr_oracle=True,
            intermediate_initial_quality=None,
        )
        cache = ResultCache(tmp_path / "cache")
        run_figure8(config, cache=cache)
        num_shards = 2 + len(config.grid())

        cache.reset_counters()
        toggled = dataclasses.replace(config, intermediate_initial_quality=6.0)
        run_figure8(toggled, cache=cache)
        assert cache.misses == 1  # the RA family shard only
        assert cache.hits == num_shards - 1

    def test_batch_size_is_cache_transparent(self, tmp_path):
        # Results are proven batch-size-invariant, so re-chunking a sweep
        # must replay from the cache, not recompute.
        config = SNRStudyConfig.quick()
        cache = ResultCache(tmp_path / "cache")
        baseline = run_snr_study(config, cache=cache)

        cache.reset_counters()
        rechunked = dataclasses.replace(config, batch_size=1)
        rows = run_snr_study(rechunked, cache=cache)
        assert cache.hits == len(config.snr_grid_db) and cache.misses == 0
        assert rows == baseline
