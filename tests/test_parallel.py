"""Tests for the repro.parallel subsystem and the sharded experiment drivers.

The contract under test, mirroring the library-wide child-seed discipline one
level up: a sharded sweep's results are **bitwise-identical** to the serial
path at any worker count, cached re-runs return byte-identical reports, and
a change to one shard's seed or configuration invalidates only that shard.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.parallel import (
    ParallelRunner,
    ResultCache,
    ShardTask,
    canonical_token,
    task_fingerprint,
)


# ---------------------------------------------------------------------- #
# Shard functions (module-level so the process pool can pickle them)
# ---------------------------------------------------------------------- #


def _seeded_draw(seed, count):
    rng = np.random.default_rng(seed)
    return rng.random(count)


def _square(value):
    return value * value


def _fail(message):
    raise ValueError(message)


def _slow_fail(message, delay_s=0.3):
    import time

    time.sleep(delay_s)
    raise ValueError(message)


def _tasks(seeds, count=5):
    return [
        ShardTask(key=("draw", seed), fn=_seeded_draw, kwargs={"seed": seed, "count": count})
        for seed in seeds
    ]


@dataclasses.dataclass(frozen=True)
class _Config:
    name: str = "demo"
    scale: float = 1.5
    grid: tuple = (1, 2, 3)


# ---------------------------------------------------------------------- #
# Canonicalisation and fingerprints
# ---------------------------------------------------------------------- #


class TestCanonicalToken:
    def test_plain_scalars_pass_through(self):
        assert canonical_token(None) is None
        assert canonical_token(True) is True
        assert canonical_token(7) == 7
        assert canonical_token("x") == "x"

    def test_floats_canonicalise_via_repr(self):
        assert canonical_token(0.1) == ["float", repr(0.1)]
        assert canonical_token(np.float64(0.1)) == ["float", repr(0.1)]

    def test_numpy_integers_become_ints(self):
        assert canonical_token(np.int64(3)) == 3

    def test_sequences_and_mappings(self):
        assert canonical_token((1, 2)) == canonical_token([1, 2])
        # Mapping order does not matter.
        assert canonical_token({"b": 1, "a": 2}) == canonical_token({"a": 2, "b": 1})
        # Key types matter: {1: x} and {"1": x} are different configurations.
        assert canonical_token({1: "a"}) != canonical_token({"1": "a"})
        # Mixed key types still canonicalise deterministically.
        assert canonical_token({1: "a", "b": 2}) == canonical_token({"b": 2, 1: "a"})

    def test_dataclasses_tokenise_by_field(self):
        token_a = canonical_token(_Config())
        token_b = canonical_token(_Config())
        assert token_a == token_b
        assert canonical_token(_Config(scale=2.0)) != token_a

    def test_ndarray_tokenises_by_content(self):
        array = np.arange(6, dtype=np.float64)
        assert canonical_token(array) == canonical_token(array.copy())
        assert canonical_token(array) != canonical_token(array + 1.0)
        # dtype participates: same bytes, different meaning.
        assert canonical_token(array) != canonical_token(array.astype(np.int64))

    def test_stateful_objects_rejected(self):
        with pytest.raises(ConfigurationError):
            canonical_token(np.random.default_rng(0))


class TestTaskFingerprint:
    def test_stable_across_calls(self):
        task = _tasks([7])[0]
        assert task.fingerprint() == task.fingerprint()

    def test_sensitive_to_kwargs_and_key(self):
        base = task_fingerprint(_seeded_draw, {"seed": 1, "count": 5}, ("k",))
        assert task_fingerprint(_seeded_draw, {"seed": 2, "count": 5}, ("k",)) != base
        assert task_fingerprint(_seeded_draw, {"seed": 1, "count": 5}, ("other",)) != base

    def test_sensitive_to_function_identity(self):
        kwargs = {"value": 3}
        assert task_fingerprint(_square, kwargs) != task_fingerprint(_fail, {"message": "x"})

    def test_sensitive_to_legacy_kernel_dynamics(self, monkeypatch):
        from repro.annealing.kernels import KERNEL_ENV_VAR

        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        base = task_fingerprint(_seeded_draw, {"seed": 1, "count": 5}, ("k",))
        # Choosing among the bitwise-equal replica implementations must not
        # invalidate cached results...
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert task_fingerprint(_seeded_draw, {"seed": 1, "count": 5}, ("k",)) == base
        # ...but the preserved legacy dynamics are a different result class.
        monkeypatch.setenv(KERNEL_ENV_VAR, "legacy")
        assert task_fingerprint(_seeded_draw, {"seed": 1, "count": 5}, ("k",)) != base

    def test_library_digest_is_stable_within_a_process(self):
        from repro.parallel.cache import _library_digest

        digest = _library_digest()
        assert digest == _library_digest()
        assert len(digest) == 64 and int(digest, 16) >= 0
        # The digest participates in every fingerprint (library edits must
        # invalidate cached results), via the "library" payload field.
        assert _library_digest.cache_info().hits >= 1

    def test_excluded_kwargs_do_not_affect_the_fingerprint(self):
        base = task_fingerprint(
            _seeded_draw, {"seed": 1, "count": 5}, ("k",), exclude=("count",)
        )
        rechunked = task_fingerprint(
            _seeded_draw, {"seed": 1, "count": 9}, ("k",), exclude=("count",)
        )
        assert rechunked == base
        # Non-excluded kwargs still participate.
        assert task_fingerprint(
            _seeded_draw, {"seed": 2, "count": 5}, ("k",), exclude=("count",)
        ) != base


# ---------------------------------------------------------------------- #
# The result cache
# ---------------------------------------------------------------------- #


class TestResultCache:
    def test_round_trip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        hit, value = cache.get("ab" * 32)
        assert not hit and value is None
        cache.put("ab" * 32, {"rows": [1, 2, 3]})
        hit, value = cache.get("ab" * 32)
        assert hit and value == {"rows": [1, 2, 3]}
        assert (cache.hits, cache.misses) == (1, 1)
        assert "ab" * 32 in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss_and_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fingerprint = "cd" * 32
        cache.put(fingerprint, [1, 2])
        # Truncate the pickle on disk.
        path = cache._path(fingerprint)
        path.write_bytes(path.read_bytes()[:3])
        hit, _ = cache.get(fingerprint)
        assert not hit
        assert fingerprint not in cache

    def test_unwritable_cache_degrades_to_uncached_with_one_warning(self, tmp_path):
        # Point the cache root *through* a regular file: mkdir fails with
        # OSError (deterministically, even when running as root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="not writable"):
            cache.put("ab" * 32, [1])
        # Subsequent stores are skipped silently; reads behave as misses.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache.put("cd" * 32, [2])
        assert cache.get("ab" * 32) == (False, None)
        # A sweep with such a cache still completes and returns results.
        runner = ParallelRunner(cache=cache)
        results = runner.run_sharded(_tasks([5]))
        np.testing.assert_array_equal(results[0], _seeded_draw(5, 5))

    def test_clear_and_reset(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for index in range(3):
            cache.put(f"{index:02d}" + "0" * 62, index)
        assert cache.clear() == 3
        assert len(cache) == 0
        cache.misses = 5
        cache.reset_counters()
        assert (cache.hits, cache.misses) == (0, 0)


# ---------------------------------------------------------------------- #
# The runner
# ---------------------------------------------------------------------- #


class TestParallelRunner:
    def test_empty_task_list(self):
        assert ParallelRunner().run_sharded([]) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelRunner().run_sharded([], workers=-2)

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_modes_run_in_process(self, workers):
        runner = ParallelRunner(workers=workers)
        results = runner.run_sharded(_tasks([3, 5, 8]))
        for seed, result in zip([3, 5, 8], results):
            np.testing.assert_array_equal(result, _seeded_draw(seed, 5))
        assert runner.last_run.executed == 3
        assert runner.last_run.workers == 1

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_results_bitwise_identical_to_serial(self, workers):
        tasks = _tasks([11, 22, 33, 44, 55])
        serial = ParallelRunner().run_sharded(tasks)
        parallel = ParallelRunner(workers=workers).run_sharded(tasks)
        # Results come back in task order with the exact same bits.
        for left, right in zip(serial, parallel):
            assert left.tobytes() == right.tobytes()

    def test_shard_errors_propagate_type_and_name_the_shard_serial(self):
        task = ShardTask(key=("boom", 1), fn=_fail, kwargs={"message": "kaput"})
        with pytest.raises(ValueError, match="kaput") as excinfo:
            ParallelRunner().run_sharded([task])
        assert any("('boom', 1)" in note for note in excinfo.value.__notes__)

    def test_shard_errors_propagate_type_and_name_the_shard_parallel(self):
        tasks = _tasks([1, 2]) + [
            ShardTask(key=("boom", 2), fn=_fail, kwargs={"message": "kaput"})
        ]
        with pytest.raises(ValueError, match="kaput") as excinfo:
            ParallelRunner(workers=2).run_sharded(tasks)
        assert any("('boom', 2)" in note for note in excinfo.value.__notes__)

    def test_cache_hits_skip_execution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks([1, 2, 3])
        runner = ParallelRunner(cache=cache)

        cold = runner.run_sharded(tasks)
        assert runner.last_run.cache_misses == 3
        assert runner.last_run.executed == 3

        warm = runner.run_sharded(tasks)
        assert runner.last_run.cache_hits == 3
        assert runner.last_run.executed == 0
        for left, right in zip(cold, warm):
            assert left.tobytes() == right.tobytes()

    def test_changed_seed_invalidates_only_the_affected_shard(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(cache=cache)
        tasks = _tasks([1, 2, 3])
        runner.run_sharded(tasks)

        # Re-seed the middle shard only.
        edited = list(tasks)
        edited[1] = ShardTask(key=tasks[1].key, fn=tasks[1].fn, kwargs={"seed": 99, "count": 5})
        results = runner.run_sharded(edited)
        assert runner.last_run.cache_hits == 2
        assert runner.last_run.cache_misses == 1
        assert runner.last_run.executed == 1
        np.testing.assert_array_equal(results[1], _seeded_draw(99, 5))

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = _tasks([4, 5, 6, 7])
        ParallelRunner(workers=2, cache=cache).run_sharded(tasks)
        runner = ParallelRunner(cache=cache)
        runner.run_sharded(tasks)
        assert runner.last_run.cache_hits == 4

    def test_completed_shards_are_cached_even_when_a_later_shard_fails(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(cache=cache)
        tasks = _tasks([1, 2]) + [
            ShardTask(key=("boom",), fn=_fail, kwargs={"message": "kaput"})
        ]
        with pytest.raises(ValueError):
            runner.run_sharded(tasks)
        # The two shards that finished before the failure are stored;
        # a retry of the fixed sweep reuses them.
        assert len(cache) == 2
        cache.reset_counters()
        results = runner.run_sharded(tasks[:2])
        assert cache.hits == 2
        np.testing.assert_array_equal(results[0], _seeded_draw(1, 5))

    def test_pool_failure_still_stores_inflight_completions(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # Two fast shards occupy the two workers first; the slow failing
        # shard raises only after they completed, and their results must
        # survive the failure.
        tasks = _tasks([1, 2]) + [
            ShardTask(key=("boom",), fn=_slow_fail, kwargs={"message": "kaput"})
        ]
        with pytest.raises(ValueError, match="kaput"):
            ParallelRunner(workers=2, cache=cache).run_sharded(tasks)
        assert len(cache) == 2
