"""Failure-injection tests: degraded devices, broken chains, pathological inputs.

These tests exercise the library under adverse conditions a production user
would hit: heavy control noise, ill-conditioned channels, degenerate QUBOs,
extreme schedules, and samplers that never find the optimum.
"""

import numpy as np
import pytest

from repro.annealing import (
    DeviceModel,
    QuantumAnnealerSimulator,
    SpinVectorMonteCarloBackend,
    forward_anneal_schedule,
)
from repro.classical import GreedySearchSolver, SimulatedAnnealingSolver, TabuSearchSolver
from repro.experiments.instances import synthesize_instance
from repro.hybrid import HybridQuboSolver
from repro.metrics.tts import tts_from_sampleset
from repro.qubo import QUBOModel, brute_force_minimum
from repro.transform import mimo_to_qubo
from repro.wireless import MIMOConfig, MIMOInstance, simulate_transmission


class TestDegradedDevice:
    def test_heavy_control_noise_still_returns_valid_samples(self, planted_qubo_10):
        qubo, _ = planted_qubo_10
        device = DeviceModel(field_noise_sigma=0.5, coupling_noise_sigma=0.5)
        sampler = QuantumAnnealerSimulator(
            device=device, backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=8), seed=1
        )
        sampleset = sampler.forward_anneal(qubo, num_reads=20)
        assert sampleset.num_reads == 20
        for record in sampleset:
            assert record.energy == pytest.approx(qubo.energy(record.assignment))

    def test_heavy_noise_degrades_success(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        ground = qubo.energy(planted)
        clean = QuantumAnnealerSimulator(seed=2).forward_anneal(qubo, num_reads=80, pause_s=0.4)
        noisy_device = DeviceModel(field_noise_sigma=1.0, coupling_noise_sigma=1.0)
        noisy = QuantumAnnealerSimulator(device=noisy_device, seed=2).forward_anneal(
            qubo, num_reads=80, pause_s=0.4
        )
        assert noisy.success_probability(ground) <= clean.success_probability(ground) + 0.1

    def test_zero_temperature_device_is_valid(self, planted_qubo_10):
        qubo, _ = planted_qubo_10
        device = DeviceModel(temperature_ghz=0.0)
        sampler = QuantumAnnealerSimulator(device=device, seed=3)
        sampleset = sampler.forward_anneal(qubo, num_reads=10)
        assert sampleset.num_reads == 10


class TestPathologicalProblems:
    def test_all_zero_qubo(self, fast_sampler):
        qubo = QUBOModel.empty(5)
        sampleset = fast_sampler.forward_anneal(qubo, num_reads=10)
        assert np.allclose(sampleset.energies(), 0.0)

    def test_single_variable_qubo(self, fast_sampler):
        qubo = QUBOModel(coefficients=np.array([[-3.0]]))
        sampleset = fast_sampler.forward_anneal(qubo, num_reads=30, pause_s=0.4)
        assert sampleset.lowest_energy() == pytest.approx(-3.0)

    def test_strongly_scaled_qubo_is_normalised(self, fast_sampler, planted_qubo_10):
        qubo, planted = planted_qubo_10
        scaled = qubo.scale(1e6)
        sampleset = fast_sampler.forward_anneal(scaled, num_reads=40, pause_s=0.4)
        assert sampleset.lowest_energy() <= scaled.energy(planted) * 0.5  # clearly negative

    def test_rank_deficient_channel_detection(self):
        # Two users sharing an identical channel column: ML is ambiguous but the
        # pipeline must not crash and must return a valid constellation vector.
        column = np.array([1.0 + 0.5j, -0.3 + 1.0j, 0.8 - 0.2j])
        channel = np.stack([column, column], axis=1)
        instance = MIMOInstance(
            channel_matrix=channel, received=column * 1.2, modulation="QPSK"
        )
        encoding = mimo_to_qubo(instance)
        result = brute_force_minimum(encoding.qubo)
        assert result.ground_state_count >= 1
        symbols = encoding.bits_to_symbols(result.assignment)
        for symbol in symbols:
            instance.modulation_scheme.symbol_index(symbol)

    def test_greedy_on_constant_qubo(self):
        solution = GreedySearchSolver().solve(QUBOModel.empty(6))
        assert solution.energy == 0.0

    def test_local_searchers_on_single_deep_minimum(self):
        # A needle-in-a-haystack model: one strongly favoured assignment.
        qubo = QUBOModel(coefficients=np.diag([-100.0, 1e-3, 1e-3, 1e-3]))
        solvers = (SimulatedAnnealingSolver(num_sweeps=50), TabuSearchSolver(max_iterations=50))
        for solver in solvers:
            solution = solver.solve(qubo, rng=4)
            assert solution.assignment[0] == 1


class TestUnsuccessfulSolvers:
    def test_tts_is_infinite_when_never_successful(self, fast_sampler):
        bundle = synthesize_instance(3, "64-QAM", seed=1)
        sampleset = fast_sampler.forward_anneal(bundle.encoding.qubo, num_reads=5)
        # With 5 reads on an 18-variable problem success is unlikely; whatever
        # happens, TTS must be computable and positive or infinite.
        tts = tts_from_sampleset(sampleset, bundle.ground_energy)
        assert tts.tts_us > 0
        assert tts.repeats >= 1.0 or not tts.is_finite

    def test_hybrid_preserves_classical_candidate_when_ra_fails(self, fast_sampler):
        bundle = synthesize_instance(3, "64-QAM", seed=2)
        hybrid = HybridQuboSolver(sampler=fast_sampler, switch_s=0.97, num_reads=5)
        result = hybrid.solve(bundle.encoding.qubo, rng=5)
        # At s_p = 0.97 the anneal barely moves; the hybrid must still report a
        # best energy no worse than its classical candidate.
        assert result.best_energy <= result.initial_solution.energy + 1e-9


class TestNoisyTransmissionEdgeCases:
    def test_extremely_low_snr_still_produces_valid_instance(self):
        config = MIMOConfig(num_users=2, modulation="16-QAM", snr_db=-20.0)
        transmission = simulate_transmission(config, rng=3)
        encoding = mimo_to_qubo(transmission.instance)
        assert encoding.num_variables == 8
        assert np.isfinite(encoding.constant)

    def test_schedule_with_zero_length_pause(self, fast_sampler, planted_qubo_10):
        qubo, _ = planted_qubo_10
        schedule = forward_anneal_schedule(1.0, pause_s=0.5, pause_duration_us=0.0)
        sampleset = fast_sampler.sample_qubo(qubo, schedule, num_reads=10)
        assert sampleset.num_reads == 10
