"""Tests for repro.qubo.generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.qubo.energy import brute_force_minimum
from repro.qubo.generators import planted_solution_qubo, random_ising, random_qubo


class TestRandomQubo:
    def test_size(self, rng):
        assert random_qubo(6, rng=rng).num_variables == 6

    def test_reproducible(self):
        first = random_qubo(5, rng=3)
        second = random_qubo(5, rng=3)
        assert np.allclose(first.coefficients, second.coefficients)

    def test_density_zero_gives_diagonal_model(self, rng):
        model = random_qubo(6, density=0.0, rng=rng)
        assert model.quadratic == {}

    def test_density_one_is_fully_coupled(self, rng):
        model = random_qubo(6, density=1.0, rng=rng)
        assert len(model.quadratic) <= 15
        assert len([v for v in model.quadratic.values() if v != 0.0]) == 15

    def test_invalid_density(self):
        with pytest.raises(ConfigurationError):
            random_qubo(4, density=1.2)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            random_qubo(4, coefficient_scale=0.0)


class TestRandomIsing:
    def test_size(self, rng):
        assert random_ising(7, rng=rng).num_spins == 7

    def test_field_scale_zero(self, rng):
        model = random_ising(5, field_scale=0.0, rng=rng)
        assert np.allclose(model.fields, 0.0)

    def test_invalid_density(self):
        with pytest.raises(ConfigurationError):
            random_ising(4, density=-0.5)


class TestPlantedSolution:
    def test_planted_is_ground_state(self, rng):
        planted = rng.integers(0, 2, size=10)
        qubo = planted_solution_qubo(planted, rng=rng)
        result = brute_force_minimum(qubo)
        assert np.array_equal(result.assignment, planted)
        assert result.ground_state_count == 1

    def test_sparse_planted_still_ground_state(self, rng):
        planted = rng.integers(0, 2, size=12)
        qubo = planted_solution_qubo(planted, density=0.4, field_strength=0.5, rng=rng)
        result = brute_force_minimum(qubo)
        assert qubo.energy(planted) == pytest.approx(result.energy)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            planted_solution_qubo([])

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            planted_solution_qubo([0, 2, 1])

    def test_zero_strengths_rejected(self):
        with pytest.raises(ConfigurationError):
            planted_solution_qubo([0, 1], coupling_strength=0.0, field_strength=0.0)
