"""Tests for repro.wireless.fading (the channel-impairment engine)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionError
from repro.wireless.channel import (
    RayleighFadingChannel,
    UnitGainRandomPhaseChannel,
    effective_noise_variance,
)
from repro.wireless.fading import (
    ChannelImpairments,
    FadingChannel,
    FadingProcess,
    bessel_j0,
    correlation_root,
    estimate_channel,
    exponential_correlation,
    jakes_correlation,
    los_matrix,
    pilot_csi_error_variance,
    steering_vector,
)
from repro.wireless.mimo import MIMOConfig, simulate_transmission


class TestExponentialCorrelation:
    def test_structure(self):
        matrix = exponential_correlation(4, 0.5)
        assert matrix.shape == (4, 4)
        assert np.allclose(np.diag(matrix), 1.0)
        assert matrix[0, 1] == pytest.approx(0.5)
        assert matrix[0, 3] == pytest.approx(0.125)
        assert np.allclose(matrix, matrix.T)

    def test_zero_rho_is_identity(self):
        assert np.array_equal(exponential_correlation(3, 0.0), np.eye(3))

    def test_rho_out_of_range(self):
        with pytest.raises(ConfigurationError):
            exponential_correlation(3, 1.0)
        with pytest.raises(ConfigurationError):
            exponential_correlation(3, -0.1)

    def test_root_reconstructs_the_matrix(self):
        root = correlation_root(5, 0.8)
        assert np.allclose(root @ root.T, exponential_correlation(5, 0.8))

    def test_root_is_memoized_and_read_only(self):
        root = correlation_root(4, 0.6)
        assert correlation_root(4, 0.6) is root
        with pytest.raises(ValueError):
            root[0, 0] = 2.0


class TestBesselAndJakes:
    def test_bessel_reference_values(self):
        # Reference values from Abramowitz & Stegun tables.
        references = {
            0.0: 1.0,
            1.0: 0.7651976865579666,
            2.404825557695773: 0.0,  # first zero
            5.0: -0.17759677131433835,
            10.0: -0.2459357644513483,
        }
        for x, reference in references.items():
            assert bessel_j0(x) == pytest.approx(reference, abs=5e-8)

    def test_bessel_is_even(self):
        assert bessel_j0(-3.7) == pytest.approx(bessel_j0(3.7))

    def test_jakes_static_user(self):
        assert jakes_correlation(0.0) == pytest.approx(1.0)

    def test_jakes_decorrelates_with_speed(self):
        walking = jakes_correlation(1.5)
        highway = jakes_correlation(40.0)
        assert walking < 1.0
        assert highway < walking

    def test_jakes_rejects_negative_velocity(self):
        with pytest.raises(ConfigurationError):
            jakes_correlation(-1.0)


class TestSteeringAndLos:
    def test_steering_unit_magnitude(self):
        vector = steering_vector(6, 30.0)
        assert vector.shape == (6,)
        assert np.allclose(np.abs(vector), 1.0)

    def test_broadside_steering_is_flat(self):
        assert np.allclose(steering_vector(4, 0.0), np.ones(4))

    def test_los_matrix_is_rank_one_unit_magnitude(self):
        los = los_matrix(4, 3, 30.0, 20.0)
        assert los.shape == (4, 3)
        assert np.allclose(np.abs(los), 1.0)
        assert np.linalg.matrix_rank(los) == 1


class TestChannelImpairments:
    def test_default_is_identity(self):
        assert ChannelImpairments().is_identity

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rx_correlation": 0.2},
            {"tx_correlation": 0.2},
            {"rician_k": 0.0},
            {"temporal_correlation": 0.5},
            {"csi_error_variance": 0.1},
            {"interference_power": 0.5},
        ],
    )
    def test_any_active_knob_breaks_identity(self, kwargs):
        assert not ChannelImpairments(**kwargs).is_identity

    def test_zero_temporal_correlation_is_identity(self):
        assert ChannelImpairments(temporal_correlation=0.0).is_identity

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rx_correlation": 1.0},
            {"tx_correlation": -0.1},
            {"rician_k": -1.0},
            {"temporal_correlation": 1.5},
            {"csi_error_variance": -0.1},
            {"interference_power": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ChannelImpairments(**kwargs)

    def test_from_mobility_uses_jakes(self):
        impairments = ChannelImpairments.from_mobility(
            30.0, carrier_frequency_ghz=2.0, block_period_us=100.0
        )
        assert impairments.temporal_correlation == pytest.approx(
            jakes_correlation(30.0, 2.0, 100.0)
        )

    def test_interference_for_load_averages_other_cells(self):
        impairments = ChannelImpairments(interference_power=2.0)
        power = impairments.interference_for_load(0, (1.0, 3.0, 5.0))
        assert power == pytest.approx(2.0 * 4.0)

    def test_interference_for_load_single_cell_is_zero(self):
        impairments = ChannelImpairments(interference_power=2.0)
        assert impairments.interference_for_load(0, (4.0,)) == 0.0

    def test_interference_for_load_validates_cell(self):
        with pytest.raises(ConfigurationError):
            ChannelImpairments().interference_for_load(3, (1.0, 1.0))


class TestFadingChannel:
    def test_identity_matches_rayleigh_bitwise(self):
        channel = FadingChannel(ChannelImpairments())
        reference = RayleighFadingChannel()
        assert np.array_equal(
            channel.sample(4, 3, np.random.default_rng(7)),
            reference.sample(4, 3, np.random.default_rng(7)),
        )

    def test_custom_base_model_is_honoured(self):
        channel = FadingChannel(
            ChannelImpairments(), base_model=UnitGainRandomPhaseChannel()
        )
        sample = channel.sample(3, 3, 5)
        assert np.allclose(np.abs(sample), 1.0)

    def test_receive_correlation_statistics(self):
        channel = FadingChannel(ChannelImpairments(rx_correlation=0.9))
        generator = np.random.default_rng(0)
        accumulated = 0.0
        count = 3000
        for _ in range(count):
            sample = channel.sample(2, 1, generator)
            accumulated += (sample[0, 0] * np.conj(sample[1, 0])).real
        assert accumulated / count == pytest.approx(0.9, abs=0.07)

    def test_correlation_preserves_average_power(self):
        channel = FadingChannel(
            ChannelImpairments(rx_correlation=0.7, tx_correlation=0.5)
        )
        generator = np.random.default_rng(1)
        power = np.mean(
            [np.mean(np.abs(channel.sample(4, 4, generator)) ** 2) for _ in range(1500)]
        )
        assert power == pytest.approx(1.0, abs=0.05)

    def test_large_k_converges_to_los(self):
        impairments = ChannelImpairments(rician_k=1e9)
        channel = FadingChannel(impairments)
        sample = channel.sample(4, 3, 2)
        los = los_matrix(4, 3, impairments.los_aoa_deg, impairments.los_aod_deg)
        assert np.allclose(sample, los, atol=1e-3)

    def test_rician_preserves_average_power(self):
        channel = FadingChannel(ChannelImpairments(rician_k=3.0))
        generator = np.random.default_rng(3)
        power = np.mean(
            [np.mean(np.abs(channel.sample(4, 4, generator)) ** 2) for _ in range(1500)]
        )
        assert power == pytest.approx(1.0, abs=0.05)

    def test_rejects_non_impairment_config(self):
        with pytest.raises(ConfigurationError):
            FadingChannel({"rx_correlation": 0.5})


class TestFadingProcess:
    def test_identity_matches_fresh_rayleigh_draws(self):
        process = FadingProcess(4, 3)
        reference = RayleighFadingChannel()
        process_rng = np.random.default_rng(3)
        reference_rng = np.random.default_rng(3)
        for _ in range(4):
            assert np.array_equal(
                process.advance(process_rng), reference.sample(4, 3, reference_rng)
            )

    def test_static_channel_at_unit_correlation(self):
        process = FadingProcess(
            2, 2, ChannelImpairments(temporal_correlation=1.0)
        )
        generator = np.random.default_rng(5)
        first = process.advance(generator)
        second = process.advance(generator)
        assert np.allclose(first, second)

    def test_empirical_block_correlation(self):
        process = FadingProcess(
            1, 1, ChannelImpairments(temporal_correlation=0.95)
        )
        generator = np.random.default_rng(2)
        samples = np.array([process.advance(generator)[0, 0] for _ in range(12000)])
        measured = np.mean(samples[1:] * np.conj(samples[:-1])) / np.mean(
            np.abs(samples) ** 2
        )
        assert measured.real == pytest.approx(0.95, abs=0.03)

    def test_constant_rng_consumption_across_doppler(self):
        # A block consumes the same randomness whatever the correlation, so
        # sweeping Doppler never shifts draws made after each advance().
        followers = []
        for coefficient in (0.0, 0.5, 0.99):
            process = FadingProcess(
                3, 2, ChannelImpairments(temporal_correlation=coefficient)
            )
            generator = np.random.default_rng(11)
            for _ in range(3):
                process.advance(generator)
            followers.append(generator.standard_normal(4))
        assert np.array_equal(followers[0], followers[1])
        assert np.array_equal(followers[1], followers[2])

    def test_reset_restarts_the_coherence_run(self):
        process = FadingProcess(2, 2, ChannelImpairments(temporal_correlation=0.9))
        first = process.advance(np.random.default_rng(7))
        process.reset()
        again = process.advance(np.random.default_rng(7))
        assert np.array_equal(first, again)

    def test_spatial_shaping_applies_per_block(self):
        process = FadingProcess(
            2, 1, ChannelImpairments(rx_correlation=0.9, temporal_correlation=0.5)
        )
        generator = np.random.default_rng(0)
        accumulated = 0.0
        count = 3000
        for _ in range(count):
            process.reset()
            sample = process.advance(generator)
            accumulated += (sample[0, 0] * np.conj(sample[1, 0])).real
        assert accumulated / count == pytest.approx(0.9, abs=0.07)


class TestEstimateChannel:
    def test_zero_variance_returns_true_channel_without_draws(self):
        true_channel = RayleighFadingChannel().sample(3, 3, 1)
        generator = np.random.default_rng(9)
        before = generator.bit_generator.state
        estimate = estimate_channel(true_channel, 0.0, generator)
        assert estimate is true_channel or np.array_equal(estimate, true_channel)
        assert generator.bit_generator.state == before

    def test_error_statistics(self):
        true_channel = np.zeros((20, 20), dtype=complex)
        estimate = estimate_channel(true_channel, 0.25, 3)
        assert np.mean(np.abs(estimate - true_channel) ** 2) == pytest.approx(
            0.25, rel=0.15
        )

    def test_negative_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_channel(np.eye(2), -0.1)

    def test_pilot_variance_scaling(self):
        assert pilot_csi_error_variance(0.0) == pytest.approx(1.0)
        assert pilot_csi_error_variance(10.0) == pytest.approx(0.1)
        assert pilot_csi_error_variance(10.0, num_pilots=4) == pytest.approx(0.025)


class TestEffectiveNoiseVariance:
    def test_adds_interference(self):
        assert effective_noise_variance(0.5, 1.5) == pytest.approx(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            effective_noise_variance(-1.0)
        with pytest.raises(ValueError):
            effective_noise_variance(1.0, -0.5)


class TestSimulateTransmissionImpairments:
    def test_identity_impairments_are_bitwise_neutral(self):
        config = MIMOConfig(num_users=4, modulation="QPSK", snr_db=10.0)
        for seed in range(5):
            plain = simulate_transmission(config, rng=seed)
            impaired = simulate_transmission(
                config, rng=seed, impairments=ChannelImpairments()
            )
            assert np.array_equal(
                plain.instance.channel_matrix, impaired.instance.channel_matrix
            )
            assert np.array_equal(plain.instance.received, impaired.instance.received)
            assert np.array_equal(plain.transmitted_bits, impaired.transmitted_bits)
            assert impaired.has_perfect_csi

    def test_imperfect_csi_separates_estimate_from_truth(self):
        config = MIMOConfig(num_users=3, modulation="QPSK")
        transmission = simulate_transmission(
            config, rng=11, impairments=ChannelImpairments(csi_error_variance=0.1)
        )
        assert not transmission.has_perfect_csi
        assert not np.array_equal(
            transmission.instance.channel_matrix, transmission.true_channel
        )
        # The received vector was produced by the *true* channel (noiseless).
        residual = transmission.instance.received - (
            transmission.actual_channel @ transmission.transmitted_symbols
        )
        assert np.linalg.norm(residual) < 1e-12

    def test_interference_raises_noise_floor(self):
        config = MIMOConfig(num_users=2, modulation="BPSK")
        impairments = ChannelImpairments(interference_power=4.0)
        residuals = []
        for seed in range(200):
            transmission = simulate_transmission(
                config, rng=seed, impairments=impairments
            )
            residual = transmission.instance.received - (
                transmission.actual_channel @ transmission.transmitted_symbols
            )
            residuals.append(np.mean(np.abs(residual) ** 2))
        assert np.mean(residuals) == pytest.approx(4.0, rel=0.2)
        assert transmission.interference_power == 4.0

    def test_supplied_channel_matrix_is_used(self):
        config = MIMOConfig(num_users=2, modulation="BPSK")
        channel = np.eye(2, dtype=complex)
        transmission = simulate_transmission(config, rng=0, channel_matrix=channel)
        assert np.array_equal(transmission.instance.channel_matrix, channel)

    def test_supplied_channel_matrix_shape_checked(self):
        config = MIMOConfig(num_users=2, modulation="BPSK")
        with pytest.raises(DimensionError):
            simulate_transmission(config, rng=0, channel_matrix=np.eye(3))

    def test_noiseless_ground_energy_unknown_under_impairments(self):
        from repro.transform.mimo_to_qubo import mimo_to_qubo

        config = MIMOConfig(num_users=2, modulation="QPSK")
        perfect = simulate_transmission(config, rng=5)
        assert mimo_to_qubo(perfect.instance).noiseless_ground_energy(perfect) is not None

        for impairments in (
            ChannelImpairments(csi_error_variance=0.2),
            ChannelImpairments(interference_power=1.0),
        ):
            impaired = simulate_transmission(config, rng=5, impairments=impairments)
            encoding = mimo_to_qubo(impaired.instance)
            assert encoding.noiseless_ground_energy(impaired) is None

    def test_correlated_draw_differs_from_plain(self):
        config = MIMOConfig(num_users=3, modulation="QPSK")
        plain = simulate_transmission(config, rng=4)
        impaired = simulate_transmission(
            config, rng=4, impairments=ChannelImpairments(rx_correlation=0.8)
        )
        assert not np.array_equal(
            plain.instance.channel_matrix, impaired.instance.channel_matrix
        )
