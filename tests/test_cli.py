"""Tests for the repro-experiments command line interface."""

import json
import pathlib

import pytest

import repro.cli as cli
from repro.exceptions import ConfigurationError


@pytest.fixture(autouse=True)
def _run_in_tmp(tmp_path, monkeypatch):
    """Keep the CLI's default shard cache (.repro-cache) out of the repo."""
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig99"])

    def test_scale_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig3", "--quick", "--paper-scale"])

    def test_parses_quick(self):
        arguments = cli.build_parser().parse_args(["fig6", "--quick"])
        assert arguments.experiment == "fig6"
        assert arguments.quick

    def test_parses_parallel_flags(self):
        arguments = cli.build_parser().parse_args(
            ["scenarios", "--workers", "4", "--no-cache", "--cache-dir", "/tmp/c"]
        )
        assert arguments.workers == 4
        assert arguments.no_cache
        assert arguments.cache_dir == "/tmp/c"

    def test_rejects_non_positive_workers(self):
        with pytest.raises(SystemExit):
            cli.main(["scenarios", "--quick", "--workers", "0"])


class TestMain:
    def test_runs_fig3_quick(self, capsys):
        exit_code = cli.main(["fig3", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 3" in captured.out

    def test_runs_constraints_quick(self, capsys):
        exit_code = cli.main(["constraints", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "constraint" in captured.out

    def test_runs_pipeline_quick(self, capsys):
        exit_code = cli.main(["pipeline", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "pipelined" in captured.out

    def test_runs_serve_quick(self, capsys):
        exit_code = cli.main(["serve", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "deadline-miss rate vs offered load" in captured.out
        assert "pooled serving report" in captured.out

    def test_serve_accepts_batch_size(self, capsys):
        exit_code = cli.main(["serve", "--quick", "--batch-size", "2"])
        assert exit_code == 0
        assert "deadline-miss" in capsys.readouterr().out

    def test_runs_robustness_quick(self, capsys):
        exit_code = cli.main(["robustness", "--quick", "--no-cache"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "detection robustness under channel impairments" in captured.out
        assert "spatial correlation rho" in captured.out

    def test_robustness_workers_match_serial_output(self, capsys):
        exit_code = cli.main(["robustness", "--quick", "--no-cache"])
        serial = capsys.readouterr().out
        assert exit_code == 0
        exit_code = cli.main(["robustness", "--quick", "--no-cache", "--workers", "2"])
        parallel = capsys.readouterr().out
        assert exit_code == 0
        assert parallel == serial

    def test_runs_scenarios_quick(self, capsys):
        exit_code = cli.main(["scenarios", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "static vs autoscaled pools" in captured.out
        assert "autoscaled serving report" in captured.out
        # The default on-disk shard cache was populated in the CWD.
        assert list(pathlib.Path(".repro-cache").glob("*/*.pkl"))

    def test_workers_match_serial_output(self, capsys):
        exit_code = cli.main(["snr", "--quick", "--no-cache"])
        serial = capsys.readouterr().out
        assert exit_code == 0
        exit_code = cli.main(["snr", "--quick", "--no-cache", "--workers", "2"])
        parallel = capsys.readouterr().out
        assert exit_code == 0
        assert parallel == serial

    def test_no_cache_skips_the_cache_directory(self, capsys):
        exit_code = cli.main(["serve", "--quick", "--no-cache"])
        assert exit_code == 0
        assert "deadline-miss" in capsys.readouterr().out
        assert not pathlib.Path(".repro-cache").exists()

    def test_cached_rerun_reproduces_output(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cli-cache")
        exit_code = cli.main(["scenarios", "--quick", "--cache-dir", cache_dir])
        cold = capsys.readouterr().out
        assert exit_code == 0
        exit_code = cli.main(["scenarios", "--quick", "--cache-dir", cache_dir])
        warm = capsys.readouterr().out
        assert exit_code == 0
        assert warm == cold


_HPO_SPEC_TOML = """\
name = "cli-hpo"
experiment = "anneal-hpo"
preset = "quick"

[axes]
num_sweeps = [8, 16]

[objectives]
best_energy = "min"
compute_time_us_mean = "min"
"""


def _write_spec(tmp_path, text=_HPO_SPEC_TOML, suffix=".toml"):
    path = tmp_path / f"study{suffix}"
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestAblate:
    def test_requires_spec(self):
        with pytest.raises(SystemExit):
            cli.main(["ablate"])

    def test_spec_flag_rejected_for_other_subcommands(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["fig3", "--spec", _write_spec(tmp_path)])

    def test_output_flag_rejected_for_other_subcommands(self):
        with pytest.raises(SystemExit):
            cli.main(["fig3", "--output", "out.json"])

    def test_ablate_not_part_of_all(self, capsys, tmp_path):
        # 'all' must not require --spec (ablate is opt-in only).
        arguments = cli.build_parser().parse_args(["all"])
        assert arguments.spec is None

    def test_runs_toml_spec_and_writes_artifact(self, capsys):
        spec = _write_spec(pathlib.Path("."))
        exit_code = cli.main(["ablate", "--spec", spec, "--no-cache"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Ablation study 'cli-hpo'" in captured.out
        assert "Pareto front:" in captured.out
        artifact = pathlib.Path("ablation_cli-hpo.json")
        assert artifact.exists()
        payload = json.loads(artifact.read_text())
        assert payload["schema_version"] == 1
        assert payload["study"] == "cli-hpo"
        assert len(payload["data"]["points"]) == 2

    def test_runs_json_spec(self, capsys):
        document = {
            "name": "cli-json",
            "experiment": "anneal-hpo",
            "preset": "quick",
            "axes": {"num_sweeps": [8, 16]},
        }
        spec = _write_spec(pathlib.Path("."), json.dumps(document), suffix=".json")
        exit_code = cli.main(["ablate", "--spec", spec, "--no-cache"])
        assert exit_code == 0
        assert "cli-json" in capsys.readouterr().out

    def test_output_flag_controls_artifact_path(self, capsys):
        spec = _write_spec(pathlib.Path("."))
        out = pathlib.Path("reports") / "study.json"
        exit_code = cli.main(["ablate", "--spec", spec, "--no-cache", "--output", str(out)])
        assert exit_code == 0
        assert out.exists()
        assert json.loads(out.read_text())["study"] == "cli-hpo"

    def test_workers_match_serial_artifact(self, capsys):
        spec = _write_spec(pathlib.Path("."))
        cli.main(["ablate", "--spec", spec, "--no-cache", "--output", "serial.json"])
        serial_out = capsys.readouterr().out
        cli.main(
            [
                "ablate",
                "--spec",
                spec,
                "--no-cache",
                "--workers",
                "2",
                "--output",
                "sharded.json",
            ]
        )
        sharded_out = capsys.readouterr().out
        serial = json.loads(pathlib.Path("serial.json").read_text())
        sharded = json.loads(pathlib.Path("sharded.json").read_text())
        assert serial["data"]["points"] == sharded["data"]["points"]
        assert serial["data"]["pareto"] == sharded["data"]["pareto"]
        # Table bodies match too (the stats line is allowed to differ).
        def strip(text):
            return [
                line
                for line in text.splitlines()
                if "worker(s)" not in line and "Artifact:" not in line
            ]

        assert strip(serial_out) == strip(sharded_out)

    def test_cache_stats_surface_in_artifact(self, capsys):
        spec = _write_spec(pathlib.Path("."))
        cli.main(["ablate", "--spec", spec, "--cache-dir", "warm", "--output", "a.json"])
        cold = json.loads(pathlib.Path("a.json").read_text())["data"]["stats"]
        cli.main(["ablate", "--spec", spec, "--cache-dir", "warm", "--output", "b.json"])
        warm = json.loads(pathlib.Path("b.json").read_text())["data"]["stats"]
        capsys.readouterr()
        assert cold["cache_hits"] == 0
        assert warm["cache_hits"] == cold["executed"] > 0
        assert warm["executed"] == 0

    def test_no_cache_disables_the_cache(self, capsys):
        spec = _write_spec(pathlib.Path("."))
        for output in ("a.json", "b.json"):
            cli.main(["ablate", "--spec", spec, "--no-cache", "--output", output])
        capsys.readouterr()
        stats = json.loads(pathlib.Path("b.json").read_text())["data"]["stats"]
        assert stats["cache_hits"] == 0
        assert not pathlib.Path(".repro-cache").exists()

    def test_missing_spec_file_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no-such-spec.toml"):
            cli.main(["ablate", "--spec", "no-such-spec.toml"])

    def test_toml_parse_error_raises_configuration_error(self):
        spec = _write_spec(pathlib.Path("."), "name = [unclosed\n")
        with pytest.raises(ConfigurationError, match="failed to parse"):
            cli.main(["ablate", "--spec", spec])

    def test_unknown_spec_key_raises_configuration_error(self):
        text = _HPO_SPEC_TOML + "\nsampel_count = 3\n"
        spec = _write_spec(pathlib.Path("."), text)
        with pytest.raises(ConfigurationError, match="sampel_count"):
            cli.main(["ablate", "--spec", spec])

    def test_unknown_axis_field_raises_configuration_error(self):
        text = _HPO_SPEC_TOML.replace("num_sweeps = [8, 16]", "num_sweps = [8, 16]")
        spec = _write_spec(pathlib.Path("."), text)
        with pytest.raises(ConfigurationError, match="num_sweps"):
            cli.main(["ablate", "--spec", spec])

    def test_telemetry_exported_even_when_spec_is_bad(self, capsys):
        with pytest.raises(ConfigurationError):
            cli.main(["ablate", "--spec", "missing.toml", "--telemetry", "tele-out"])
        capsys.readouterr()
        assert (pathlib.Path("tele-out") / "trace.jsonl").exists()
        assert (pathlib.Path("tele-out") / "metrics.prom").exists()

    def test_telemetry_records_point_events(self, capsys):
        spec = _write_spec(pathlib.Path("."))
        exit_code = cli.main(["ablate", "--spec", spec, "--no-cache", "--telemetry", "tele-run"])
        capsys.readouterr()
        assert exit_code == 0
        trace = (pathlib.Path("tele-run") / "trace.jsonl").read_text()
        assert "ablation:cli-hpo" in trace
