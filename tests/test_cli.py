"""Tests for the repro-experiments command line interface."""

import pathlib

import pytest

import repro.cli as cli


@pytest.fixture(autouse=True)
def _run_in_tmp(tmp_path, monkeypatch):
    """Keep the CLI's default shard cache (.repro-cache) out of the repo."""
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig99"])

    def test_scale_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig3", "--quick", "--paper-scale"])

    def test_parses_quick(self):
        arguments = cli.build_parser().parse_args(["fig6", "--quick"])
        assert arguments.experiment == "fig6"
        assert arguments.quick

    def test_parses_parallel_flags(self):
        arguments = cli.build_parser().parse_args(
            ["scenarios", "--workers", "4", "--no-cache", "--cache-dir", "/tmp/c"]
        )
        assert arguments.workers == 4
        assert arguments.no_cache
        assert arguments.cache_dir == "/tmp/c"

    def test_rejects_non_positive_workers(self):
        with pytest.raises(SystemExit):
            cli.main(["scenarios", "--quick", "--workers", "0"])


class TestMain:
    def test_runs_fig3_quick(self, capsys):
        exit_code = cli.main(["fig3", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 3" in captured.out

    def test_runs_constraints_quick(self, capsys):
        exit_code = cli.main(["constraints", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "constraint" in captured.out

    def test_runs_pipeline_quick(self, capsys):
        exit_code = cli.main(["pipeline", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "pipelined" in captured.out

    def test_runs_serve_quick(self, capsys):
        exit_code = cli.main(["serve", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "deadline-miss rate vs offered load" in captured.out
        assert "pooled serving report" in captured.out

    def test_serve_accepts_batch_size(self, capsys):
        exit_code = cli.main(["serve", "--quick", "--batch-size", "2"])
        assert exit_code == 0
        assert "deadline-miss" in capsys.readouterr().out

    def test_runs_robustness_quick(self, capsys):
        exit_code = cli.main(["robustness", "--quick", "--no-cache"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "detection robustness under channel impairments" in captured.out
        assert "spatial correlation rho" in captured.out

    def test_robustness_workers_match_serial_output(self, capsys):
        exit_code = cli.main(["robustness", "--quick", "--no-cache"])
        serial = capsys.readouterr().out
        assert exit_code == 0
        exit_code = cli.main(["robustness", "--quick", "--no-cache", "--workers", "2"])
        parallel = capsys.readouterr().out
        assert exit_code == 0
        assert parallel == serial

    def test_runs_scenarios_quick(self, capsys):
        exit_code = cli.main(["scenarios", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "static vs autoscaled pools" in captured.out
        assert "autoscaled serving report" in captured.out
        # The default on-disk shard cache was populated in the CWD.
        assert list(pathlib.Path(".repro-cache").glob("*/*.pkl"))

    def test_workers_match_serial_output(self, capsys):
        exit_code = cli.main(["snr", "--quick", "--no-cache"])
        serial = capsys.readouterr().out
        assert exit_code == 0
        exit_code = cli.main(["snr", "--quick", "--no-cache", "--workers", "2"])
        parallel = capsys.readouterr().out
        assert exit_code == 0
        assert parallel == serial

    def test_no_cache_skips_the_cache_directory(self, capsys):
        exit_code = cli.main(["serve", "--quick", "--no-cache"])
        assert exit_code == 0
        assert "deadline-miss" in capsys.readouterr().out
        assert not pathlib.Path(".repro-cache").exists()

    def test_cached_rerun_reproduces_output(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cli-cache")
        exit_code = cli.main(["scenarios", "--quick", "--cache-dir", cache_dir])
        cold = capsys.readouterr().out
        assert exit_code == 0
        exit_code = cli.main(["scenarios", "--quick", "--cache-dir", cache_dir])
        warm = capsys.readouterr().out
        assert exit_code == 0
        assert warm == cold
