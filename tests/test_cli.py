"""Tests for the repro-experiments command line interface."""

import pytest

import repro.cli as cli


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig99"])

    def test_scale_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig3", "--quick", "--paper-scale"])

    def test_parses_quick(self):
        arguments = cli.build_parser().parse_args(["fig6", "--quick"])
        assert arguments.experiment == "fig6"
        assert arguments.quick


class TestMain:
    def test_runs_fig3_quick(self, capsys):
        exit_code = cli.main(["fig3", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 3" in captured.out

    def test_runs_constraints_quick(self, capsys):
        exit_code = cli.main(["constraints", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "constraint" in captured.out

    def test_runs_pipeline_quick(self, capsys):
        exit_code = cli.main(["pipeline", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "pipelined" in captured.out

    def test_runs_serve_quick(self, capsys):
        exit_code = cli.main(["serve", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "deadline-miss rate vs offered load" in captured.out
        assert "pooled serving report" in captured.out

    def test_serve_accepts_batch_size(self, capsys):
        exit_code = cli.main(["serve", "--quick", "--batch-size", "2"])
        assert exit_code == 0
        assert "deadline-miss" in capsys.readouterr().out

    def test_runs_scenarios_quick(self, capsys):
        exit_code = cli.main(["scenarios", "--quick"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "static vs autoscaled pools" in captured.out
        assert "autoscaled serving report" in captured.out
