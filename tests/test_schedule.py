"""Tests for repro.annealing.schedule (paper Sec. 4.1 schedules)."""

import numpy as np
import pytest

from repro.annealing.schedule import (
    AnnealSchedule,
    SchedulePoint,
    forward_anneal_schedule,
    forward_reverse_anneal_schedule,
    reverse_anneal_schedule,
)
from repro.exceptions import ScheduleError


class TestSchedulePoint:
    def test_valid(self):
        point = SchedulePoint(time_us=1.0, s=0.5)
        assert point.s == 0.5

    def test_invalid_s(self):
        with pytest.raises(ScheduleError):
            SchedulePoint(time_us=0.0, s=1.5)

    def test_negative_time(self):
        with pytest.raises(ScheduleError):
            SchedulePoint(time_us=-1.0, s=0.5)


class TestAnnealSchedule:
    def test_from_pairs(self):
        schedule = AnnealSchedule.from_pairs([[0.0, 0.0], [2.0, 1.0]], name="FA")
        assert schedule.duration_us == 2.0
        assert schedule.name == "FA"

    def test_must_end_at_one(self):
        with pytest.raises(ScheduleError):
            AnnealSchedule.from_pairs([[0.0, 0.0], [1.0, 0.5]])

    def test_needs_two_points(self):
        with pytest.raises(ScheduleError):
            AnnealSchedule(points=(SchedulePoint(0.0, 1.0),))

    def test_times_non_decreasing(self):
        with pytest.raises(ScheduleError):
            AnnealSchedule.from_pairs([[0.0, 0.0], [2.0, 0.5], [1.0, 1.0]])

    def test_interpolation(self):
        schedule = AnnealSchedule.from_pairs([[0.0, 0.0], [4.0, 1.0]])
        assert schedule.s_at(2.0) == pytest.approx(0.5)
        assert schedule.s_at(-1.0) == 0.0
        assert schedule.s_at(10.0) == 1.0

    def test_pause_duration(self):
        schedule = AnnealSchedule.from_pairs([[0.0, 0.0], [1.0, 0.4], [2.5, 0.4], [3.0, 1.0]])
        assert schedule.pause_duration_us == pytest.approx(1.5)

    def test_discretise_shape_and_range(self):
        schedule = forward_anneal_schedule(1.0, 0.4, 1.0)
        samples = schedule.discretise(20)
        assert samples.shape == (20, 2)
        assert samples[0, 1] == pytest.approx(0.0)
        assert samples[-1, 1] == pytest.approx(1.0)

    def test_discretise_needs_two_steps(self):
        with pytest.raises(ScheduleError):
            forward_anneal_schedule(1.0).discretise(1)

    def test_as_pairs_round_trip(self):
        schedule = reverse_anneal_schedule(0.4, 1.0)
        rebuilt = AnnealSchedule.from_pairs(schedule.as_pairs(), name="RA")
        assert rebuilt.duration_us == pytest.approx(schedule.duration_us)


class TestForwardSchedule:
    def test_plain_ramp(self):
        schedule = forward_anneal_schedule(anneal_time_us=2.0)
        assert schedule.duration_us == 2.0
        assert not schedule.requires_initial_state
        assert schedule.minimum_s == 0.0

    def test_paper_shape_with_pause(self):
        # [0,0] -> [s_p, s_p] -> [s_p + t_p, s_p] -> [t_a + t_p, 1]
        schedule = forward_anneal_schedule(1.0, pause_s=0.41, pause_duration_us=1.0)
        pairs = schedule.as_pairs()
        assert pairs == [[0.0, 0.0], [0.41, 0.41], [1.41, 0.41], [2.0, 1.0]]

    def test_invalid_pause_location(self):
        with pytest.raises(ScheduleError):
            forward_anneal_schedule(1.0, pause_s=1.2, pause_duration_us=1.0)

    def test_invalid_anneal_time(self):
        with pytest.raises(ScheduleError):
            forward_anneal_schedule(0.0)


class TestReverseSchedule:
    def test_paper_shape(self):
        # [0,1] -> [1-s_p, s_p] -> [1-s_p+t_p, s_p] -> [2(1-s_p)+t_p, 1]
        schedule = reverse_anneal_schedule(switch_s=0.41, pause_duration_us=1.0)
        pairs = np.array(schedule.as_pairs())
        assert pairs[0, 1] == 1.0
        assert pairs[1, 0] == pytest.approx(0.59)
        assert pairs[-1, 0] == pytest.approx(2 * 0.59 + 1.0)
        assert schedule.requires_initial_state

    def test_duration_depends_on_switch_point(self):
        low = reverse_anneal_schedule(0.3, 1.0)
        high = reverse_anneal_schedule(0.8, 1.0)
        assert low.duration_us > high.duration_us

    def test_invalid_switch(self):
        with pytest.raises(ScheduleError):
            reverse_anneal_schedule(1.0)

    def test_negative_pause(self):
        with pytest.raises(ScheduleError):
            reverse_anneal_schedule(0.5, pause_duration_us=-1.0)


class TestForwardReverseSchedule:
    def test_paper_shape(self):
        # [0,0] -> [c_p,c_p] -> [2c_p-s_p, s_p] -> [.. + t_p, s_p] -> [.. + t_a, 1]
        schedule = forward_reverse_anneal_schedule(
            turning_s=0.7, switch_s=0.4, pause_duration_us=1.0, anneal_time_us=1.0
        )
        pairs = np.array(schedule.as_pairs())
        assert pairs[1].tolist() == pytest.approx([0.7, 0.7])
        assert pairs[2].tolist() == pytest.approx([1.0, 0.4])
        assert pairs[3].tolist() == pytest.approx([2.0, 0.4])
        assert pairs[4].tolist() == pytest.approx([3.0, 1.0])
        assert not schedule.requires_initial_state

    def test_turning_must_exceed_switch(self):
        with pytest.raises(ScheduleError):
            forward_reverse_anneal_schedule(turning_s=0.3, switch_s=0.5)

    def test_invalid_turning(self):
        with pytest.raises(ScheduleError):
            forward_reverse_anneal_schedule(turning_s=0.0, switch_s=0.0)
