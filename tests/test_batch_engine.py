"""Tests for the batched multi-instance engine.

The engine's contract: instance ``b`` of a batch draws exclusively from
per-instance child generator ``b``, so (1) a batch of one is bitwise-identical
to the single-instance path under the same child, (2) a batched run equals
the equivalent sequential loop, and (3) results never depend on how a
workload is grouped into batches.  Padding must make mixed-size and
zero-variable instances safe.
"""

import numpy as np
import pytest

from repro.annealing.backend import pad_problem_batch
from repro.annealing.device import AnnealingFunctions, DeviceModel
from repro.annealing.sa_backend import ScheduleDrivenAnnealingBackend
from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.annealing.schedule import forward_anneal_schedule, reverse_anneal_schedule
from repro.annealing.svmc import SpinVectorMonteCarloBackend
from repro.classical.simulated_annealing import SimulatedAnnealingSolver
from repro.classical.tabu import TabuSearchSolver
from repro.exceptions import ConfigurationError
from repro.hybrid.parameters import sweep_switch_point, sweep_switch_point_batch
from repro.hybrid.pipeline import HybridPipelineSimulator
from repro.hybrid.solver import HybridQuboSolver
from repro.qubo.generators import planted_solution_qubo
from repro.qubo.ising import bits_to_spins, qubo_to_ising
from repro.qubo.model import QUBOModel
from repro.utils.batching import iter_batches
from repro.utils.rng import ensure_rng_batch, spawn_rngs

BACKENDS = [ScheduleDrivenAnnealingBackend, SpinVectorMonteCarloBackend]
FUNCTIONS = AnnealingFunctions()


def _normalised_problem(rng, size):
    """A normalised Ising problem plus its planted QUBO ground state."""
    if size == 0:
        return np.zeros(0), np.zeros((0, 0)), np.zeros(0, dtype=np.int8)
    planted = rng.integers(0, 2, size=size)
    qubo = planted_solution_qubo(planted, coupling_strength=0.6, field_strength=1.0, rng=rng)
    ising = qubo_to_ising(qubo)
    scale = max(ising.max_abs_coefficient(), 1e-12)
    return ising.fields / scale, ising.couplings / scale, planted


def _problem_batch(rng, sizes):
    problems = [_normalised_problem(rng, size) for size in sizes]
    fields = [problem[0] for problem in problems]
    couplings = [problem[1] for problem in problems]
    initials = [
        bits_to_spins(problem[2]) if problem[2].size else np.zeros(0, dtype=np.int8)
        for problem in problems
    ]
    return fields, couplings, initials


class TestEnsureRngBatch:
    def test_spawns_children_from_root(self):
        children = ensure_rng_batch(3, 4)
        assert len(children) == 4
        # Children are the same family spawn_rngs would produce.
        reference = spawn_rngs(3, 4)
        for child, ref in zip(children, reference):
            assert np.array_equal(child.random(5), ref.random(5))

    def test_explicit_sequence_passthrough(self):
        explicit = spawn_rngs(0, 2)
        assert ensure_rng_batch(explicit, 2) == list(explicit)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ensure_rng_batch(spawn_rngs(0, 2), 3)

    def test_non_generator_entries_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng_batch([1, 2], 2)


class TestPadProblemBatch:
    def test_shapes_and_mask(self, rng):
        fields, couplings, _ = _problem_batch(rng, (4, 2, 0))
        padded_fields, symmetric, mask, sizes = pad_problem_batch(fields, couplings)
        assert padded_fields.shape == (3, 4)
        assert symmetric.shape == (3, 4, 4)
        assert mask.tolist() == [[True] * 4, [True, True, False, False], [False] * 4]
        assert sizes.tolist() == [4, 2, 0]
        # Padding lanes are exactly zero everywhere.
        assert np.all(padded_fields[1, 2:] == 0.0)
        assert np.all(symmetric[1, 2:, :] == 0.0)
        assert np.all(symmetric[1, :, 2:] == 0.0)

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            pad_problem_batch([np.zeros(3)], [np.zeros((2, 2))])
        with pytest.raises(ConfigurationError):
            pad_problem_batch([np.zeros(3), np.zeros(2)], [np.zeros((3, 3))])


@pytest.mark.parametrize("backend_class", BACKENDS)
class TestBackendBatchSemantics:
    def test_batch_of_one_matches_single_path(self, backend_class, rng):
        fields, couplings, _ = _problem_batch(rng, (8,))
        backend = backend_class(sweeps_per_microsecond=12)
        kwargs = dict(
            schedule=forward_anneal_schedule(1.0, pause_s=0.4, pause_duration_us=0.5),
            num_reads=9,
            annealing_functions=FUNCTIONS,
            relative_temperature=0.02,
        )
        (child,) = spawn_rngs(11, 1)
        single = backend.run(fields[0], couplings[0], rng=child, **kwargs)
        batched = backend.run_batch(fields, couplings, rng=11, **kwargs)
        assert len(batched) == 1
        assert np.array_equal(single, batched[0])

    def test_mixed_sizes_match_sequential_loop(self, backend_class, rng):
        sizes = (8, 3, 8, 6)
        fields, couplings, initials = _problem_batch(rng, sizes)
        backend = backend_class(sweeps_per_microsecond=12)
        kwargs = dict(
            schedule=reverse_anneal_schedule(0.45, pause_duration_us=0.5),
            num_reads=6,
            annealing_functions=FUNCTIONS,
            relative_temperature=0.02,
        )
        sequential = [
            backend.run(f, c, initial_spins=i, rng=child, **kwargs)
            for f, c, i, child in zip(fields, couplings, initials, spawn_rngs(21, len(sizes)))
        ]
        batched = backend.run_batch(
            fields, couplings, initial_spins=initials, rng=21, **kwargs
        )
        for expected, actual, size in zip(sequential, batched, sizes):
            assert actual.shape == (6, size)
            assert np.array_equal(expected, actual)

    def test_empty_instances_do_not_crash(self, backend_class, rng):
        fields, couplings, _ = _problem_batch(rng, (5, 0, 3))
        backend = backend_class(sweeps_per_microsecond=8)
        batched = backend.run_batch(
            fields,
            couplings,
            schedule=forward_anneal_schedule(1.0),
            num_reads=4,
            annealing_functions=FUNCTIONS,
            relative_temperature=0.02,
            rng=5,
        )
        assert [spins.shape for spins in batched] == [(4, 5), (4, 0), (4, 3)]

    def test_all_empty_batch(self, backend_class):
        backend = backend_class()
        batched = backend.run_batch(
            [np.zeros(0), np.zeros(0)],
            [np.zeros((0, 0)), np.zeros((0, 0))],
            schedule=forward_anneal_schedule(1.0),
            num_reads=3,
            annealing_functions=FUNCTIONS,
            relative_temperature=0.02,
            rng=5,
        )
        assert [spins.shape for spins in batched] == [(3, 0), (3, 0)]
        assert backend.run_batch(
            [],
            [],
            schedule=forward_anneal_schedule(1.0),
            num_reads=3,
            annealing_functions=FUNCTIONS,
            relative_temperature=0.02,
        ) == []

    def test_batch_grouping_invariance(self, backend_class, rng):
        sizes = (6, 6, 6, 6)
        fields, couplings, _ = _problem_batch(rng, sizes)
        backend = backend_class(sweeps_per_microsecond=8)
        kwargs = dict(
            schedule=forward_anneal_schedule(1.0),
            num_reads=5,
            annealing_functions=FUNCTIONS,
            relative_temperature=0.02,
        )
        children = spawn_rngs(33, 4)
        whole = backend.run_batch(fields, couplings, rng=list(children), **kwargs)
        children = spawn_rngs(33, 4)
        chunked = []
        for start, chunk in iter_batches(list(zip(fields, couplings)), 2):
            chunked.extend(
                backend.run_batch(
                    [pair[0] for pair in chunk],
                    [pair[1] for pair in chunk],
                    rng=children[start : start + len(chunk)],
                    **kwargs,
                )
            )
        for expected, actual in zip(whole, chunked):
            assert np.array_equal(expected, actual)

    def test_missing_initial_state_rejected(self, backend_class, rng):
        fields, couplings, _ = _problem_batch(rng, (4, 4))
        backend = backend_class()
        with pytest.raises(ConfigurationError):
            backend.run_batch(
                fields,
                couplings,
                schedule=reverse_anneal_schedule(0.5),
                num_reads=3,
                annealing_functions=FUNCTIONS,
                relative_temperature=0.02,
                rng=1,
            )


def _qubo_batch(rng, sizes):
    qubos = []
    for size in sizes:
        if size == 0:
            qubos.append(QUBOModel.empty(0))
        else:
            planted = rng.integers(0, 2, size=size)
            qubos.append(
                planted_solution_qubo(
                    planted, coupling_strength=0.6, field_strength=1.0, rng=rng
                )
            )
    return qubos


class TestSamplerBatch:
    def test_sample_qubo_batch_matches_sequential(self, rng):
        qubos = _qubo_batch(rng, (6, 3, 6))
        schedule = forward_anneal_schedule(1.0, pause_s=0.5, pause_duration_us=0.5)
        sampler = QuantumAnnealerSimulator(
            backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=8), seed=2
        )
        sequential = [
            sampler.sample_qubo(qubo, schedule, num_reads=7, rng=child)
            for qubo, child in zip(qubos, spawn_rngs(13, 3))
        ]
        batched = sampler.sample_qubo_batch(qubos, schedule, num_reads=7, rng=13)
        for expected, actual in zip(sequential, batched):
            assert expected.num_reads == actual.num_reads == 7
            assert np.array_equal(expected.energies(), actual.energies())
            for left, right in zip(expected.records, actual.records):
                assert np.array_equal(left.assignment, right.assignment)
                assert left.num_occurrences == right.num_occurrences

    def test_reverse_anneal_batch_requires_initial_states(self, rng):
        qubos = _qubo_batch(rng, (4, 4))
        sampler = QuantumAnnealerSimulator(seed=1)
        with pytest.raises(ConfigurationError):
            sampler.sample_qubo_batch(
                qubos, reverse_anneal_schedule(0.5), num_reads=5, rng=1
            )

    def test_reverse_anneal_batch_runs(self, rng):
        qubos = _qubo_batch(rng, (4, 6))
        states = [rng.integers(0, 2, qubo.num_variables) for qubo in qubos]
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8), seed=1
        )
        samplesets = sampler.reverse_anneal_batch(qubos, states, switch_s=0.45, num_reads=6)
        assert [s.num_variables for s in samplesets] == [4, 6]

    def test_control_noise_consumes_per_instance_children(self, rng):
        # With ICE noise enabled the noise draws also come from the child
        # streams, so batched and sequential paths still agree bitwise.
        device = DeviceModel(field_noise_sigma=0.02, coupling_noise_sigma=0.01)
        sampler = QuantumAnnealerSimulator(
            device=device,
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8),
            seed=4,
        )
        qubos = _qubo_batch(rng, (5, 5))
        schedule = forward_anneal_schedule(1.0)
        sequential = [
            sampler.sample_qubo(qubo, schedule, num_reads=5, rng=child)
            for qubo, child in zip(qubos, spawn_rngs(8, 2))
        ]
        batched = sampler.sample_qubo_batch(qubos, schedule, num_reads=5, rng=8)
        for expected, actual in zip(sequential, batched):
            assert np.array_equal(expected.energies(), actual.energies())

    def test_embedding_falls_back_to_sequential(self, rng):
        qubos = _qubo_batch(rng, (3, 4))
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8),
            use_embedding=True,
            seed=6,
        )
        samplesets = sampler.sample_qubo_batch(
            qubos, forward_anneal_schedule(1.0), num_reads=4, rng=6
        )
        assert [s.num_variables for s in samplesets] == [3, 4]


class TestClassicalSolverBatch:
    def test_default_solve_batch_matches_loop(self, rng):
        qubos = _qubo_batch(rng, (6, 4))
        solver = TabuSearchSolver(max_iterations=30)
        sequential = [
            solver.solve(qubo, child) for qubo, child in zip(qubos, spawn_rngs(3, 2))
        ]
        batched = solver.solve_batch(qubos, rng=3)
        for expected, actual in zip(sequential, batched):
            assert np.array_equal(expected.assignment, actual.assignment)
            assert expected.energy == actual.energy

    def test_simulated_annealing_batch_matches_loop(self, rng):
        qubos = _qubo_batch(rng, (8, 3, 0, 5))
        solver = SimulatedAnnealingSolver(num_sweeps=30)
        sequential = [
            solver.solve(qubo, child) for qubo, child in zip(qubos, spawn_rngs(17, 4))
        ]
        batched = solver.solve_batch(qubos, rng=17)
        for expected, actual in zip(sequential, batched):
            assert np.array_equal(expected.assignment, actual.assignment)
            assert expected.energy == actual.energy

    def test_simulated_annealing_batch_grouping_invariance(self, rng):
        qubos = _qubo_batch(rng, (5, 5, 5))
        solver = SimulatedAnnealingSolver(num_sweeps=20)
        children = spawn_rngs(9, 3)
        whole = solver.solve_batch(qubos, rng=list(children))
        children = spawn_rngs(9, 3)
        chunked = solver.solve_batch(qubos[:2], rng=children[:2]) + solver.solve_batch(
            qubos[2:], rng=children[2:]
        )
        for expected, actual in zip(whole, chunked):
            assert np.array_equal(expected.assignment, actual.assignment)


class TestHybridBatch:
    def test_hybrid_solve_batch_matches_sequential(self, rng):
        qubos = _qubo_batch(rng, (6, 4))
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8), seed=3
        )
        solver = HybridQuboSolver(sampler=sampler, switch_s=0.45, num_reads=8)
        sequential = [
            solver.solve(qubo, child) for qubo, child in zip(qubos, spawn_rngs(5, 2))
        ]
        batched = solver.solve_batch(qubos, rng=5)
        for expected, actual in zip(sequential, batched):
            assert np.array_equal(expected.best_assignment, actual.best_assignment)
            assert expected.best_energy == actual.best_energy
            assert expected.classical_time_us == actual.classical_time_us

    def test_sweep_switch_point_batch_matches_sequential(self, rng):
        qubos = _qubo_batch(rng, (5, 5))
        grounds = [float(min(qubo.energies(_all_bits(qubo.num_variables)))) for qubo in qubos]
        grid = (0.35, 0.55)
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8), seed=2
        )
        states = [rng.integers(0, 2, qubo.num_variables) for qubo in qubos]
        sequential = [
            sweep_switch_point(
                qubo,
                ground,
                method="RA",
                switch_values=grid,
                initial_state=state,
                sampler=sampler,
                num_reads=10,
                rng=child,
            )
            for qubo, ground, state, child in zip(qubos, grounds, states, spawn_rngs(7, 2))
        ]
        batched = sweep_switch_point_batch(
            qubos,
            grounds,
            method="RA",
            switch_values=grid,
            initial_states=states,
            sampler=sampler,
            num_reads=10,
            rng=7,
        )
        for expected_records, actual_records in zip(sequential, batched):
            for expected, actual in zip(expected_records, actual_records):
                assert expected.switch_s == actual.switch_s
                assert expected.success_probability == actual.success_probability
                assert expected.expectation_energy == actual.expectation_energy

    def test_figure6_batch_size_does_not_change_results(self):
        from repro.experiments.fig6_distributions import Figure6Config, run_figure6

        def run(batch_size):
            sampler = QuantumAnnealerSimulator(
                backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8), seed=5
            )
            config = Figure6Config(
                num_variables=8,
                instances_per_modulation=3,
                num_reads=40,
                modulations=("QPSK",),
                batch_size=batch_size,
            )
            return run_figure6(config, sampler=sampler)

        whole = run(None)
        split = run(2)
        singles = run(1)
        for reference, other in ((whole, split), (whole, singles)):
            for left, right in zip(reference, other):
                assert left.method == right.method
                assert left.mean_delta_e == right.mean_delta_e
                assert left.histogram == right.histogram

    def test_pipeline_batch_size_does_not_change_solutions(self):
        from repro.wireless.mimo import MIMOConfig
        from repro.wireless.traffic import TrafficGenerator

        config = MIMOConfig(num_users=2, modulation="QPSK")
        traffic = TrafficGenerator(config, symbol_period_us=50.0)
        channel_uses = traffic.generate(6, rng=0)

        def run(batch_size):
            sampler = QuantumAnnealerSimulator(
                backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8), seed=0
            )
            simulator = HybridPipelineSimulator(
                sampler=sampler, num_reads=6, batch_size=batch_size
            )
            return simulator.run(channel_uses, pipelined=True, rng=1)

        whole = run(None)
        per_job = run(1)
        pairs = run(2)
        for report in (per_job, pairs):
            assert [job.best_energy for job in report.jobs] == [
                job.best_energy for job in whole.jobs
            ]
        assert whole.metadata["batch_size"] is None


def _all_bits(size):
    grid = np.indices((2,) * size).reshape(size, -1).T
    return grid
