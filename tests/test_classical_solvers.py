"""Tests for the exhaustive, simulated annealing and tabu QUBO solvers."""

import numpy as np
import pytest

from repro.classical.exhaustive import ExhaustiveSolver
from repro.classical.simulated_annealing import SimulatedAnnealingSolver
from repro.classical.tabu import TabuSearchSolver
from repro.exceptions import ConfigurationError
from repro.qubo.energy import brute_force_minimum
from repro.qubo.generators import random_qubo
from repro.qubo.model import QUBOModel


class TestExhaustiveSolver:
    def test_finds_exact_optimum(self, random_qubo_8):
        solution = ExhaustiveSolver().solve(random_qubo_8)
        assert solution.energy == pytest.approx(brute_force_minimum(random_qubo_8).energy)

    def test_guard(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveSolver(max_variables=5).solve(QUBOModel.empty(6))

    def test_metadata(self, small_qubo):
        solution = ExhaustiveSolver().solve(small_qubo)
        assert solution.metadata["evaluated"] == 4
        assert solution.iterations == 4


class TestSimulatedAnnealing:
    def test_finds_planted_optimum(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        solution = SimulatedAnnealingSolver(num_sweeps=150).solve(qubo, rng=4)
        assert np.array_equal(solution.assignment, planted)

    def test_close_to_optimum_on_random_model(self, rng):
        qubo = random_qubo(12, rng=rng)
        exact = brute_force_minimum(qubo)
        solution = SimulatedAnnealingSolver(num_sweeps=300).solve(qubo, rng=5)
        assert solution.energy <= exact.energy + 0.5 * abs(exact.energy)

    def test_reproducible_with_seed(self, random_qubo_8):
        solver = SimulatedAnnealingSolver(num_sweeps=50)
        first = solver.solve(random_qubo_8, rng=7)
        second = solver.solve(random_qubo_8, rng=7)
        assert np.array_equal(first.assignment, second.assignment)

    def test_initial_state_refinement(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        start = planted.copy()
        start[0] = 1 - start[0]
        solver = SimulatedAnnealingSolver(
            num_sweeps=50, initial_temperature=0.5, initial_state=start
        )
        solution = solver.solve(qubo, rng=2)
        assert solution.energy <= qubo.energy(start) + 1e-9

    def test_empty_model(self):
        solution = SimulatedAnnealingSolver().solve(QUBOModel.empty(0))
        assert solution.num_variables == 0

    def test_compute_time_model(self):
        solver = SimulatedAnnealingSolver(num_sweeps=100, time_per_sweep_us=0.2)
        solution = solver.solve(QUBOModel.empty(3), rng=1)
        assert solution.compute_time_us == pytest.approx(20.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_sweeps": 0},
            {"final_temperature": 0.0},
            {"initial_temperature": -1.0},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulatedAnnealingSolver(**kwargs)

    def test_wrong_initial_state_length(self, random_qubo_8):
        solver = SimulatedAnnealingSolver(initial_state=[0, 1])
        with pytest.raises(ConfigurationError):
            solver.solve(random_qubo_8, rng=1)


class TestTabuSearch:
    def test_finds_planted_optimum(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        solution = TabuSearchSolver(max_iterations=200).solve(qubo, rng=3)
        assert np.array_equal(solution.assignment, planted)

    def test_matches_exact_on_small_random(self, rng):
        qubo = random_qubo(10, rng=rng)
        exact = brute_force_minimum(qubo)
        solution = TabuSearchSolver(max_iterations=400, num_restarts=2).solve(qubo, rng=6)
        assert solution.energy == pytest.approx(exact.energy, rel=0.05, abs=0.5)

    def test_restarts_counted(self, random_qubo_8):
        solution = TabuSearchSolver(max_iterations=20, num_restarts=3).solve(random_qubo_8, rng=1)
        assert solution.iterations == 60

    def test_initial_state_used(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        solution = TabuSearchSolver(max_iterations=30, initial_state=planted).solve(qubo, rng=2)
        assert solution.energy <= qubo.energy(planted) + 1e-9

    def test_empty_model(self):
        solution = TabuSearchSolver().solve(QUBOModel.empty(0))
        assert solution.num_variables == 0

    @pytest.mark.parametrize(
        "kwargs", [{"max_iterations": 0}, {"num_restarts": 0}, {"tenure": -1}]
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            TabuSearchSolver(**kwargs)

    def test_wrong_initial_state_length(self, random_qubo_8):
        solver = TabuSearchSolver(initial_state=[1, 0, 1])
        with pytest.raises(ConfigurationError):
            solver.solve(random_qubo_8, rng=1)
