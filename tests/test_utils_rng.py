"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, random_bitstring, spawn_rngs, stable_seed


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        first = ensure_rng(42).random(5)
        second = ensure_rng(42).random(5)
        assert np.allclose(first, second)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(3, 2)
        assert not np.allclose(children[0].random(10), children[1].random(10))

    def test_same_seed_same_family(self):
        first_family = [child.random(3) for child in spawn_rngs(11, 3)]
        second_family = [child.random(3) for child in spawn_rngs(11, 3)]
        for first, second in zip(first_family, second_family):
            assert np.allclose(first, second)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(5), 3)
        assert len(children) == 3


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_order_sensitive(self):
        assert stable_seed(1, 2) != stable_seed(2, 1)

    def test_fits_in_32_bits(self):
        assert 0 <= stable_seed("instance", 99, "64-QAM") < 2 ** 32


class TestRandomBitstring:
    def test_length_and_values(self, rng):
        bits = random_bitstring(rng, 50)
        assert bits.size == 50
        assert set(np.unique(bits)).issubset({0, 1})

    def test_zero_length(self, rng):
        assert random_bitstring(rng, 0).size == 0

    def test_negative_length_raises(self, rng):
        with pytest.raises(ValueError):
            random_bitstring(rng, -1)
