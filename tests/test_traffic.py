"""Tests for repro.wireless.traffic."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import TrafficGenerator


@pytest.fixture
def config():
    return MIMOConfig(num_users=2, modulation="QPSK")


class TestTrafficGenerator:
    def test_deterministic_arrivals(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0)
        uses = generator.generate(5, rng=1)
        arrivals = [use.arrival_time_us for use in uses]
        assert arrivals == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_poisson_arrivals_increase(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0, arrival_process="poisson")
        uses = generator.generate(20, rng=2)
        arrivals = [use.arrival_time_us for use in uses]
        assert all(later >= earlier for earlier, later in zip(arrivals, arrivals[1:]))

    def test_poisson_mean_rate(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0, arrival_process="poisson")
        uses = generator.generate(400, rng=3)
        inter = np.diff([use.arrival_time_us for use in uses])
        assert np.mean(inter) == pytest.approx(10.0, rel=0.2)

    def test_indices_sequential(self, config):
        uses = TrafficGenerator(config).generate(4, rng=1)
        assert [use.index for use in uses] == [0, 1, 2, 3]

    def test_deadlines(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0, turnaround_budget_us=50.0)
        uses = generator.generate(3, rng=1)
        assert all(use.has_deadline for use in uses)
        assert uses[1].deadline_us == pytest.approx(60.0)

    def test_no_deadline_by_default(self, config):
        uses = TrafficGenerator(config).generate(2, rng=1)
        assert not uses[0].has_deadline

    def test_each_use_has_fresh_channel(self, config):
        uses = TrafficGenerator(config).generate(2, rng=1)
        first = uses[0].transmission.instance.channel_matrix
        second = uses[1].transmission.instance.channel_matrix
        assert not np.allclose(first, second)

    def test_offered_load(self, config):
        generator = TrafficGenerator(config, symbol_period_us=4.0)
        assert generator.offered_load_bits_per_us() == pytest.approx(1.0)

    def test_reproducible_stream(self, config):
        first = TrafficGenerator(config).generate(3, rng=9)
        second = TrafficGenerator(config).generate(3, rng=9)
        assert np.allclose(
            first[2].transmission.instance.received, second[2].transmission.instance.received
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"symbol_period_us": 0.0},
            {"arrival_process": "bursty"},
            {"turnaround_budget_us": -1.0},
        ],
    )
    def test_invalid_configuration(self, config, kwargs):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(config, **kwargs)

    def test_negative_count_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(config).generate(-1)
