"""Tests for repro.wireless.traffic."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wireless.mimo import MIMOConfig, simulate_transmission
from repro.wireless.traffic import ChannelUse, TrafficGenerator


@pytest.fixture
def config():
    return MIMOConfig(num_users=2, modulation="QPSK")


@pytest.fixture
def mix(config):
    return [config, MIMOConfig(num_users=3, modulation="16-QAM")]


class TestTrafficGenerator:
    def test_deterministic_arrivals(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0)
        uses = generator.generate(5, rng=1)
        arrivals = [use.arrival_time_us for use in uses]
        assert arrivals == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_poisson_arrivals_increase(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0, arrival_process="poisson")
        uses = generator.generate(20, rng=2)
        arrivals = [use.arrival_time_us for use in uses]
        assert all(later >= earlier for earlier, later in zip(arrivals, arrivals[1:]))

    def test_poisson_mean_rate(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0, arrival_process="poisson")
        uses = generator.generate(400, rng=3)
        inter = np.diff([use.arrival_time_us for use in uses])
        assert np.mean(inter) == pytest.approx(10.0, rel=0.2)

    def test_indices_sequential(self, config):
        uses = TrafficGenerator(config).generate(4, rng=1)
        assert [use.index for use in uses] == [0, 1, 2, 3]

    def test_deadlines(self, config):
        generator = TrafficGenerator(config, symbol_period_us=10.0, turnaround_budget_us=50.0)
        uses = generator.generate(3, rng=1)
        assert all(use.has_deadline for use in uses)
        assert uses[1].deadline_us == pytest.approx(60.0)

    def test_no_deadline_by_default(self, config):
        uses = TrafficGenerator(config).generate(2, rng=1)
        assert not uses[0].has_deadline

    def test_each_use_has_fresh_channel(self, config):
        uses = TrafficGenerator(config).generate(2, rng=1)
        first = uses[0].transmission.instance.channel_matrix
        second = uses[1].transmission.instance.channel_matrix
        assert not np.allclose(first, second)

    def test_offered_load(self, config):
        generator = TrafficGenerator(config, symbol_period_us=4.0)
        assert generator.offered_load_bits_per_us() == pytest.approx(1.0)

    def test_reproducible_stream(self, config):
        first = TrafficGenerator(config).generate(3, rng=9)
        second = TrafficGenerator(config).generate(3, rng=9)
        assert np.allclose(
            first[2].transmission.instance.received, second[2].transmission.instance.received
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"symbol_period_us": 0.0},
            {"arrival_process": "bursty"},
            {"turnaround_budget_us": -1.0},
        ],
    )
    def test_invalid_configuration(self, config, kwargs):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(config, **kwargs)

    def test_negative_count_rejected(self, config):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(config).generate(-1)


class TestHeterogeneousMix:
    def test_cyclic_mix_alternates_configurations(self, mix):
        uses = TrafficGenerator(mix, job_mix="cyclic").generate(4, rng=1)
        assert [use.qubo_variable_count for use in uses] == [4, 12, 4, 12]
        assert [use.modulation for use in uses] == ["QPSK", "16-QAM", "QPSK", "16-QAM"]

    def test_random_mix_draws_from_the_set(self, mix):
        uses = TrafficGenerator(mix, job_mix="random").generate(30, rng=2)
        sizes = {use.qubo_variable_count for use in uses}
        assert sizes == {4, 12}

    def test_single_config_stream_unchanged_by_mix_machinery(self, config):
        # The mix path must not consume extra randomness for a single config:
        # wrapping the config in a list yields the identical stream.
        plain = TrafficGenerator(config).generate(3, rng=9)
        wrapped = TrafficGenerator([config], job_mix="random").generate(3, rng=9)
        assert np.allclose(
            plain[2].transmission.instance.received,
            wrapped[2].transmission.instance.received,
        )

    def test_offered_load_averages_over_mix(self, mix):
        generator = TrafficGenerator(mix, symbol_period_us=4.0)
        # Mean of 4 and 12 bits per channel use over a 4 us period.
        assert generator.offered_load_bits_per_us() == pytest.approx(2.0)

    def test_heterogeneous_flag(self, config, mix):
        assert not TrafficGenerator(config).is_heterogeneous
        assert TrafficGenerator(mix).is_heterogeneous

    @pytest.mark.parametrize("bad", [[], ["QPSK"], "not-a-config"])
    def test_invalid_config_sequences_rejected(self, bad):
        with pytest.raises((ConfigurationError, TypeError)):
            TrafficGenerator(bad)

    def test_invalid_job_mix_rejected(self, mix):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(mix, job_mix="round-robin")


class TestImpairedStreams:
    def test_identity_impairments_leave_the_stream_bitwise_unchanged(self, config):
        from repro.wireless import ChannelImpairments

        plain = TrafficGenerator(config).generate(4, rng=3)
        identity = TrafficGenerator(
            config, impairments=ChannelImpairments()
        ).generate(4, rng=3)
        for a, b in zip(plain, identity):
            assert np.array_equal(
                a.transmission.instance.received, b.transmission.instance.received
            )
            assert np.array_equal(
                a.transmission.instance.channel_matrix,
                b.transmission.instance.channel_matrix,
            )

    def test_temporally_correlated_stream_evolves_smoothly(self, config):
        from repro.wireless import ChannelImpairments

        impairments = ChannelImpairments(temporal_correlation=0.99)
        uses = TrafficGenerator(config, impairments=impairments).generate(2, rng=5)
        first = uses[0].transmission.instance.channel_matrix
        second = uses[1].transmission.instance.channel_matrix
        # Successive blocks at a=0.99 stay close; independent draws do not.
        assert np.linalg.norm(second - first) < 0.5 * np.linalg.norm(first)

    def test_restreaming_the_same_generator_is_reproducible(self, config):
        from repro.wireless import ChannelImpairments

        generator = TrafficGenerator(
            config, impairments=ChannelImpairments(temporal_correlation=0.9)
        )
        first = generator.generate(3, rng=4)
        second = generator.generate(3, rng=4)
        for a, b in zip(first, second):
            assert np.array_equal(
                a.transmission.instance.channel_matrix,
                b.transmission.instance.channel_matrix,
            )

    def test_interleaved_streams_keep_independent_fading_state(self, config):
        from repro.wireless import ChannelImpairments

        generator = TrafficGenerator(
            config, impairments=ChannelImpairments(temporal_correlation=0.9)
        )
        reference = generator.generate(4, rng=4)
        # Interleave two lazy streams of the same generator: each must see
        # its own coherence run, identical to an uninterleaved stream.
        first = generator.stream(4, rng=4)
        second = generator.stream(4, rng=4)
        collected = []
        for _ in range(4):
            collected.append((next(first), next(second)))
        for (a, b), ref in zip(collected, reference):
            for use in (a, b):
                assert np.array_equal(
                    use.transmission.instance.channel_matrix,
                    ref.transmission.instance.channel_matrix,
                )

    def test_mixed_shapes_keep_separate_fading_processes(self, mix):
        from repro.wireless import ChannelImpairments

        impairments = ChannelImpairments(temporal_correlation=0.9)
        uses = TrafficGenerator(mix, impairments=impairments).generate(4, rng=6)
        shapes = {use.transmission.instance.channel_matrix.shape for use in uses}
        assert shapes == {(2, 2), (3, 3)}

    def test_interference_scale_tracks_arrival_time(self, config):
        from repro.wireless import ChannelImpairments

        impairments = ChannelImpairments(interference_power=1.0)
        generator = TrafficGenerator(
            config,
            symbol_period_us=10.0,
            impairments=impairments,
            interference_scale=lambda t_us: 0.0 if t_us < 15.0 else 3.0,
        )
        uses = generator.generate(4, rng=7)
        powers = [use.transmission.interference_power for use in uses]
        assert powers == [0.0, 0.0, 3.0, 3.0]

    def test_interference_scale_requires_impairments(self, config):
        with pytest.raises(ConfigurationError):
            TrafficGenerator(config, interference_scale=lambda t_us: 1.0)

    def test_negative_interference_scale_rejected(self, config):
        from repro.wireless import ChannelImpairments

        generator = TrafficGenerator(
            config,
            impairments=ChannelImpairments(interference_power=1.0),
            interference_scale=lambda t_us: -1.0,
        )
        with pytest.raises(ConfigurationError):
            generator.generate(1, rng=1)

    def test_imperfect_csi_flows_into_the_stream(self, config):
        from repro.wireless import ChannelImpairments

        impairments = ChannelImpairments(csi_error_variance=0.1)
        uses = TrafficGenerator(config, impairments=impairments).generate(2, rng=8)
        for use in uses:
            assert not use.transmission.has_perfect_csi


class TestChannelUseDeadlineValidation:
    def test_deadline_must_exceed_arrival(self, config, rng):
        transmission = simulate_transmission(config, rng=rng)
        with pytest.raises(ConfigurationError):
            ChannelUse(index=0, arrival_time_us=10.0, transmission=transmission, deadline_us=10.0)
        with pytest.raises(ConfigurationError):
            ChannelUse(index=0, arrival_time_us=10.0, transmission=transmission, deadline_us=5.0)

    def test_valid_deadline_accepted(self, config, rng):
        transmission = simulate_transmission(config, rng=rng)
        use = ChannelUse(
            index=0, arrival_time_us=10.0, transmission=transmission, deadline_us=10.5
        )
        assert use.has_deadline
        assert use.qubo_variable_count == 4
