"""Tests for repro.experiments.robustness_study and its caching contract."""

import dataclasses
import pickle

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.robustness_study import (
    ROBUSTNESS_AXES,
    RobustnessRow,
    RobustnessStudyConfig,
    format_robustness_table,
    robustness_tasks,
    run_robustness_study,
    _impairments_for,
)
from repro.parallel import ParallelRunner, ResultCache


@pytest.fixture
def quick_config():
    return RobustnessStudyConfig.quick()


class TestConfigAndTasks:
    def test_tasks_cover_every_axis_point(self, quick_config):
        tasks = robustness_tasks(quick_config)
        expected = sum(
            len(grid)
            for grid in (
                quick_config.correlation_grid,
                quick_config.velocity_grid_mps,
                quick_config.csi_error_grid,
                quick_config.interference_grid,
            )
        )
        assert len(tasks) == expected
        assert {task.key[1] for task in tasks} == set(ROBUSTNESS_AXES)

    def test_shard_config_restricted_to_its_own_point(self, quick_config):
        for task in robustness_tasks(quick_config):
            axis, value = task.key[1], task.key[2]
            config = task.kwargs["config"]
            grids = {
                "correlation": config.correlation_grid,
                "doppler": config.velocity_grid_mps,
                "csi-error": config.csi_error_grid,
                "interference": config.interference_grid,
            }
            assert grids.pop(axis) == (value,)
            assert all(grid == () for grid in grids.values())

    def test_shard_rejects_multi_point_grids(self, quick_config):
        with pytest.raises(ConfigurationError):
            robustness_tasks(quick_config)[0].fn(
                config=quick_config, axis="correlation"
            )

    def test_impairments_for_each_axis(self, quick_config):
        assert _impairments_for(quick_config, "correlation", 0.5).rx_correlation == 0.5
        doppler = _impairments_for(quick_config, "doppler", 30.0)
        assert 0.0 < doppler.temporal_correlation < 1.0
        assert _impairments_for(quick_config, "csi-error", 0.1).csi_error_variance == 0.1
        assert (
            _impairments_for(quick_config, "interference", 2.0).interference_power == 2.0
        )
        with pytest.raises(ConfigurationError):
            _impairments_for(quick_config, "rainfall", 1.0)


class TestStudy:
    def test_quick_run_structure(self, quick_config):
        rows = run_robustness_study(quick_config)
        assert len(rows) == len(robustness_tasks(quick_config))
        for row in rows:
            assert isinstance(row, RobustnessRow)
            assert 0.0 <= row.hybrid_ber <= 1.0
            assert 0.0 <= row.hybrid_optimum_rate <= 1.0
            assert row.hybrid_time_us > 0
            assert row.channel_uses == quick_config.channel_uses_per_point

    def test_parallel_matches_serial_bitwise(self, quick_config):
        serial = run_robustness_study(quick_config)
        parallel = run_robustness_study(quick_config, workers=2)
        assert serial == parallel

    def test_batch_size_invariant(self, quick_config):
        whole = run_robustness_study(quick_config)
        chunked = run_robustness_study(
            dataclasses.replace(quick_config, batch_size=1)
        )
        assert whole == chunked

    def test_format_table_lists_every_axis(self, quick_config):
        rows = run_robustness_study(quick_config)
        table = format_robustness_table(rows)
        for label in ("spatial correlation", "velocity", "CSI error", "interference"):
            assert label in table


class TestSelectiveInvalidation:
    """The caching contract the robustness study relies on.

    Editing one grid point of one axis must re-key exactly that point:
    every untouched point's fingerprint — and therefore its cache entry —
    stays stable.
    """

    def test_fingerprints_stable_when_an_untouched_point_changes(self, quick_config):
        base = {
            task.key: task.fingerprint() for task in robustness_tasks(quick_config)
        }
        edited = dataclasses.replace(
            quick_config,
            csi_error_grid=quick_config.csi_error_grid[:-1] + (0.7,),
        )
        changed = {task.key: task.fingerprint() for task in robustness_tasks(edited)}

        stale = ("robustness", "csi-error", quick_config.csi_error_grid[-1])
        fresh = ("robustness", "csi-error", 0.7)
        assert stale in base and stale not in changed
        assert fresh in changed and fresh not in base
        for key, fingerprint in changed.items():
            if key != fresh:
                assert base[key] == fingerprint, f"untouched point {key} re-keyed"

    def test_batch_size_is_outside_the_fingerprint(self, quick_config):
        base = [task.fingerprint() for task in robustness_tasks(quick_config)]
        rechunked = [
            task.fingerprint()
            for task in robustness_tasks(
                dataclasses.replace(quick_config, batch_size=1)
            )
        ]
        assert base == rechunked

    def test_cached_rerun_recomputes_only_the_edited_point(
        self, quick_config, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(cache=cache)
        first = runner.run_sharded(robustness_tasks(quick_config))
        assert runner.last_run.cache_misses == len(first)

        edited = dataclasses.replace(
            quick_config,
            interference_grid=quick_config.interference_grid[:-1] + (5.0,),
        )
        cache.reset_counters()
        second = runner.run_sharded(robustness_tasks(edited))
        assert runner.last_run.cache_misses == 1
        assert runner.last_run.cache_hits == len(second) - 1
        # The edited point is the sweep's last task; every untouched row
        # replays bitwise from the cache.
        assert second[:-1] == first[:-1]
        assert second[-1].value == 5.0

    def test_corrupt_cache_entry_recomputes_that_point(self, quick_config, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = ParallelRunner(cache=cache)
        tasks = robustness_tasks(quick_config)
        first = runner.run_sharded(tasks)

        # Truncate one entry mid-pickle and scribble over another: both
        # classes of damage must evict-and-recompute, not crash or replay.
        truncated = cache._path(tasks[0].fingerprint())
        truncated.write_bytes(truncated.read_bytes()[:10])
        scribbled = cache._path(tasks[1].fingerprint())
        scribbled.write_bytes(b"not a pickle at all")

        cache.reset_counters()
        second = runner.run_sharded(tasks)
        assert second == first
        assert runner.last_run.cache_misses == 2
        assert runner.last_run.cache_hits == len(tasks) - 2
        # The evicted entries were rewritten with good values.
        assert pickle.loads(truncated.read_bytes()) == first[0]
        assert pickle.loads(scribbled.read_bytes()) == first[1]


class TestDegradation:
    """Impairments must actually hurt: the physics smoke test."""

    def test_csi_error_degrades_or_preserves_ber(self):
        config = dataclasses.replace(
            RobustnessStudyConfig.quick(), csi_error_grid=(0.0, 0.5)
        )
        rows = {
            row.value: row
            for row in run_robustness_study(config)
            if row.axis == "csi-error"
        }
        assert rows[0.5].hybrid_ber >= rows[0.0].hybrid_ber

    def test_zero_points_are_clean_baselines(self, quick_config):
        for axis in ("correlation", "csi-error", "interference"):
            assert _impairments_for(quick_config, axis, 0.0).is_identity
        # Zero velocity is not the identity but the *static* channel: the
        # Jakes coefficient at v=0 is 1, so a stationary user's blocks cohere.
        static = _impairments_for(quick_config, "doppler", 0.0)
        assert static.temporal_correlation == pytest.approx(1.0)
