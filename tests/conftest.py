"""Shared pytest fixtures.

Fixtures keep test problems tiny (a handful of QUBO variables, a few dozen
anneal reads) so the full suite runs in well under a minute, while still
exercising the same code paths the benchmarks use at full scale.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.annealing import QuantumAnnealerSimulator, SpinVectorMonteCarloBackend
from repro.experiments.instances import synthesize_instance
from repro.qubo import QUBOModel, planted_solution_qubo, random_qubo
from repro.transform import mimo_to_qubo
from repro.wireless import MIMOConfig, simulate_transmission


@pytest.fixture(autouse=True)
def _reset_repro_logging():
    """Undo `configure_logging` side effects between tests.

    The CLI configures the ``repro`` logger with its own handler and
    ``propagate = False``; left in place that would silently break ``caplog``
    (which listens on the root logger) for every test that runs after any
    ``cli.main(...)`` call.
    """
    yield
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry_handler", False):
            root.removeHandler(handler)
    root.propagate = True
    root.setLevel(logging.NOTSET)


@pytest.fixture
def rng():
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_qubo():
    """A tiny hand-written QUBO with a known unique ground state.

    E(q) = -2 q0 + 1 q1 + 3 q0 q1 has minimum -2 at (1, 0).
    """
    matrix = np.array([[-2.0, 3.0], [0.0, 1.0]])
    return QUBOModel(coefficients=matrix)


@pytest.fixture
def random_qubo_8(rng):
    """A dense random 8-variable QUBO."""
    return random_qubo(8, rng=rng)


@pytest.fixture
def planted_qubo_10():
    """A 10-variable QUBO whose unique ground state is known by construction."""
    planted = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1], dtype=np.int8)
    return planted_solution_qubo(planted, coupling_strength=0.5, field_strength=1.0, rng=3), planted


@pytest.fixture
def mimo_transmission_qpsk(rng):
    """A 3-user QPSK noiseless transmission (6 QUBO variables)."""
    config = MIMOConfig(num_users=3, modulation="QPSK")
    return simulate_transmission(config, rng=rng)


@pytest.fixture
def mimo_encoding_16qam(rng):
    """A 3-user 16-QAM transmission and its QUBO encoding (12 variables)."""
    config = MIMOConfig(num_users=3, modulation="16-QAM")
    transmission = simulate_transmission(config, rng=rng)
    return transmission, mimo_to_qubo(transmission.instance)


@pytest.fixture
def instance_bundle_small():
    """A small synthesized instance with exhaustively verified ground truth."""
    return synthesize_instance(2, "16-QAM", seed=7, verify_exhaustively=True)


@pytest.fixture
def fast_sampler():
    """An annealer simulator configured for speed (few sweeps) in tests."""
    backend = SpinVectorMonteCarloBackend(sweeps_per_microsecond=16.0)
    return QuantumAnnealerSimulator(backend=backend, seed=99)
