"""Tests for repro.wireless.metrics."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.wireless.metrics import bit_error_rate, error_vector_magnitude, symbol_error_rate


class TestBitErrorRate:
    def test_zero_errors(self):
        assert bit_error_rate([0, 1, 1, 0], [0, 1, 1, 0]) == 0.0

    def test_all_errors(self):
        assert bit_error_rate([0, 0], [1, 1]) == 1.0

    def test_partial(self):
        assert bit_error_rate([0, 1, 0, 1], [0, 1, 1, 1]) == pytest.approx(0.25)

    def test_empty(self):
        assert bit_error_rate([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(DimensionError):
            bit_error_rate([0, 1], [0])


class TestSymbolErrorRate:
    def test_exact_match(self):
        symbols = np.array([1 + 1j, -1 - 1j])
        assert symbol_error_rate(symbols, symbols.copy()) == 0.0

    def test_small_numerical_noise_ignored(self):
        symbols = np.array([1 + 1j, -1 - 1j])
        assert symbol_error_rate(symbols, symbols + 1e-12) == 0.0

    def test_detects_errors(self):
        assert symbol_error_rate([1 + 1j, -1 + 1j], [1 + 1j, 1 + 1j]) == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(DimensionError):
            symbol_error_rate([1j], [1j, 2j])


class TestEVM:
    def test_zero_for_identical(self):
        assert error_vector_magnitude([1 + 0j, 0 + 1j], [1 + 0j, 0 + 1j]) == 0.0

    def test_known_value(self):
        # One symbol off by its own magnitude -> EVM = sqrt(1/2).
        assert error_vector_magnitude([1 + 0j, 1 + 0j], [1 + 0j, 0 + 0j]) == pytest.approx(
            np.sqrt(0.5)
        )

    def test_zero_power_reference_rejected(self):
        with pytest.raises(ValueError):
            error_vector_magnitude([0j], [1 + 0j])

    def test_length_mismatch(self):
        with pytest.raises(DimensionError):
            error_vector_magnitude([1j, 2j], [1j])
