"""Tests for repro.annealing.device."""

import numpy as np
import pytest

from repro.annealing.device import AnnealingFunctions, DeviceModel
from repro.annealing.schedule import forward_anneal_schedule
from repro.exceptions import ConfigurationError
from repro.qubo.generators import random_ising


class TestAnnealingFunctions:
    def test_endpoints(self):
        functions = AnnealingFunctions()
        assert functions.transverse_energy(0.0) == pytest.approx(functions.transverse_max_ghz)
        assert functions.transverse_energy(1.0) == pytest.approx(0.0)
        assert functions.problem_energy(0.0) == pytest.approx(0.0)
        assert functions.problem_energy(1.0) == pytest.approx(functions.problem_max_ghz)

    def test_monotonicity(self):
        functions = AnnealingFunctions()
        grid = np.linspace(0, 1, 11)
        transverse = [functions.transverse_energy(s) for s in grid]
        problem = [functions.problem_energy(s) for s in grid]
        assert all(later <= earlier for earlier, later in zip(transverse, transverse[1:]))
        assert all(later >= earlier for earlier, later in zip(problem, problem[1:]))

    def test_clipping(self):
        functions = AnnealingFunctions()
        assert functions.transverse_energy(-0.5) == functions.transverse_energy(0.0)
        assert functions.problem_energy(1.5) == functions.problem_energy(1.0)

    def test_relative_forms(self):
        functions = AnnealingFunctions(transverse_max_ghz=6.0, problem_max_ghz=12.0)
        assert functions.relative_problem(1.0) == pytest.approx(1.0)
        assert functions.relative_transverse(0.0) == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            AnnealingFunctions(transverse_max_ghz=0.0)
        with pytest.raises(ConfigurationError):
            AnnealingFunctions(transverse_exponent=-1.0)


class TestDeviceModel:
    def test_defaults(self):
        device = DeviceModel()
        assert device.num_qubits == 2048
        assert device.relative_temperature == pytest.approx(
            device.temperature_ghz / device.annealing.problem_max_ghz
        )

    def test_normalisation_scale(self, rng):
        ising = random_ising(5, coupling_scale=3.0, field_scale=5.0, rng=rng)
        device = DeviceModel()
        scale = device.normalisation_scale(ising)
        scaled_fields = ising.fields / scale
        scaled_couplings = ising.couplings / scale
        h_bound = max(abs(device.h_range[0]), abs(device.h_range[1]))
        assert np.max(np.abs(scaled_fields)) <= h_bound + 1e-9
        j_bound = max(abs(device.j_range[0]), abs(device.j_range[1]))
        assert np.max(np.abs(scaled_couplings)) <= j_bound + 1e-9

    def test_normalisation_of_empty_model(self):
        from repro.qubo.ising import IsingModel

        device = DeviceModel()
        assert device.normalisation_scale(IsingModel(fields=[], couplings=np.zeros((0, 0)))) > 0

    def test_control_noise_disabled_by_default(self, rng):
        device = DeviceModel()
        fields = rng.standard_normal(4)
        couplings = np.triu(rng.standard_normal((4, 4)), 1)
        noisy_fields, noisy_couplings = device.apply_control_noise(fields, couplings, rng)
        assert noisy_fields is fields
        assert noisy_couplings is couplings

    def test_control_noise_perturbs(self, rng):
        device = DeviceModel(field_noise_sigma=0.05, coupling_noise_sigma=0.05)
        fields = np.zeros(6)
        couplings = np.triu(np.ones((6, 6)), 1)
        noisy_fields, noisy_couplings = device.apply_control_noise(fields, couplings, rng)
        assert not np.allclose(noisy_fields, fields)
        assert not np.allclose(noisy_couplings, couplings)
        # Only existing couplers are perturbed.
        assert np.allclose(np.tril(noisy_couplings), 0.0)

    def test_qpu_access_time(self):
        device = DeviceModel(
            programming_time_us=100.0, readout_time_us=10.0, inter_sample_delay_us=5.0
        )
        schedule = forward_anneal_schedule(2.0)
        assert device.qpu_access_time_us(schedule, 10) == pytest.approx(100.0 + 10 * 17.0)

    def test_qpu_access_time_invalid_reads(self):
        with pytest.raises(ConfigurationError):
            DeviceModel().qpu_access_time_us(forward_anneal_schedule(1.0), 0)

    def test_describe(self):
        description = DeviceModel().describe()
        assert description["name"] == "simulated-2000Q"
        assert "relative_temperature" in description

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_qubits": 0},
            {"temperature_ghz": -1.0},
            {"field_noise_sigma": -0.1},
            {"programming_time_us": -5.0},
        ],
    )
    def test_invalid_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            DeviceModel(**kwargs)
