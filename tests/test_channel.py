"""Tests for repro.wireless.channel."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DimensionError
from repro.wireless.channel import (
    IdentityChannel,
    RayleighFadingChannel,
    UnitGainRandomPhaseChannel,
    apply_channel,
    awgn,
    noise_variance_for_snr,
)


class TestUnitGainRandomPhaseChannel:
    def test_shape(self, rng):
        matrix = UnitGainRandomPhaseChannel().sample(4, 6, rng)
        assert matrix.shape == (4, 6)

    def test_unit_magnitude(self, rng):
        matrix = UnitGainRandomPhaseChannel().sample(5, 5, rng)
        assert np.allclose(np.abs(matrix), 1.0)

    def test_reproducible_with_seed(self):
        first = UnitGainRandomPhaseChannel().sample(3, 3, 11)
        second = UnitGainRandomPhaseChannel().sample(3, 3, 11)
        assert np.allclose(first, second)

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ConfigurationError):
            UnitGainRandomPhaseChannel().sample(0, 3, rng)

    def test_sample_many(self, rng):
        stack = UnitGainRandomPhaseChannel().sample_many(7, 2, 3, rng)
        assert stack.shape == (7, 2, 3)


class TestRayleighChannel:
    def test_average_power(self, rng):
        matrix = RayleighFadingChannel().sample(200, 200, rng)
        assert np.mean(np.abs(matrix) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_custom_power(self, rng):
        matrix = RayleighFadingChannel(average_power=4.0).sample(100, 100, rng)
        assert np.mean(np.abs(matrix) ** 2) == pytest.approx(4.0, rel=0.1)

    def test_invalid_power(self):
        with pytest.raises(ConfigurationError):
            RayleighFadingChannel(average_power=0.0)


class TestIdentityChannel:
    def test_square(self, rng):
        assert np.allclose(IdentityChannel().sample(3, 3, rng), np.eye(3))

    def test_rectangular(self, rng):
        matrix = IdentityChannel().sample(4, 2, rng)
        assert np.allclose(matrix[:2, :], np.eye(2))
        assert np.allclose(matrix[2:, :], 0.0)


class TestNoise:
    def test_zero_variance_is_exact_zero(self):
        assert np.all(awgn(5, 0.0) == 0)

    def test_variance(self, rng):
        noise = awgn(20000, 2.0, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_negative_variance_rejected(self):
        with pytest.raises(ValueError):
            awgn(3, -1.0)

    def test_noise_variance_for_snr(self):
        # SNR 0 dB with 4 users and unit symbol energy -> variance 4.
        assert noise_variance_for_snr(0.0, 1.0, 4) == pytest.approx(4.0)

    def test_noise_variance_decreases_with_snr(self):
        assert noise_variance_for_snr(20.0) < noise_variance_for_snr(0.0)


class TestApplyChannel:
    def test_noiseless_product(self, rng):
        channel = UnitGainRandomPhaseChannel().sample(3, 3, rng)
        symbols = rng.standard_normal(3) + 1j * rng.standard_normal(3)
        received = apply_channel(channel, symbols, 0.0)
        assert np.allclose(received, channel @ symbols)

    def test_dimension_mismatch(self, rng):
        channel = UnitGainRandomPhaseChannel().sample(3, 3, rng)
        with pytest.raises(DimensionError):
            apply_channel(channel, np.ones(4))

    def test_non_2d_channel_rejected(self):
        with pytest.raises(DimensionError):
            apply_channel(np.ones(3), np.ones(3))
