"""Tests for repro.qubo.model."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.qubo.model import QUBOModel


class TestConstruction:
    def test_upper_triangular_folding(self):
        matrix = np.array([[1.0, 0.0], [2.0, -1.0]])
        model = QUBOModel(coefficients=matrix)
        assert model.coefficients[0, 1] == pytest.approx(2.0)
        assert model.coefficients[1, 0] == 0.0

    def test_symmetric_input_folds(self):
        matrix = np.array([[0.0, 1.5], [1.5, 0.0]])
        model = QUBOModel(coefficients=matrix)
        assert model.coupling(0, 1) == pytest.approx(3.0)

    def test_rejects_non_square(self):
        with pytest.raises(DimensionError):
            QUBOModel(coefficients=np.zeros((2, 3)))

    def test_default_variable_names(self, small_qubo):
        assert small_qubo.variable_names == ("q0", "q1")

    def test_name_length_mismatch(self):
        with pytest.raises(DimensionError):
            QUBOModel(coefficients=np.zeros((2, 2)), variable_names=("a",))

    def test_from_dict(self):
        model = QUBOModel.from_dict({0: -1.0}, {(0, 1): 2.0, (2, 1): -0.5})
        assert model.num_variables == 3
        assert model.coupling(0, 1) == pytest.approx(2.0)
        assert model.coupling(1, 2) == pytest.approx(-0.5)
        assert model.linear[0] == pytest.approx(-1.0)

    def test_from_dict_diagonal_quadratic_merges(self):
        model = QUBOModel.from_dict({0: 1.0}, {(0, 0): 2.0})
        assert model.linear[0] == pytest.approx(3.0)

    def test_empty(self):
        model = QUBOModel.empty(4)
        assert model.num_variables == 4
        assert model.energy([1, 1, 1, 1]) == 0.0


class TestEnergy:
    def test_known_energies(self, small_qubo):
        # E = -2 q0 + q1 + 3 q0 q1
        assert small_qubo.energy([0, 0]) == 0.0
        assert small_qubo.energy([1, 0]) == -2.0
        assert small_qubo.energy([0, 1]) == 1.0
        assert small_qubo.energy([1, 1]) == 2.0

    def test_offset_added(self):
        model = QUBOModel(coefficients=np.array([[1.0]]), offset=5.0)
        assert model.energy([0]) == 5.0
        assert model.energy([1]) == 6.0

    def test_batch_energies_match(self, random_qubo_8, rng):
        batch = rng.integers(0, 2, size=(16, 8))
        energies = random_qubo_8.energies(batch)
        for row, energy in zip(batch, energies):
            assert energy == pytest.approx(random_qubo_8.energy(row))

    def test_wrong_length_rejected(self, small_qubo):
        with pytest.raises(DimensionError):
            small_qubo.energy([0, 1, 1])

    def test_energy_delta_flip(self, random_qubo_8, rng):
        state = rng.integers(0, 2, size=8).astype(np.int8)
        for index in range(8):
            flipped = state.copy()
            flipped[index] = 1 - flipped[index]
            expected = random_qubo_8.energy(flipped) - random_qubo_8.energy(state)
            assert random_qubo_8.energy_delta_flip(state, index) == pytest.approx(expected)

    def test_energy_delta_flip_bad_index(self, small_qubo):
        with pytest.raises(IndexError):
            small_qubo.energy_delta_flip(np.array([0, 1]), 5)


class TestIntrospection:
    def test_linear_and_quadratic(self, small_qubo):
        assert np.allclose(small_qubo.linear, [-2.0, 1.0])
        assert small_qubo.quadratic == {(0, 1): 3.0}

    def test_coupling_order_insensitive(self, small_qubo):
        assert small_qubo.coupling(1, 0) == small_qubo.coupling(0, 1)

    def test_neighbourhood(self, small_qubo):
        assert small_qubo.neighbourhood(0) == {1: 3.0}

    def test_density(self):
        dense = QUBOModel(coefficients=np.triu(np.ones((4, 4)), k=1))
        assert dense.density() == pytest.approx(1.0)
        assert QUBOModel.empty(4).density() == 0.0

    def test_max_abs_coefficient(self, small_qubo):
        assert small_qubo.max_abs_coefficient() == 3.0


class TestAlgebra:
    def test_add(self, small_qubo):
        doubled = small_qubo.add(small_qubo)
        assert doubled.energy([1, 1]) == pytest.approx(2 * small_qubo.energy([1, 1]))

    def test_add_size_mismatch(self, small_qubo):
        with pytest.raises(DimensionError):
            small_qubo.add(QUBOModel.empty(3))

    def test_scale(self, small_qubo):
        scaled = small_qubo.scale(0.5)
        assert scaled.energy([1, 0]) == pytest.approx(-1.0)

    def test_fix_variables_energy_consistency(self, random_qubo_8, rng):
        assignments = {1: 1, 4: 0, 6: 1}
        reduced = random_qubo_8.fix_variables(assignments)
        assert reduced.num_variables == 5
        free_bits = rng.integers(0, 2, size=5)
        full = np.zeros(8, dtype=int)
        remaining = [index for index in range(8) if index not in assignments]
        for position, index in enumerate(remaining):
            full[index] = free_bits[position]
        for index, value in assignments.items():
            full[index] = value
        assert reduced.energy(free_bits) == pytest.approx(random_qubo_8.energy(full))

    def test_fix_variables_invalid_value(self, small_qubo):
        with pytest.raises(ValueError):
            small_qubo.fix_variables({0: 2})

    def test_fix_variables_invalid_index(self, small_qubo):
        with pytest.raises(IndexError):
            small_qubo.fix_variables({9: 1})

    def test_fix_preserves_names(self):
        model = QUBOModel(coefficients=np.zeros((3, 3)), variable_names=("a", "b", "c"))
        reduced = model.fix_variables({1: 0})
        assert reduced.variable_names == ("a", "c")

    def test_relabel(self, small_qubo):
        renamed = small_qubo.relabel(["x", "y"])
        assert renamed.variable_names == ("x", "y")

    def test_subqubo(self, random_qubo_8):
        sub = random_qubo_8.subqubo([2, 5])
        assert sub.num_variables == 2
        assert sub.coupling(0, 1) == pytest.approx(random_qubo_8.coupling(2, 5))

    def test_equality(self, small_qubo):
        clone = QUBOModel(coefficients=small_qubo.coefficients.copy())
        assert clone == small_qubo
        assert clone != small_qubo.scale(2.0)
