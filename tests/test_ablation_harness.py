"""Property-based and example tests of the declarative ablation harness.

The hypothesis suite (fixed, derandomized profile) pins the determinism
contract of :mod:`repro.ablation`:

* cartesian expansion has exactly ``prod(len(axis_i))`` unique points;
* subsampling is a deterministic, seed-keyed subset that grows monotonically
  with ``sample_count``;
* point fingerprints are injective on distinct points, independent of the
  spec's display name and of mapping iteration order, and stable across
  process restarts (pinned hex constant + subprocess check);
* the Pareto front is exactly the non-dominated set, direction-aware.

The example tests cover the execution layer: serial == sharded table rows at
any worker count, warm-cache reruns, bitwise subsumption of the imperative
fig8/robustness drivers, metric selection, and spec/compile validation
errors that name the offending key.
"""

import dataclasses
import json
import math
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ablation import (
    AblationSpec,
    ParetoExclusionWarning,
    available_targets,
    compile_config,
    expand_spec,
    format_study_table,
    get_target,
    pareto_front,
    point_fingerprint,
    run_study,
    spec_from_config,
)
from repro.ablation.targets import AnnealHPOConfig
from repro.exceptions import ConfigurationError
from repro.parallel import ResultCache

# Fixed, derandomized profile: the suite must behave identically on every
# run (CI and local), like the rest of the determinism tests.
_settings = settings(
    max_examples=50,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

_scalar = st.one_of(
    st.integers(min_value=-99, max_value=99),
    st.floats(min_value=-99.0, max_value=99.0, allow_nan=False, allow_infinity=False),
    st.sampled_from(["lo", "mid", "hi"]),
    st.booleans(),
)

_axes = st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    st.lists(_scalar, min_size=1, max_size=4),
    min_size=1,
    max_size=3,
)


def _spec(axes, **overrides) -> AblationSpec:
    kwargs = {"name": "prop", "experiment": "synthetic", "axes": axes}
    kwargs.update(overrides)
    return AblationSpec(**kwargs)


class TestCartesianExpansion:
    @given(axes=_axes)
    @_settings
    def test_count_is_product_of_axis_sizes(self, axes):
        spec = _spec(axes)
        points = expand_spec(spec)
        assert len(points) == spec.num_cartesian_points()
        product = math.prod(len(values) for _, values in spec.axes)
        assert len(points) == product

    @given(axes=_axes)
    @_settings
    def test_fingerprints_are_unique(self, axes):
        points = expand_spec(_spec(axes))
        assert len({point.fingerprint for point in points}) == len(points)

    @given(axes=_axes)
    @_settings
    def test_expansion_is_deterministic(self, axes):
        spec = _spec(axes)
        assert expand_spec(spec) == expand_spec(spec)

    @given(axes=_axes)
    @_settings
    def test_duplicated_axis_values_collapse(self, axes):
        doubled = {name: list(values) + list(values) for name, values in axes.items()}
        assert expand_spec(_spec(doubled)) == expand_spec(_spec(axes))

    @given(axes=_axes)
    @_settings
    def test_axis_insertion_order_is_irrelevant(self, axes):
        reversed_axes = dict(reversed(list(axes.items())))
        assert expand_spec(_spec(reversed_axes)) == expand_spec(_spec(axes))

    @given(axes=_axes)
    @_settings
    def test_every_point_assigns_every_axis_a_declared_value(self, axes):
        spec = _spec(axes)
        declared = {name: set(map(repr, values)) for name, values in spec.axes}
        for point in expand_spec(spec):
            assignments = dict(point.assignments)
            assert set(assignments) == set(spec.axis_names())
            for name, value in assignments.items():
                assert repr(value) in declared[name]


class TestSubsampling:
    @given(axes=_axes, count=st.integers(min_value=1, max_value=12), seed=st.integers(0, 999))
    @_settings
    def test_subsample_is_subset_in_expansion_order(self, axes, count, seed):
        full = expand_spec(_spec(axes))
        sub = expand_spec(_spec(axes, strategy="subsample", sample_count=count, sample_seed=seed))
        assert len(sub) == min(count, len(full))
        positions = [full.index(point) for point in sub]
        assert positions == sorted(positions)

    @given(axes=_axes, count=st.integers(min_value=1, max_value=12), seed=st.integers(0, 999))
    @_settings
    def test_subsample_is_deterministic(self, axes, count, seed):
        spec = _spec(axes, strategy="subsample", sample_count=count, sample_seed=seed)
        assert expand_spec(spec) == expand_spec(spec)

    @given(
        axes=_axes,
        small=st.integers(min_value=1, max_value=6),
        extra=st.integers(min_value=0, max_value=6),
        seed=st.integers(0, 999),
    )
    @_settings
    def test_growing_sample_count_only_adds_points(self, axes, small, extra, seed):
        fewer = expand_spec(
            _spec(axes, strategy="subsample", sample_count=small, sample_seed=seed),
        )
        more = expand_spec(
            _spec(axes, strategy="subsample", sample_count=small + extra, sample_seed=seed),
        )
        assert {point.fingerprint for point in fewer} <= {point.fingerprint for point in more}

    @given(axes=_axes, budget=st.integers(min_value=1, max_value=12))
    @_settings
    def test_budget_keeps_the_expansion_prefix(self, axes, budget):
        full = expand_spec(_spec(axes))
        capped = expand_spec(_spec(axes, budget=budget))
        assert capped == full[:budget]


class TestFingerprints:
    @given(axes=_axes)
    @_settings
    def test_study_name_does_not_rekey_points(self, axes):
        left = expand_spec(_spec(axes, name="one"))
        right = expand_spec(_spec(axes, name="two"))
        assert [p.fingerprint for p in left] == [p.fingerprint for p in right]

    @given(axes=_axes, preset=st.sampled_from(["quick", "paper"]))
    @_settings
    def test_preset_rekeys_every_point(self, axes, preset):
        default = expand_spec(_spec(axes))
        other = expand_spec(_spec(axes, preset=preset))
        assert not ({p.fingerprint for p in default} & {p.fingerprint for p in other})

    @given(
        axes=_axes,
        base_value=st.integers(min_value=-99, max_value=99),
    )
    @_settings
    def test_base_overrides_rekey_every_point(self, axes, base_value):
        plain = expand_spec(_spec(axes))
        based = expand_spec(_spec(axes, base={"epsilon": base_value}))
        assert not ({p.fingerprint for p in plain} & {p.fingerprint for p in based})

    @given(data=st.data())
    @_settings
    def test_injective_on_distinct_assignments(self, data):
        axes = data.draw(_axes)
        spec = _spec(axes)
        points = expand_spec(spec)
        i = data.draw(st.integers(0, len(points) - 1))
        j = data.draw(st.integers(0, len(points) - 1))
        left, right = points[i], points[j]
        same = point_fingerprint(spec, dict(left.assignments)) == point_fingerprint(
            spec, dict(right.assignments)
        )
        assert same == (i == j)


# A pinned spec/point: the hex constant asserts fingerprints never depend on
# process state (PYTHONHASHSEED, import order, dict iteration, ...).
_PINNED_FINGERPRINT = "f2f4016b41d49f4b84e2a65582a5460c72dbb3895b11c1bc2cc0f74cd17fc764"
_PINNED_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from repro.ablation.spec import AblationSpec, point_fingerprint
spec = AblationSpec(
    name="pinned", experiment="anneal-hpo", preset="quick",
    base={{"num_restarts": 3}}, axes={{"num_sweeps": (8, 16)}},
)
print(point_fingerprint(spec, {{"num_sweeps": 8}}))
"""


class TestFingerprintRestartStability:
    def _pinned_spec(self):
        return AblationSpec(
            name="pinned",
            experiment="anneal-hpo",
            preset="quick",
            base={"num_restarts": 3},
            axes={"num_sweeps": (8, 16)},
        )

    def test_matches_pinned_constant(self):
        actual = point_fingerprint(self._pinned_spec(), {"num_sweeps": 8})
        assert actual == _PINNED_FINGERPRINT

    def test_stable_across_process_restarts(self):
        import repro

        src = str(next(iter(repro.__path__)) + "/..")
        snippet = _PINNED_SNIPPET.format(src=src)
        outputs = {
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONHASHSEED": str(seed)},
            ).stdout.strip()
            for seed in (0, 1)
        }
        assert outputs == {_PINNED_FINGERPRINT}


_objectives = st.lists(
    st.tuples(st.sampled_from(["x", "y", "z"]), st.sampled_from(["min", "max"])),
    min_size=1,
    max_size=3,
    unique_by=lambda pair: pair[0],
)

_metric_maps = st.lists(
    st.fixed_dictionaries(
        {
            "x": st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            "y": st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            "z": st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        }
    ),
    min_size=1,
    max_size=8,
)


def _dominates(a, b, objectives):
    oriented_a = [a[m] if d == "min" else -a[m] for m, d in objectives]
    oriented_b = [b[m] if d == "min" else -b[m] for m, d in objectives]
    return all(x <= y for x, y in zip(oriented_a, oriented_b)) and any(
        x < y for x, y in zip(oriented_a, oriented_b)
    )


class TestParetoProperties:
    @given(maps=_metric_maps, objectives=_objectives)
    @_settings
    def test_front_is_exactly_the_non_dominated_set(self, maps, objectives):
        ids = [f"p{i}" for i in range(len(maps))]
        front, exclusions = pareto_front(maps, objectives, ids)
        assert not exclusions
        assert front  # finite inputs always leave at least one survivor
        on_front = set(front)
        for i, candidate in enumerate(maps):
            dominated = any(
                _dominates(maps[j], candidate, objectives)
                for j in range(len(maps))
                if j != i
            )
            assert (i in on_front) == (not dominated)

    @given(maps=_metric_maps, objectives=_objectives)
    @_settings
    def test_direction_flip_on_negated_metrics_preserves_front(self, maps, objectives):
        ids = [f"p{i}" for i in range(len(maps))]
        front, _ = pareto_front(maps, objectives, ids)
        negated = [{m: -v for m, v in row.items()} for row in maps]
        flipped = [(m, "max" if d == "min" else "min") for m, d in objectives]
        mirror, _ = pareto_front(negated, flipped, ids)
        assert front == mirror


class TestParetoEdgeCases:
    def test_single_point_is_the_front(self):
        front, exclusions = pareto_front([{"x": 1.0}], [("x", "min")], ["only"])
        assert front == [0]
        assert exclusions == []

    def test_ties_all_stay_on_the_front(self):
        maps = [{"x": 1.0, "y": 2.0}, {"x": 1.0, "y": 2.0}, {"x": 0.5, "y": 3.0}]
        front, _ = pareto_front(maps, [("x", "min"), ("y", "min")], ["a", "b", "c"])
        assert front == [0, 1, 2]

    def test_nan_metric_is_excluded_with_warning(self):
        maps = [{"x": float("nan")}, {"x": 2.0}]
        with pytest.warns(ParetoExclusionWarning, match="non-finite"):
            front, exclusions = pareto_front(maps, [("x", "min")], ["bad", "good"])
        assert front == [1]
        assert [e.reason for e in exclusions] == ["non-finite"]
        assert exclusions[0].point_id == "bad"

    def test_missing_metric_is_excluded_with_warning(self):
        maps = [{"y": 1.0}, {"x": 2.0}]
        with pytest.warns(ParetoExclusionWarning, match="missing"):
            front, exclusions = pareto_front(maps, [("x", "min")], ["bad", "good"])
        assert front == [1]
        assert exclusions[0].metric == "x"
        assert exclusions[0].reason == "missing"

    def test_all_points_excluded_leaves_empty_front(self):
        maps = [{"x": float("inf")}, {"x": float("nan")}]
        with pytest.warns(ParetoExclusionWarning):
            front, exclusions = pareto_front(maps, [("x", "min")], ["a", "b"])
        assert front == []
        assert len(exclusions) == 2

    def test_empty_objectives_rejected(self):
        with pytest.raises(ConfigurationError, match="objective"):
            pareto_front([{"x": 1.0}], [], ["a"])

    def test_unknown_direction_rejected(self):
        with pytest.raises(ConfigurationError, match="direction"):
            pareto_front([{"x": 1.0}], [("x", "upwards")], ["a"])


class TestSpecValidation:
    def test_base_axis_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="num_sweeps"):
            _spec({"num_sweeps": (1, 2)}, base={"num_sweeps": 3})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            _spec({"alpha": ()})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="strategy"):
            _spec({"alpha": (1,)}, strategy="lhs")

    def test_sample_count_requires_subsample(self):
        with pytest.raises(ConfigurationError, match="sample_count"):
            _spec({"alpha": (1,)}, sample_count=2)

    def test_subsample_requires_sample_count(self):
        with pytest.raises(ConfigurationError, match="sample_count"):
            _spec({"alpha": (1,)}, strategy="subsample")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="budget"):
            _spec({"alpha": (1,)}, budget=0)

    def test_bad_objective_direction_rejected(self):
        with pytest.raises(ConfigurationError, match="direction"):
            _spec({"alpha": (1,)}, objectives=(("x", "sideways"),))


class TestCompileConfig:
    def _one_point(self, spec):
        points = expand_spec(spec)
        assert len(points) == 1
        return points[0]

    def test_int_value_coerces_to_float_field(self):
        spec = AblationSpec(name="c", experiment="anneal-hpo", axes={"final_temperature": (1,)})
        config = compile_config(spec, self._one_point(spec), AnnealHPOConfig())
        assert config.final_temperature == 1.0
        assert isinstance(config.final_temperature, float)

    def test_unknown_field_names_key_and_experiment(self):
        spec = AblationSpec(name="c", experiment="anneal-hpo", axes={"bogus_field": (1,)})
        with pytest.raises(ConfigurationError, match="bogus_field.*anneal-hpo"):
            compile_config(spec, self._one_point(spec), AnnealHPOConfig())

    def test_string_for_number_rejected(self):
        spec = AblationSpec(name="c", experiment="anneal-hpo", axes={"num_sweeps": ("many",)})
        with pytest.raises(ConfigurationError, match="num_sweeps"):
            compile_config(spec, self._one_point(spec), AnnealHPOConfig())

    def test_spec_from_config_round_trips(self):
        config = AnnealHPOConfig(num_sweeps=33, num_restarts=3)
        spec = spec_from_config("round-trip", "anneal-hpo", config)
        compiled = compile_config(spec, self._one_point(spec), AnnealHPOConfig())
        assert compiled == config


def _hpo_spec(**overrides) -> AblationSpec:
    kwargs = dict(
        name="hpo-grid",
        experiment="anneal-hpo",
        preset="quick",
        axes={"num_sweeps": (8, 16), "final_temperature": (0.05, 0.01)},
        objectives=(("best_energy", "min"), ("compute_time_us_mean", "min")),
    )
    kwargs.update(overrides)
    return AblationSpec(**kwargs)


class TestRunStudy:
    def test_serial_equals_sharded_at_any_worker_count(self):
        serial = run_study(_hpo_spec()).table_rows()
        for workers in (2, 3):
            assert run_study(_hpo_spec(), workers=workers).table_rows() == serial

    def test_warm_cache_rerun_hits_every_shard(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_study(_hpo_spec(), cache=cache)
        assert cold.stats.cache_hits == 0
        warm = run_study(_hpo_spec(), cache=cache)
        assert warm.stats.cache_hits == cold.stats.executed > 0
        assert warm.table_rows() == cold.table_rows()

    def test_metric_selectors_restrict_and_order_the_table(self):
        result = run_study(_hpo_spec(metrics=("mean_energy", "best_energy"), objectives=()))
        for row in result.table_rows():
            assert [name for name, _ in row.metrics] == ["mean_energy", "best_energy"]

    def test_unknown_metric_selector_rejected_before_compute(self):
        with pytest.raises(ConfigurationError, match="not_a_metric"):
            run_study(_hpo_spec(metrics=("not_a_metric",)))

    def test_objective_outside_selectors_rejected(self):
        with pytest.raises(ConfigurationError, match="best_energy"):
            run_study(_hpo_spec(metrics=("mean_energy",)))

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="no-such-experiment"):
            run_study(AblationSpec(name="x", experiment="no-such-experiment"))

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigurationError, match="warp"):
            run_study(AblationSpec(name="x", experiment="anneal-hpo", preset="warp"))

    def test_table_and_payload_are_consistent(self):
        result = run_study(_hpo_spec())
        payload = result.payload()
        assert payload["schema_version"] == 1
        assert payload["study"] == "hpo-grid"
        points = payload["data"]["points"]
        assert len(points) == 4
        assert [p["point_id"] for p in points] == [row.point_id for row in result.table_rows()]
        assert set(payload["data"]["pareto"]["front"]) == {
            row.point_id for row in result.table_rows() if row.on_front
        }
        json.dumps(payload)  # artifact must be JSON-clean
        table = format_study_table(result)
        for row in result.table_rows():
            assert row.point_id in table

    def test_builtin_targets_are_registered(self):
        assert {"fig8", "robustness", "anneal-hpo"} <= set(available_targets())
        target = get_target("anneal-hpo")
        assert target.metric_names == (
            "best_energy",
            "mean_energy",
            "compute_time_us_mean",
            "sweeps_total",
        )


class TestDriverSubsumption:
    """The declarative specs reproduce the imperative drivers bitwise."""

    def test_fig8_quick_spec_matches_run_figure8(self):
        from repro.ablation.presets import fig8_quick_spec
        from repro.experiments.fig8_tts import Figure8Config, run_figure8

        direct = run_figure8(Figure8Config.quick())
        result = run_study(fig8_quick_spec())
        assert len(result.points) == 1
        harness_rows = list(result.points[0].rows)
        assert [dataclasses.asdict(r) for r in harness_rows] == [
            dataclasses.asdict(r) for r in direct
        ]

    def test_robustness_quick_spec_matches_run_robustness_study(self):
        from repro.ablation.presets import robustness_quick_spec
        from repro.experiments.robustness_study import (
            RobustnessStudyConfig,
            run_robustness_study,
        )

        direct = run_robustness_study(RobustnessStudyConfig.quick())
        result = run_study(robustness_quick_spec())
        assert len(result.points) == 1
        harness_rows = list(result.points[0].rows)
        assert [dataclasses.asdict(r) for r in harness_rows] == [
            dataclasses.asdict(r) for r in direct
        ]

    def test_fig8_shards_share_cache_with_imperative_driver(self, tmp_path):
        from repro.ablation.presets import fig8_quick_spec
        from repro.experiments.fig8_tts import Figure8Config, run_figure8

        cache = ResultCache(tmp_path / "cache")
        run_figure8(Figure8Config.quick(), cache=cache)
        warm = run_study(fig8_quick_spec(), cache=cache)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits > 0
