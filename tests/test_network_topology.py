"""Tests for the cell-network topology layer.

The contracts under test: the three standard layouts (line/grid/hex) build
the documented neighbour graphs, the validator rejects malformed graphs
(wrong id order, self-loops, asymmetry, out-of-range neighbours), distances
on a line layout equal the legacy index arithmetic *exactly* (the
bitwise-compatibility rule of ``docs/network.md``), and topologies are
hashable and picklable so they can ride inside scenario phases across
process-pool boundaries.
"""

import math
import pickle

import pytest

from repro.exceptions import ConfigurationError
from repro.network import Cell, NetworkTopology, build_topology
from repro.network.topology import TOPOLOGY_KINDS


# ---------------------------------------------------------------------- #
# Construction
# ---------------------------------------------------------------------- #


def test_line_layout_neighbors_are_adjacent_ids():
    topology = NetworkTopology.line(4)
    assert topology.kind == "line"
    assert topology.num_cells == 4
    assert topology.neighbors(0) == (1,)
    assert topology.neighbors(1) == (0, 2)
    assert topology.neighbors(3) == (2,)
    assert topology.position(2) == (2.0, 0.0)


def test_grid_layout_four_neighbor_adjacency():
    topology = NetworkTopology.grid(3, 3)
    assert topology.num_cells == 9
    # Corner, edge and centre of a 3x3 grid (row-major ids).
    assert topology.neighbors(0) == (1, 3)
    assert topology.neighbors(1) == (0, 2, 4)
    assert topology.neighbors(4) == (1, 3, 5, 7)
    assert topology.position(5) == (2.0, 1.0)


def test_hex_layout_interior_cell_has_six_neighbors():
    topology = NetworkTopology.hex_grid(3, 3)
    assert topology.num_cells == 9
    assert len(topology.neighbors(4)) == 6
    # Odd rows are offset by half a cell pitch.
    assert topology.position(3)[0] == pytest.approx(0.5)
    assert topology.position(0)[0] == 0.0


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
def test_build_topology_dispatches_every_kind(kind):
    topology = build_topology(kind, 2, 3)
    assert topology.kind == kind
    assert topology.num_cells == 6


def test_build_topology_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        build_topology("torus", 2, 2)


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
def test_neighbor_graph_is_symmetric_and_sorted(kind):
    topology = build_topology(kind, 4, 5)
    for cell_id in range(topology.num_cells):
        neighbours = topology.neighbors(cell_id)
        assert neighbours == tuple(sorted(neighbours))
        assert cell_id not in neighbours
        for neighbour in neighbours:
            assert cell_id in topology.neighbors(neighbour)


# ---------------------------------------------------------------------- #
# Validation
# ---------------------------------------------------------------------- #


def test_rejects_out_of_order_cell_ids():
    cells = (Cell(1, 0.0, 0.0), Cell(0, 1.0, 0.0))
    with pytest.raises(ConfigurationError):
        NetworkTopology(kind="line", cells=cells, neighbor_ids=((), ()))


def test_rejects_self_loop():
    with pytest.raises(ConfigurationError):
        NetworkTopology(
            kind="line", cells=(Cell(0, 0.0, 0.0),), neighbor_ids=((0,),)
        )


def test_rejects_asymmetric_graph():
    cells = (Cell(0, 0.0, 0.0), Cell(1, 1.0, 0.0))
    with pytest.raises(ConfigurationError):
        NetworkTopology(kind="line", cells=cells, neighbor_ids=((1,), ()))


def test_rejects_out_of_range_neighbor():
    cells = (Cell(0, 0.0, 0.0), Cell(1, 1.0, 0.0))
    with pytest.raises(ConfigurationError):
        NetworkTopology(kind="line", cells=cells, neighbor_ids=((5,), (0,)))


def test_rejects_empty_layout_and_bad_queries():
    with pytest.raises(ConfigurationError):
        NetworkTopology(kind="line", cells=(), neighbor_ids=())
    topology = NetworkTopology.line(2)
    with pytest.raises(ConfigurationError):
        topology.neighbors(2)
    with pytest.raises(ConfigurationError):
        topology.position(-1)
    with pytest.raises(ConfigurationError):
        NetworkTopology.line(0)
    with pytest.raises(ConfigurationError):
        NetworkTopology.grid(0, 3)


# ---------------------------------------------------------------------- #
# Bitwise-compatibility and transport
# ---------------------------------------------------------------------- #


def test_line_distance_equals_index_arithmetic_exactly():
    # The legacy serving code measured cell separation as abs(i - j); the
    # topology's Euclidean distance must reproduce it bitwise on a line
    # (math.hypot(x, 0.0) == abs(x) exactly in CPython).
    topology = NetworkTopology.line(7)
    for first in range(7):
        for second in range(7):
            assert topology.distance(first, second) == float(abs(first - second))


def test_grid_distance_is_euclidean():
    topology = NetworkTopology.grid(2, 3)
    # Cells 0 (0,0) and 4 (1,1) on the plane.
    assert topology.distance(0, 4) == math.hypot(1.0, 1.0)
    assert topology.distance(2, 2) == 0.0


@pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
def test_topology_pickles_and_hashes(kind):
    topology = build_topology(kind, 3, 3)
    clone = pickle.loads(pickle.dumps(topology))
    assert clone == topology
    assert hash(clone) == hash(topology)
    assert clone.neighbors(4) == topology.neighbors(4)
