"""Tests for repro.metrics (quality, TTS, statistics)."""

import numpy as np
import pytest

from repro.annealing.sampleset import SampleRecord, SampleSet
from repro.exceptions import ConfigurationError
from repro.metrics.quality import (
    delta_e_distribution,
    delta_e_percent,
    expectation_value,
    initial_state_quality,
    success_probability,
)
from repro.metrics.statistics import (
    bootstrap_confidence_interval,
    histogram_percentiles,
    summarize_distribution,
)
from repro.metrics.tts import time_to_solution, tts_from_sampleset
from repro.qubo.model import QUBOModel


def _sampleset(energies, counts=None, duration=2.0):
    counts = counts or [1] * len(energies)
    records = [
        SampleRecord(
            assignment=np.array([index % 2], dtype=np.int8),
            energy=energy,
            num_occurrences=count,
        )
        for index, (energy, count) in enumerate(zip(energies, counts))
    ]
    # Distinct assignments per record so they are not merged.
    records = [
        SampleRecord(
            assignment=np.array([index], dtype=np.int8),
            energy=record.energy,
            num_occurrences=record.num_occurrences,
        )
        for index, record in enumerate(records)
    ]
    return SampleSet(records, metadata={"schedule_duration_us": duration})


class TestDeltaEPercent:
    def test_ground_state_is_zero(self):
        assert delta_e_percent(-10.0, -10.0) == 0.0

    def test_zero_energy_sample_is_100(self):
        assert delta_e_percent(0.0, -10.0) == pytest.approx(100.0)

    def test_halfway(self):
        assert delta_e_percent(-5.0, -10.0) == pytest.approx(50.0)

    def test_monotone_in_sample_energy(self):
        values = [delta_e_percent(energy, -10.0) for energy in (-10.0, -7.5, -2.0, 1.0)]
        assert values == sorted(values)

    def test_requires_negative_ground(self):
        with pytest.raises(ConfigurationError):
            delta_e_percent(1.0, 0.0)

    def test_distribution_expands_occurrences(self):
        sampleset = _sampleset([-10.0, -5.0], counts=[3, 1])
        distribution = delta_e_distribution(sampleset, -10.0)
        assert distribution.size == 4
        assert np.sum(distribution == 0.0) == 3

    def test_distribution_from_plain_energies(self):
        distribution = delta_e_distribution([-10.0, 0.0], -10.0)
        assert list(distribution) == [0.0, 100.0]

    def test_initial_state_quality(self):
        model = QUBOModel(coefficients=np.array([[-4.0]]))
        assert initial_state_quality(model, [0], -4.0) == pytest.approx(100.0)
        assert initial_state_quality(model, [1], -4.0) == 0.0


class TestSuccessAndExpectation:
    def test_success_probability(self):
        sampleset = _sampleset([-10.0, -9.0, -5.0], counts=[2, 2, 6])
        assert success_probability(sampleset, -10.0) == pytest.approx(0.2)

    def test_expectation_value(self):
        sampleset = _sampleset([-10.0, 0.0], counts=[1, 3])
        assert expectation_value(sampleset) == pytest.approx(-2.5)


class TestTTS:
    def test_single_run_sufficient(self):
        result = time_to_solution(1.0, duration_us=2.0)
        assert result.tts_us == pytest.approx(2.0)
        assert result.repeats == 1.0

    def test_never_succeeds(self):
        result = time_to_solution(0.0, duration_us=2.0)
        assert not result.is_finite

    def test_known_value(self):
        # p*=0.5, Ct=99%: repeats = log(0.01)/log(0.5) ~ 6.64
        result = time_to_solution(0.5, duration_us=1.0, confidence_percent=99.0)
        assert result.tts_us == pytest.approx(np.log(0.01) / np.log(0.5), rel=1e-6)

    def test_repeats_floored_at_one(self):
        result = time_to_solution(0.999999, duration_us=3.0)
        assert result.tts_us == pytest.approx(3.0)

    def test_monotone_in_probability(self):
        values = [time_to_solution(p, 1.0).tts_us for p in (0.05, 0.2, 0.5, 0.9)]
        assert values == sorted(values, reverse=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"success_probability": -0.1, "duration_us": 1.0},
            {"success_probability": 0.5, "duration_us": 0.0},
            {"success_probability": 0.5, "duration_us": 1.0, "confidence_percent": 100.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            time_to_solution(**kwargs)

    def test_from_sampleset_uses_metadata_duration(self):
        sampleset = _sampleset([-10.0, -5.0], counts=[1, 1], duration=4.0)
        result = tts_from_sampleset(sampleset, ground_energy=-10.0)
        assert result.duration_us == 4.0
        assert result.success_probability == pytest.approx(0.5)

    def test_from_sampleset_without_metadata(self):
        sampleset = SampleSet([SampleRecord(assignment=np.array([1]), energy=-1.0)])
        with pytest.raises(ConfigurationError):
            tts_from_sampleset(sampleset, ground_energy=-1.0)


class TestStatistics:
    def test_summary(self):
        summary = summarize_distribution([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_summary_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize_distribution([])

    def test_bootstrap_contains_point_estimate(self, rng):
        data = rng.normal(5.0, 1.0, size=200)
        point, lower, upper = bootstrap_confidence_interval(data, rng=1)
        assert lower <= point <= upper
        assert lower == pytest.approx(5.0, abs=0.5)

    def test_bootstrap_custom_statistic(self, rng):
        data = rng.normal(0.0, 1.0, size=100)
        point, lower, upper = bootstrap_confidence_interval(data, statistic=np.median, rng=2)
        assert lower <= point <= upper

    def test_bootstrap_invalid(self):
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([], rng=1)
        with pytest.raises(ConfigurationError):
            bootstrap_confidence_interval([1.0], confidence=1.5, rng=1)

    def test_histogram_percentiles(self):
        fractions = histogram_percentiles([0.0, 1.0, 5.0, 50.0], [0.0, 2.0, 10.0, 100.0])
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[0] == pytest.approx(0.5)

    def test_histogram_invalid_edges(self):
        with pytest.raises(ConfigurationError):
            histogram_percentiles([1.0], [0.0])
        with pytest.raises(ConfigurationError):
            histogram_percentiles([1.0], [1.0, 0.5])

    def test_histogram_empty_values(self):
        assert np.all(histogram_percentiles([], [0.0, 1.0]) == 0)
