"""Tests for the SVMC and schedule-driven annealing backends."""

import numpy as np
import pytest

from repro.annealing.backend import broadcast_initial_spins
from repro.annealing.device import AnnealingFunctions
from repro.annealing.sa_backend import ScheduleDrivenAnnealingBackend
from repro.annealing.schedule import forward_anneal_schedule, reverse_anneal_schedule
from repro.annealing.svmc import SpinVectorMonteCarloBackend
from repro.exceptions import ConfigurationError
from repro.qubo.generators import planted_solution_qubo
from repro.qubo.ising import qubo_to_ising, bits_to_spins, spins_to_bits

BACKENDS = [SpinVectorMonteCarloBackend, ScheduleDrivenAnnealingBackend]


def _planted_problem(rng, size=8):
    planted = rng.integers(0, 2, size=size)
    qubo = planted_solution_qubo(planted, coupling_strength=0.6, field_strength=1.0, rng=rng)
    ising = qubo_to_ising(qubo)
    scale = max(ising.max_abs_coefficient(), 1e-12)
    return ising.fields / scale, ising.couplings / scale, planted, qubo


class TestBroadcastInitialSpins:
    def test_none(self):
        assert broadcast_initial_spins(None, 5, 3) is None

    def test_vector_broadcast(self):
        spins = broadcast_initial_spins(np.array([1, -1, 1]), 4, 3)
        assert spins.shape == (4, 3)
        assert np.all(spins[:, 1] == -1)

    def test_matrix_passthrough(self):
        matrix = np.ones((2, 3), dtype=np.int8)
        assert broadcast_initial_spins(matrix, 2, 3).shape == (2, 3)

    def test_wrong_length(self):
        with pytest.raises(ConfigurationError):
            broadcast_initial_spins(np.array([1, -1]), 2, 3)

    def test_wrong_values(self):
        with pytest.raises(ConfigurationError):
            broadcast_initial_spins(np.array([0, 1, 1]), 2, 3)

    def test_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            broadcast_initial_spins(np.ones((3, 3, 3)), 3, 3)


@pytest.mark.parametrize("backend_class", BACKENDS)
class TestBackendBehaviour:
    def test_output_shape_and_values(self, backend_class, rng):
        fields, couplings, _, _ = _planted_problem(rng)
        backend = backend_class(sweeps_per_microsecond=16)
        spins = backend.run(
            fields,
            couplings,
            forward_anneal_schedule(1.0),
            num_reads=12,
            annealing_functions=AnnealingFunctions(),
            relative_temperature=0.01,
            rng=np.random.default_rng(1),
        )
        assert spins.shape == (12, 8)
        assert set(np.unique(spins)).issubset({-1, 1})

    def test_forward_anneal_finds_low_energy(self, backend_class, rng):
        fields, couplings, planted, qubo = _planted_problem(rng)
        backend = backend_class(sweeps_per_microsecond=32)
        spins = backend.run(
            fields,
            couplings,
            forward_anneal_schedule(2.0, pause_s=0.4, pause_duration_us=1.0),
            num_reads=30,
            annealing_functions=AnnealingFunctions(),
            relative_temperature=0.01,
            rng=np.random.default_rng(2),
        )
        best_bits = min((spins_to_bits(row) for row in spins), key=qubo.energy)
        planted_energy = qubo.energy(planted)
        assert qubo.energy(best_bits) <= planted_energy + 0.25 * abs(planted_energy)

    def test_reverse_anneal_requires_initial_state(self, backend_class, rng):
        fields, couplings, _, _ = _planted_problem(rng)
        backend = backend_class()
        with pytest.raises(ConfigurationError):
            backend.run(
                fields,
                couplings,
                reverse_anneal_schedule(0.5),
                num_reads=5,
                annealing_functions=AnnealingFunctions(),
                relative_temperature=0.01,
                rng=np.random.default_rng(3),
            )

    def test_reverse_anneal_at_high_switch_point_keeps_initial_state(self, backend_class, rng):
        # With s_p close to 1 fluctuations are too weak to move the state.
        fields, couplings, planted, _ = _planted_problem(rng)
        initial = bits_to_spins(1 - planted)  # a deliberately wrong state
        backend = backend_class(sweeps_per_microsecond=16)
        spins = backend.run(
            fields,
            couplings,
            reverse_anneal_schedule(0.97, pause_duration_us=0.5),
            num_reads=10,
            annealing_functions=AnnealingFunctions(),
            relative_temperature=0.005,
            initial_spins=initial,
            rng=np.random.default_rng(4),
        )
        agreement = np.mean(spins == initial[None, :])
        assert agreement > 0.8

    def test_reverse_anneal_at_low_switch_point_erases_initial_state(self, backend_class, rng):
        fields, couplings, planted, qubo = _planted_problem(rng)
        initial = bits_to_spins(1 - planted)
        backend = backend_class(sweeps_per_microsecond=32)
        spins = backend.run(
            fields,
            couplings,
            reverse_anneal_schedule(0.05, pause_duration_us=1.0),
            num_reads=20,
            annealing_functions=AnnealingFunctions(),
            relative_temperature=0.02,
            initial_spins=initial,
            rng=np.random.default_rng(5),
        )
        agreement = np.mean(spins == initial[None, :])
        assert agreement < 0.8

    def test_zero_spins(self, backend_class):
        backend = backend_class()
        spins = backend.run(
            np.zeros(0),
            np.zeros((0, 0)),
            forward_anneal_schedule(1.0),
            num_reads=3,
            annealing_functions=AnnealingFunctions(),
            relative_temperature=0.01,
            rng=np.random.default_rng(6),
        )
        assert spins.shape == (3, 0)

    def test_invalid_reads(self, backend_class, rng):
        fields, couplings, _, _ = _planted_problem(rng)
        with pytest.raises(ConfigurationError):
            backend_class().run(
                fields,
                couplings,
                forward_anneal_schedule(1.0),
                num_reads=0,
                annealing_functions=AnnealingFunctions(),
                relative_temperature=0.01,
                rng=np.random.default_rng(7),
            )

    def test_reproducible_with_generator_seed(self, backend_class, rng):
        fields, couplings, _, _ = _planted_problem(rng)
        backend = backend_class(sweeps_per_microsecond=8)
        kwargs = dict(
            fields=fields,
            couplings=couplings,
            schedule=forward_anneal_schedule(1.0),
            num_reads=6,
            annealing_functions=AnnealingFunctions(),
            relative_temperature=0.02,
        )
        first = backend.run(rng=np.random.default_rng(11), **kwargs)
        second = backend.run(rng=np.random.default_rng(11), **kwargs)
        assert np.array_equal(first, second)


class TestBackendConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sweeps_per_microsecond": 0},
            {"proposal_width": 0.0},
            {"uniform_fraction": 1.5},
            {"freeze_scale": 0.0},
            {"residual_activity": -0.1},
        ],
    )
    def test_svmc_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            SpinVectorMonteCarloBackend(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sweeps_per_microsecond": -1},
            {"fluctuation_gain": -0.5},
            {"freeze_scale": 0.0},
            {"residual_activity": 2.0},
        ],
    )
    def test_sa_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ScheduleDrivenAnnealingBackend(**kwargs)
