"""Tests for the O&M hotspot detector, the capacity re-embedder and the
fluid placement model.

The contracts under test: the EWMA/z-score detector raises on a flash crowd
within a few KPI windows of the ramp and never on steady traffic, confirms
over consecutive windows (single-window flukes are ignored), clears with
hysteresis, and localises raises through the topology's neighbour graph; the
re-embedder conserves total capacity, honours per-cell floors and the
per-window migration budget; and the fluid model's accounting identity
``offered == served + missed + residual`` holds exactly.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.network import (
    AggregationConfig,
    CapacityReembedder,
    EmbeddingConfig,
    HotspotDetector,
    HotspotDetectorConfig,
    NetworkTopology,
    cell_counts_from_outcomes,
    cell_window_counts,
    oracle_capacity,
    simulate_fluid_network,
    static_capacity,
)
from repro.serving.scenarios import build_scenario


def _steady_counts(num_cells=6, windows=30, level=100, seed=11):
    rng = np.random.default_rng(seed)
    return rng.poisson(level, size=(windows, num_cells)).astype(np.int64)


def _feed(detector, counts):
    events = []
    for window in range(counts.shape[0]):
        events.extend(detector.observe(window, window * 500.0, counts[window]))
    return events


# ---------------------------------------------------------------------- #
# Detector behaviour on synthetic counters
# ---------------------------------------------------------------------- #


def test_first_window_seeds_baseline_without_raising():
    detector = HotspotDetector(3)
    events = detector.observe(0, 0.0, [10, 10, 10])
    assert events == []
    assert detector.hot_cells == ()
    assert detector.windows_seen == 1


def test_steady_synthetic_counters_never_raise():
    counts = _steady_counts()
    detector = HotspotDetector(counts.shape[1])
    events = _feed(detector, counts)
    assert [e for e in events if e.kind == "raised"] == []
    assert detector.hot_cells == ()


def test_flash_crowd_raises_within_confirm_windows():
    counts = _steady_counts(num_cells=5, windows=30, level=100)
    spike_start = 12
    counts[spike_start:, 2] *= 6
    detector = HotspotDetector(5)
    events = _feed(detector, counts)
    raises = [e for e in events if e.kind == "raised"]
    assert len(raises) == 1
    assert raises[0].cell_id == 2
    # Score-then-confirm: the raise lands confirm_windows after the ramp.
    latency = raises[0].window - spike_start
    assert 1 <= latency <= detector.config.confirm_windows + 1
    assert detector.hot_cells == (2,)


def test_single_window_fluke_is_not_confirmed():
    counts = _steady_counts(num_cells=4, windows=20, level=100)
    counts[10, 1] *= 8  # one wild window, back to normal after
    detector = HotspotDetector(4)
    events = _feed(detector, counts)
    assert [e for e in events if e.kind == "raised"] == []


def test_hotspot_clears_after_quiet_windows():
    counts = _steady_counts(num_cells=4, windows=40, level=100)
    counts[10:20, 3] *= 6  # crowd disperses at window 20
    detector = HotspotDetector(4)
    events = _feed(detector, counts)
    kinds = [(e.kind, e.cell_id) for e in events]
    assert ("raised", 3) in kinds
    assert ("cleared", 3) in kinds
    cleared = next(e for e in events if e.kind == "cleared")
    assert cleared.window >= 20 + detector.config.clear_windows - 1
    assert detector.hot_cells == ()


def test_baseline_freezes_while_hotspot_is_live():
    counts = _steady_counts(num_cells=3, windows=40, level=100)
    counts[10:, 0] *= 6
    detector = HotspotDetector(3)
    _feed(detector, counts)
    # A long crowd must not be absorbed into "normal": the hot cell stays
    # raised through the whole tail of the stream.
    assert detector.hot_cells == (0,)
    assert detector.z_score(0) > detector.config.z_threshold


def test_raise_is_localised_to_strongest_neighbor():
    topology = NetworkTopology.line(5)
    config = HotspotDetectorConfig(z_threshold=3.0, confirm_windows=2)
    detector = HotspotDetector(5, config, topology=topology)
    counts = np.full((20, 5), 100, dtype=np.int64)
    # Cell 2 is the crowd's centre; cell 1 sees spill-over that also trips
    # the threshold, but the raise must be attributed to cell 2.
    counts[10:, 2] *= 8
    counts[10:, 1] *= 4
    events = _feed(detector, counts)
    raises = [e for e in events if e.kind == "raised"]
    assert raises
    assert all(e.cell_id == 2 for e in raises)


def test_detector_validates_inputs():
    with pytest.raises(ConfigurationError):
        HotspotDetector(0)
    with pytest.raises(ConfigurationError):
        HotspotDetector(3, topology=NetworkTopology.line(4))
    detector = HotspotDetector(3)
    with pytest.raises(ConfigurationError):
        detector.observe(0, 0.0, [1, 2])
    with pytest.raises(ConfigurationError):
        detector.observe(0, 0.0, [1, -2, 3])
    with pytest.raises(ConfigurationError):
        detector.z_score(7)
    with pytest.raises(ConfigurationError):
        HotspotDetectorConfig(alpha=0.0)
    with pytest.raises(ConfigurationError):
        HotspotDetectorConfig(confirm_windows=0)


# ---------------------------------------------------------------------- #
# Detector on scenario-driven aggregate counters
# ---------------------------------------------------------------------- #


def test_flash_crowd_scenario_detected_with_low_latency():
    aggregation = AggregationConfig(users_per_cell=500, window_us=500.0)
    scenario = build_scenario("flash-crowd", num_cells=9, horizon_us=20_000.0)
    counts = cell_window_counts(scenario, aggregation, rng=5)
    detector = HotspotDetector(9)
    events = _feed(detector, counts)
    raises = [e for e in events if e.kind == "raised"]
    assert raises, "flash crowd was never detected"
    spike_window = int(0.25 * 20_000.0 // 500.0)
    assert raises[0].cell_id == 4  # the catalog centres the crowd mid-layout
    assert 1 <= raises[0].window - spike_window <= 4


def test_steady_scenario_has_no_false_positives():
    aggregation = AggregationConfig(users_per_cell=500, window_us=500.0)
    scenario = build_scenario("steady", num_cells=9, horizon_us=20_000.0)
    counts = cell_window_counts(scenario, aggregation, rng=5)
    detector = HotspotDetector(9)
    events = _feed(detector, counts)
    assert [e for e in events if e.kind == "raised"] == []


# ---------------------------------------------------------------------- #
# Re-embedder
# ---------------------------------------------------------------------- #


def test_reembedder_conserves_total_and_respects_floor_and_budget():
    config = EmbeddingConfig(
        total_capacity=100.0, min_capacity=5.0, migration_budget=7.0
    )
    embedder = CapacityReembedder(10, config)
    observed = np.full(10, 8.0)
    observed[3] = 60.0
    for _ in range(6):
        capacity = embedder.step([3], observed)
        assert capacity.sum() == pytest.approx(100.0)
        assert np.all(capacity >= config.min_capacity - 1e-9)
    # Donors never dip under their observed demand.
    donors = [cell for cell in range(10) if cell != 3]
    assert np.all(capacity[donors] >= 8.0 - 1e-9)
    assert capacity[3] > 100.0 / 10
    assert embedder.capacity_moved <= 6 * config.migration_budget + 1e-9
    assert embedder.windows_stepped == 6


def test_reembedder_relaxes_back_to_equal_split():
    config = EmbeddingConfig(total_capacity=90.0, migration_budget=1000.0)
    embedder = CapacityReembedder(9, config)
    observed = np.full(9, 1.0)
    observed[0] = 50.0
    embedder.step([0], observed)
    assert embedder.capacity[0] > 10.0
    for _ in range(50):
        capacity = embedder.step([])
    assert np.allclose(capacity, 10.0)
    assert capacity.sum() == pytest.approx(90.0)


def test_reembedder_without_counters_protects_only_the_floor():
    config = EmbeddingConfig(
        total_capacity=40.0, min_capacity=2.0, migration_budget=1000.0
    )
    embedder = CapacityReembedder(4, config)
    capacity = embedder.step([1])
    assert capacity.sum() == pytest.approx(40.0)
    assert np.all(capacity[[0, 2, 3]] == pytest.approx(2.0))
    assert capacity[1] == pytest.approx(34.0)


def test_reembedder_validates_inputs():
    config = EmbeddingConfig(total_capacity=10.0)
    embedder = CapacityReembedder(4, config)
    with pytest.raises(ConfigurationError):
        embedder.step([9])
    with pytest.raises(ConfigurationError):
        embedder.step([0], observed_counts=[1.0, 2.0])
    with pytest.raises(ConfigurationError):
        EmbeddingConfig(total_capacity=10.0, min_capacity=6.0).check_feasible(2)
    with pytest.raises(ConfigurationError):
        EmbeddingConfig(total_capacity=0.0)
    with pytest.raises(ConfigurationError):
        EmbeddingConfig(total_capacity=1.0, target_margin=0.5)


# ---------------------------------------------------------------------- #
# Fluid model and placements
# ---------------------------------------------------------------------- #


def test_fluid_accounting_identity_holds_exactly():
    counts = _steady_counts(num_cells=4, windows=25, level=40, seed=3)
    config = EmbeddingConfig(total_capacity=140.0, deadline_windows=2)
    report = simulate_fluid_network(counts, static_capacity(4, config), config)
    assert report.offered == int(counts.sum())
    assert report.served + report.missed + report.residual == pytest.approx(
        report.offered
    )
    for cell in report.cells:
        assert cell.served + cell.missed + cell.residual == pytest.approx(
            cell.offered
        )


def test_fluid_deadline_drops_stale_buckets():
    counts = np.zeros((4, 1), dtype=np.int64)
    counts[0, 0] = 10
    config = EmbeddingConfig(total_capacity=2.0, deadline_windows=2)
    report = simulate_fluid_network(counts, np.array([2.0]), config)
    # 2 served in window 0, 2 in window 1; the remaining 6 blow the
    # two-window deadline at the end of window 1.
    assert report.served == pytest.approx(4.0)
    assert report.missed == pytest.approx(6.0)
    assert report.residual == pytest.approx(0.0)


def test_oracle_schedule_covers_feasible_demand():
    counts = _steady_counts(num_cells=5, windows=20, level=20, seed=9)
    counts[10:, 2] *= 4
    config = EmbeddingConfig(
        total_capacity=float(counts.sum(axis=1).max()) + 10.0, deadline_windows=2
    )
    schedule = oracle_capacity(counts, config)
    assert schedule.shape == counts.shape
    assert np.allclose(schedule.sum(axis=1), config.total_capacity)
    report = simulate_fluid_network(counts, schedule, config)
    assert report.miss_rate == 0.0


def test_oracle_beats_static_under_a_hotspot():
    counts = _steady_counts(num_cells=5, windows=20, level=30, seed=7)
    counts[8:, 2] *= 5
    config = EmbeddingConfig(total_capacity=200.0, deadline_windows=2)
    static = simulate_fluid_network(counts, static_capacity(5, config), config)
    oracle = simulate_fluid_network(counts, oracle_capacity(counts, config), config)
    assert oracle.miss_rate <= static.miss_rate


def test_fluid_validates_shapes():
    config = EmbeddingConfig(total_capacity=10.0)
    counts = np.ones((5, 3), dtype=np.int64)
    with pytest.raises(ConfigurationError):
        simulate_fluid_network(np.ones(5), np.ones(3), config)
    with pytest.raises(ConfigurationError):
        simulate_fluid_network(counts, np.ones(2), config)
    with pytest.raises(ConfigurationError):
        simulate_fluid_network(counts, np.ones((4, 3)), config)
    with pytest.raises(ConfigurationError):
        simulate_fluid_network(counts, -np.ones(3), config)


# ---------------------------------------------------------------------- #
# Counter bridges
# ---------------------------------------------------------------------- #


def test_cell_counts_from_outcomes_bins_by_window():
    class Outcome:
        def __init__(self, cell_id, arrival_us):
            self.cell_id = cell_id
            self.arrival_us = arrival_us

    outcomes = [Outcome(0, 10.0), Outcome(0, 499.0), Outcome(1, 500.0), Outcome(1, 1200.0)]
    counts = cell_counts_from_outcomes(outcomes, num_cells=2, window_us=500.0)
    assert counts.shape == (3, 2)
    assert counts[0, 0] == 2
    assert counts[1, 1] == 1
    assert counts[2, 1] == 1
    assert cell_counts_from_outcomes([], 2, 500.0).shape == (0, 2)
    with pytest.raises(ConfigurationError):
        cell_counts_from_outcomes(outcomes, num_cells=1, window_us=500.0)
