"""Tests for the time-varying scenario engine and the autoscaling pool.

The contracts under test: phase intensity fields behave as documented
(bounds, locality, spill-over), scenario-driven workloads are exactly
reproducible for a fixed seed and respond to the intensity field (flash
cells get denser, outage cells go silent), and the elastic pool + controller
scale within bounds, honour warm-up, and never lose a job.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import (
    AnnealerServingBackend,
    AutoscaleConfig,
    AutoscaleController,
    AutoscaleEvent,
    BackendPool,
    CellOutagePhase,
    ConstantPhase,
    DiurnalPhase,
    ElasticBackendPool,
    FlashCrowdPhase,
    HotspotDriftPhase,
    NetworkScenario,
    RANServingSimulator,
    SCENARIO_NAMES,
    build_scenario,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import TrafficGenerator


# ---------------------------------------------------------------------- #
# Load phases
# ---------------------------------------------------------------------- #


class TestPhases:
    def test_constant_phase(self):
        phase = ConstantPhase(1000.0, level=2.5)
        assert phase.intensity(0, 4, 0.0) == 2.5
        assert phase.intensity(3, 4, 999.0) == 2.5
        assert phase.peak_intensity() == 2.5

    def test_diurnal_wave_stays_in_band_and_lags_across_cells(self):
        phase = DiurnalPhase(1000.0, base=1.0, amplitude=0.5, cycles=1.0, cell_lag_fraction=0.5)
        times = np.linspace(0.0, 999.9, 200)
        for cell in range(4):
            values = [phase.intensity(cell, 4, t) for t in times]
            assert min(values) >= 0.5 - 1e-9
            assert max(values) <= phase.peak_intensity() + 1e-9
        # The crest arrives later in later cells: at the cell-0 crest time,
        # lagged cells are below their own peak.
        crest_t = 250.0  # sin peak for cell 0 at quarter period
        assert phase.intensity(0, 4, crest_t) == pytest.approx(1.5)
        assert phase.intensity(2, 4, crest_t) < 1.5

    def test_flash_crowd_ramps_and_localizes(self):
        phase = FlashCrowdPhase(1000.0, cell_id=1, peak=5.0, ramp_fraction=0.25)
        # Ramp: background at t=0, peak at the plateau, background at the end.
        assert phase.intensity(1, 4, 0.0) == pytest.approx(1.0)
        assert phase.intensity(1, 4, 125.0) == pytest.approx(3.0)  # mid-ramp
        assert phase.intensity(1, 4, 500.0) == pytest.approx(5.0)
        assert phase.intensity(1, 4, 1000.0) == pytest.approx(1.0)
        # Other cells never leave background.
        for t in (0.0, 500.0, 900.0):
            assert phase.intensity(0, 4, t) == pytest.approx(1.0)
        assert phase.peak_intensity() == 5.0

    def test_hotspot_drift_moves_across_grid(self):
        phase = HotspotDriftPhase(1000.0, peak=4.0, width_cells=1.0)
        # At t=0 the hotspot sits on cell 0; at the end on the last cell.
        assert phase.intensity(0, 4, 0.0) == pytest.approx(4.0)
        assert phase.intensity(3, 4, 0.0) == pytest.approx(1.0)
        assert phase.intensity(3, 4, 999.999) == pytest.approx(4.0, rel=1e-3)
        # Mid-phase the centre is between cells 1 and 2.
        mid = [phase.intensity(cell, 4, 500.0) for cell in range(4)]
        assert max(mid[1], mid[2]) > max(mid[0], mid[3])

    def test_cell_outage_spills_to_neighbours(self):
        phase = CellOutagePhase(1000.0, cell_id=1, spill_fraction=1.0)
        assert phase.intensity(1, 4, 100.0) == 0.0
        # The dark cell's unit load splits between cells 0 and 2.
        assert phase.intensity(0, 4, 100.0) == pytest.approx(1.5)
        assert phase.intensity(2, 4, 100.0) == pytest.approx(1.5)
        assert phase.intensity(3, 4, 100.0) == pytest.approx(1.0)

    def test_edge_cell_outage_single_neighbour(self):
        phase = CellOutagePhase(1000.0, cell_id=0, spill_fraction=0.5)
        assert phase.intensity(0, 3, 10.0) == 0.0
        assert phase.intensity(1, 3, 10.0) == pytest.approx(1.5)
        assert phase.intensity(2, 3, 10.0) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ConstantPhase(0.0),
            lambda: ConstantPhase(10.0, level=-1.0),
            lambda: DiurnalPhase(10.0, amplitude=1.5),
            lambda: DiurnalPhase(10.0, base=0.0),
            lambda: FlashCrowdPhase(10.0, cell_id=-1),
            lambda: FlashCrowdPhase(10.0, cell_id=0, peak=0.5),
            lambda: FlashCrowdPhase(10.0, cell_id=0, ramp_fraction=0.6),
            lambda: HotspotDriftPhase(10.0, width_cells=0.0),
            lambda: CellOutagePhase(10.0, cell_id=0, spill_fraction=1.5),
            lambda: CellOutagePhase(10.0, cell_id=0, residual=1.0),
        ],
    )
    def test_invalid_phase_parameters(self, factory):
        with pytest.raises(ConfigurationError):
            factory()


class TestNetworkScenario:
    def test_phase_timeline_lookup(self):
        scenario = NetworkScenario(
            name="two-step",
            num_cells=2,
            phases=(ConstantPhase(100.0, level=1.0), ConstantPhase(100.0, level=3.0)),
        )
        assert scenario.duration_us == 200.0
        assert scenario.intensity(0, 50.0) == 1.0
        # Boundaries belong to the next phase.
        assert scenario.intensity(0, 100.0) == 3.0
        assert scenario.intensity(0, 199.0) == 3.0
        # Outside the horizon the field is silent.
        assert scenario.intensity(0, 200.0) == 0.0
        assert scenario.intensity(0, -1.0) == 0.0
        assert scenario.peak_intensity() == 3.0

    def test_cell_bounds_checked(self):
        scenario = build_scenario("steady", num_cells=2)
        with pytest.raises(ConfigurationError):
            scenario.intensity(2, 0.0)

    def test_catalog_builds_every_name(self):
        for name in SCENARIO_NAMES:
            scenario = build_scenario(name, num_cells=4, horizon_us=1000.0)
            assert scenario.name == name
            assert scenario.duration_us == pytest.approx(1000.0)
            assert scenario.peak_intensity() >= 1.0
            # The field is evaluable everywhere on the grid and horizon.
            for cell in range(4):
                for t in (0.0, 250.0, 500.0, 999.0):
                    assert scenario.intensity(cell, t) >= 0.0

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("rush-hour", num_cells=2)

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkScenario(name="empty", num_cells=2, phases=())
        with pytest.raises(ConfigurationError):
            NetworkScenario(name="bad", num_cells=0, phases=(ConstantPhase(1.0),))

    def test_phase_targets_outside_grid_rejected(self):
        # A mistargeted flash/outage phase must fail loudly, not silently
        # degenerate to steady load (or conjure spill from a ghost cell).
        with pytest.raises(ConfigurationError):
            NetworkScenario(
                name="ghost-flash",
                num_cells=4,
                phases=(FlashCrowdPhase(1000.0, cell_id=7),),
            )
        with pytest.raises(ConfigurationError):
            NetworkScenario(
                name="ghost-outage",
                num_cells=4,
                phases=(CellOutagePhase(1000.0, cell_id=4),),
            )


# ---------------------------------------------------------------------- #
# Modulated traffic streams
# ---------------------------------------------------------------------- #


class TestModulatedStream:
    def _generator(self, **overrides):
        defaults = dict(
            config=MIMOConfig(2, "QPSK"),
            symbol_period_us=50.0,
            arrival_process="poisson",
            turnaround_budget_us=200.0,
        )
        defaults.update(overrides)
        return TrafficGenerator(**defaults)

    def test_fixed_seed_is_bitwise_reproducible(self):
        def draw():
            return list(
                self._generator().stream_modulated(
                    2000.0, intensity=lambda t: 1.0, peak_intensity=1.0, rng=5
                )
            )

        first, second = draw(), draw()
        assert [use.arrival_time_us for use in first] == [
            use.arrival_time_us for use in second
        ]
        assert np.array_equal(
            first[0].transmission.instance.received,
            second[0].transmission.instance.received,
        )

    def test_zero_intensity_is_silent(self):
        uses = list(
            self._generator().stream_modulated(
                5000.0, intensity=lambda t: 0.0, peak_intensity=1.0, rng=5
            )
        )
        assert uses == []

    def test_intensity_modulates_arrival_density(self):
        def count(level):
            return len(
                list(
                    self._generator().stream_modulated(
                        5000.0,
                        intensity=lambda t: level,
                        peak_intensity=4.0,
                        rng=5,
                    )
                )
            )

        assert count(4.0) > count(1.0) > count(0.25)

    def test_deadlines_follow_arrivals(self):
        uses = list(
            self._generator().stream_modulated(
                2000.0, intensity=lambda t: 1.0, peak_intensity=1.0, rng=5
            )
        )
        assert uses, "expected arrivals over 40 mean periods"
        for use in uses:
            assert use.deadline_us == pytest.approx(use.arrival_time_us + 200.0)

    def test_max_count_caps_the_stream(self):
        uses = list(
            self._generator().stream_modulated(
                50_000.0, intensity=lambda t: 1.0, peak_intensity=1.0, rng=5, max_count=3
            )
        )
        assert len(uses) == 3
        assert [use.index for use in uses] == [0, 1, 2]

    def test_deterministic_process_rejected(self):
        generator = self._generator(arrival_process="deterministic")
        with pytest.raises(ConfigurationError):
            next(
                generator.stream_modulated(
                    100.0, intensity=lambda t: 1.0, peak_intensity=1.0, rng=5
                )
            )

    def test_intensity_above_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            list(
                self._generator().stream_modulated(
                    5000.0, intensity=lambda t: 2.0, peak_intensity=1.0, rng=5
                )
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"horizon_us": 0.0},
            {"peak_intensity": 0.0},
            {"start_us": -1.0},
            {"max_count": -1},
        ],
    )
    def test_invalid_stream_parameters(self, kwargs):
        defaults = dict(
            horizon_us=100.0, intensity=lambda t: 1.0, peak_intensity=1.0, rng=5
        )
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            next(self._generator().stream_modulated(**defaults))


# ---------------------------------------------------------------------- #
# Scenario-driven workloads
# ---------------------------------------------------------------------- #


def _profiles(num_cells=4, users_per_cell=2, period=100.0):
    return uniform_cell_profiles(
        num_cells=num_cells,
        users_per_cell=users_per_cell,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=period,
        arrival_process="poisson",
        turnaround_budget_us=500.0,
    )


class TestScenarioWorkload:
    def test_fixed_seed_reproduces_the_workload(self):
        scenario = build_scenario("busy-day", num_cells=4, horizon_us=5000.0)

        def draw():
            return generate_serving_jobs(_profiles(), 100, rng=9, scenario=scenario)

        first = draw()
        second = draw()
        assert len(first) == len(second) > 0
        assert [job.arrival_us for job in first] == [job.arrival_us for job in second]
        assert [job.user_id for job in first] == [job.user_id for job in second]
        assert np.array_equal(
            first[0].channel_use.transmission.instance.received,
            second[0].channel_use.transmission.instance.received,
        )

    def test_jobs_confined_to_the_horizon(self):
        scenario = build_scenario("steady", num_cells=4, horizon_us=3000.0)
        jobs = generate_serving_jobs(_profiles(), 200, rng=9, scenario=scenario)
        assert jobs
        assert all(0.0 <= job.arrival_us < 3000.0 for job in jobs)

    def test_flash_cell_densifies_during_the_burst(self):
        scenario = build_scenario("flash-crowd", num_cells=4, horizon_us=8000.0)
        jobs = generate_serving_jobs(_profiles(), 500, rng=9, scenario=scenario)
        flash_cell = 4 // 2
        # During the flash window the hot cell produces far more jobs than a
        # quiet cell; outside the window the two are comparable.
        window = [job for job in jobs if 2000.0 <= job.arrival_us < 6000.0]
        hot = sum(1 for job in window if job.cell_id == flash_cell)
        cold = sum(1 for job in window if job.cell_id == 0)
        assert hot > 2 * cold

    def test_outage_cell_goes_silent_and_spills(self):
        scenario = build_scenario("cell-outage", num_cells=4, horizon_us=8000.0)
        jobs = generate_serving_jobs(_profiles(), 500, rng=9, scenario=scenario)
        dark_cell = 4 // 2
        window = [job for job in jobs if 2000.0 <= job.arrival_us < 6000.0]
        assert sum(1 for job in window if job.cell_id == dark_cell) == 0
        # Neighbours (cells 1 and 3) absorb the spill: busier than the far
        # cell 0, which stays at background load.
        neighbour = sum(1 for job in window if job.cell_id in (dark_cell - 1, dark_cell + 1))
        far = sum(1 for job in window if job.cell_id == 0)
        assert neighbour > 2 * 1.2 * far

    def test_ceiling_caps_each_user(self):
        scenario = build_scenario("steady", num_cells=2, horizon_us=50_000.0)
        jobs = generate_serving_jobs(
            _profiles(num_cells=2, period=50.0), 5, rng=9, scenario=scenario
        )
        from collections import Counter

        per_user = Counter(job.user_id for job in jobs)
        assert all(count <= 5 for count in per_user.values())

    def test_cell_outside_scenario_grid_rejected(self):
        scenario = build_scenario("steady", num_cells=2, horizon_us=1000.0)
        with pytest.raises(ConfigurationError):
            generate_serving_jobs(_profiles(num_cells=4), 10, rng=9, scenario=scenario)


# ---------------------------------------------------------------------- #
# The elastic pool
# ---------------------------------------------------------------------- #


def _elastic_pool(max_workers=4, initial=1, classical=0):
    return ElasticBackendPool(
        annealer=AnnealerServingBackend(num_reads=10),
        max_annealer_workers=max_workers,
        initial_annealer_workers=initial,
        num_classical_workers=classical,
    )


class TestElasticPool:
    def test_initial_layout(self):
        pool = _elastic_pool(max_workers=4, initial=2, classical=1)
        assert pool.active_annealer_count == 2
        assert len(pool.parked_annealer_workers) == 2
        assert len(pool.classical_workers) == 1
        # Parked workers are not dispatchable.
        assert len(pool.idle_workers(0.0, kind="annealer")) == 2

    def test_activation_honours_warmup(self):
        pool = _elastic_pool()
        worker = pool.activate_worker(100.0, warmup_us=50.0)
        assert worker is not None and worker.active
        assert pool.active_annealer_count == 2
        # Warming: counted as active but not yet dispatchable.
        assert worker not in pool.idle_workers(120.0, kind="annealer")
        assert worker in pool.idle_workers(150.0, kind="annealer")

    def test_activation_exhausts_parked_workers(self):
        pool = _elastic_pool(max_workers=2, initial=2)
        assert pool.activate_worker(0.0, warmup_us=0.0) is None

    def test_deactivation_parks_idle_highest_index_first(self):
        pool = _elastic_pool(max_workers=3, initial=3)
        busy = pool.annealer_workers[2]
        busy.server.serve(0.0, 100.0)
        parked = pool.deactivate_worker(50.0)
        # Worker 2 is busy, so worker 1 (next highest idle) is parked.
        assert parked is pool.annealer_workers[1]
        assert pool.active_annealer_count == 2

    def test_deactivation_skips_when_all_busy(self):
        pool = _elastic_pool(max_workers=2, initial=2)
        for worker in pool.annealer_workers:
            worker.server.serve(0.0, 100.0)
        assert pool.deactivate_worker(50.0) is None

    def test_deactivation_never_parks_a_busy_worker(self):
        # A worker whose batch finishes in the future must never be parked
        # "idle" mid-job — that would strand its in-flight work.  The guard
        # must survive the idlest-candidate selection.
        pool = _elastic_pool(max_workers=3, initial=3)
        pool.annealer_workers[0].server.serve(0.0, 100.0)
        pool.annealer_workers[2].server.serve(0.0, 100.0)
        parked = pool.deactivate_worker(50.0)
        assert parked is pool.annealer_workers[1]
        assert pool.annealer_workers[0].active
        assert pool.annealer_workers[2].active
        # The lone remaining idle candidate gone, further scale-downs skip.
        pool.annealer_workers[1].active = True  # restore
        pool.annealer_workers[1].server.serve(50.0, 100.0)
        assert pool.deactivate_worker(60.0) is None

    def test_deactivation_prefers_the_idlest_worker(self):
        # Among idle workers the one idle longest (smallest free_at_us) is
        # parked, not simply the highest index.
        pool = _elastic_pool(max_workers=3, initial=3)
        pool.annealer_workers[1].server.serve(0.0, 40.0)  # idle since t=40
        pool.annealer_workers[2].server.serve(0.0, 100.0)  # busy until t=100
        parked = pool.deactivate_worker(50.0)
        assert parked is pool.annealer_workers[0]  # idle since t=0

    def test_reset_restores_initial_layout(self):
        pool = _elastic_pool(max_workers=4, initial=1)
        pool.activate_worker(0.0, warmup_us=0.0)
        pool.activate_worker(0.0, warmup_us=0.0)
        assert pool.active_annealer_count == 3
        pool.reset()
        assert pool.active_annealer_count == 1
        assert all(worker.available_from_us == 0.0 for worker in pool.workers)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_annealer_workers": 0},
            {"initial_annealer_workers": 0},
            {"initial_annealer_workers": 5},
            {"num_classical_workers": -1},
        ],
    )
    def test_invalid_pool_configuration(self, kwargs):
        defaults = dict(max_annealer_workers=4, initial_annealer_workers=1)
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            ElasticBackendPool(**defaults)


# ---------------------------------------------------------------------- #
# The autoscale controller
# ---------------------------------------------------------------------- #


def _queued_jobs(count, rng, deadline=1000.0):
    from repro.wireless.mimo import simulate_transmission
    from repro.wireless.traffic import ChannelUse
    from repro.serving import ServingJob

    jobs = []
    for job_id in range(count):
        transmission = simulate_transmission(MIMOConfig(2, "QPSK"), rng=rng)
        use = ChannelUse(
            index=job_id,
            arrival_time_us=0.0,
            transmission=transmission,
            deadline_us=deadline,
        )
        jobs.append(ServingJob(job_id=job_id, user_id=job_id, cell_id=0, channel_use=use))
    return jobs


class TestAutoscaleController:
    def test_scales_up_on_queue_depth(self, rng):
        pool = _elastic_pool()
        controller = AutoscaleController(
            AutoscaleConfig(scale_up_queue_per_worker=3.0, warmup_us=100.0)
        )
        controller.begin(0.0, pool)
        event = controller.step(10.0, _queued_jobs(5, rng), pool, pressured_count=0)
        assert isinstance(event, AutoscaleEvent)
        assert event.action == "scale-up" and event.reason == "queue-depth"
        assert pool.active_annealer_count == 2

    def test_scales_up_on_deadline_pressure(self, rng):
        pool = _elastic_pool()
        controller = AutoscaleController(AutoscaleConfig(pressure_fraction=0.1))
        controller.begin(0.0, pool)
        event = controller.step(10.0, _queued_jobs(2, rng), pool, pressured_count=1)
        assert event is not None and event.reason == "deadline-pressure"

    def test_cooldown_blocks_consecutive_actions(self, rng):
        pool = _elastic_pool()
        controller = AutoscaleController(AutoscaleConfig(cooldown_us=500.0))
        controller.begin(0.0, pool)
        jobs = _queued_jobs(12, rng)
        assert controller.step(10.0, jobs, pool, 0) is not None
        assert controller.step(200.0, jobs, pool, 0) is None
        assert controller.step(520.0, jobs, pool, 0) is not None

    def test_scales_down_when_quiet(self, rng):
        pool = _elastic_pool(max_workers=3, initial=3)
        controller = AutoscaleController(AutoscaleConfig(min_workers=1))
        controller.begin(0.0, pool)
        event = controller.step(10.0, [], pool, pressured_count=0)
        assert event is not None and event.action == "scale-down"
        assert pool.active_annealer_count == 2

    def test_never_leaves_the_bounds(self, rng):
        pool = _elastic_pool(max_workers=3, initial=1)
        controller = AutoscaleController(
            AutoscaleConfig(min_workers=1, max_workers=2, cooldown_us=0.0)
        )
        controller.begin(0.0, pool)
        jobs = _queued_jobs(30, rng)
        for tick in range(5):
            controller.step(10.0 * (tick + 1), jobs, pool, 0)
        assert pool.active_annealer_count == 2  # capped below the pool's 3
        for tick in range(5):
            controller.step(1000.0 + 10.0 * tick, [], pool, 0)
        assert pool.active_annealer_count == 1

    def test_average_active_workers_is_time_weighted(self, rng):
        pool = _elastic_pool(max_workers=2, initial=1)
        controller = AutoscaleController(AutoscaleConfig(cooldown_us=0.0))
        controller.begin(0.0, pool)
        controller.step(100.0, _queued_jobs(10, rng), pool, 0)
        # 1 worker for [0, 100), 2 workers for [100, 200) -> mean 1.5.
        assert controller.average_active_workers(200.0) == pytest.approx(1.5)

    def test_begin_requires_elastic_pool(self):
        controller = AutoscaleController()
        with pytest.raises(ConfigurationError):
            controller.begin(0.0, BackendPool([AnnealerServingBackend(num_reads=10)]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval_us": 0.0},
            {"warmup_us": -1.0},
            {"min_workers": 0},
            {"max_workers": 0},
            {"scale_up_queue_per_worker": 0.2},
            {"pressure_fraction": 1.5},
            {"cooldown_us": -1.0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscaleConfig(**kwargs)


# ---------------------------------------------------------------------- #
# Autoscaled serving runs
# ---------------------------------------------------------------------- #


class TestAutoscaledSimulator:
    def _run(self, jobs, **overrides):
        settings = dict(
            interval_us=150.0,
            warmup_us=300.0,
            min_workers=1,
            max_workers=4,
            cooldown_us=200.0,
        )
        settings.update(overrides)
        controller = AutoscaleController(AutoscaleConfig(**settings))
        simulator = RANServingSimulator(
            pool=_elastic_pool(max_workers=4, initial=1),
            policy="edf",
            max_batch_size=4,
            admission_control=False,
            autoscaler=controller,
        )
        return simulator.run(jobs), controller

    def _flash_jobs(self):
        scenario = build_scenario("flash-crowd", num_cells=4, horizon_us=8000.0)
        return generate_serving_jobs(
            _profiles(period=150.0), 500, rng=11, scenario=scenario
        )

    def test_every_job_accounted_and_pool_flexes(self):
        jobs = self._flash_jobs()
        report, controller = self._run(jobs)
        assert report.num_jobs == len(jobs)
        assert sorted(o.job_id for o in report.outcomes) == [j.job_id for j in jobs]
        assert any(event.action == "scale-up" for event in controller.events)
        assert report.metadata["autoscale_events"] == len(controller.events)
        assert 1.0 <= report.metadata["autoscale_average_active"] <= 4.0

    def test_autoscaled_run_is_reproducible(self):
        jobs = self._flash_jobs()
        first, first_ctrl = self._run(jobs)
        second, second_ctrl = self._run(jobs)
        assert [o.finish_us for o in first.outcomes] == [
            o.finish_us for o in second.outcomes
        ]
        assert first_ctrl.events == second_ctrl.events

    def test_autoscaling_beats_the_frozen_minimum_pool(self):
        jobs = self._flash_jobs()
        autoscaled, _ = self._run(jobs)
        frozen = RANServingSimulator(
            pool=BackendPool([AnnealerServingBackend(num_reads=10)]),
            policy="edf",
            max_batch_size=4,
            admission_control=False,
        ).run(jobs)
        assert (autoscaled.deadline_miss_rate or 0.0) <= (
            frozen.deadline_miss_rate or 0.0
        )
        assert autoscaled.p99_latency_us <= frozen.p99_latency_us

    def test_autoscaler_requires_elastic_pool(self):
        with pytest.raises(ConfigurationError):
            RANServingSimulator(
                pool=BackendPool([AnnealerServingBackend(num_reads=10)]),
                autoscaler=AutoscaleController(),
            )
