"""Tests for repro.transform.symbol_mapping."""

import itertools

import numpy as np
import pytest

from repro.exceptions import TransformError
from repro.transform.symbol_mapping import (
    SymbolBitMapping,
    amplitude_to_transform_bits,
    gray_bits_to_transform_bits,
    transform_bits_to_amplitude,
    transform_bits_to_gray_bits,
)
from repro.wireless.modulation import get_modulation


class TestAmplitudeMapping:
    def test_single_bit(self):
        assert transform_bits_to_amplitude([0]) == -1.0
        assert transform_bits_to_amplitude([1]) == 1.0

    def test_two_bits_span_grid(self):
        amplitudes = sorted(
            transform_bits_to_amplitude(bits) for bits in itertools.product((0, 1), repeat=2)
        )
        assert amplitudes == [-3.0, -1.0, 1.0, 3.0]

    def test_three_bits_span_grid(self):
        amplitudes = sorted(
            transform_bits_to_amplitude(bits) for bits in itertools.product((0, 1), repeat=3)
        )
        assert amplitudes == [-7.0, -5.0, -3.0, -1.0, 1.0, 3.0, 5.0, 7.0]

    def test_scale_applied(self):
        assert transform_bits_to_amplitude([1, 1], scale=0.5) == pytest.approx(1.5)

    def test_inverse(self):
        for bits in itertools.product((0, 1), repeat=3):
            amplitude = transform_bits_to_amplitude(bits, scale=0.37)
            assert amplitude_to_transform_bits(amplitude, 3, scale=0.37) == bits

    def test_off_grid_rejected(self):
        with pytest.raises(TransformError):
            amplitude_to_transform_bits(0.4, 2)

    def test_empty_bits_rejected(self):
        with pytest.raises(TransformError):
            transform_bits_to_amplitude([])

    def test_invalid_bits_rejected(self):
        with pytest.raises(TransformError):
            transform_bits_to_amplitude([0, 2])


class TestGrayConversion:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_round_trip(self, width):
        for bits in itertools.product((0, 1), repeat=width):
            gray = transform_bits_to_gray_bits(bits)
            assert gray_bits_to_transform_bits(gray) == bits


class TestSymbolBitMapping:
    @pytest.mark.parametrize("name", ["BPSK", "QPSK", "16-QAM", "64-QAM"])
    def test_symbol_round_trip_over_constellation(self, name):
        modulation = get_modulation(name)
        mapping = SymbolBitMapping(modulation=modulation, user_index=0, first_variable=0)
        for index in range(modulation.order):
            symbol = modulation.points[index]
            bits = np.zeros(modulation.bits_per_symbol, dtype=int)
            bits[list(range(modulation.bits_per_symbol))] = mapping.bits_from_symbol(symbol)
            assert mapping.symbol_from_bits(bits) == pytest.approx(symbol)

    def test_variable_layout(self):
        modulation = get_modulation("16-QAM")
        mapping = SymbolBitMapping(modulation=modulation, user_index=2, first_variable=8)
        assert mapping.variable_indices == (8, 9, 10, 11)
        assert mapping.in_phase_indices == (8, 9)
        assert mapping.quadrature_indices == (10, 11)

    def test_bpsk_has_no_quadrature(self):
        mapping = SymbolBitMapping(
            modulation=get_modulation("BPSK"), user_index=0, first_variable=0
        )
        assert mapping.quadrature_indices == ()
        assert mapping.in_phase_indices == (0,)

    def test_gray_payload_matches_modulation_labels(self):
        # Decoding QUBO bits -> payload bits -> constellation point must agree
        # with decoding QUBO bits -> symbol directly.
        modulation = get_modulation("64-QAM")
        mapping = SymbolBitMapping(modulation=modulation, user_index=0, first_variable=0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            bits = rng.integers(0, 2, size=modulation.bits_per_symbol)
            symbol = mapping.symbol_from_bits(bits)
            payload = mapping.gray_payload_bits(bits)
            assert modulation.modulate_bits(list(payload))[0] == pytest.approx(symbol)

    def test_payload_round_trip(self):
        modulation = get_modulation("16-QAM")
        mapping = SymbolBitMapping(modulation=modulation, user_index=0, first_variable=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            bits = rng.integers(0, 2, size=4)
            payload = mapping.gray_payload_bits(bits)
            assert mapping.transform_bits_from_payload(payload) == tuple(bits)

    def test_bpsk_rejects_complex_symbol(self):
        mapping = SymbolBitMapping(
            modulation=get_modulation("BPSK"), user_index=0, first_variable=0
        )
        with pytest.raises(TransformError):
            mapping.bits_from_symbol(0.5 + 0.5j)

    def test_wrong_payload_length(self):
        mapping = SymbolBitMapping(
            modulation=get_modulation("QPSK"), user_index=0, first_variable=0
        )
        with pytest.raises(TransformError):
            mapping.transform_bits_from_payload([1])
