"""Tests for repro.qubo.preprocessing (paper Figure 3 scheme)."""

import numpy as np
import pytest

from repro.qubo.energy import brute_force_minimum
from repro.qubo.generators import random_qubo
from repro.qubo.model import QUBOModel
from repro.qubo.preprocessing import find_fixable_variables, simplify_qubo


class TestFindFixable:
    def test_positive_diagonal_no_negative_couplings_fixes_zero(self):
        # Only positive contributions: q0 = 1 can never help.
        model = QUBOModel(coefficients=np.array([[2.0, 1.0], [0.0, 0.5]]))
        fixable = find_fixable_variables(model)
        assert fixable[0] == 0
        assert fixable[1] == 0

    def test_negative_diagonal_no_positive_couplings_fixes_one(self):
        model = QUBOModel(coefficients=np.array([[-2.0, -1.0], [0.0, -0.5]]))
        fixable = find_fixable_variables(model)
        assert fixable[0] == 1
        assert fixable[1] == 1

    def test_balanced_variable_not_fixed(self):
        # Q_00 = 1 but a coupling of -3 means neither rule applies to q0.
        model = QUBOModel(coefficients=np.array([[1.0, -3.0], [0.0, 1.0]]))
        fixable = find_fixable_variables(model)
        assert 0 not in fixable


class TestSimplifyQubo:
    def test_preserves_optimum_small_random(self, rng):
        for _ in range(10):
            qubo = random_qubo(8, rng=rng)
            exact = brute_force_minimum(qubo)
            report = simplify_qubo(qubo)
            if report.num_fixed == 0:
                continue
            reduced_exact = brute_force_minimum(report.reduced_qubo)
            lifted = report.lift_assignment(reduced_exact.assignment)
            assert qubo.energy(lifted) == pytest.approx(exact.energy)

    def test_fixpoint_terminates(self, rng):
        qubo = random_qubo(12, rng=rng)
        report = simplify_qubo(qubo)
        assert report.iterations <= 12
        assert find_fixable_variables(report.reduced_qubo) == {}

    def test_report_counts(self):
        model = QUBOModel(coefficients=np.array([[2.0, 1.0], [0.0, 0.5]]))
        report = simplify_qubo(model)
        assert report.num_fixed == 2
        assert report.was_simplified
        assert report.reduction_ratio == pytest.approx(1.0)
        assert report.reduced_qubo.num_variables == 0

    def test_no_simplification_case(self):
        # Strong frustration: no rule can fire.
        matrix = np.array([[1.0, -3.0, 2.0], [0.0, 1.0, -3.0], [0.0, 0.0, 1.0]])
        report = simplify_qubo(QUBOModel(coefficients=matrix))
        assert not report.was_simplified
        assert report.reduced_qubo.num_variables == 3

    def test_lift_assignment_roundtrip(self):
        model = QUBOModel(coefficients=np.diag([5.0, -5.0, 0.0]))
        report = simplify_qubo(model)
        # Variables 0 and 1 get fixed (0 and 1 respectively); variable 2 is free
        # only if its rule does not fire — with a zero diagonal it fixes to 0.
        lifted = report.lift_assignment(np.zeros(report.reduced_qubo.num_variables, dtype=int))
        assert lifted.size == 3
        assert lifted[0] == 0
        assert lifted[1] == 1

    def test_lift_wrong_length(self):
        model = QUBOModel(coefficients=np.diag([5.0, -5.0]))
        report = simplify_qubo(model)
        with pytest.raises(ValueError):
            report.lift_assignment(np.zeros(5, dtype=int))

    def test_mimo_qubos_over_40_variables_rarely_simplify(self):
        # The paper's empirical finding: large MIMO QUBOs admit no prefixing.
        from repro.experiments.instances import synthesize_instance

        bundle = synthesize_instance(12, "16-QAM", seed=0)  # 48 variables
        report = simplify_qubo(bundle.encoding.qubo)
        assert report.num_fixed == 0

    def test_max_iterations_respected(self, rng):
        qubo = random_qubo(10, rng=rng)
        report = simplify_qubo(qubo, max_iterations=1)
        assert report.iterations == 1
