"""Tests for repro.utils.validation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_power_of_two,
    require_probability,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_when_false(self):
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")


class TestNumericRequirements:
    def test_positive_accepts(self):
        require_positive(0.1, "x")

    def test_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            require_positive(0, "x")

    def test_non_negative_accepts_zero(self):
        require_non_negative(0, "x")

    def test_non_negative_rejects(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-1, "x")

    def test_in_range_inclusive(self):
        require_in_range(0.0, 0.0, 1.0, "x")
        require_in_range(1.0, 0.0, 1.0, "x")

    def test_in_range_rejects(self):
        with pytest.raises(ConfigurationError):
            require_in_range(1.5, 0.0, 1.0, "x")

    def test_probability(self):
        require_probability(0.5, "p")
        with pytest.raises(ConfigurationError):
            require_probability(-0.1, "p")


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 16, 64])
    def test_accepts_powers(self, value):
        require_power_of_two(value, "order")

    @pytest.mark.parametrize("value", [0, 3, 6, -4, 12])
    def test_rejects_non_powers(self, value):
        with pytest.raises(ConfigurationError):
            require_power_of_two(value, "order")
