"""End-to-end integration tests across the full stack.

These tests tie the wireless substrate, the QuAMax transform, the classical
solvers, the annealer simulator, the hybrid solver and the metrics together,
mirroring how the benchmark harness uses the library.
"""

import numpy as np
import pytest

from repro.annealing import QuantumAnnealerSimulator, SpinVectorMonteCarloBackend
from repro.classical import ExhaustiveSolver, GreedySearchSolver, SimulatedAnnealingSolver
from repro.experiments.instances import synthesize_instance
from repro.hybrid import HybridMIMODetector, HybridQuboSolver
from repro.metrics.quality import delta_e_percent, initial_state_quality
from repro.metrics.tts import tts_from_sampleset
from repro.qubo import simplify_qubo
from repro.transform import mimo_to_qubo
from repro.wireless import MIMOConfig, simulate_transmission
from repro.wireless.metrics import bit_error_rate, symbol_error_rate


@pytest.fixture(scope="module")
def sampler():
    return QuantumAnnealerSimulator(
        backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=24), seed=2024
    )


@pytest.fixture(scope="module")
def bundle():
    return synthesize_instance(3, "16-QAM", seed=12, verify_exhaustively=False)


class TestDetectionChain:
    def test_transform_solvers_and_metrics_agree(self, bundle):
        qubo = bundle.encoding.qubo
        exhaustive = ExhaustiveSolver(max_variables=12).solve(qubo)
        assert exhaustive.energy == pytest.approx(bundle.ground_energy)

        greedy = GreedySearchSolver().solve(qubo)
        quality = initial_state_quality(qubo, greedy.assignment, bundle.ground_energy)
        assert quality >= -1e-9
        assert quality == pytest.approx(
            delta_e_percent(greedy.energy, bundle.ground_energy)
        )

        annealing = SimulatedAnnealingSolver(num_sweeps=200).solve(qubo, rng=1)
        assert annealing.energy <= greedy.energy + 1e-9 or annealing.energy == pytest.approx(
            greedy.energy
        )

    def test_hybrid_detector_end_to_end_payload(self, bundle, sampler):
        detector = HybridMIMODetector(sampler=sampler, switch_s=0.45, num_reads=80)
        result, details = detector.detect_with_details(bundle.transmission.instance, rng=4)
        transmitted_bits = bundle.transmission.transmitted_bits
        # The hybrid either recovers the payload exactly or at least produces a
        # candidate no worse than its classical initial state.
        if details.best_energy <= bundle.ground_energy + 1e-6:
            assert bit_error_rate(transmitted_bits, result.bits) == 0.0
            assert symbol_error_rate(
                bundle.transmission.transmitted_symbols, result.symbols
            ) == 0.0
        assert details.best_energy <= details.initial_solution.energy + 1e-9

    def test_reverse_annealing_refines_greedy_candidate(self, bundle, sampler):
        qubo = bundle.encoding.qubo
        greedy = GreedySearchSolver().solve(qubo)
        hybrid = HybridQuboSolver(sampler=sampler, switch_s=0.45, num_reads=120)
        result = hybrid.solve(qubo, rng=6)
        assert result.best_energy <= greedy.energy + 1e-9

    def test_tts_computable_from_hybrid_sampleset(self, bundle, sampler):
        hybrid = HybridQuboSolver(sampler=sampler, switch_s=0.45, num_reads=60)
        result = hybrid.solve(bundle.encoding.qubo, rng=8)
        tts = tts_from_sampleset(result.sampleset, bundle.ground_energy)
        assert tts.duration_us == pytest.approx(2 * (1 - 0.45) + 1.0)
        if result.sampleset.success_probability(bundle.ground_energy) > 0:
            assert tts.is_finite

    def test_preprocessing_then_solving_reaches_same_optimum(self):
        # Small instance where preprocessing may fix variables; the combined
        # pipeline must still recover the exact ML solution.
        bundle = synthesize_instance(2, "QPSK", seed=3, verify_exhaustively=True)
        report = simplify_qubo(bundle.encoding.qubo)
        if report.reduced_qubo.num_variables:
            reduced_best = ExhaustiveSolver(max_variables=10).solve(report.reduced_qubo)
            lifted = report.lift_assignment(reduced_best.assignment)
        else:
            lifted = report.lift_assignment(np.zeros(0, dtype=int))
        assert bundle.encoding.qubo.energy(lifted) == pytest.approx(bundle.ground_energy)

    def test_noisy_link_detection_quality_improves_with_snr(self, sampler):
        errors = []
        for snr_db in (0.0, 25.0):
            config = MIMOConfig(
                num_users=2, modulation="QPSK", num_receive_antennas=6, snr_db=snr_db
            )
            rates = []
            for seed in range(4):
                transmission = simulate_transmission(config, rng=seed)
                encoding = mimo_to_qubo(transmission.instance)
                greedy = GreedySearchSolver().solve(encoding.qubo)
                detection = encoding.detection_result(greedy.assignment, algorithm="greedy")
                rates.append(
                    bit_error_rate(transmission.transmitted_bits, detection.bits)
                )
            errors.append(np.mean(rates))
        assert errors[1] <= errors[0] + 1e-9


class TestAnnealerOrderings:
    def test_reverse_annealing_from_optimum_beats_forward(self, bundle, sampler):
        # Starting from the exact optimum at a high switch point, RA must retain
        # it with higher probability than FA finds it from scratch.
        qubo = bundle.encoding.qubo
        ground = bundle.ground_energy
        fa = sampler.forward_anneal(qubo, num_reads=120, pause_s=0.45)
        ra = sampler.reverse_anneal(qubo, bundle.ground_state, switch_s=0.7, num_reads=120)
        assert ra.success_probability(ground) >= fa.success_probability(ground)

    def test_low_switch_point_degrades_toward_forward_behaviour(self, bundle, sampler):
        qubo = bundle.encoding.qubo
        ground = bundle.ground_energy
        shallow = sampler.reverse_anneal(qubo, bundle.ground_state, switch_s=0.9, num_reads=100)
        deep = sampler.reverse_anneal(qubo, bundle.ground_state, switch_s=0.1, num_reads=100)
        assert shallow.success_probability(ground) >= deep.success_probability(ground)
