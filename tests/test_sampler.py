"""Tests for the QuantumAnnealerSimulator front-end."""

import numpy as np
import pytest

from repro.annealing import (
    DeviceModel,
    QuantumAnnealerSimulator,
    ScheduleDrivenAnnealingBackend,
    SpinVectorMonteCarloBackend,
    forward_anneal_schedule,
    reverse_anneal_schedule,
)
from repro.exceptions import ConfigurationError
from repro.qubo.energy import brute_force_minimum
from repro.qubo.generators import planted_solution_qubo
from repro.qubo.ising import qubo_to_ising


@pytest.fixture
def planted_qubo_and_state(rng):
    planted = rng.integers(0, 2, size=6)
    qubo = planted_solution_qubo(planted, coupling_strength=0.6, field_strength=1.0, rng=rng)
    return qubo, planted


class TestSampleQubo:
    def test_forward_anneal_sampleset(self, planted_qubo_and_state, fast_sampler):
        qubo, planted = planted_qubo_and_state
        sampleset = fast_sampler.forward_anneal(qubo, num_reads=40)
        assert sampleset.num_reads == 40
        assert sampleset.num_variables == 6
        assert sampleset.metadata["schedule_name"] == "FA"
        assert sampleset.metadata["backend"] == "spin-vector-monte-carlo"

    def test_energies_match_qubo(self, planted_qubo_and_state, fast_sampler):
        qubo, _ = planted_qubo_and_state
        sampleset = fast_sampler.forward_anneal(qubo, num_reads=30)
        for record in sampleset:
            assert record.energy == pytest.approx(qubo.energy(record.assignment))

    def test_forward_anneal_finds_planted_state(self, planted_qubo_and_state, fast_sampler):
        qubo, planted = planted_qubo_and_state
        sampleset = fast_sampler.forward_anneal(qubo, num_reads=100, pause_s=0.4)
        ground = qubo.energy(planted)
        assert sampleset.lowest_energy() == pytest.approx(ground)
        assert sampleset.success_probability(ground) > 0.1

    def test_reverse_anneal_requires_initial_state(self, planted_qubo_and_state, fast_sampler):
        qubo, _ = planted_qubo_and_state
        with pytest.raises(ConfigurationError):
            fast_sampler.sample_qubo(qubo, reverse_anneal_schedule(0.5), num_reads=10)

    def test_reverse_anneal_from_ground_state_stays(self, planted_qubo_and_state, fast_sampler):
        qubo, planted = planted_qubo_and_state
        sampleset = fast_sampler.reverse_anneal(qubo, planted, switch_s=0.8, num_reads=50)
        assert sampleset.success_probability(qubo.energy(planted)) > 0.5

    def test_forward_reverse_anneal_runs(self, planted_qubo_and_state, fast_sampler):
        qubo, planted = planted_qubo_and_state
        sampleset = fast_sampler.forward_reverse_anneal(
            qubo, turning_s=0.7, switch_s=0.4, num_reads=30
        )
        assert sampleset.num_reads == 30
        assert sampleset.metadata["schedule_name"] == "FR"

    def test_invalid_num_reads(self, planted_qubo_and_state, fast_sampler):
        qubo, _ = planted_qubo_and_state
        with pytest.raises(ConfigurationError):
            fast_sampler.forward_anneal(qubo, num_reads=0)

    def test_reproducible_with_rng(self, planted_qubo_and_state):
        qubo, _ = planted_qubo_and_state
        sampler = QuantumAnnealerSimulator(
            backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=8), seed=1
        )
        first = sampler.forward_anneal(qubo, num_reads=20, rng=5)
        second = sampler.forward_anneal(qubo, num_reads=20, rng=5)
        assert np.array_equal(
            first.energies(expanded=True), second.energies(expanded=True)
        )

    def test_qpu_access_time_in_metadata(self, planted_qubo_and_state, fast_sampler):
        qubo, _ = planted_qubo_and_state
        sampleset = fast_sampler.forward_anneal(qubo, num_reads=10)
        schedule = forward_anneal_schedule(1.0)
        expected = fast_sampler.device.qpu_access_time_us(schedule, 10)
        assert sampleset.metadata["qpu_access_time_us"] == pytest.approx(expected)


class TestSampleIsing:
    def test_ising_energies(self, planted_qubo_and_state, fast_sampler):
        qubo, _ = planted_qubo_and_state
        ising = qubo_to_ising(qubo)
        sampleset = fast_sampler.sample_ising(ising, forward_anneal_schedule(1.0), num_reads=20)
        for record in sampleset:
            spins = 2 * record.assignment.astype(int) - 1
            assert record.energy == pytest.approx(ising.energy(spins))


class TestControlNoise:
    def test_noise_changes_samples_but_energies_still_evaluated_on_clean_model(
        self, planted_qubo_and_state
    ):
        qubo, _ = planted_qubo_and_state
        noisy_device = DeviceModel(field_noise_sigma=0.2, coupling_noise_sigma=0.2)
        sampler = QuantumAnnealerSimulator(
            device=noisy_device,
            backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=8),
            seed=3,
        )
        sampleset = sampler.forward_anneal(qubo, num_reads=20)
        for record in sampleset:
            assert record.energy == pytest.approx(qubo.energy(record.assignment))


class TestEmbeddedSampling:
    def test_embedded_run_returns_logical_samples(self, planted_qubo_and_state):
        qubo, planted = planted_qubo_and_state
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8),
            use_embedding=True,
            seed=7,
        )
        sampleset = sampler.forward_anneal(qubo, num_reads=15, pause_s=0.4)
        assert sampleset.num_variables == qubo.num_variables
        assert sampleset.metadata["embedded"] is True
        assert "chain_strength" in sampleset.metadata
        assert sampleset.metadata["max_chain_length"] >= 2

    def test_embedded_reverse_anneal(self, planted_qubo_and_state):
        qubo, planted = planted_qubo_and_state
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=8),
            use_embedding=True,
            seed=9,
        )
        sampleset = sampler.reverse_anneal(qubo, planted, switch_s=0.85, num_reads=15)
        assert sampleset.success_probability(qubo.energy(planted)) > 0.3

    def test_embedded_finds_reasonable_energy(self, planted_qubo_and_state):
        qubo, planted = planted_qubo_and_state
        exact = brute_force_minimum(qubo)
        sampler = QuantumAnnealerSimulator(
            backend=ScheduleDrivenAnnealingBackend(sweeps_per_microsecond=16),
            use_embedding=True,
            seed=11,
        )
        sampleset = sampler.forward_anneal(qubo, num_reads=40, pause_s=0.4)
        assert sampleset.lowest_energy() <= exact.energy + 0.5 * abs(exact.energy)
