"""Tests for repro.qubo.constraints (paper Figure 4 scheme)."""

import itertools

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.qubo.constraints import (
    SoftConstraint,
    add_soft_constraints,
    pairwise_agreement_constraint,
    single_bit_bias_constraint,
)
from repro.qubo.generators import random_qubo


class TestSoftConstraintValidation:
    def test_too_many_variables(self):
        with pytest.raises(ConfigurationError):
            SoftConstraint(variables=(0, 1, 2), targets=(1, 1, 1), strength=1.0)

    def test_duplicate_variables(self):
        with pytest.raises(ConfigurationError):
            SoftConstraint(variables=(0, 0), targets=(1, 1), strength=1.0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            SoftConstraint(variables=(0, 1), targets=(1,), strength=1.0)

    def test_bad_target(self):
        with pytest.raises(ConfigurationError):
            SoftConstraint(variables=(0,), targets=(2,), strength=1.0)

    def test_non_positive_strength(self):
        with pytest.raises(ConfigurationError):
            SoftConstraint(variables=(0,), targets=(1,), strength=0.0)

    def test_out_of_range_variable(self):
        constraint = SoftConstraint(variables=(5,), targets=(1,), strength=1.0)
        with pytest.raises(ConfigurationError):
            constraint.penalty_qubo(num_variables=3)


class TestPairPenaltyValues:
    @pytest.mark.parametrize("targets", list(itertools.product((0, 1), repeat=2)))
    def test_penalty_only_when_both_wrong(self, targets):
        constraint = pairwise_agreement_constraint((0, 1), targets, strength=2.5)
        penalty = constraint.penalty_qubo(num_variables=2)
        for bits in itertools.product((0, 1), repeat=2):
            both_wrong = bits[0] != targets[0] and bits[1] != targets[1]
            expected = 2.5 if both_wrong else 0.0
            assert penalty.energy(bits) == pytest.approx(expected)

    def test_paper_example_expansion(self):
        # Target (1, 1): the penalty is C (q0 - 1)(q1 - 1).
        constraint = pairwise_agreement_constraint((0, 1), (1, 1), strength=3.0)
        penalty = constraint.penalty_qubo(2)
        assert penalty.coupling(0, 1) == pytest.approx(3.0)
        assert penalty.linear[0] == pytest.approx(-3.0)
        assert penalty.linear[1] == pytest.approx(-3.0)
        assert penalty.offset == pytest.approx(3.0)


class TestSingleBitPenalty:
    @pytest.mark.parametrize("target", (0, 1))
    def test_penalises_disagreement(self, target):
        constraint = single_bit_bias_constraint(0, target, strength=1.5)
        penalty = constraint.penalty_qubo(1)
        assert penalty.energy([target]) == pytest.approx(0.0)
        assert penalty.energy([1 - target]) == pytest.approx(1.5)


class TestAddSoftConstraints:
    def test_energy_shift_only_for_disagreement(self, rng):
        qubo = random_qubo(6, rng=rng)
        constraints = [
            pairwise_agreement_constraint((0, 1), (1, 1), 4.0),
            single_bit_bias_constraint(5, 0, 2.0),
        ]
        augmented = add_soft_constraints(qubo, constraints)
        agreeing = np.array([1, 1, 0, 0, 0, 0])
        assert augmented.energy(agreeing) == pytest.approx(qubo.energy(agreeing))
        disagreeing = np.array([0, 0, 0, 0, 0, 1])
        assert augmented.energy(disagreeing) == pytest.approx(qubo.energy(disagreeing) + 6.0)

    def test_correct_knowledge_preserves_optimum(self, planted_qubo_10):
        qubo, planted = planted_qubo_10
        constraints = [
            pairwise_agreement_constraint((i, i + 1), (planted[i], planted[i + 1]), 5.0)
            for i in range(0, 10, 2)
        ]
        augmented = add_soft_constraints(qubo, constraints)
        from repro.qubo.energy import brute_force_minimum

        exact = brute_force_minimum(augmented)
        assert np.array_equal(exact.assignment, planted)

    def test_no_constraints_is_identity(self, small_qubo):
        assert add_soft_constraints(small_qubo, []) == small_qubo
