"""Tests for the exception hierarchy and top-level package surface."""

import pytest

import repro
from repro.exceptions import (
    ConfigurationError,
    DimensionError,
    EmbeddingError,
    ModulationError,
    PipelineError,
    ReproError,
    ScheduleError,
    SolverError,
    TransformError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_class",
        [
            ConfigurationError,
            DimensionError,
            ModulationError,
            ScheduleError,
            EmbeddingError,
            SolverError,
            TransformError,
            PipelineError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_class):
        assert issubclass(exception_class, ReproError)
        with pytest.raises(ReproError):
            raise exception_class("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)

    def test_catching_family_does_not_catch_unrelated(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("not ours")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch unrelated exceptions")


class TestPackageSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_exceptions_reexported(self):
        assert repro.ConfigurationError is ConfigurationError
        assert repro.ReproError is ReproError

    def test_all_subpackages_importable(self):
        import repro.annealing
        import repro.classical
        import repro.experiments
        import repro.hybrid
        import repro.metrics
        import repro.qubo
        import repro.transform
        import repro.utils
        import repro.wireless

        for module in (
            repro.annealing,
            repro.classical,
            repro.experiments,
            repro.hybrid,
            repro.metrics,
            repro.qubo,
            repro.transform,
            repro.utils,
            repro.wireless,
        ):
            assert module.__doc__, f"{module.__name__} must have a module docstring"

    def test_public_symbols_resolve(self):
        import repro.annealing as annealing
        import repro.classical as classical
        import repro.experiments as experiments
        import repro.qubo as qubo
        import repro.wireless as wireless

        for module in (annealing, classical, experiments, qubo, wireless):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"
