"""Tests for the offered-load sweep experiment (repro.experiments.load_study)."""

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    LoadStudyConfig,
    format_load_study_table,
    run_load_study,
)
from repro.serving import ServingReport


@pytest.fixture(scope="module")
def quick_result():
    return run_load_study(LoadStudyConfig.quick())


class TestLoadStudy:
    def test_one_row_per_load_factor(self, quick_result):
        config = LoadStudyConfig.quick()
        assert [row.load_factor for row in quick_result.rows] == list(config.load_factors)
        for row in quick_result.rows:
            assert row.offered_load_jobs_per_ms > 0

    def test_detail_is_the_peak_load_serving_report(self, quick_result):
        assert isinstance(quick_result.detail, ServingReport)
        assert quick_result.detail.num_jobs == (
            quick_result.config.num_cells
            * quick_result.config.users_per_cell
            * quick_result.config.jobs_per_user
        )

    def test_pooled_never_misses_more_than_serialized_at_peak(self, quick_result):
        peak = quick_result.rows[-1]
        assert peak.pooled_miss_rate <= peak.serialized_miss_rate + 1e-9

    def test_miss_rates_are_rates(self, quick_result):
        for row in quick_result.rows:
            for value in (
                row.serialized_miss_rate,
                row.pipelined_miss_rate,
                row.pooled_miss_rate,
            ):
                assert 0.0 <= value <= 1.0

    def test_format_table(self, quick_result):
        table = format_load_study_table(quick_result)
        assert "deadline-miss rate vs offered load" in table
        assert "miss(pool)" in table
        assert "pooled serving report" in table

    def test_reproducible(self):
        config = dataclasses.replace(LoadStudyConfig.quick(), load_factors=(2.0,))
        first = run_load_study(config)
        second = run_load_study(config)
        assert first.rows == second.rows

    @pytest.mark.parametrize("load_factors", [(), (0.0,), (-1.0,)])
    def test_invalid_load_factors(self, load_factors):
        config = dataclasses.replace(LoadStudyConfig.quick(), load_factors=load_factors)
        with pytest.raises(ConfigurationError):
            run_load_study(config)
