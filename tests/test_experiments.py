"""Tests for the experiment runners (quick configurations)."""

import pytest

from repro.annealing import QuantumAnnealerSimulator, SpinVectorMonteCarloBackend
from repro.experiments import (
    Figure3Config,
    Figure6Config,
    Figure7Config,
    Figure8Config,
    HeadlineConfig,
    InitializerAblationConfig,
    PipelineStudyConfig,
    SoftConstraintConfig,
    format_figure3_table,
    format_figure6_table,
    format_figure7_table,
    format_figure8_table,
    format_headline_report,
    format_initializer_table,
    format_pipeline_table,
    format_soft_constraint_table,
    run_figure3,
    run_figure6,
    run_figure7,
    run_figure8,
    run_headline,
    run_initializer_ablation,
    run_pipeline_study,
    run_soft_constraint_study,
)


@pytest.fixture
def quick_sampler():
    backend = SpinVectorMonteCarloBackend(sweeps_per_microsecond=12)
    return QuantumAnnealerSimulator(backend=backend, seed=5)


class TestFigure3:
    def test_rows_and_table(self):
        config = Figure3Config(
            instances_per_point=2,
            user_counts={"QPSK": (2, 6, 20), "16-QAM": (1, 3, 10)},
        )
        rows = run_figure3(config)
        assert len(rows) == 6
        for row in rows:
            assert 0.0 <= row.simplified_ratio <= 1.0
            assert row.average_fixed_variables >= 0.0
            assert row.num_variables == row.num_users * (2 if row.modulation == "QPSK" else 4)
        table = format_figure3_table(rows)
        assert "simplified ratio" in table

    def test_large_problems_not_simplified(self):
        config = Figure3Config(instances_per_point=2, user_counts={"16-QAM": (12,)})
        rows = run_figure3(config)
        assert rows[0].simplified_ratio == 0.0

    def test_paper_scale_configuration(self):
        assert Figure3Config.paper_scale().instances_per_point == 50


class TestFigure6:
    def test_quick_run(self, quick_sampler):
        series = run_figure6(Figure6Config.quick(), sampler=quick_sampler)
        methods = {row.method for row in series}
        assert methods == {"FA", "RA-random", "RA-greedy"}
        for row in series:
            assert row.num_samples > 0
            assert abs(sum(row.histogram) - 1.0) < 1e-6
            assert 0.0 <= row.ground_state_fraction <= 1.0
        table = format_figure6_table(series)
        assert "RA-greedy" in table

    def test_modulation_filter(self, quick_sampler):
        config = Figure6Config(
            num_variables=8,
            instances_per_modulation=1,
            num_reads=60,
            modulations=("QPSK",),
        )
        series = run_figure6(config, sampler=quick_sampler)
        assert {row.modulation for row in series} == {"QPSK"}


class TestFigure7:
    def test_quick_run(self, quick_sampler):
        rows = run_figure7(Figure7Config.quick(), sampler=quick_sampler)
        assert rows, "at least the ground-state bin must be populated"
        assert rows[0].bin_low_percent == 0.0
        for row in rows:
            assert 0.0 <= row.success_probability <= 1.0
            assert row.mean_initial_quality < Figure7Config.quick().max_bin_percent
        assert "dE_IS%" in format_figure7_table(rows)

    def test_bins_are_ordered(self, quick_sampler):
        rows = run_figure7(Figure7Config.quick(), sampler=quick_sampler)
        lows = [row.bin_low_percent for row in rows]
        assert lows == sorted(lows)


class TestFigure8:
    def test_quick_run(self, quick_sampler):
        config = Figure8Config.quick()
        rows = run_figure8(config, sampler=quick_sampler)
        methods = {row.method for row in rows}
        assert {"FA", "RA-greedy", "RA-ground"}.issubset(methods)
        per_method = {
            method: [row for row in rows if row.method == method] for method in methods
        }
        for method_rows in per_method.values():
            assert len(method_rows) == len(config.grid())
        assert "TTS" in format_figure8_table(rows)

    def test_ra_ground_dominates_at_high_switch(self, quick_sampler):
        rows = run_figure8(Figure8Config.quick(), sampler=quick_sampler)
        high = max(Figure8Config.quick().grid())
        ground_row = next(
            row for row in rows if row.method == "RA-ground" and row.switch_s == high
        )
        assert ground_row.success_probability > 0.5


class TestHeadline:
    def test_quick_run(self, quick_sampler):
        result = run_headline(HeadlineConfig.quick(), sampler=quick_sampler)
        assert len(result.instance_labels) == 1
        assert len(result.success_ratios) == 1
        assert result.median_tts_speedup >= 0.0
        report = format_headline_report(result)
        assert "speedup" in report


class TestPipelineStudy:
    def test_quick_run(self):
        result = run_pipeline_study(PipelineStudyConfig.quick())
        assert result.pipelined.num_jobs == result.serial.num_jobs
        assert result.throughput_gain >= 1.0 - 1e-9
        assert "pipelined" in format_pipeline_table(result)


class TestAblations:
    def test_initializer_ablation_quick(self, quick_sampler):
        rows = run_initializer_ablation(InitializerAblationConfig.quick(), sampler=quick_sampler)
        names = [row.initializer for row in rows]
        assert names == ["greedy", "zero-forcing"]
        for row in rows:
            assert row.initial_quality_percent >= -1e-9
            assert 0.0 <= row.success_probability <= 1.0
        assert "initializer" in format_initializer_table(rows)

    def test_soft_constraint_quick(self, quick_sampler):
        rows = run_soft_constraint_study(SoftConstraintConfig.quick(), sampler=quick_sampler)
        knowledge_kinds = {row.knowledge for row in rows}
        assert "none" in knowledge_kinds
        assert "correct" in knowledge_kinds
        baseline = next(row for row in rows if row.knowledge == "none")
        assert baseline.optimum_preserved
        correct = next(row for row in rows if row.knowledge == "correct")
        assert correct.optimum_preserved
        assert "strength" in format_soft_constraint_table(rows)
