"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.utils.linalg import (
    complex_to_real_stacked,
    complex_vector_to_real,
    gram_matrix,
    hermitian,
    is_hermitian,
    real_to_complex_stacked,
    real_vector_to_complex,
    vector_norm_squared,
)


class TestStackedMatrix:
    def test_shape(self, rng):
        matrix = rng.standard_normal((3, 4)) + 1j * rng.standard_normal((3, 4))
        stacked = complex_to_real_stacked(matrix)
        assert stacked.shape == (6, 8)

    def test_product_equivalence(self, rng):
        matrix = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        vector = rng.standard_normal(3) + 1j * rng.standard_normal(3)
        complex_product = matrix @ vector
        real_product = complex_to_real_stacked(matrix) @ complex_vector_to_real(vector)
        assert np.allclose(real_vector_to_complex(real_product), complex_product)

    def test_round_trip(self, rng):
        matrix = rng.standard_normal((2, 5)) + 1j * rng.standard_normal((2, 5))
        assert np.allclose(real_to_complex_stacked(complex_to_real_stacked(matrix)), matrix)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            complex_to_real_stacked(np.zeros(3))

    def test_rejects_odd_dimensions(self):
        with pytest.raises(ValueError):
            real_to_complex_stacked(np.zeros((3, 4)))


class TestVectors:
    def test_vector_round_trip(self, rng):
        vector = rng.standard_normal(6) + 1j * rng.standard_normal(6)
        assert np.allclose(real_vector_to_complex(complex_vector_to_real(vector)), vector)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            real_vector_to_complex(np.zeros(5))

    def test_norm_squared_real(self):
        assert vector_norm_squared(np.array([3.0, 4.0])) == pytest.approx(25.0)

    def test_norm_squared_complex(self):
        assert vector_norm_squared(np.array([1 + 1j, 1 - 1j])) == pytest.approx(4.0)


class TestHermitian:
    def test_hermitian_transpose(self, rng):
        matrix = rng.standard_normal((2, 3)) + 1j * rng.standard_normal((2, 3))
        assert np.allclose(hermitian(matrix), np.conjugate(matrix).T)

    def test_is_hermitian_true(self, rng):
        matrix = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        assert is_hermitian(matrix @ hermitian(matrix))

    def test_is_hermitian_false(self, rng):
        matrix = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        assert not is_hermitian(matrix + 1j)

    def test_non_square_is_not_hermitian(self):
        assert not is_hermitian(np.zeros((2, 3)))

    def test_gram_matrix_is_hermitian(self, rng):
        matrix = rng.standard_normal((5, 3)) + 1j * rng.standard_normal((5, 3))
        assert is_hermitian(gram_matrix(matrix))
