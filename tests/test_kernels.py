"""Tests for repro.annealing.kernels (replica-parallel sweep kernels).

The reference kernels are the executable specification: every fast
implementation (vectorized, numba) must reproduce them *bit for bit* on every
tested configuration — spin counts, read counts, chunk sizes, schedules and
seeds — for both the SA and SVMC families.  The suite also locks down the
``REPRO_KERNEL`` selection machinery and the random-draw discipline that
keeps experiment results invariant to batching.
"""

import logging
import os

import numpy as np
import pytest

from repro.annealing import kernels
from repro.annealing.device import AnnealingFunctions
from repro.annealing.kernels import (
    DEFAULT_SPINS_PER_STEP,
    KERNEL_CHOICES,
    KERNEL_ENV_VAR,
    initial_local_fields,
    sa_sweeps,
    svmc_sweeps,
)
from repro.annealing.sa_backend import ScheduleDrivenAnnealingBackend
from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.annealing.schedule import forward_anneal_schedule, reverse_anneal_schedule
from repro.annealing.svmc import SpinVectorMonteCarloBackend
from repro.classical.simulated_annealing import SimulatedAnnealingSolver
from repro.exceptions import ConfigurationError
from repro.qubo.ising import IsingModel
from repro.qubo.model import QUBOModel
from repro.utils.rng import spawn_rngs

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba is not installed"
)

#: Named sweep schedules exercising every decision branch of the kernels:
#: problem > 0 and problem == 0 sweeps, full activity and freeze-out
#: dilution, hot and near-frozen temperatures.
SCHEDULES = {
    "anneal": [
        (0.2, 0.8, 2.0, 1.0),
        (0.6, 0.4, 1.0, 0.6),
        (1.0, 0.05, 0.3, 0.02),
    ],
    "zero-problem": [
        (0.0, 1.0, 2.0, 0.5),
        (0.0, 1.0, 2.0, 1.0),
        (1.0, 0.0, 0.5, 1.0),
    ],
    "cold-quench": [
        (1.0, 0.0, 1e-6, 1.0),
        (1.0, 0.0, 1e-6, 0.4),
    ],
}

#: Batch compositions: equal sizes, ragged sizes (padding lanes), batch of 1.
SIZE_SETS = {
    "single": [6],
    "equal": [5, 5],
    "ragged": [7, 3, 10],
}


def _problem_batch(sizes, seed):
    """Random padded (fields, symmetric couplings, mask, sizes) batch."""
    rng = np.random.default_rng(seed)
    batch, max_size = len(sizes), max(sizes)
    padded_fields = np.zeros((batch, max_size))
    symmetric = np.zeros((batch, max_size, max_size))
    mask = np.zeros((batch, max_size), dtype=bool)
    for b, n in enumerate(sizes):
        padded_fields[b, :n] = rng.normal(size=n)
        upper = np.triu(rng.normal(size=(n, n)), 1)
        symmetric[b, :n, :n] = upper + upper.T
        mask[b, :n] = True
    return padded_fields, symmetric, mask, np.array(sizes, dtype=int)


def _sa_state(sizes, reads, seed, padded_fields, symmetric, track=False):
    """Fresh SA kernel state plus the child generators that drive it."""
    children = spawn_rngs(seed, len(sizes))
    batch, max_size = len(sizes), max(sizes)
    state = np.ones((batch, max_size, reads))
    for b, n in enumerate(sizes):
        state[b, :n] = children[b].choice([-1.0, 1.0], size=(reads, n)).T
    local = initial_local_fields(padded_fields, symmetric, state)
    extras = {}
    if track:
        energies = 0.5 * (
            np.einsum("bnr,bnr->br", state, local)
            + np.einsum("bnr,bn->br", state, padded_fields)
        )
        extras = {
            "energies": energies,
            "best_spins": state.copy(),
            "best_energies": energies.copy(),
        }
    return state, local, children, extras


def _svmc_state(sizes, reads, seed, padded_fields, symmetric):
    """Fresh SVMC rotor state plus the child generators that drive it."""
    children = spawn_rngs(seed, len(sizes))
    batch, max_size = len(sizes), max(sizes)
    theta = np.zeros((batch, max_size, reads))
    for b, n in enumerate(sizes):
        theta[b, :n] = children[b].uniform(0.0, np.pi, size=(reads, n)).T
    cosines = np.cos(theta)
    sines = np.sin(theta)
    local = initial_local_fields(padded_fields, symmetric, cosines)
    return theta, cosines, sines, local, children


def _run_sa(implementation, sizes, reads, seed, schedule, chunk, track=False):
    padded_fields, symmetric, mask, size_array = _problem_batch(sizes, seed + 1000)
    state, local, children, extras = _sa_state(
        sizes, reads, seed, padded_fields, symmetric, track=track
    )
    sa_sweeps(
        state,
        local,
        symmetric,
        mask,
        size_array,
        children,
        schedule,
        implementation=implementation,
        spins_per_step=chunk,
        **extras,
    )
    return state, local, extras


def _run_svmc(implementation, sizes, reads, seed, schedule, chunk, **params):
    padded_fields, symmetric, mask, size_array = _problem_batch(sizes, seed + 1000)
    theta, cosines, sines, local, children = _svmc_state(
        sizes, reads, seed, padded_fields, symmetric
    )
    svmc_sweeps(
        theta,
        cosines,
        sines,
        local,
        symmetric,
        mask,
        size_array,
        children,
        schedule,
        implementation=implementation,
        proposal_width=params.get("proposal_width", 0.5),
        uniform_fraction=params.get("uniform_fraction", 0.15),
        spins_per_step=chunk,
    )
    return theta, cosines, sines, local


class TestKernelSelection:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert kernels.requested_kernel_name() == "vectorized"
        assert kernels.active_kernel_name() == "vectorized"

    @pytest.mark.parametrize("name", KERNEL_CHOICES)
    def test_every_choice_is_accepted(self, monkeypatch, name):
        monkeypatch.setenv(KERNEL_ENV_VAR, name)
        assert kernels.requested_kernel_name() == name

    def test_value_is_normalised(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "  Reference ")
        assert kernels.requested_kernel_name() == "reference"

    def test_unknown_value_is_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(ConfigurationError, match="turbo"):
            kernels.requested_kernel_name()
        with pytest.raises(ConfigurationError):
            kernels.active_kernel_name()

    def test_numba_resolution(self, monkeypatch, caplog):
        monkeypatch.setenv(KERNEL_ENV_VAR, "numba")
        monkeypatch.setattr(kernels, "_numba_fallback_warned", False)
        if kernels.numba_available():
            assert kernels.active_kernel_name() == "numba"
        else:
            with caplog.at_level(logging.WARNING, logger="repro.annealing.kernels"):
                assert kernels.active_kernel_name() == "vectorized"
            assert any("kernel.numba_fallback" in rec.message for rec in caplog.records)
            # The warning fires once per process, not once per call.
            caplog.clear()
            with caplog.at_level(logging.WARNING, logger="repro.annealing.kernels"):
                assert kernels.active_kernel_name() == "vectorized"
            assert not caplog.records

    @pytest.mark.parametrize("dispatch", [sa_sweeps, svmc_sweeps])
    def test_dispatch_rejects_unknown_implementation(self, dispatch):
        with pytest.raises(ConfigurationError, match="unknown"):
            dispatch(implementation="warp-drive")


class TestSAEquivalence:
    """vectorized (and numba) SA kernels are bitwise-identical to reference."""

    @pytest.mark.parametrize("size_key", sorted(SIZE_SETS))
    @pytest.mark.parametrize("schedule_key", sorted(SCHEDULES))
    @pytest.mark.parametrize("reads", [1, 4])
    @pytest.mark.parametrize("chunk", [1, 4, DEFAULT_SPINS_PER_STEP])
    def test_vectorized_matches_reference(self, size_key, schedule_key, reads, chunk):
        sizes, schedule = SIZE_SETS[size_key], SCHEDULES[schedule_key]
        ref = _run_sa("reference", sizes, reads, 7, schedule, chunk)
        vec = _run_sa("vectorized", sizes, reads, 7, schedule, chunk)
        for reference, candidate in zip(ref[:2], vec[:2]):
            assert np.array_equal(reference, candidate)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seed_sweep(self, seed):
        ref = _run_sa("reference", [9, 4], 3, seed, SCHEDULES["anneal"], 5)
        vec = _run_sa("vectorized", [9, 4], 3, seed, SCHEDULES["anneal"], 5)
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])

    def test_energy_and_best_tracking_match(self):
        # Per-instance temperature arrays (the classical solver's schedule
        # shape) with exact energy bookkeeping and best-state minima.
        schedule = [
            (1.0, 0.0, np.array([3.0, 1.0]), 1.0),
            (1.0, 0.0, np.array([0.5, 0.2]), 1.0),
            (1.0, 0.0, np.array([0.05, 0.01]), 1.0),
        ]
        ref = _run_sa("reference", [6, 8], 3, 5, schedule, 4, track=True)
        vec = _run_sa("vectorized", [6, 8], 3, 5, schedule, 4, track=True)
        assert np.array_equal(ref[0], vec[0])
        for key in ("energies", "best_spins", "best_energies"):
            assert np.array_equal(ref[2][key], vec[2][key]), key

    def test_tracked_energies_are_exact(self):
        # The incrementally-maintained energies equal a from-scratch
        # recomputation (floating-point exactly is too strong across the
        # different reduction, so compare to double rounding).
        sizes, reads, seed = [7, 5], 4, 3
        padded_fields, symmetric, mask, size_array = _problem_batch(sizes, seed + 1000)
        state, local, children, extras = _sa_state(
            sizes, reads, seed, padded_fields, symmetric, track=True
        )
        sa_sweeps(
            state,
            local,
            symmetric,
            mask,
            size_array,
            children,
            SCHEDULES["anneal"],
            implementation="vectorized",
            spins_per_step=3,
            **extras,
        )
        recomputed = 0.5 * (
            np.einsum("bnr,bnr->br", state, initial_local_fields(padded_fields, symmetric, state))
            + np.einsum("bnr,bn->br", state, padded_fields)
        )
        assert np.allclose(extras["energies"], recomputed, atol=1e-9)
        assert np.all(extras["best_energies"] <= extras["energies"] + 1e-12)

    def test_padding_lanes_never_move(self):
        state, local, _ = _run_sa("vectorized", [3, 9], 4, 11, SCHEDULES["anneal"], 4)
        assert np.all(state[0, 3:] == 1.0)

    @needs_numba
    @pytest.mark.parametrize("schedule_key", sorted(SCHEDULES))
    @pytest.mark.parametrize("chunk", [2, DEFAULT_SPINS_PER_STEP])
    def test_numba_matches_reference(self, schedule_key, chunk):
        schedule = SCHEDULES[schedule_key]
        ref = _run_sa("reference", [7, 3, 10], 4, 7, schedule, chunk)
        jit = _run_sa("numba", [7, 3, 10], 4, 7, schedule, chunk)
        assert np.array_equal(ref[0], jit[0])
        assert np.array_equal(ref[1], jit[1])


class TestSVMCEquivalence:
    """vectorized (and numba) SVMC kernels are bitwise-identical to reference."""

    @pytest.mark.parametrize("size_key", sorted(SIZE_SETS))
    @pytest.mark.parametrize("schedule_key", sorted(SCHEDULES))
    @pytest.mark.parametrize("reads", [1, 4])
    @pytest.mark.parametrize("chunk", [1, 4, DEFAULT_SPINS_PER_STEP])
    def test_vectorized_matches_reference(self, size_key, schedule_key, reads, chunk):
        sizes, schedule = SIZE_SETS[size_key], SCHEDULES[schedule_key]
        ref = _run_svmc("reference", sizes, reads, 7, schedule, chunk)
        vec = _run_svmc("vectorized", sizes, reads, 7, schedule, chunk)
        for reference, candidate in zip(ref, vec):
            assert np.array_equal(reference, candidate)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("uniform_fraction", [0.0, 0.3])
    def test_seed_and_mix_sweep(self, seed, uniform_fraction):
        ref = _run_svmc(
            "reference", [8, 5], 3, seed, SCHEDULES["anneal"], 4,
            uniform_fraction=uniform_fraction,
        )
        vec = _run_svmc(
            "vectorized", [8, 5], 3, seed, SCHEDULES["anneal"], 4,
            uniform_fraction=uniform_fraction,
        )
        for reference, candidate in zip(ref, vec):
            assert np.array_equal(reference, candidate)

    def test_state_invariants(self):
        theta, cosines, sines, _ = _run_svmc(
            "vectorized", [4, 10], 5, 13, SCHEDULES["anneal"], 4
        )
        assert np.all((theta >= 0.0) & (theta <= np.pi))
        # cos/sin caches track the angles (sin via sqrt(1-cos^2)).
        assert np.allclose(cosines, np.cos(theta), atol=1e-12)
        assert np.allclose(sines, np.sqrt(1.0 - np.cos(theta) ** 2), atol=1e-12)
        # Padding rotors of the first (size-4) instance stay at theta = 0.
        assert np.all(theta[0, 4:] == 0.0)

    @needs_numba
    @pytest.mark.parametrize("schedule_key", sorted(SCHEDULES))
    @pytest.mark.parametrize("chunk", [2, DEFAULT_SPINS_PER_STEP])
    def test_numba_matches_reference(self, schedule_key, chunk):
        schedule = SCHEDULES[schedule_key]
        ref = _run_svmc("reference", [7, 3, 10], 4, 7, schedule, chunk)
        jit = _run_svmc("numba", [7, 3, 10], 4, 7, schedule, chunk)
        for reference, candidate in zip(ref, jit):
            assert np.array_equal(reference, candidate)


def _toy_qubo(seed, size=8):
    rng = np.random.default_rng(seed)
    matrix = np.triu(rng.normal(size=(size, size)))
    return QUBOModel(matrix)


def _toy_ising(seed, size=8):
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.normal(size=(size, size)), 1)
    return IsingModel(fields=rng.normal(size=size), couplings=upper)


SOLVER_LEVEL_KERNELS = ["reference", pytest.param("numba", marks=needs_numba)]


class TestSolverLevelEquivalence:
    """End-to-end runs agree bitwise across REPRO_KERNEL settings."""

    @pytest.mark.parametrize("kernel", SOLVER_LEVEL_KERNELS)
    def test_classical_sa(self, monkeypatch, kernel):
        qubos = [_toy_qubo(seed) for seed in range(3)]
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        solver = SimulatedAnnealingSolver(num_sweeps=30)
        baseline = solver.solve_batch(qubos, rng=0)
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
        candidate = solver.solve_batch(qubos, rng=0)
        for expected, actual in zip(baseline, candidate):
            assert np.array_equal(expected.assignment, actual.assignment)
            assert expected.energy == actual.energy

    @pytest.mark.parametrize("kernel", SOLVER_LEVEL_KERNELS)
    @pytest.mark.parametrize("backend_cls", [
        ScheduleDrivenAnnealingBackend, SpinVectorMonteCarloBackend,
    ])
    def test_anneal_backends(self, monkeypatch, kernel, backend_cls):
        ising = _toy_ising(4)
        functions = AnnealingFunctions()
        schedule = forward_anneal_schedule(1.0)
        backend = backend_cls()
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        baseline = backend.run(
            ising.fields, ising.couplings, schedule, 6, functions, 0.05,
            rng=np.random.default_rng(2),
        )
        monkeypatch.setenv(KERNEL_ENV_VAR, kernel)
        candidate = backend.run(
            ising.fields, ising.couplings, schedule, 6, functions, 0.05,
            rng=np.random.default_rng(2),
        )
        assert np.array_equal(baseline, candidate)


class TestDrawDiscipline:
    """Child-RNG consumption is invariant to batching, chunking and reads."""

    @pytest.mark.parametrize("backend_cls", [
        ScheduleDrivenAnnealingBackend, SpinVectorMonteCarloBackend,
    ])
    def test_single_run_is_a_batch_of_one(self, backend_cls):
        ising = _toy_ising(9)
        functions = AnnealingFunctions()
        schedule = forward_anneal_schedule(1.0)
        backend = backend_cls()
        single = backend.run(
            ising.fields, ising.couplings, schedule, 5, functions, 0.05,
            rng=np.random.default_rng(3),
        )
        batched = backend.run_batch(
            [ising.fields], [ising.couplings], schedule, 5, functions, 0.05,
            rng=[np.random.default_rng(3)],
        )
        assert np.array_equal(single, batched[0])

    @pytest.mark.parametrize("backend_cls", [
        ScheduleDrivenAnnealingBackend, SpinVectorMonteCarloBackend,
    ])
    def test_batch_grouping_is_immaterial(self, backend_cls):
        # Lane b of a ragged batch equals a solo run with the same child:
        # padding other instances to a larger common size must not change
        # instance b's draws or dynamics.
        isings = [_toy_ising(s, size=n) for s, n in [(0, 5), (1, 9), (2, 3)]]
        functions = AnnealingFunctions()
        schedule = forward_anneal_schedule(1.0)
        backend = backend_cls()
        batched = backend.run_batch(
            [i.fields for i in isings],
            [i.couplings for i in isings],
            schedule, 4, functions, 0.05,
            rng=[np.random.default_rng(100 + b) for b in range(3)],
        )
        for b, ising in enumerate(isings):
            solo = backend.run(
                ising.fields, ising.couplings, schedule, 4, functions, 0.05,
                rng=np.random.default_rng(100 + b),
            )
            assert np.array_equal(solo, batched[b])

    def test_classical_solver_batch_grouping(self):
        qubos = [_toy_qubo(seed, size=4 + seed) for seed in range(3)]
        solver = SimulatedAnnealingSolver(num_sweeps=25)
        batched = solver.solve_batch(qubos, rng=5)
        children = spawn_rngs(5, 3)
        for qubo, child, expected in zip(qubos, children, batched):
            solo = solver.solve(qubo, rng=child)
            assert np.array_equal(solo.assignment, expected.assignment)
            assert solo.energy == expected.energy

    def test_chunking_consumes_no_extra_draws(self):
        # The per-sweep blocks are drawn up front, so spins_per_step affects
        # dynamics only through chunk boundaries — never draw consumption:
        # follower draws after the kernel are identical for any chunking.
        followers = []
        for chunk in (1, 3, DEFAULT_SPINS_PER_STEP):
            padded_fields, symmetric, mask, sizes = _problem_batch([6, 4], 99)
            state, local, children, _ = _sa_state([6, 4], 3, 21, padded_fields, symmetric)
            sa_sweeps(
                state, local, symmetric, mask, sizes, children,
                SCHEDULES["anneal"], implementation="vectorized",
                spins_per_step=chunk,
            )
            followers.append(np.stack([child.random(4) for child in children]))
        assert np.array_equal(followers[0], followers[1])
        assert np.array_equal(followers[1], followers[2])

    def test_num_reads_never_shifts_downstream_draws(self):
        # The sampler hands the kernel a *spawned* child, so read count —
        # which scales the kernel's internal consumption — cannot shift any
        # draw made later from the sampler's own stream.  Mirrors
        # test_fading's constant-consumption-across-Doppler test.
        ising = _toy_ising(17)
        schedule = forward_anneal_schedule(1.0)
        second_calls = []
        for first_reads in (2, 40):
            sampler = QuantumAnnealerSimulator(seed=123)
            sampler.sample_ising(ising, schedule, num_reads=first_reads)
            follow_up = sampler.sample_ising(ising, schedule, num_reads=6)
            second_calls.append(
                np.array([record.assignment for record in follow_up.records])
            )
        assert np.array_equal(second_calls[0], second_calls[1])

    def test_reverse_anneal_paths_agree_too(self):
        # Reverse annealing threads initial states through the kernels; the
        # reference implementation must agree there as well.
        ising = _toy_ising(6, size=6)
        functions = AnnealingFunctions()
        schedule = reverse_anneal_schedule(0.6, 1.0, 1.0)
        initial = np.array([1, -1, 1, 1, -1, -1], dtype=np.int8)
        results = {}
        for implementation in ("vectorized", "reference"):
            previous = os.environ.get(KERNEL_ENV_VAR)
            os.environ[KERNEL_ENV_VAR] = implementation
            try:
                results[implementation] = ScheduleDrivenAnnealingBackend().run(
                    ising.fields, ising.couplings, schedule, 4, functions, 0.05,
                    initial_spins=initial, rng=np.random.default_rng(8),
                )
            finally:
                if previous is None:
                    del os.environ[KERNEL_ENV_VAR]
                else:
                    os.environ[KERNEL_ENV_VAR] = previous
        assert np.array_equal(results["vectorized"], results["reference"])
