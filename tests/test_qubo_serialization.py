"""Tests for repro.qubo.serialization."""

import json

import pytest

from repro.qubo.generators import random_qubo
from repro.qubo.serialization import qubo_from_dict, qubo_from_json, qubo_to_dict, qubo_to_json


class TestDictRoundTrip:
    def test_round_trip_preserves_energies(self, rng):
        qubo = random_qubo(7, rng=rng)
        restored = qubo_from_dict(qubo_to_dict(qubo))
        for _ in range(10):
            bits = rng.integers(0, 2, size=7)
            assert restored.energy(bits) == pytest.approx(qubo.energy(bits))

    def test_round_trip_preserves_names_and_offset(self, small_qubo):
        model = small_qubo.relabel(["alpha", "beta"])
        model = type(model)(
            coefficients=model.coefficients, offset=1.25, variable_names=model.variable_names
        )
        restored = qubo_from_dict(qubo_to_dict(model))
        assert restored.variable_names == ("alpha", "beta")
        assert restored.offset == pytest.approx(1.25)

    def test_zero_entries_not_stored(self, small_qubo):
        payload = qubo_to_dict(small_qubo)
        assert "1,0" not in payload["quadratic"]
        assert len(payload["quadratic"]) == 1


class TestJsonRoundTrip:
    def test_valid_json(self, random_qubo_8):
        text = qubo_to_json(random_qubo_8)
        json.loads(text)

    def test_round_trip(self, random_qubo_8, rng):
        restored = qubo_from_json(qubo_to_json(random_qubo_8))
        bits = rng.integers(0, 2, size=8)
        assert restored.energy(bits) == pytest.approx(random_qubo_8.energy(bits))

    def test_indentation_option(self, small_qubo):
        assert "\n" in qubo_to_json(small_qubo, indent=2)
