"""Tests for repro.hybrid.parameters (s_p / c_p sweeps)."""

import numpy as np
import pytest

from repro.classical.greedy import greedy_search
from repro.exceptions import ConfigurationError
from repro.hybrid.parameters import (
    best_switch_point,
    paper_switch_point_grid,
    sweep_forward_reverse_turning_point,
    sweep_switch_point,
)
from repro.qubo.generators import planted_solution_qubo


@pytest.fixture
def problem(rng):
    planted = rng.integers(0, 2, size=6)
    qubo = planted_solution_qubo(planted, coupling_strength=0.5, field_strength=1.0, rng=rng)
    return qubo, qubo.energy(planted)


class TestPaperGrid:
    def test_range_and_step(self):
        grid = paper_switch_point_grid()
        assert grid[0] == pytest.approx(0.25)
        assert grid[-1] == pytest.approx(0.97)
        assert np.allclose(np.diff(grid), 0.04)

    def test_invalid_step(self):
        with pytest.raises(ConfigurationError):
            paper_switch_point_grid(step=0.0)


class TestSweepSwitchPoint:
    def test_fa_sweep_records(self, problem, fast_sampler):
        qubo, ground = problem
        records = sweep_switch_point(
            qubo, ground, method="FA", switch_values=(0.3, 0.5), sampler=fast_sampler, num_reads=40
        )
        assert len(records) == 2
        assert all(record.method == "FA" for record in records)
        assert all(0.0 <= record.success_probability <= 1.0 for record in records)
        assert all(record.duration_us > 0 for record in records)

    def test_ra_requires_initial_state(self, problem, fast_sampler):
        qubo, ground = problem
        with pytest.raises(ConfigurationError):
            sweep_switch_point(qubo, ground, method="RA", sampler=fast_sampler)

    def test_ra_sweep_with_greedy_initial_state(self, problem, fast_sampler):
        qubo, ground = problem
        initial = greedy_search(qubo)
        records = sweep_switch_point(
            qubo,
            ground,
            method="RA",
            switch_values=(0.4, 0.6, 0.8),
            initial_state=initial,
            sampler=fast_sampler,
            num_reads=40,
        )
        assert len(records) == 3
        # RA duration shrinks as the switch point rises.
        durations = [record.duration_us for record in records]
        assert durations == sorted(durations, reverse=True)

    def test_fr_sweep(self, problem, fast_sampler):
        qubo, ground = problem
        records = sweep_switch_point(
            qubo, ground, method="FR", switch_values=(0.4,), sampler=fast_sampler, num_reads=30
        )
        assert records[0].turning_s is not None
        assert records[0].turning_s >= records[0].switch_s

    def test_unknown_method(self, problem, fast_sampler):
        qubo, ground = problem
        with pytest.raises(ConfigurationError):
            sweep_switch_point(qubo, ground, method="QAOA", sampler=fast_sampler)


class TestBestSwitchPoint:
    def test_prefers_lowest_finite_tts(self, problem, fast_sampler):
        qubo, ground = problem
        initial = greedy_search(qubo)
        records = sweep_switch_point(
            qubo,
            ground,
            method="RA",
            switch_values=(0.4, 0.6, 0.8),
            initial_state=initial,
            sampler=fast_sampler,
            num_reads=60,
        )
        best = best_switch_point(records)
        finite = [record for record in records if record.tts.is_finite]
        if finite:
            assert best.tts.tts_us == min(record.tts.tts_us for record in finite)

    def test_falls_back_to_probability(self, problem):
        from repro.metrics.tts import time_to_solution
        from repro.hybrid.parameters import SwitchPointRecord

        records = [
            SwitchPointRecord(
                method="FA",
                switch_s=0.4,
                success_probability=0.0,
                tts=time_to_solution(0.0, 1.0),
                expectation_energy=0.0,
                duration_us=1.0,
            )
        ]
        assert best_switch_point(records).switch_s == 0.4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_switch_point([])


class TestFRTurningPointSweep:
    def test_oracle_sweep(self, problem, fast_sampler):
        qubo, ground = problem
        records = sweep_forward_reverse_turning_point(
            qubo,
            ground,
            switch_s=0.4,
            turning_values=(0.5, 0.7, 0.9),
            sampler=fast_sampler,
            num_reads=30,
        )
        assert len(records) == 3
        assert all(record.turning_s >= 0.4 for record in records)

    def test_turning_below_switch_skipped(self, problem, fast_sampler):
        qubo, ground = problem
        records = sweep_forward_reverse_turning_point(
            qubo,
            ground,
            switch_s=0.6,
            turning_values=(0.3, 0.7),
            sampler=fast_sampler,
            num_reads=20,
        )
        assert len(records) == 1

    def test_invalid_switch(self, problem, fast_sampler):
        qubo, ground = problem
        with pytest.raises(ConfigurationError):
            sweep_forward_reverse_turning_point(qubo, ground, switch_s=1.5, sampler=fast_sampler)
