"""Tests for the scenario-catalog sweep (repro.experiments.scenario_study)."""

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    ScenarioStudyConfig,
    format_scenario_table,
    run_scenario_study,
)
from repro.serving import ServingReport


@pytest.fixture(scope="module")
def quick_result():
    return run_scenario_study(ScenarioStudyConfig.quick())


class TestScenarioStudy:
    def test_one_row_per_scenario(self, quick_result):
        config = ScenarioStudyConfig.quick()
        assert [row.scenario for row in quick_result.rows] == list(config.scenarios)
        for row in quick_result.rows:
            assert row.num_jobs > 0
            assert row.offered_load_jobs_per_ms > 0

    def test_detail_is_an_autoscaled_serving_report(self, quick_result):
        assert isinstance(quick_result.detail, ServingReport)
        assert "autoscale_average_active" in quick_result.detail.metadata
        assert quick_result.detail.num_jobs == quick_result.rows[-1].num_jobs

    def test_rates_and_worker_counts_are_sane(self, quick_result):
        config = ScenarioStudyConfig.quick()
        for row in quick_result.rows:
            assert 0.0 <= row.static_miss_rate <= 1.0
            assert 0.0 <= row.autoscaled_miss_rate <= 1.0
            assert 0.0 <= row.autoscaled_demotion_rate <= 1.0
            assert config.min_workers <= row.mean_active_workers <= config.max_workers
            assert row.scale_events >= 0

    def test_format_table(self, quick_result):
        table = format_scenario_table(quick_result)
        assert "static vs autoscaled pools" in table
        assert "miss(auto)" in table
        assert "autoscaled serving report" in table
        for row in quick_result.rows:
            assert row.scenario in table

    def test_reproducible(self):
        config = dataclasses.replace(
            ScenarioStudyConfig.quick(), scenarios=("flash-crowd",)
        )
        first = run_scenario_study(config)
        second = run_scenario_study(config)
        assert first.rows == second.rows

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario_study(
                dataclasses.replace(ScenarioStudyConfig.quick(), scenarios=())
            )
        with pytest.raises(ConfigurationError):
            run_scenario_study(
                dataclasses.replace(ScenarioStudyConfig.quick(), static_workers=0)
            )
        with pytest.raises(ConfigurationError):
            run_scenario_study(
                dataclasses.replace(
                    ScenarioStudyConfig.quick(), scenarios=("rush-hour",)
                )
            )
