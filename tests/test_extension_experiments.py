"""Tests for the extension experiments (SNR study and pause ablation)."""

import numpy as np
import pytest

from repro.annealing import QuantumAnnealerSimulator, SpinVectorMonteCarloBackend
from repro.experiments import (
    PauseAblationConfig,
    SNRStudyConfig,
    format_pause_table,
    format_snr_table,
    run_pause_ablation,
    run_snr_study,
)


@pytest.fixture
def quick_sampler():
    backend = SpinVectorMonteCarloBackend(sweeps_per_microsecond=12)
    return QuantumAnnealerSimulator(backend=backend, seed=17)


class TestSNRStudy:
    def test_quick_run_structure(self, quick_sampler):
        config = SNRStudyConfig.quick()
        rows = run_snr_study(config, sampler=quick_sampler)
        assert len(rows) == len(config.snr_grid_db)
        for row in rows:
            assert row.channel_uses == config.channel_uses_per_point
            for value in (row.zero_forcing_ber, row.mmse_ber, row.hybrid_ber):
                assert 0.0 <= value <= 1.0
        assert "SNR" in format_snr_table(rows)

    def test_high_snr_beats_low_snr_for_linear_detectors(self, quick_sampler):
        config = SNRStudyConfig(
            snr_grid_db=(0.0, 20.0), channel_uses_per_point=4, num_reads=40
        )
        rows = {row.snr_db: row for row in run_snr_study(config, sampler=quick_sampler)}
        assert rows[20.0].mmse_ber <= rows[0.0].mmse_ber + 1e-9
        assert rows[20.0].zero_forcing_ber <= rows[0.0].zero_forcing_ber + 1e-9

    def test_deterministic_given_seed(self, quick_sampler):
        config = SNRStudyConfig.quick()
        first = run_snr_study(config, sampler=QuantumAnnealerSimulator(seed=3))
        second = run_snr_study(config, sampler=QuantumAnnealerSimulator(seed=3))
        assert [row.zero_forcing_ber for row in first] == [
            row.zero_forcing_ber for row in second
        ]


class TestPauseAblation:
    def test_quick_run_structure(self, quick_sampler):
        config = PauseAblationConfig.quick()
        rows = run_pause_ablation(config, sampler=quick_sampler)
        assert len(rows) == 2 * len(config.pause_durations_us)
        methods = {row.method for row in rows}
        assert methods == {"FA", "RA-greedy"}
        assert "pause" in format_pause_table(rows)

    def test_durations_reflect_pause(self, quick_sampler):
        config = PauseAblationConfig.quick()
        rows = run_pause_ablation(config, sampler=quick_sampler)
        fa = {row.pause_duration_us: row for row in rows if row.method == "FA"}
        assert fa[1.0].duration_us == pytest.approx(fa[0.0].duration_us + 1.0)

    def test_probabilities_valid(self, quick_sampler):
        rows = run_pause_ablation(PauseAblationConfig.quick(), sampler=quick_sampler)
        for row in rows:
            assert 0.0 <= row.success_probability <= 1.0
            assert row.tts_us > 0 or not np.isfinite(row.tts_us)


class TestCLIIntegrationOfExtensions:
    def test_cli_knows_new_experiments(self):
        import repro.cli as cli

        arguments = cli.build_parser().parse_args(["snr", "--quick"])
        assert arguments.experiment == "snr"
        arguments = cli.build_parser().parse_args(["pause", "--quick"])
        assert arguments.experiment == "pause"

    def test_cli_runs_pause_quick(self, capsys):
        import repro.cli as cli

        assert cli.main(["pause", "--quick"]) == 0
        assert "pausing" in capsys.readouterr().out
