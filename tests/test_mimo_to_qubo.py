"""Tests for repro.transform.mimo_to_qubo (the QuAMax reduction)."""

import numpy as np
import pytest

from repro.exceptions import TransformError
from repro.qubo.energy import brute_force_minimum
from repro.transform.mimo_to_qubo import decode_bits_to_symbols, mimo_to_qubo
from repro.wireless.mimo import MIMOConfig, maximum_likelihood_detect, simulate_transmission
from repro.wireless.metrics import bit_error_rate


@pytest.mark.parametrize(
    "modulation,users", [("BPSK", 6), ("QPSK", 3), ("16-QAM", 2), ("64-QAM", 1)]
)
class TestExactEquivalence:
    def test_energy_plus_constant_equals_ml_objective(self, modulation, users):
        transmission = simulate_transmission(
            MIMOConfig(num_users=users, modulation=modulation), rng=17
        )
        encoding = mimo_to_qubo(transmission.instance)
        rng = np.random.default_rng(3)
        for _ in range(20):
            bits = rng.integers(0, 2, size=encoding.num_variables)
            symbols = encoding.bits_to_symbols(bits)
            assert encoding.qubo.energy(bits) + encoding.constant == pytest.approx(
                transmission.instance.objective(symbols)
            )

    def test_ground_state_matches_exhaustive_ml(self, modulation, users):
        transmission = simulate_transmission(
            MIMOConfig(num_users=users, modulation=modulation), rng=29
        )
        encoding = mimo_to_qubo(transmission.instance)
        qubo_ground = brute_force_minimum(encoding.qubo, max_variables=12)
        ml = maximum_likelihood_detect(transmission.instance, max_variables=12)
        assert qubo_ground.energy + encoding.constant == pytest.approx(ml.objective_value)

    def test_noiseless_transmitted_bits_are_ground_state(self, modulation, users):
        transmission = simulate_transmission(
            MIMOConfig(num_users=users, modulation=modulation), rng=41
        )
        encoding = mimo_to_qubo(transmission.instance)
        transmitted_bits = encoding.symbols_to_bits(transmission.transmitted_symbols)
        assert encoding.qubo.energy(transmitted_bits) + encoding.constant == pytest.approx(
            0.0, abs=1e-9
        )


class TestEncodingStructure:
    def test_variable_count(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        assert encoding.num_variables == 12
        assert encoding.qubo.num_variables == 12

    def test_variable_names(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        assert encoding.qubo.variable_names[0] == "u0b0"
        assert encoding.qubo.variable_names[-1] == "u2b3"

    def test_qubo_is_dense(self, mimo_encoding_16qam):
        # Couplings between one user's own I and Q bits vanish by construction,
        # so the density is below 1 but the model is still dense overall.
        _, encoding = mimo_encoding_16qam
        assert encoding.qubo.density() > 0.7

    def test_constant_is_non_negative(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        assert encoding.constant >= 0.0


class TestDecoding:
    def test_symbols_to_bits_round_trip(self, mimo_encoding_16qam, rng):
        transmission, encoding = mimo_encoding_16qam
        modulation = transmission.instance.modulation_scheme
        symbols = modulation.random_symbols(3, rng)
        bits = encoding.symbols_to_bits(symbols)
        assert np.allclose(encoding.bits_to_symbols(bits), symbols)

    def test_payload_bits_match_transmitted(self, mimo_encoding_16qam):
        transmission, encoding = mimo_encoding_16qam
        transmitted_bits = encoding.symbols_to_bits(transmission.transmitted_symbols)
        payload = encoding.payload_bits(transmitted_bits)
        assert bit_error_rate(transmission.transmitted_bits, payload) == 0.0

    def test_payload_round_trip(self, mimo_encoding_16qam, rng):
        _, encoding = mimo_encoding_16qam
        bits = rng.integers(0, 2, size=encoding.num_variables)
        payload = encoding.payload_bits(bits)
        assert np.array_equal(encoding.bits_from_payload(payload), bits)

    def test_detection_result_packaging(self, mimo_encoding_16qam):
        transmission, encoding = mimo_encoding_16qam
        transmitted_bits = encoding.symbols_to_bits(transmission.transmitted_symbols)
        result = encoding.detection_result(transmitted_bits, algorithm="test")
        assert result.algorithm == "test"
        assert result.objective_value == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(result.symbols, transmission.transmitted_symbols)

    def test_decode_helper(self, mimo_encoding_16qam, rng):
        _, encoding = mimo_encoding_16qam
        bits = rng.integers(0, 2, size=encoding.num_variables)
        assert np.allclose(decode_bits_to_symbols(encoding, bits), encoding.bits_to_symbols(bits))

    def test_wrong_length_rejected(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        with pytest.raises(TransformError):
            encoding.bits_to_symbols([0, 1])

    def test_non_binary_rejected(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        with pytest.raises(TransformError):
            encoding.bits_to_symbols([2] * encoding.num_variables)

    def test_wrong_symbol_count_rejected(self, mimo_encoding_16qam):
        _, encoding = mimo_encoding_16qam
        with pytest.raises(TransformError):
            encoding.symbols_to_bits([1 + 1j])


class TestNoisyInstances:
    def test_equivalence_holds_with_noise(self):
        transmission = simulate_transmission(
            MIMOConfig(num_users=2, modulation="QPSK", snr_db=6.0), rng=11
        )
        encoding = mimo_to_qubo(transmission.instance)
        rng = np.random.default_rng(5)
        for _ in range(10):
            bits = rng.integers(0, 2, size=encoding.num_variables)
            symbols = encoding.bits_to_symbols(bits)
            assert encoding.qubo.energy(bits) + encoding.constant == pytest.approx(
                transmission.instance.objective(symbols)
            )

    def test_rectangular_channel(self):
        transmission = simulate_transmission(
            MIMOConfig(num_users=2, modulation="16-QAM", num_receive_antennas=5), rng=13
        )
        encoding = mimo_to_qubo(transmission.instance)
        ml = maximum_likelihood_detect(transmission.instance, max_variables=12)
        ground = brute_force_minimum(encoding.qubo, max_variables=12)
        assert ground.energy + encoding.constant == pytest.approx(ml.objective_value)
