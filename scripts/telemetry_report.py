"""Render a human-readable report from an exported telemetry trace.

Reads the ``trace.jsonl`` written by ``repro-experiments ... --telemetry``
(plus the optional ``metrics.prom`` next to it) and prints the per-stage
latency breakdown, the top-N slowest spans and the counter totals::

    PYTHONPATH=src python scripts/telemetry_report.py telemetry-out/trace.jsonl
    PYTHONPATH=src python scripts/telemetry_report.py telemetry-out   # directory form
    PYTHONPATH=src python scripts/telemetry_report.py --validate telemetry-out

``--validate`` checks every record against the trace schema and exits
non-zero on the first violation — the mode the CI smoke step runs.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry import exporters  # noqa: E402


def _resolve_trace(path: pathlib.Path) -> pathlib.Path:
    """Accept either the trace file itself or its containing directory."""
    if path.is_dir():
        return path / "trace.jsonl"
    return path


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise (or validate) an exported telemetry trace."
    )
    parser.add_argument(
        "trace",
        type=pathlib.Path,
        help="trace.jsonl file, or the --telemetry output directory holding it",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the slowest-span table (default: 10)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate every record against the trace schema instead of summarising",
    )
    arguments = parser.parse_args(argv)
    trace = _resolve_trace(arguments.trace)
    if not trace.exists():
        parser.error(f"no trace found at {trace}")

    if arguments.validate:
        try:
            counts = exporters.validate_trace_file(trace)
        except ValueError as error:
            print(f"INVALID: {error}", file=sys.stderr)
            return 1
        print(
            f"OK: {trace} ({counts['span']} spans, {counts['event']} events, "
            f"schema {exporters.TRACE_SCHEMA_VERSION})"
        )
        return 0

    records = list(exporters.iter_trace_records(trace))
    metrics_path = trace.parent / "metrics.prom"
    metrics_text = (
        metrics_path.read_text(encoding="utf-8") if metrics_path.exists() else None
    )
    print(
        exporters.format_run_summary(records, metrics_text=metrics_text, top=arguments.top),
        end="",
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
