"""CI doc-drift check: the CLI surface must be documented in docs/cli.md.

Walks the ``repro-experiments`` argument parser and asserts that every
registered subcommand (experiment name) and every option flag appears
somewhere in ``docs/cli.md``.  New CLI surface therefore cannot land without
its documentation — the docs can drift in prose, but never silently lose an
entry point.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/check_doc_drift.py
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

#: Subsystem documents that must exist and be linked from docs/index.md.
#: Growing a documented subsystem?  Add its page here so the index and the
#: page itself cannot silently disappear.
REQUIRED_DOCS = (
    "ablation.md",
    "architecture.md",
    "channels.md",
    "cli.md",
    "experiments.md",
    "kernels.md",
    "network.md",
    "parallel.md",
    "qos.md",
    "scenarios.md",
    "serving.md",
    "telemetry.md",
)


def cli_surface() -> list:
    """Every subcommand and option flag the parser tree registers."""
    flags = set()
    subcommands = set()
    stack = [build_parser()]
    while stack:  # argparse has no public introspection API
        parser = stack.pop()
        for action in parser._actions:
            for option in action.option_strings:
                if option.startswith("--") and option != "--help":
                    flags.add(option)  # --help is argparse's, not ours
            if isinstance(action, argparse._SubParsersAction):
                subcommands.update(action.choices)
                stack.extend(action.choices.values())
    return sorted(flags) + sorted(subcommands)


def check_required_docs() -> list:
    """Every registered subsystem page must exist and be indexed."""
    problems = []
    index_path = REPO_ROOT / "docs" / "index.md"
    index = index_path.read_text(encoding="utf-8") if index_path.exists() else ""
    if not index:
        problems.append("docs/index.md is missing")
    for name in REQUIRED_DOCS:
        if not (REPO_ROOT / "docs" / name).exists():
            problems.append(f"docs/{name} is missing")
        elif f"({name})" not in index:
            problems.append(f"docs/index.md does not link docs/{name}")
    return problems


def main() -> int:
    problems = check_required_docs()
    if problems:
        print("FAIL: " + "; ".join(problems), file=sys.stderr)
        return 1

    doc_path = REPO_ROOT / "docs" / "cli.md"
    if not doc_path.exists():
        print(f"FAIL: {doc_path} does not exist", file=sys.stderr)
        return 1
    document = doc_path.read_text(encoding="utf-8")

    missing = [token for token in cli_surface() if token not in document]
    if missing:
        print(
            "FAIL: CLI surface missing from docs/cli.md: " + ", ".join(missing),
            file=sys.stderr,
        )
        print(
            "document every subcommand and flag in docs/cli.md (the doc-drift "
            "check matches plain substrings)",
            file=sys.stderr,
        )
        return 1
    print(
        f"doc-drift check: {len(cli_surface())} CLI tokens all present in "
        f"docs/cli.md; {len(REQUIRED_DOCS)} subsystem docs present and indexed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
