"""Regenerate the golden regression fixtures in ``tests/golden/``.

The fixtures freeze the full numeric output of the quick experiment
configurations (Figure 6 distributions, Figure 8 TTS sweep, and the SNR/BER
study) under the replica-parallel sweep kernels.  ``tests/test_golden_regression.py``
re-runs the same configurations on every CI run and fails with a readable
field-by-field diff whenever any number moves — so a change to the kernels,
the RNG draw discipline, or the experiment plumbing cannot silently alter
results.

The fixtures are recorded under the default (``vectorized``) kernel; the
``numba`` kernel is bitwise-identical by contract, so the same fixtures gate
both CI legs.  Run from the repository root after an *intentional*
numerics change::

    PYTHONPATH=src python scripts/regen_golden.py
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ablation.presets import ablation_quick_rows  # noqa: E402
from repro.annealing import kernels  # noqa: E402
from repro.experiments.fig6_distributions import Figure6Config, run_figure6  # noqa: E402
from repro.experiments.fig8_tts import Figure8Config, run_figure8  # noqa: E402
from repro.experiments.network_study import (  # noqa: E402
    NetworkStudyConfig,
    run_network_study,
)
from repro.experiments.snr_study import SNRStudyConfig, run_snr_study  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

#: Fixture name -> zero-argument callable returning a list of result rows.
STUDIES = {
    "ablation_quick": ablation_quick_rows,
    "fig6_quick": lambda: run_figure6(Figure6Config.quick()),
    "fig8_quick": lambda: run_figure8(Figure8Config.quick()),
    "network_quick": lambda: run_network_study(NetworkStudyConfig.quick()).rows,
    "snr_quick": lambda: run_snr_study(SNRStudyConfig.quick()),
}


def rows_as_payload(rows) -> list:
    """Result dataclasses as plain JSON-compatible dicts (exact floats)."""
    return json.loads(json.dumps([dataclasses.asdict(row) for row in rows]))


def main() -> int:
    kernel = kernels.active_kernel_name()
    if kernel not in ("vectorized", "numba"):
        print(
            f"refusing to regenerate goldens under REPRO_KERNEL={kernel}: "
            "fixtures are recorded for the replica-parallel kernels"
        )
        return 1
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, study in STUDIES.items():
        payload = {
            "study": name,
            "kernel": "vectorized",
            "rows": rows_as_payload(study()),
        }
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(REPO_ROOT)} ({len(payload['rows'])} rows)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
