"""A small multi-cell RAN load sweep, end to end.

The serving subsystem turns the paper's Figure-2 sketch into a schedulable
plant: many users across several cells emit deadline-tagged detection jobs,
and a pool of batched annealer workers (plus a classical fallback under
admission control) serves them.  This example

1. runs the offered-load sweep comparing the serialized, pipelined and
   pooled architectures (deadline-miss rate vs load);
2. re-runs the pooled system at one load point with *solution evaluation on*
   and a traffic hotspot in one cell, printing the full serving report
   (latency percentiles, batch occupancy, per-backend utilisation and the
   optimum-detection rate).

Everything is timing-modelled except step 2's detection solves, so the whole
script finishes in well under a minute::

    PYTHONPATH=src python examples/ran_load_study.py
"""

from __future__ import annotations

from repro.annealing import QuantumAnnealerSimulator, SpinVectorMonteCarloBackend
from repro.experiments import LoadStudyConfig, format_load_study_table, run_load_study
from repro.serving import (
    AnnealerServingBackend,
    BackendPool,
    ClassicalServingBackend,
    RANServingSimulator,
    format_serving_report,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.wireless import MIMOConfig


def main() -> None:
    # ---- 1. The architecture comparison sweep -------------------------
    config = LoadStudyConfig(
        num_cells=2,
        users_per_cell=3,
        jobs_per_user=8,
        load_factors=(0.5, 1.0, 2.0, 4.0, 8.0),
        num_reads=30,
    )
    print(format_load_study_table(run_load_study(config)))
    print()

    # ---- 2. One evaluated run with a hotspot cell ---------------------
    profiles = uniform_cell_profiles(
        num_cells=3,
        users_per_cell=2,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=500.0,
        turnaround_budget_us=700.0,
        cell_load_factors=[1.0, 1.0, 3.0],  # cell 2 is a traffic hotspot
    )
    jobs = generate_serving_jobs(profiles, jobs_per_user=6, rng=1)

    sampler = QuantumAnnealerSimulator(
        backend=SpinVectorMonteCarloBackend(sweeps_per_microsecond=8), seed=3
    )
    pool = BackendPool(
        [AnnealerServingBackend(sampler=sampler, num_reads=20, lanes=4)] * 2
        + [ClassicalServingBackend()]
    )
    simulator = RANServingSimulator(
        pool=pool, policy="edf", max_batch_size=4, evaluate_solutions=True
    )
    report = simulator.run(jobs, rng=2)
    print(
        format_serving_report(
            report, title="evaluated pooled run (3 cells, hotspot in cell 2)"
        )
    )
    hot = [o for o in report.outcomes if o.cell_id == 2]
    print(
        f"\nhotspot cell contributed {len(hot)}/{report.num_jobs} jobs; "
        f"its mean latency: "
        f"{sum(o.latency_us for o in hot) / len(hot):.1f} us"
    )


if __name__ == "__main__":
    main()
