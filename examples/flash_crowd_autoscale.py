"""A flash crowd hits one cell; the worker pool scales to meet it.

The scenario engine (:mod:`repro.serving.scenarios`) replays the classic
RAN stress event: demand in one cell ramps to 6x nominal, holds, and
subsides, while the other cells hum along.  This example serves that
workload twice —

1. with a **static** pool sized to the *average* demand (it melts during
   the spike), and
2. with an **autoscaled** elastic pool (same average capacity, but the
   controller parks workers in the quiet phases and activates them — after
   a warm-up — when the queue builds),

then prints the scaling timeline and both serving reports.  Everything is
timing-modelled and deterministic, so the whole script runs in seconds::

    PYTHONPATH=src python examples/flash_crowd_autoscale.py
"""

from __future__ import annotations

from repro.serving import (
    AnnealerServingBackend,
    AutoscaleConfig,
    AutoscaleController,
    BackendPool,
    ElasticBackendPool,
    RANServingSimulator,
    build_scenario,
    format_serving_report,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.wireless import MIMOConfig

NUM_CELLS = 4
HORIZON_US = 20_000.0


def main() -> None:
    # ---- The workload: a 6x flash crowd in the middle cell -------------
    scenario = build_scenario("flash-crowd", NUM_CELLS, horizon_us=HORIZON_US)
    profiles = uniform_cell_profiles(
        num_cells=NUM_CELLS,
        users_per_cell=3,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=150.0,
        arrival_process="poisson",
        turnaround_budget_us=300.0,
    )
    jobs = generate_serving_jobs(profiles, 4000, rng=11, scenario=scenario)
    flash_cell = NUM_CELLS // 2
    in_flash = sum(1 for job in jobs if job.cell_id == flash_cell)
    print(
        f"scenario {scenario.name!r}: {len(jobs)} jobs over "
        f"{HORIZON_US / 1000.0:.0f} ms; the flash cell emits {in_flash} "
        f"({in_flash / len(jobs):.0%}) of them\n"
    )

    annealer = AnnealerServingBackend(num_reads=30, lanes=4)

    # ---- Arm 2 first: autoscaled, to learn the average capacity --------
    controller = AutoscaleController(
        AutoscaleConfig(
            interval_us=150.0,
            warmup_us=300.0,
            min_workers=1,
            max_workers=8,
            cooldown_us=200.0,
            scale_down_queue_per_worker=1.5,
        )
    )
    autoscaled = RANServingSimulator(
        pool=ElasticBackendPool(
            annealer=annealer,
            max_annealer_workers=8,
            initial_annealer_workers=1,
            num_classical_workers=0,
        ),
        policy="edf",
        max_batch_size=4,
        admission_control=False,
        autoscaler=controller,
    ).run(jobs)

    print("autoscaling timeline:")
    for event in controller.events:
        print(
            f"  t={event.time_us:>8.0f} us  {event.action:<10}  "
            f"{event.worker:<11}  active={event.active_after}  "
            f"queue={event.queue_depth:<3d}  ({event.reason})"
        )
    average = autoscaled.metadata["autoscale_average_active"]
    print(f"time-weighted mean active workers: {average:.2f}\n")

    # ---- Arm 1: a static pool of equal average capacity ----------------
    equal_capacity = max(1, round(average))
    static = RANServingSimulator(
        pool=BackendPool([annealer] * equal_capacity),
        policy="edf",
        max_batch_size=4,
        admission_control=False,
    ).run(jobs)

    print(
        format_serving_report(
            static, title=f"static pool ({equal_capacity} workers, average-sized)"
        )
    )
    print()
    print(format_serving_report(autoscaled, title="autoscaled pool [1, 8] workers"))
    print()
    print(
        f"flash-crowd verdict: static misses "
        f"{static.deadline_miss_rate:.1%}, autoscaled misses "
        f"{autoscaled.deadline_miss_rate:.1%} at equal average capacity"
    )


if __name__ == "__main__":
    main()
