"""Quickstart: detect one Large MIMO channel use with the hybrid solver.

This example walks the full path of the paper's prototype:

1. simulate a noiseless 4-user 16-QAM uplink over a unit-gain random-phase
   channel (the paper's experimental protocol);
2. reduce maximum-likelihood detection to a QUBO with the QuAMax transform;
3. run the classical Greedy Search to obtain a candidate solution;
4. refine it with reverse annealing on the simulated quantum annealer;
5. decode the best sample back into symbols and payload bits and compare with
   what was actually transmitted.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.classical import GreedySearchSolver
from repro.hybrid import HybridMIMODetector
from repro.metrics import delta_e_percent
from repro.transform import mimo_to_qubo
from repro.wireless import MIMOConfig, simulate_transmission
from repro.wireless.metrics import bit_error_rate, symbol_error_rate


def main() -> None:
    # 1. One channel use of a 4-user 16-QAM uplink (16 QUBO variables).
    config = MIMOConfig(num_users=4, modulation="16-QAM")
    transmission = simulate_transmission(config, rng=9)
    instance = transmission.instance
    print(f"Simulated {transmission.config_summary}")

    # 2. The QuAMax reduction to QUBO form.
    encoding = mimo_to_qubo(instance)
    ground_state = encoding.symbols_to_bits(transmission.transmitted_symbols)
    ground_energy = encoding.qubo.energy(ground_state)
    print(f"QUBO variables: {encoding.num_variables}, ground-state energy: {ground_energy:.3f}")

    # 3. The classical stage on its own, for reference.
    greedy = GreedySearchSolver().solve(encoding.qubo)
    print(
        "Greedy Search candidate: energy "
        f"{greedy.energy:.3f} (dE_IS% = {delta_e_percent(greedy.energy, ground_energy):.2f})"
    )

    # 4. The full hybrid detector (Greedy Search + reverse annealing).
    detector = HybridMIMODetector(switch_s=0.45, num_reads=300)
    detection, details = detector.detect_with_details(instance, rng=11)
    print(
        "Hybrid best energy: "
        f"{details.best_energy:.3f} "
        f"(p* = {details.sampleset.success_probability(ground_energy):.3f}, "
        f"classical {details.classical_time_us:.2f} us + quantum {details.quantum_time_us:.1f} us)"
    )

    # 5. Compare the decoded payload with the transmitted one.
    ber = bit_error_rate(transmission.transmitted_bits, detection.bits)
    ser = symbol_error_rate(transmission.transmitted_symbols, detection.symbols)
    print(f"Detection BER: {ber:.3f}, SER: {ser:.3f}")
    if ber == 0.0:
        print("The hybrid solver recovered the transmitted payload exactly.")
    else:
        print("The hybrid solver did not reach the exact ML solution on this run; "
              "increase num_reads or tune switch_s (see examples/parameter_tuning_study.py).")


if __name__ == "__main__":
    main()
