"""Base-station workload: compare detectors over a batch of channel uses.

The paper's introduction motivates quantum-assisted processing with the
computational load of Large MIMO detection at base stations.  This example
simulates a small batch of uplink channel uses and compares four receivers:

* zero-forcing (linear),
* MMSE (linear),
* the K-best sphere decoder (tree search),
* the hybrid Greedy Search + reverse annealing detector (the paper's design),

reporting bit error rate, how often each detector finds the exact ML solution,
and the modelled per-channel-use compute time.

Run it with::

    python examples/large_mimo_basestation.py
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.classical import KBestSphereDecoder, MMSEDetector, ZeroForcingDetector
from repro.hybrid import HybridMIMODetector
from repro.transform import mimo_to_qubo
from repro.wireless import MIMOConfig, simulate_transmission
from repro.wireless.metrics import bit_error_rate


@dataclass
class DetectorReport:
    name: str
    bit_error_rate: float
    exact_ml_rate: float
    mean_wall_time_ms: float


def _evaluate(
    name: str, detect: Callable, channel_uses, encodings, ground_energies
) -> DetectorReport:
    errors: List[float] = []
    exact: List[bool] = []
    times: List[float] = []
    for transmission, encoding, ground in zip(channel_uses, encodings, ground_energies):
        start = time.perf_counter()
        symbols = detect(transmission)
        times.append((time.perf_counter() - start) * 1e3)
        bits = encoding.payload_bits(encoding.symbols_to_bits(symbols))
        errors.append(bit_error_rate(transmission.transmitted_bits, bits))
        exact.append(
            transmission.instance.objective(symbols) <= ground + encoding.constant + 1e-6
        )
    return DetectorReport(
        name=name,
        bit_error_rate=float(np.mean(errors)),
        exact_ml_rate=float(np.mean(exact)),
        mean_wall_time_ms=float(np.mean(times)),
    )


def main() -> None:
    config = MIMOConfig(num_users=4, modulation="16-QAM")
    num_channel_uses = 10
    channel_uses = [simulate_transmission(config, rng=seed) for seed in range(num_channel_uses)]
    encodings = [mimo_to_qubo(transmission.instance) for transmission in channel_uses]
    ground_energies = [
        encoding.qubo.energy(encoding.symbols_to_bits(transmission.transmitted_symbols))
        for transmission, encoding in zip(channel_uses, encodings)
    ]

    zero_forcing = ZeroForcingDetector()
    mmse = MMSEDetector()
    k_best = KBestSphereDecoder(k_best=16)
    hybrid = HybridMIMODetector(switch_s=0.41, num_reads=200)

    reports = [
        _evaluate(
            "zero-forcing",
            lambda t: zero_forcing.detect(t.instance),
            channel_uses,
            encodings,
            ground_energies,
        ),
        _evaluate(
            "mmse", lambda t: mmse.detect(t.instance), channel_uses, encodings, ground_energies
        ),
        _evaluate(
            "k-best (K=16)",
            lambda t: k_best.detect(t.instance),
            channel_uses,
            encodings,
            ground_energies,
        ),
        _evaluate(
            "hybrid GS+RA",
            lambda t: hybrid.detect(t.instance, rng=1).symbols,
            channel_uses,
            encodings,
            ground_energies,
        ),
    ]

    print(
        f"Base-station batch: {num_channel_uses} channel uses of "
        f"{config.num_users}-user {config.modulation}"
    )
    print(f"{'detector':>15}  {'BER':>7}  {'exact-ML rate':>13}  {'wall time (ms)':>14}")
    for report in reports:
        print(
            f"{report.name:>15}  {report.bit_error_rate:>7.3f}  "
            f"{report.exact_ml_rate:>13.2f}  {report.mean_wall_time_ms:>14.2f}"
        )
    print(
        "\nNote: wall time measures this machine's simulator, not quantum hardware; "
        "the modelled anneal time per channel use is what the paper's TTS metric uses."
    )
    print(
        "On a noiseless, well-conditioned 4x4 link the linear detectors are already "
        "near-ML — the regime the paper targets is larger user counts and tighter "
        "latency budgets, where their complexity or accuracy breaks down "
        "(see benchmarks/bench_headline_speedup.py for the 8-user study)."
    )


if __name__ == "__main__":
    main()
