"""Design Challenge 3: pipelining classical and quantum computation (Figure 2).

Successive wireless channel uses arrive continuously; a hybrid base station
can overlap the classical pre-processing of channel use N+1 with the quantum
refinement of channel use N.  This example generates an LTE-like stream of
channel uses, runs it through the pipeline simulator in both pipelined and
serialised form, and prints the resulting throughput, latency, utilisation and
deadline statistics.

Run it with::

    python examples/pipelined_channel_uses.py
"""

from __future__ import annotations

from repro.experiments import (
    PipelineStudyConfig,
    format_pipeline_table,
    run_pipeline_study,
)


def main() -> None:
    config = PipelineStudyConfig(
        num_users=4,
        modulation="16-QAM",
        num_channel_uses=20,
        symbol_period_us=71.4,          # one LTE OFDM symbol per channel use
        turnaround_budget_us=4000.0,    # a (generous) HARQ-style turnaround budget
        switch_s=0.41,
        num_reads=40,
        include_qpu_overheads=False,    # count pure anneal time, like the paper's TTS
        evaluate_solutions=True,
    )
    result = run_pipeline_study(config)
    print(format_pipeline_table(result))

    pipelined = result.pipelined
    print(
        f"\nPer-channel-use detection: {pipelined.optimum_rate:.2f} of channel uses "
        "recovered the exact ML solution with the configured read budget."
    )
    print(
        "Quantum stage utilisation "
        f"{pipelined.quantum_utilization:.2f} vs classical {pipelined.classical_utilization:.4f}: "
        "the annealer is the bottleneck stage, which is why pipelining the cheap classical "
        "pre-processing in front of it costs nothing and hides its latency."
    )


if __name__ == "__main__":
    main()
