"""Design Challenge 2: finding the best schedule parameters.

The performance of every annealing flavour hinges on the switch/pause location
s_p (and FR's turning point c_p).  This example sweeps s_p for forward
annealing and for reverse annealing initialised with the Greedy Search
candidate on one 8-user 16-QAM instance, prints the success probability and
TTS(99%) at every grid point, and reports each method's best operating point —
a small-scale version of the paper's Figure 8 study.

Run it with::

    python examples/parameter_tuning_study.py
"""

from __future__ import annotations

import numpy as np

from repro.classical import GreedySearchSolver
from repro.experiments.instances import synthesize_instance
from repro.hybrid import best_switch_point, sweep_switch_point
from repro.metrics import delta_e_percent


def main() -> None:
    bundle = synthesize_instance(8, "16-QAM", seed=12)
    qubo = bundle.encoding.qubo
    ground_energy = bundle.ground_energy
    print(f"Instance: {bundle.describe()}")

    greedy = GreedySearchSolver().solve(qubo)
    print(
        "Greedy Search initial state: "
        f"dE_IS% = {delta_e_percent(greedy.energy, ground_energy):.2f}"
    )

    grid = tuple(np.round(np.arange(0.29, 0.66, 0.04), 2))
    num_reads = 400

    fa_records = sweep_switch_point(
        qubo, ground_energy, method="FA", switch_values=grid, num_reads=num_reads
    )
    ra_records = sweep_switch_point(
        qubo,
        ground_energy,
        method="RA",
        switch_values=grid,
        initial_state=greedy.assignment,
        num_reads=num_reads,
    )

    print(f"\n{'s_p':>5}  {'FA p*':>7}  {'FA TTS (us)':>12}  {'RA p*':>7}  {'RA TTS (us)':>12}")
    for fa, ra in zip(fa_records, ra_records):
        fa_tts = f"{fa.tts.tts_us:.1f}" if fa.tts.is_finite else "inf"
        ra_tts = f"{ra.tts.tts_us:.1f}" if ra.tts.is_finite else "inf"
        print(
            f"{fa.switch_s:>5.2f}  {fa.success_probability:>7.3f}  {fa_tts:>12}  "
            f"{ra.success_probability:>7.3f}  {ra_tts:>12}"
        )

    fa_best = best_switch_point(fa_records)
    ra_best = best_switch_point(ra_records)
    print(
        f"\nBest FA operating point: s_p = {fa_best.switch_s:.2f}, "
        f"p* = {fa_best.success_probability:.3f}, TTS = {fa_best.tts.tts_us:.1f} us"
    )
    print(
        f"Best RA operating point: s_p = {ra_best.switch_s:.2f}, "
        f"p* = {ra_best.success_probability:.3f}, TTS = {ra_best.tts.tts_us:.1f} us"
    )
    if fa_best.tts.is_finite and ra_best.tts.is_finite:
        print(f"Hybrid TTS speedup over FA: {fa_best.tts.tts_us / ra_best.tts.tts_us:.1f}x")


if __name__ == "__main__":
    main()
