"""Benchmark the declarative ablation harness end to end.

The acceptance bar for :mod:`repro.ablation` measured through the canonical
quick study (``ablation_quick_spec``, a 2x2 SNR x switch-time grid over the
robustness target):

* **determinism** — the study's table rows at ``WORKERS`` workers must be
  identical to the serial run (always enforced);
* **caching** — a warm rerun against the same on-disk cache must execute
  zero shards and hit every one of them, reproducing the cold rows exactly
  (always enforced);
* **Pareto sanity** — with two minimised objectives over a grid with real
  metric spread, the front must be a non-empty strict subset of the points
  (always enforced).

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_ablation.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_ablation.py -q
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.ablation import format_study_table, run_study
from repro.ablation.presets import ablation_quick_spec
from repro.parallel import ResultCache

#: Worker count of the serial-equality check.
WORKERS = 4
SMOKE_WORKERS = 2


def run_comparison(workers: int = WORKERS) -> dict:
    """Serial vs sharded vs warm-cache runs of the canonical quick study."""
    spec = ablation_quick_spec()
    serial = run_study(spec)
    sharded = run_study(spec, workers=workers)
    with tempfile.TemporaryDirectory(prefix="ablation-bench-") as cache_dir:
        cache = ResultCache(cache_dir)
        cold = run_study(spec, cache=cache)
        warm = run_study(spec, cache=cache)

    rows = serial.table_rows()
    return {
        "table": format_study_table(serial),
        "workers": workers,
        "points": len(rows),
        "executed": serial.stats.executed,
        "identical": sharded.table_rows() == rows,
        "warm_identical": warm.table_rows() == cold.table_rows() == rows,
        "warm_hits": warm.stats.cache_hits,
        "warm_executed": warm.stats.executed,
        "cold_executed": cold.stats.executed,
        "front_size": len(serial.front),
        "front": list(serial.front),
    }


def format_report(result: dict) -> str:
    """Render the comparison as an aligned text report."""
    lines = [
        result["table"],
        "",
        f"{'study points':>24}  {result['points']}",
        f"{'sharded == serial':>24}  {result['identical']} (at {result['workers']} workers)",
        f"{'warm rerun == cold':>24}  {result['warm_identical']}",
        f"{'warm cache hits':>24}  {result['warm_hits']}/{result['cold_executed']} "
        f"({result['warm_executed']} executed)",
        f"{'pareto front size':>24}  {result['front_size']}/{result['points']}",
        "gates: sharded==serial, warm rerun bitwise with zero executions, "
        "front a non-empty strict subset",
    ]
    return "\n".join(lines)


def _gate_failures(result: dict) -> list:
    failures = []
    if not result["identical"]:
        failures.append(
            f"sharded study at {result['workers']} workers differs from the "
            "serial run (determinism gate)"
        )
    if not result["warm_identical"]:
        failures.append("warm-cache rerun changed the study rows (caching gate)")
    if result["warm_executed"] != 0 or result["warm_hits"] != result["cold_executed"]:
        failures.append(
            f"warm rerun executed {result['warm_executed']} shard(s) and hit "
            f"{result['warm_hits']}/{result['cold_executed']} (caching gate)"
        )
    if not 0 < result["front_size"] < result["points"]:
        failures.append(
            f"Pareto front has {result['front_size']} of {result['points']} "
            "points (expected a non-empty strict subset)"
        )
    return failures


def test_ablation_harness(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_comparison)
    report_writer("ablation", format_report(result), data=result)
    assert not _gate_failures(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the serial-equality check at 2 workers for CI; all gates "
        "are still enforced (the quick study is already seconds-scale)",
    )
    arguments = parser.parse_args(argv)
    result = run_comparison(workers=SMOKE_WORKERS if arguments.smoke else WORKERS)
    print(format_report(result))
    failures = _gate_failures(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
