"""Shared helpers for the benchmark harness.

Every benchmark runs the corresponding experiment once (``rounds=1``) through
pytest-benchmark so wall-clock cost is recorded, prints the same rows/series
the paper's figure reports, and archives the formatted table under
``benchmarks/output/`` so results can be diffed between runs.
"""

from __future__ import annotations

import pathlib

import pytest

from _emit import emit_report

OUTPUT_DIRECTORY = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_writer():
    """Return a callable that prints and archives a formatted report.

    ``data`` (optional) is the structured result behind the table; when
    given, a machine-readable ``<name>.json`` is archived next to the text
    artifact (see :mod:`_emit`).
    """
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)

    def _write(name: str, table: str, data=None) -> None:
        emit_report(OUTPUT_DIRECTORY, name, table, data)

    return _write


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
