"""Shared helpers for the benchmark harness.

Every benchmark runs the corresponding experiment once (``rounds=1``) through
pytest-benchmark so wall-clock cost is recorded, prints the same rows/series
the paper's figure reports, and archives the formatted table under
``benchmarks/output/`` so results can be diffed between runs.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIRECTORY = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_writer():
    """Return a callable that prints and archives a formatted report."""
    OUTPUT_DIRECTORY.mkdir(exist_ok=True)

    def _write(name: str, table: str) -> None:
        print()
        print(table)
        (OUTPUT_DIRECTORY / f"{name}.txt").write_text(table + "\n", encoding="utf-8")

    return _write


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
