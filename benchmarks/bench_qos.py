"""Benchmark E-QS: class-aware admission protects urllc through a busy day.

The acceptance bar for the QoS layer: on the catalog's **busy-day** scenario
(diurnal ramp, flash crowd, outage, cool-down) with a mixed
urllc/embb/best-effort population and compressed-velocity handover, the
**class-aware** plant must keep the urllc deadline-miss rate within
``GATE_URLLC_RATIO`` times its *uncongested* baseline (plus a small absolute
floor for a zero baseline) while the degradable classes absorb the overload
on the slow classical fallback.  The **classless** plant — shape-only
batching and class-blind admission on the *same* jobs — must show urllc
misses rising, because pressured batches are demoted as a unit and urllc
gets dragged onto the classical path with its bulk batch-mates.

A second gate checks the identity contract: on a single-default-class
workload the ``class_aware`` flag is bitwise invisible, so the QoS machinery
cannot have perturbed the pre-QoS ``serve``/``scenarios`` outputs.

All arms share one deterministic workload seed, so the comparison is exactly
reproducible.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_qos.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_qos.py -q
"""

from __future__ import annotations

import argparse
import sys

from repro.network import build_topology
from repro.serving import (
    AnnealerServingBackend,
    BackendPool,
    ClassicalServingBackend,
    HandoverModel,
    RANServingSimulator,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.serving.scenarios import build_scenario
from repro.wireless.mimo import MIMOConfig

#: Acceptance bar: congested class-aware urllc miss over its uncongested baseline.
GATE_URLLC_RATIO = 1.05
#: Allowance when the uncongested baseline misses nothing (1.05 x 0 = 0).
URLLC_ABS_FLOOR = 0.01
#: The classless arm must genuinely hurt urllc for the comparison to mean anything.
MIN_CLASSLESS_URLLC_MISS = 0.05
#: Best-effort must visibly absorb the overload in the class-aware arm.
MIN_BEST_EFFORT_ABSORB = 0.2

NUM_CELLS = 4
USERS_PER_CELL = 3
NUM_USERS = 2
MODULATIONS = (MIMOConfig(NUM_USERS, "QPSK"), MIMOConfig(NUM_USERS, "16-QAM"))
SERVICE_CLASSES = ("urllc", "embb", "best_effort")
CONGESTED_PERIOD_US = 120.0
UNCONGESTED_PERIOD_US = 260.0
TURNAROUND_BUDGET_US = 600.0
HORIZON_US = 20_000.0
SMOKE_HORIZON_US = 8_000.0
MAX_JOBS_PER_USER = 2_000
NUM_READS = 30
LANES = 4
MAX_BATCH = 4
ANNEALER_WORKERS = 2
#: A deliberately slow software fallback: demotion is a real degradation.
CLASSICAL_TIME_PER_VARIABLE_US = 25.0
VELOCITY_MPS = 30.0
#: Fluid-flow crossing rates are per-microsecond; a ms-scale horizon stands in
#: for hours of wall-clock RAN time, so handover is compressed to match.
HANDOVER_TIME_COMPRESSION = 1e4
SEED = 11


def _busy_day_jobs(horizon_us: float, symbol_period_us: float):
    topology = build_topology("line", 1, NUM_CELLS)
    scenario = build_scenario(
        "busy-day", NUM_CELLS, horizon_us=horizon_us, topology=topology
    )
    profiles = uniform_cell_profiles(
        num_cells=NUM_CELLS,
        users_per_cell=USERS_PER_CELL,
        configs=MODULATIONS,
        symbol_period_us=symbol_period_us,
        arrival_process="poisson",
        turnaround_budget_us=TURNAROUND_BUDGET_US,
        topology=topology,
        service_classes=SERVICE_CLASSES,
    )
    handover = HandoverModel(
        velocity_mps=VELOCITY_MPS * HANDOVER_TIME_COMPRESSION, seed=SEED
    )
    return topology, generate_serving_jobs(
        profiles, MAX_JOBS_PER_USER, rng=SEED, scenario=scenario, handover=handover
    )


def _simulator(topology, class_aware: bool) -> RANServingSimulator:
    backends = [
        AnnealerServingBackend(num_reads=NUM_READS, lanes=LANES)
        for _ in range(ANNEALER_WORKERS)
    ]
    backends.append(
        ClassicalServingBackend(time_per_variable_us=CLASSICAL_TIME_PER_VARIABLE_US)
    )
    return RANServingSimulator(
        pool=BackendPool(backends),
        policy="edf",
        max_batch_size=MAX_BATCH,
        admission_control=True,
        topology=topology,
        class_aware=class_aware,
    )


def _class_slice(report, name: str) -> dict:
    entry = report.class_report(name)
    if entry is None:
        return {"jobs": 0, "miss": 0.0, "demoted": 0.0, "p99_us": 0.0}
    return {
        "jobs": entry.jobs,
        "miss": entry.deadline_miss_rate or 0.0,
        "demoted": entry.demotion_rate,
        "p99_us": entry.p99_latency_us,
    }


def _identity_check() -> bool:
    """Single default class: the class_aware flag must be bitwise invisible."""
    profiles = uniform_cell_profiles(
        num_cells=2,
        users_per_cell=2,
        configs=list(MODULATIONS),
        symbol_period_us=CONGESTED_PERIOD_US,
        arrival_process="poisson",
        turnaround_budget_us=TURNAROUND_BUDGET_US,
    )
    jobs = generate_serving_jobs(profiles, jobs_per_user=40, rng=SEED)
    aware = _simulator(None, class_aware=True).run(jobs, rng=SEED)
    blind = _simulator(None, class_aware=False).run(jobs, rng=SEED)
    return aware.outcomes == blind.outcomes


def run_busy_day_comparison(horizon_us: float = HORIZON_US) -> dict:
    """Three busy-day arms plus the single-class identity check."""
    topology, jobs = _busy_day_jobs(horizon_us, CONGESTED_PERIOD_US)
    aware = _simulator(topology, class_aware=True).run(jobs)
    classless = _simulator(topology, class_aware=False).run(jobs)
    _, light_jobs = _busy_day_jobs(horizon_us, UNCONGESTED_PERIOD_US)
    baseline = _simulator(topology, class_aware=True).run(light_jobs)

    result = {
        "horizon_us": horizon_us,
        "jobs": len(jobs),
        "handover_fraction": sum(1 for job in jobs if job.handed_over) / len(jobs),
        "identity_bitwise": _identity_check(),
    }
    for arm, report in (("aware", aware), ("classless", classless), ("baseline", baseline)):
        result[arm] = {
            "miss": report.deadline_miss_rate or 0.0,
            "classes": {name: _class_slice(report, name) for name in SERVICE_CLASSES},
        }
    urllc_baseline = result["baseline"]["classes"]["urllc"]["miss"]
    result["urllc_allowed_miss"] = max(
        GATE_URLLC_RATIO * urllc_baseline, URLLC_ABS_FLOOR
    )
    return result


def format_report(result: dict) -> str:
    """Render the comparison as an aligned text report."""
    lines = [
        "QoS classes - busy day, class-aware vs classless vs uncongested baseline",
        f"{NUM_CELLS} cells x {USERS_PER_CELL} users, classes "
        f"{'/'.join(SERVICE_CLASSES)}, horizon {result['horizon_us'] / 1000.0:.0f} ms, "
        f"{ANNEALER_WORKERS} annealers + 1 classical "
        f"({CLASSICAL_TIME_PER_VARIABLE_US:.0f} us/var), velocity "
        f"{VELOCITY_MPS:.0f} m/s (x{HANDOVER_TIME_COMPRESSION:.0e} compression)",
        f"{'jobs':>26}  {result['jobs']}",
        f"{'handover fraction':>26}  {result['handover_fraction']:.3f}",
    ]
    for arm in ("aware", "classless", "baseline"):
        lines.append(f"{arm + ' overall miss':>26}  {result[arm]['miss']:.4f}")
        for name in SERVICE_CLASSES:
            slice_ = result[arm]["classes"][name]
            lines.append(
                f"{arm + ' ' + name:>26}  miss={slice_['miss']:.4f}  "
                f"demoted={slice_['demoted']:.3f}  p99={slice_['p99_us']:.0f} us"
            )
    lines.append(
        f"urllc gate: aware {result['aware']['classes']['urllc']['miss']:.4f} <= "
        f"{result['urllc_allowed_miss']:.4f} "
        f"(= max({GATE_URLLC_RATIO:.2f} x baseline, {URLLC_ABS_FLOOR:.2f})); "
        f"classless urllc floor {MIN_CLASSLESS_URLLC_MISS:.2f}; "
        f"identity bitwise: {'yes' if result['identity_bitwise'] else 'NO'}"
    )
    return "\n".join(lines)


def _gate_failures(result: dict) -> list:
    failures = []
    urllc_aware = result["aware"]["classes"]["urllc"]["miss"]
    if urllc_aware > result["urllc_allowed_miss"]:
        failures.append(
            f"class-aware urllc miss {urllc_aware:.4f} exceeds the allowed "
            f"{result['urllc_allowed_miss']:.4f} "
            f"({GATE_URLLC_RATIO:.2f} x uncongested baseline)"
        )
    best_effort = result["aware"]["classes"]["best_effort"]
    if best_effort["miss"] < MIN_BEST_EFFORT_ABSORB and best_effort["demoted"] == 0.0:
        failures.append(
            f"best-effort absorbed nothing (miss {best_effort['miss']:.4f}, "
            f"demoted {best_effort['demoted']:.3f}); the overload went unpaid"
        )
    urllc_classless = result["classless"]["classes"]["urllc"]["miss"]
    if urllc_classless < MIN_CLASSLESS_URLLC_MISS:
        failures.append(
            f"classless urllc miss {urllc_classless:.4f} stayed under "
            f"{MIN_CLASSLESS_URLLC_MISS}; the busy day did not stress it"
        )
    if not result["identity_bitwise"]:
        failures.append(
            "single-default-class run differs between class_aware=True and False"
        )
    return failures


def test_qos_gates(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_busy_day_comparison, horizon_us=SMOKE_HORIZON_US)
    report_writer("qos", format_report(result), data=result)
    assert not _gate_failures(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter busy-day horizon for CI; every gate is still enforced",
    )
    arguments = parser.parse_args(argv)
    result = run_busy_day_comparison(
        horizon_us=SMOKE_HORIZON_US if arguments.smoke else HORIZON_US
    )
    print(format_report(result))
    failures = _gate_failures(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
