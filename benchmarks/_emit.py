"""Shared benchmark artifact emission: text table + machine-readable JSON.

Every benchmark archives its formatted table under ``benchmarks/output/`` so
runs can be diffed by eye; :func:`emit_report` additionally writes a
``<name>.json`` next to each ``<name>.txt`` carrying the structured rows the
table was rendered from, so the nightly workflow uploads trend points the
planned results dashboard can aggregate without re-parsing text tables.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
from typing import Any, Optional

ARTIFACT_SCHEMA_VERSION = 1


def to_jsonable(value: Any) -> Any:
    """Reduce benchmark data (dataclasses, numpy, nested containers) to JSON.

    Non-finite floats become strings (JSON has no Inf/NaN) and anything
    unrecognised falls back to ``repr`` — artifact emission must never make a
    benchmark fail.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):  # numpy scalar
        return to_jsonable(value.item())
    if hasattr(value, "tolist"):  # numpy array
        return to_jsonable(value.tolist())
    return repr(value)


def emit_report(
    directory: pathlib.Path, name: str, table: str, data: Optional[Any] = None
) -> None:
    """Print ``table``, archive it as ``<name>.txt``, and ``data`` as JSON.

    ``data`` is the benchmark's structured result (rows, series, dataclass
    reports); when omitted only the text artifact is written, so benches
    migrate to structured emission incrementally.
    """
    directory.mkdir(exist_ok=True)
    print()
    print(table)
    (directory / f"{name}.txt").write_text(table + "\n", encoding="utf-8")
    if data is not None:
        payload = {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "benchmark": name,
            "data": to_jsonable(data),
        }
        (directory / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
