"""Benchmark E-F4: the soft-information constraint study (paper Fig. 4 / Sec. 3.1).

The paper explored adding soft-information penalty terms to the QUBO and found
the scheme "not currently practical": helpful only when the pre-knowledge is
both correct and gently weighted, and harmful when the pre-knowledge is wrong
(the global optimum of the augmented problem moves away from the true one).
The benchmark reproduces exactly that trade-off.
"""

from conftest import run_once

from repro.experiments import (
    SoftConstraintConfig,
    format_soft_constraint_table,
    run_soft_constraint_study,
)


def test_soft_constraint_study(benchmark, report_writer):
    config = SoftConstraintConfig(num_reads=400, strengths=(0.0, 0.5, 2.0, 8.0))
    rows = run_once(benchmark, run_soft_constraint_study, config)
    report_writer("soft_constraints", format_soft_constraint_table(rows), data=rows)

    baseline = next(row for row in rows if row.knowledge == "none")
    assert baseline.optimum_preserved

    # Correct pre-knowledge never destroys the optimum, at any strength.
    correct_rows = [row for row in rows if row.knowledge == "correct"]
    assert correct_rows and all(row.optimum_preserved for row in correct_rows)

    # Wrong pre-knowledge at high strength distorts the problem: the original
    # optimum stops being the augmented ground state for at least one setting,
    # which is the failure mode the paper warns about.
    wrong_rows = [row for row in rows if row.knowledge == "partially-wrong"]
    assert wrong_rows
    assert any(not row.optimum_preserved for row in wrong_rows)
    # And the solver's success on the original objective under wrong knowledge
    # never exceeds its success under correct knowledge at the same strength.
    for strength in {row.strength for row in wrong_rows}:
        correct = next(row for row in correct_rows if row.strength == strength)
        wrong = next(row for row in wrong_rows if row.strength == strength)
        assert wrong.success_probability <= correct.success_probability + 0.05
