"""Benchmark E-SC: adaptive autoscaling vs static provisioning on a flash crowd.

The acceptance bar for the scenario engine + autoscaler: on the catalog's
**flash-crowd** scenario (a 6x demand spike in one cell), the autoscaled
elastic pool must cut the deadline-miss rate to at most
``GATE_RATIO`` times that of a **static pool of equal average capacity** —
a fixed pool whose worker count equals the autoscaled run's time-weighted
mean active workers, rounded to the nearest whole worker.  Equal average
capacity makes the comparison honest: the autoscaler wins by *placing*
capacity at the burst, not by consuming more of it.

Both arms are pure annealer pools under EDF with identical batching; the
timing model is deterministic, so the comparison is exactly reproducible
from the fixed workload seed.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_scenarios.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q
"""

from __future__ import annotations

import argparse
import sys

from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleController,
    ElasticBackendPool,
)
from repro.serving.backends import AnnealerServingBackend
from repro.serving.pool import BackendPool
from repro.serving.scenarios import build_scenario
from repro.serving.simulator import RANServingSimulator
from repro.serving.workload import generate_serving_jobs, uniform_cell_profiles
from repro.wireless.mimo import MIMOConfig

#: Acceptance bar: autoscaled miss rate over static equal-average miss rate.
GATE_RATIO = 0.5
#: The static arm must genuinely suffer for the comparison to mean anything.
MIN_STATIC_MISS = 0.05

NUM_CELLS = 4
USERS_PER_CELL = 3
NUM_USERS = 2
MODULATIONS = (MIMOConfig(NUM_USERS, "QPSK"), MIMOConfig(NUM_USERS, "16-QAM"))
BASE_SYMBOL_PERIOD_US = 150.0
TURNAROUND_BUDGET_US = 300.0
HORIZON_US = 20_000.0
SMOKE_HORIZON_US = 8_000.0
MAX_JOBS_PER_USER = 4_000
NUM_READS = 30
LANES = 4
MAX_BATCH = 4
MAX_WORKERS = 8
SEED = 11

AUTOSCALE = AutoscaleConfig(
    interval_us=150.0,
    warmup_us=300.0,
    min_workers=1,
    max_workers=MAX_WORKERS,
    cooldown_us=200.0,
    scale_down_queue_per_worker=1.5,
)


def _flash_crowd_jobs(horizon_us: float):
    scenario = build_scenario("flash-crowd", NUM_CELLS, horizon_us=horizon_us)
    profiles = uniform_cell_profiles(
        num_cells=NUM_CELLS,
        users_per_cell=USERS_PER_CELL,
        configs=MODULATIONS,
        symbol_period_us=BASE_SYMBOL_PERIOD_US,
        arrival_process="poisson",
        turnaround_budget_us=TURNAROUND_BUDGET_US,
    )
    return generate_serving_jobs(
        profiles, MAX_JOBS_PER_USER, rng=SEED, scenario=scenario
    )


def _annealer() -> AnnealerServingBackend:
    return AnnealerServingBackend(num_reads=NUM_READS, lanes=LANES)


def run_flash_crowd_comparison(horizon_us: float = HORIZON_US) -> dict:
    """Autoscaled flash-crowd run, then the static equal-average rematch."""
    jobs = _flash_crowd_jobs(horizon_us)

    controller = AutoscaleController(AUTOSCALE)
    autoscaled = RANServingSimulator(
        pool=ElasticBackendPool(
            annealer=_annealer(),
            max_annealer_workers=MAX_WORKERS,
            initial_annealer_workers=AUTOSCALE.min_workers,
            num_classical_workers=0,
        ),
        policy="edf",
        max_batch_size=MAX_BATCH,
        admission_control=False,
        autoscaler=controller,
    ).run(jobs)
    end_us = max(outcome.finish_us for outcome in autoscaled.outcomes)
    average_active = controller.average_active_workers(end_us)
    equal_capacity = max(1, round(average_active))

    static = RANServingSimulator(
        pool=BackendPool([_annealer()] * equal_capacity),
        policy="edf",
        max_batch_size=MAX_BATCH,
        admission_control=False,
    ).run(jobs)

    autoscaled_miss = autoscaled.deadline_miss_rate or 0.0
    static_miss = static.deadline_miss_rate or 0.0
    ratio = autoscaled_miss / static_miss if static_miss else float("inf")
    return {
        "jobs": len(jobs),
        "horizon_us": horizon_us,
        "average_active": average_active,
        "equal_capacity": equal_capacity,
        "scale_events": len(controller.events),
        "autoscaled_miss": autoscaled_miss,
        "static_miss": static_miss,
        "miss_ratio": ratio,
        "autoscaled_p99_us": autoscaled.p99_latency_us,
        "static_p99_us": static.p99_latency_us,
    }


def format_report(result: dict) -> str:
    """Render the comparison as an aligned text report."""
    lines = [
        "Scenario autoscaling - flash crowd, autoscaled vs static equal-average pool",
        f"{NUM_CELLS} cells x {USERS_PER_CELL} users, horizon "
        f"{result['horizon_us'] / 1000.0:.0f} ms, budget "
        f"{TURNAROUND_BUDGET_US:.0f} us, {NUM_READS} reads, {LANES} lanes; "
        f"autoscale [{AUTOSCALE.min_workers}, {MAX_WORKERS}] workers, "
        f"warm-up {AUTOSCALE.warmup_us:.0f} us",
        f"{'jobs':>28}  {result['jobs']}",
        f"{'scale events':>28}  {result['scale_events']}",
        f"{'mean active workers':>28}  {result['average_active']:.2f}",
        f"{'static pool workers':>28}  {result['equal_capacity']}",
        f"{'autoscaled miss rate':>28}  {result['autoscaled_miss']:.4f}",
        f"{'static miss rate':>28}  {result['static_miss']:.4f}",
        f"{'autoscaled p99 (us)':>28}  {result['autoscaled_p99_us']:.1f}",
        f"{'static p99 (us)':>28}  {result['static_p99_us']:.1f}",
        f"miss ratio {result['miss_ratio']:.3f} (required <= {GATE_RATIO:.2f}; "
        f"static floor {MIN_STATIC_MISS:.2f})",
    ]
    return "\n".join(lines)


def _gate_failures(result: dict) -> list:
    failures = []
    if result["static_miss"] < MIN_STATIC_MISS:
        failures.append(
            f"static equal-average pool missed only {result['static_miss']:.4f} "
            f"(< {MIN_STATIC_MISS}); the flash crowd did not stress it"
        )
    if result["miss_ratio"] > GATE_RATIO:
        failures.append(
            f"autoscaled/static miss ratio {result['miss_ratio']:.3f} exceeds "
            f"the {GATE_RATIO:.2f} acceptance bar"
        )
    return failures


def test_flash_crowd_autoscaling(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_flash_crowd_comparison)
    report_writer("scenarios", format_report(result), data=result)
    assert not _gate_failures(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter scenario horizon for CI; the miss-ratio bar is still enforced",
    )
    arguments = parser.parse_args(argv)
    result = run_flash_crowd_comparison(
        horizon_us=SMOKE_HORIZON_US if arguments.smoke else HORIZON_US
    )
    print(format_report(result))
    failures = _gate_failures(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
