"""Benchmark E-X3: the channel-impairment robustness sweep.

The acceptance bar for the impairment engine
(:mod:`repro.wireless.fading`) measured through the robustness study
(:mod:`repro.experiments.robustness_study`):

* **identity** — impairments constructed with every knob at its default
  must leave :func:`~repro.wireless.mimo.simulate_transmission` *bitwise
  identical* to the unimpaired path (always enforced);
* **determinism** — the sharded sweep's formatted table must be bitwise
  identical to the serial run at ``WORKERS`` workers (always enforced);
* **degradation** — detection quality must respond to the impairments:
  at the sweep's harshest CSI-error and spatial-correlation points the
  hybrid detector's BER must be at least as high as at the corresponding
  zero-impairment points, and its optimum-detection rate at the zero
  points must stay above ``CLEAN_OPTIMUM_GATE`` (the hybrid is a
  heuristic, so a perfect 1.0 is not guaranteed at finite reads).
  Enforced on the full run; the smoke run's two-use streams are too short
  to bound noise.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_robustness.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_robustness.py -q
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.experiments import (
    RobustnessStudyConfig,
    format_robustness_table,
    run_robustness_study,
)
from repro.wireless import ChannelImpairments, MIMOConfig
from repro.wireless.mimo import simulate_transmission

#: Worker count of the serial-equality check.
WORKERS = 4
#: Required hybrid optimum-detection rate at the zero-impairment points.
CLEAN_OPTIMUM_GATE = 0.8
#: Seeds sampled by the identity bitwise gate.
IDENTITY_SEEDS = range(8)

CONFIG = RobustnessStudyConfig()
SMOKE_CONFIG = RobustnessStudyConfig.quick()
SMOKE_WORKERS = 2


def identity_is_bitwise() -> bool:
    """Whether identity impairments reproduce the unimpaired path exactly."""
    config = MIMOConfig(num_users=3, modulation="QPSK", snr_db=12.0)
    for seed in IDENTITY_SEEDS:
        plain = simulate_transmission(config, rng=seed)
        impaired = simulate_transmission(
            config, rng=seed, impairments=ChannelImpairments()
        )
        if not (
            np.array_equal(plain.instance.channel_matrix, impaired.instance.channel_matrix)
            and np.array_equal(plain.instance.received, impaired.instance.received)
            and np.array_equal(plain.transmitted_bits, impaired.transmitted_bits)
        ):
            return False
    return True


def run_comparison(config: RobustnessStudyConfig = CONFIG, workers: int = WORKERS) -> dict:
    """Serial vs sharded runs of the sweep, plus the quality deltas."""
    serial = run_robustness_study(config)
    serial_table = format_robustness_table(serial)
    parallel = run_robustness_study(config, workers=workers)
    identical = format_robustness_table(parallel) == serial_table

    def _row(axis: str, value: float):
        return next(row for row in serial if row.axis == axis and row.value == value)

    csi_zero = _row("csi-error", config.csi_error_grid[0])
    csi_worst = _row("csi-error", config.csi_error_grid[-1])
    corr_zero = _row("correlation", config.correlation_grid[0])
    corr_worst = _row("correlation", config.correlation_grid[-1])

    return {
        "table": serial_table,
        "workers": workers,
        "points": len(serial),
        "identical": identical,
        "identity_bitwise": identity_is_bitwise(),
        "clean_optimum_rate": min(
            csi_zero.hybrid_optimum_rate, corr_zero.hybrid_optimum_rate
        ),
        "csi_ber_delta": csi_worst.hybrid_ber - csi_zero.hybrid_ber,
        "correlation_ber_delta": corr_worst.hybrid_ber - corr_zero.hybrid_ber,
    }


def format_report(result: dict) -> str:
    """Render the comparison as an aligned text report."""
    lines = [
        result["table"],
        "",
        f"{'grid points':>26}  {result['points']}",
        f"{'sharded == serial':>26}  {result['identical']} "
        f"(at {result['workers']} workers)",
        f"{'identity bitwise':>26}  {result['identity_bitwise']}",
        f"{'clean-point P(opt)':>26}  {result['clean_optimum_rate']:.3f}",
        f"{'hybrid BER delta (CSI)':>26}  {result['csi_ber_delta']:+.3f}",
        f"{'hybrid BER delta (corr)':>26}  {result['correlation_ber_delta']:+.3f}",
        f"gates: identity bitwise + sharded==serial (always); clean P(opt) >= "
        f"{CLEAN_OPTIMUM_GATE} and BER deltas >= 0 (full run)",
    ]
    return "\n".join(lines)


def _gate_failures(result: dict, enforce_degradation: bool = True) -> list:
    failures = []
    if not result["identity_bitwise"]:
        failures.append(
            "identity impairments changed simulate_transmission output "
            "(bitwise-reproduction gate)"
        )
    if not result["identical"]:
        failures.append(
            f"sharded sweep at {result['workers']} workers differs from the "
            "serial run (determinism gate)"
        )
    if enforce_degradation:
        if result["clean_optimum_rate"] < CLEAN_OPTIMUM_GATE:
            failures.append(
                f"hybrid optimum rate at the zero-impairment points is "
                f"{result['clean_optimum_rate']:.3f} "
                f"(required >= {CLEAN_OPTIMUM_GATE})"
            )
        if result["csi_ber_delta"] < 0:
            failures.append(
                f"hybrid BER fell by {-result['csi_ber_delta']:.3f} at the "
                "worst CSI error (degradation gate)"
            )
        if result["correlation_ber_delta"] < 0:
            failures.append(
                f"hybrid BER fell by {-result['correlation_ber_delta']:.3f} at "
                "the worst spatial correlation (degradation gate)"
            )
    return failures


def test_robustness_sweep(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_comparison)
    report_writer("robustness", format_report(result), data=result)
    assert not _gate_failures(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick grids at 2 workers for CI; the identity and "
        "serial-equality gates are still enforced (degradation gates need "
        "the full streams)",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        result = run_comparison(SMOKE_CONFIG, workers=SMOKE_WORKERS)
    else:
        result = run_comparison()
    print(format_report(result))
    failures = _gate_failures(result, enforce_degradation=not arguments.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
