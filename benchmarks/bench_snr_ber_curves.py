"""Benchmark E-X1 (extension): BER vs SNR under AWGN.

The paper's prototype excludes noise; this extension sweeps SNR on a Rayleigh
fading uplink and checks the expected waterfall behaviour: every detector's
BER improves with SNR, and at high SNR the (near-ML) hybrid is at least as
accurate as zero-forcing.
"""

from conftest import run_once

from repro.experiments import SNRStudyConfig, format_snr_table, run_snr_study


def test_snr_ber_curves(benchmark, report_writer):
    config = SNRStudyConfig(
        snr_grid_db=(0.0, 6.0, 12.0, 18.0), channel_uses_per_point=6, num_reads=120
    )
    rows = run_once(benchmark, run_snr_study, config)
    report_writer("snr_ber_curves", format_snr_table(rows), data=rows)

    by_snr = {row.snr_db: row for row in rows}
    lowest, highest = min(by_snr), max(by_snr)

    # Waterfall shape: BER at the highest SNR is no worse than at the lowest,
    # for every detector.
    for attribute in ("zero_forcing_ber", "mmse_ber", "hybrid_ber"):
        assert getattr(by_snr[highest], attribute) <= getattr(by_snr[lowest], attribute) + 1e-9

    # At high SNR everything should essentially be error free on this small link.
    assert by_snr[highest].mmse_ber <= 0.05
    assert by_snr[highest].hybrid_ber <= 0.15

    # At moderate-to-high SNR, MMSE matches zero-forcing (its regulariser
    # vanishes with the noise); at very low SNR its biased estimate may differ
    # slightly, so the comparison is restricted to the >= 6 dB points.
    for row in rows:
        if row.snr_db >= 6.0:
            assert row.mmse_ber <= row.zero_forcing_ber + 0.05
