"""Benchmark E-F3: reproduce paper Figure 3 (QUBO simplification).

Regenerates both panels of Figure 3 — the ratio of simplified QUBOs and the
average number of fixed variables — across problem sizes and modulations, and
checks the paper's qualitative finding: the prefixing scheme stops firing for
problems larger than roughly 32-40 variables.
"""

from conftest import run_once

from repro.experiments import Figure3Config, format_figure3_table, run_figure3


def test_figure3_simplification(benchmark, report_writer):
    config = Figure3Config(instances_per_point=5)
    rows = run_once(benchmark, run_figure3, config)
    report_writer("figure3_simplification", format_figure3_table(rows), data=rows)

    # Shape check (paper): small problems are frequently simplified...
    small = [row for row in rows if row.num_variables <= 8]
    assert any(row.simplified_ratio > 0.0 for row in small)
    # ...while problems beyond ~40 variables essentially never are.
    large = [row for row in rows if row.num_variables >= 40]
    assert large, "the sweep must include problems beyond 40 variables"
    assert all(row.simplified_ratio <= 0.1 for row in large)
    # And the effect dies out for every modulation, not just one.
    for modulation in {row.modulation for row in rows}:
        biggest = max(
            (row for row in rows if row.modulation == modulation),
            key=lambda row: row.num_variables,
        )
        assert biggest.simplified_ratio <= 0.2
