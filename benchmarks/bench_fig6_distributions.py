"""Benchmark E-F6: reproduce paper Figure 6 (ΔE% sample distributions).

Regenerates the per-modulation ΔE% distributions of forward annealing,
reverse annealing from a random state, and reverse annealing from the Greedy
Search candidate on 36-variable decoding problems, and checks the paper's
headline ordering: the randomly-initialised reverse anneal produces the worst
sample distribution.
"""

from conftest import run_once

from repro.experiments import Figure6Config, format_figure6_table, run_figure6


def test_figure6_distributions(benchmark, report_writer):
    config = Figure6Config(instances_per_modulation=2, num_reads=400)
    series = run_once(benchmark, run_figure6, config)
    report_writer("figure6_distributions", format_figure6_table(series), data=series)

    by_key = {(row.modulation, row.method): row for row in series}
    modulations = {row.modulation for row in series}

    # Paper shape: RA from a random initial state skews the distribution toward
    # poor quality — it must be the worst method for every modulation.
    for modulation in modulations:
        fa = by_key[(modulation, "FA")]
        ra_random = by_key[(modulation, "RA-random")]
        ra_greedy = by_key[(modulation, "RA-greedy")]
        assert ra_random.mean_delta_e >= fa.mean_delta_e - 0.5
        assert ra_random.mean_delta_e >= ra_greedy.mean_delta_e - 0.5

    # The GS-initialised hybrid concentrates samples at low Delta-E%: its mean
    # must stay within a small band of the best method for the higher-order
    # modulations that carry the paper's argument.
    for modulation in ("16-QAM", "64-QAM"):
        if modulation not in modulations:
            continue
        fa = by_key[(modulation, "FA")]
        ra_greedy = by_key[(modulation, "RA-greedy")]
        assert ra_greedy.mean_delta_e <= max(2.0 * fa.mean_delta_e, fa.mean_delta_e + 2.0)
