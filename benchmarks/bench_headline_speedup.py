"""Benchmark E-HL: the paper's headline claim (abstract / Sec. 1).

"Preliminary results on a low-latency, large MIMO system ... showing
approximately 2-10x better performance in terms of processing time than prior
published results" and "for an eight-user, 16-QAM detection/decoding problem,
our version of RA achieves approximately up to 10x higher success probability
than the previously published results for FA."

The benchmark compares RA(GS) against FA at each method's best operating point
on the default typical instance and checks that the hybrid wins by a factor in
(or above) the paper's 2-10x band.
"""

from conftest import run_once

from repro.experiments import HeadlineConfig, format_headline_report, run_headline


def test_headline_speedup(benchmark, report_writer):
    config = HeadlineConfig(num_reads=600)
    result = run_once(benchmark, run_headline, config)
    report_writer("headline_speedup", format_headline_report(result))

    # The hybrid must beat the FA baseline on the typical instance...
    assert result.median_success_ratio >= 2.0
    # ...by a processing-time factor compatible with the paper's 2-10x claim
    # (we accept anything >= 2x; the simulator typically lands around 5-15x).
    assert result.median_tts_speedup >= 2.0
    # And it must do so at a physically sensible operating point: the best RA
    # switch location lies strictly inside (0, 1).
    assert all(0.0 < switch < 1.0 for switch in result.ra_best_switch)
