"""Benchmark E-HL: the paper's headline claim (abstract / Sec. 1).

"Preliminary results on a low-latency, large MIMO system ... showing
approximately 2-10x better performance in terms of processing time than prior
published results" and "for an eight-user, 16-QAM detection/decoding problem,
our version of RA achieves approximately up to 10x higher success probability
than the previously published results for FA."

The benchmark compares RA(GS) against FA at each method's best operating point
on the default typical instance and checks that the hybrid wins by a factor in
(or above) the paper's 2-10x band.
"""

from conftest import run_once

from repro.experiments import HeadlineConfig, format_headline_report, run_headline


def test_headline_speedup(benchmark, report_writer):
    config = HeadlineConfig(num_reads=600)
    result = run_once(benchmark, run_headline, config)
    report_writer("headline_speedup", format_headline_report(result), data=result)

    # The hybrid must beat the FA baseline on the typical instance...
    assert result.median_success_ratio >= 2.0
    # ...by a processing-time factor compatible with the paper's 2-10x claim
    # (we accept anything >= 2x; the simulator typically lands around 5-15x).
    assert result.median_tts_speedup >= 2.0
    # And it must do so at a physically sensible operating point: the best RA
    # switch location lies strictly inside (0, 1).
    assert all(0.0 < switch < 1.0 for switch in result.ra_best_switch)


# --------------------------------------------------------------------- #
# Benchmark E-K: replica-parallel kernel throughput (PR 6 acceptance gate)
# --------------------------------------------------------------------- #
#
# The replica-parallel rewrite turned the per-position python sweep loops
# into one array program over (batch, spins, reads) per sweep.  This
# benchmark measures sweeps/sec of the new SA and SVMC kernels against the
# preserved legacy dynamics at the paper-relevant problem size (N = 32,
# i.e. 8-user 16-QAM) and asserts the >= 10x gate at paper-scale reads.
# Alongside the formatted table the report writer archives a
# machine-readable JSON record (benchmarks/output/kernel_throughput.json)
# that the nightly workflow uploads, giving a sweeps/sec trend across runs.

import time

import numpy as np

from repro.annealing import kernels
from repro.utils.rng import spawn_rngs

KERNEL_PROBLEM_SIZE = 32
KERNEL_READ_COUNTS = (600, 5000)
KERNEL_NUM_SWEEPS = 48
KERNEL_GATE_READS = 5000
KERNEL_GATE_RATIO = 10.0


def _kernel_problem(seed=0):
    rng = np.random.default_rng(seed)
    n = KERNEL_PROBLEM_SIZE
    fields = rng.normal(size=(1, n))
    upper = np.triu(rng.normal(size=(n, n)), 1)
    symmetric = (upper + upper.T)[None]
    mask = np.ones((1, n), dtype=bool)
    sizes = np.array([n])
    return fields, symmetric, mask, sizes


def _anneal_settings():
    """A representative forward-anneal settings table (with freeze-out)."""
    fractions = np.linspace(0.0, 1.0, KERNEL_NUM_SWEEPS)
    settings = []
    for s in fractions:
        problem = float(s)
        transverse = float((1.0 - s) ** 3)
        activity = max(min(1.0, transverse / 0.15), 0.02)
        settings.append((problem, transverse, 0.05 + transverse, activity))
    return settings


def _time_sa(implementation, reads):
    fields, symmetric, mask, sizes = _kernel_problem()
    children = spawn_rngs(7, 1)
    n = KERNEL_PROBLEM_SIZE
    settings = _anneal_settings()
    if implementation == "legacy":
        spins = children[0].choice([-1.0, 1.0], size=(1, reads, n))
        local = fields[:, None, :] + np.einsum("bij,brj->bri", symmetric, spins)
        start = time.perf_counter()
        kernels.sa_sweeps_legacy(spins, local, symmetric, mask, sizes, children, settings)
    else:
        # Contiguous spin-major state, exactly as the backends allocate it.
        spins = np.ascontiguousarray(children[0].choice([-1.0, 1.0], size=(reads, n)).T)[None]
        local = kernels.initial_local_fields(fields, symmetric, spins)
        start = time.perf_counter()
        kernels.sa_sweeps(
            spins, local, symmetric, mask, sizes, children, settings,
            implementation=implementation,
        )
    return time.perf_counter() - start


def _time_svmc(implementation, reads):
    fields, symmetric, mask, sizes = _kernel_problem()
    children = spawn_rngs(7, 1)
    n = KERNEL_PROBLEM_SIZE
    settings = _anneal_settings()
    theta = np.ascontiguousarray(children[0].uniform(0.0, np.pi, size=(reads, n)).T)[None]
    if implementation == "legacy":
        theta = np.ascontiguousarray(theta.transpose(0, 2, 1))
        cosines = np.cos(theta)
        local = fields[:, None, :] + np.einsum("bij,brj->bri", symmetric, cosines)
        start = time.perf_counter()
        kernels.svmc_sweeps_legacy(
            theta, cosines, local, symmetric, mask, sizes, children, settings,
            proposal_width=0.8, uniform_fraction=0.05,
        )
    else:
        cosines = np.cos(theta)
        sines = np.sin(theta)
        local = kernels.initial_local_fields(fields, symmetric, cosines)
        start = time.perf_counter()
        kernels.svmc_sweeps(
            theta, cosines, sines, local, symmetric, mask, sizes, children, settings,
            implementation=implementation, proposal_width=0.8, uniform_fraction=0.05,
        )
    return time.perf_counter() - start


def measure_kernel_throughput():
    """sweeps/sec of each kernel family and implementation, plus ratios."""
    implementation = "numba" if kernels.numba_available() else "vectorized"
    results = {"implementation": implementation, "families": {}}
    for family, timer in (("sa", _time_sa), ("svmc", _time_svmc)):
        rows = {}
        for reads in KERNEL_READ_COUNTS:
            timer(implementation, min(reads, 100))  # warm caches / JIT
            # Interleave the two sides and take the min of each so a
            # transient load spike on a shared runner cannot skew the ratio.
            fast_times, slow_times = [], []
            for _ in range(6):
                fast_times.append(timer(implementation, reads))
                slow_times.append(timer("legacy", reads))
            fast, slow = min(fast_times), min(slow_times)
            rows[str(reads)] = {
                "kernel_sweeps_per_sec": KERNEL_NUM_SWEEPS / fast,
                "legacy_sweeps_per_sec": KERNEL_NUM_SWEEPS / slow,
                "speedup": slow / fast,
            }
        results["families"][family] = rows
    return results


def format_kernel_throughput(results):
    lines = [
        "Replica-parallel kernel throughput "
        f"(N = {KERNEL_PROBLEM_SIZE}, {KERNEL_NUM_SWEEPS} sweeps, "
        f"implementation = {results['implementation']})",
        f"{'family':>6}  {'reads':>6}  {'kernel sw/s':>12}  {'legacy sw/s':>12}  {'speedup':>8}",
    ]
    for family, rows in results["families"].items():
        for reads, row in rows.items():
            lines.append(
                f"{family:>6}  {reads:>6}  {row['kernel_sweeps_per_sec']:>12.1f}  "
                f"{row['legacy_sweeps_per_sec']:>12.1f}  {row['speedup']:>7.1f}x"
            )
    return "\n".join(lines)


def test_kernel_sweep_throughput(benchmark, report_writer):
    results = run_once(benchmark, measure_kernel_throughput)
    report_writer("kernel_throughput", format_kernel_throughput(results), data=results)

    # PR 6 acceptance gate: the replica-parallel SA kernel must beat the
    # legacy per-position sweep loop by >= 10x at paper-scale reads.
    gate = results["families"]["sa"][str(KERNEL_GATE_READS)]["speedup"]
    assert gate >= KERNEL_GATE_RATIO, (
        f"SA kernel speedup {gate:.1f}x at {KERNEL_GATE_READS} reads is below "
        f"the {KERNEL_GATE_RATIO:.0f}x gate"
    )
    # The SVMC kernel is transcendental-bound; hold it to a smaller but
    # still material floor so regressions surface.
    svmc = results["families"]["svmc"][str(KERNEL_GATE_READS)]["speedup"]
    assert svmc >= 3.0, f"SVMC kernel speedup {svmc:.1f}x fell below 3x"
