"""Benchmark E-PAR: the sharded parallel runner on the scenario-catalog sweep.

The acceptance bar for the parallel execution subsystem
(:mod:`repro.parallel`), measured on the scenario-catalog study (6 scenarios
x 2 pool arms = 12 independent shards):

* **determinism** — the sharded run's formatted report must be *bitwise
  identical* to the serial run at every tested worker count (always
  enforced);
* **speedup** — >= ``SPEEDUP_GATE``x wall-clock speedup at ``WORKERS``
  workers (enforced when the machine actually has that many cores; on
  smaller hosts the measured speedup is reported and the gate is skipped,
  since the bar is physically unreachable there);
* **caching** — a warm-cache re-run must complete in <= ``WARM_RATIO_GATE``
  of the cold cached run's wall-clock (always enforced; both sides run
  serially so the ratio is core-count independent).

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_parallel.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -q
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import tempfile
import time

from repro.experiments import (
    ScenarioStudyConfig,
    format_scenario_table,
    run_scenario_study,
)
from repro.parallel import ResultCache

#: Worker count of the headline speedup measurement.
WORKERS = 4
#: Required wall-clock speedup at WORKERS workers (given >= WORKERS cores).
SPEEDUP_GATE = 2.0
#: Warm-cache re-run time as a fraction of the cold cached run.
WARM_RATIO_GATE = 0.2

#: The full catalog sweep: 6 scenarios x 2 arms = 12 shards.
CONFIG = ScenarioStudyConfig()
#: CI smoke: the same catalog over a shorter horizon, checked at 2 workers.
SMOKE_CONFIG = dataclasses.replace(
    ScenarioStudyConfig(), horizon_us=6_000.0, max_jobs_per_user=300
)
SMOKE_WORKERS = 2


def run_comparison(config: ScenarioStudyConfig = CONFIG, workers: int = WORKERS) -> dict:
    """Serial vs sharded vs cached runs of the catalog sweep."""
    start = time.perf_counter()
    serial = run_scenario_study(config)
    serial_s = time.perf_counter() - start
    serial_table = format_scenario_table(serial)

    start = time.perf_counter()
    parallel = run_scenario_study(config, workers=workers)
    parallel_s = time.perf_counter() - start
    identical = format_scenario_table(parallel) == serial_table

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cache = ResultCache(cache_dir)
        start = time.perf_counter()
        run_scenario_study(config, cache=cache)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_scenario_study(config, cache=cache)
        warm_s = time.perf_counter() - start
        warm_identical = format_scenario_table(warm) == serial_table
        hits, misses = cache.hits, cache.misses

    return {
        "workers": workers,
        "shards": 2 * len(config.scenarios),
        "cpu_count": os.cpu_count() or 1,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical": identical,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_ratio": warm_s / cold_s if cold_s > 0 else float("inf"),
        "warm_identical": warm_identical,
        "cache_hits": hits,
        "cache_misses": misses,
    }


def format_report(result: dict) -> str:
    """Render the comparison as an aligned text report."""
    lines = [
        "Parallel sharded runner - scenario-catalog sweep, serial vs sharded vs cached",
        f"{result['shards']} shards across {result['workers']} workers "
        f"({result['cpu_count']} cores visible)",
        f"{'serial wall-clock (s)':>28}  {result['serial_s']:.2f}",
        f"{'sharded wall-clock (s)':>28}  {result['parallel_s']:.2f}",
        f"{'speedup':>28}  {result['speedup']:.2f}x",
        f"{'bitwise-identical output':>28}  {result['identical']}",
        f"{'cold cached run (s)':>28}  {result['cold_s']:.2f}",
        f"{'warm cached run (s)':>28}  {result['warm_s']:.2f}",
        f"{'warm/cold ratio':>28}  {result['warm_ratio']:.3f}",
        f"{'warm run identical':>28}  {result['warm_identical']}",
        f"{'cache hits / misses':>28}  {result['cache_hits']} / {result['cache_misses']}",
        f"gates: identical output (always), warm/cold <= {WARM_RATIO_GATE:.2f} "
        f"(always), speedup >= {SPEEDUP_GATE:.1f}x at {WORKERS} workers "
        f"(given >= {WORKERS} cores)",
    ]
    return "\n".join(lines)


def _gate_failures(result: dict, enforce_speedup: bool = True) -> list:
    failures = []
    if not result["identical"]:
        failures.append(
            f"sharded output at {result['workers']} workers differs from the "
            "serial run (determinism gate)"
        )
    if not result["warm_identical"]:
        failures.append("warm-cache output differs from the serial run")
    if result["warm_ratio"] > WARM_RATIO_GATE:
        failures.append(
            f"warm-cache re-run took {result['warm_ratio']:.3f} of the cold "
            f"run (required <= {WARM_RATIO_GATE:.2f})"
        )
    if enforce_speedup:
        if result["cpu_count"] >= WORKERS:
            if result["speedup"] < SPEEDUP_GATE:
                failures.append(
                    f"speedup {result['speedup']:.2f}x at {result['workers']} "
                    f"workers is below the {SPEEDUP_GATE:.1f}x acceptance bar"
                )
        else:
            print(
                f"NOTE: only {result['cpu_count']} cores visible; the "
                f"{SPEEDUP_GATE:.1f}x @ {WORKERS}-worker speedup gate needs "
                f">= {WORKERS} cores and was skipped "
                f"(measured {result['speedup']:.2f}x)",
                file=sys.stderr,
            )
    return failures


def test_parallel_sharded_sweep(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_comparison)
    report_writer("parallel", format_report(result), data=result)
    assert not _gate_failures(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorter horizon at 2 workers for CI; the serial-equality and "
        "warm-cache gates are still enforced (speedup is informational)",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        result = run_comparison(SMOKE_CONFIG, workers=SMOKE_WORKERS)
    else:
        result = run_comparison()
    print(format_report(result))
    failures = _gate_failures(result, enforce_speedup=not arguments.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
