"""Benchmark E-NW: city-scale capacity placement on a cell topology.

The acceptance bars for the network layer (:mod:`repro.network`) and its
placement study:

1. **City scale in bounded memory** — the aggregate traffic path must
   simulate at least ``MIN_CELLS`` cells and ``MIN_USERS`` users while its
   counter generation allocates no more than ``MEMORY_BUDGET_BYTES`` at
   peak (tracemalloc): the population is sampled as Poisson counters, never
   materialised as per-user objects.
2. **Re-embedding pays** — on the flash-crowd scenario the reactive arm
   (hotspot detector driving the online capacity re-embedder) must cut the
   fluid-model deadline-miss rate to at most ``GATE_RATIO`` times the
   static equal split **at equal total capacity**, and the static arm's hot
   cell must genuinely suffer (``MIN_STATIC_PEAK_MISS`` on its peak-cell
   miss rate — a single hot cell dilutes out of the network-wide average as
   the city grows) for the ratio to mean anything.
3. **Sharding is free** — a 2-worker process-pool run must reproduce the
   serial rows bitwise.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_network.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_network.py -q
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tracemalloc

from repro.experiments.network_study import (
    NetworkStudyConfig,
    run_network_study,
)
from repro.network.aggregate import AggregationConfig, cell_window_counts
from repro.network.topology import build_topology
from repro.serving.scenarios import build_scenario

#: Acceptance bar: reactive miss rate over static equal-split miss rate.
GATE_RATIO = 0.5
#: The static arm's hot cell must genuinely suffer for the ratio to mean
#: anything; peak-cell rather than network-wide, so the bar survives city
#: growth diluting one hotspot across hundreds of healthy cells.
MIN_STATIC_PEAK_MISS = 0.05
#: City-scale floor the aggregate path must clear.
MIN_CELLS = 100
MIN_USERS = 1_000_000
#: Peak tracemalloc allocation allowed while generating the counter matrix.
#: The matrix itself is O(windows x cells) — a few hundred KB at city scale —
#: so 64 MB is three orders of magnitude of headroom over a per-user path
#: that would need GBs.
MEMORY_BUDGET_BYTES = 64 * 1024 * 1024


def _study_config(smoke: bool) -> NetworkStudyConfig:
    """Default city (100 cells, 1M users) for smoke; 400 cells / 4M full."""
    return NetworkStudyConfig() if smoke else NetworkStudyConfig.city_scale()


def _measure_counter_memory(config: NetworkStudyConfig) -> dict:
    """Peak allocation while sampling the city's aggregate counter matrix."""
    topology = build_topology(config.topology_kind, config.rows, config.cols)
    scenario = build_scenario(
        config.scenario, topology.num_cells, config.horizon_us, topology=topology
    )
    aggregation = AggregationConfig(
        users_per_cell=config.users_per_cell,
        symbol_period_us=config.symbol_period_us,
        window_us=config.window_us,
    )
    tracemalloc.start()
    try:
        counts = cell_window_counts(scenario, aggregation, rng=config.base_seed)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "num_cells": topology.num_cells,
        "simulated_users": config.simulated_users,
        "num_windows": int(counts.shape[0]),
        "counter_bytes": int(counts.nbytes),
        "peak_alloc_bytes": int(peak),
    }


def run_network_gates(smoke: bool = False) -> dict:
    """Memory gate, placement comparison and 2-worker serial-equality."""
    config = _study_config(smoke)
    memory = _measure_counter_memory(config)

    serial = run_network_study(config)
    sharded = run_network_study(config, workers=2)

    rows = {row.placement: row for row in serial.rows}
    static_miss = rows["static"].miss_rate
    reactive_miss = rows["reactive"].miss_rate
    ratio = reactive_miss / static_miss if static_miss else float("inf")
    return {
        **memory,
        "scenario": config.scenario,
        "static_miss": static_miss,
        "static_peak_miss": rows["static"].peak_cell_miss_rate,
        "reactive_miss": reactive_miss,
        "oracle_miss": rows["oracle"].miss_rate,
        "miss_ratio": ratio,
        "capacity_moved": rows["reactive"].capacity_moved,
        "hotspot_raises": rows["reactive"].hotspot_raises,
        "false_positive_raises": rows["reactive"].false_positive_raises,
        "detection_latency_windows": rows["reactive"].detection_latency_windows,
        "sharded_identical": sharded.rows == serial.rows,
    }


def format_report(result: dict) -> str:
    """Render the gate outcomes as an aligned text report."""
    lines = [
        "Network layer - city-scale placement, reactive vs static equal split",
        f"{result['num_cells']} cells, {result['simulated_users']:,} simulated "
        f"users, scenario {result['scenario']!r}, "
        f"{result['num_windows']} KPI windows",
        f"{'counter matrix (KiB)':>28}  {result['counter_bytes'] / 1024:.1f}",
        f"{'peak alloc (MiB)':>28}  "
        f"{result['peak_alloc_bytes'] / (1024 * 1024):.2f} "
        f"(budget {MEMORY_BUDGET_BYTES / (1024 * 1024):.0f})",
        f"{'static miss rate':>28}  {result['static_miss']:.4f} "
        f"(peak cell {result['static_peak_miss']:.4f})",
        f"{'reactive miss rate':>28}  {result['reactive_miss']:.4f}",
        f"{'oracle miss rate':>28}  {result['oracle_miss']:.4f}",
        f"{'capacity moved':>28}  {result['capacity_moved']:.1f}",
        f"{'hotspot raises':>28}  {result['hotspot_raises']} "
        f"({result['false_positive_raises']} false, latency "
        f"{result['detection_latency_windows']} windows)",
        f"{'2-worker rows identical':>28}  {result['sharded_identical']}",
        f"miss ratio {result['miss_ratio']:.3f} (required <= {GATE_RATIO:.2f}; "
        f"static peak-cell floor {MIN_STATIC_PEAK_MISS:.2f})",
    ]
    return "\n".join(lines)


def _gate_failures(result: dict) -> list:
    failures = []
    if result["num_cells"] < MIN_CELLS or result["simulated_users"] < MIN_USERS:
        failures.append(
            f"study covers {result['num_cells']} cells / "
            f"{result['simulated_users']:,} users "
            f"(< {MIN_CELLS} cells / {MIN_USERS:,} users city-scale floor)"
        )
    if result["peak_alloc_bytes"] > MEMORY_BUDGET_BYTES:
        failures.append(
            f"counter generation peaked at {result['peak_alloc_bytes']:,} bytes "
            f"(> {MEMORY_BUDGET_BYTES:,} budget); the aggregate path is "
            "materialising the population"
        )
    if result["static_peak_miss"] < MIN_STATIC_PEAK_MISS:
        failures.append(
            f"static equal split's worst cell missed only "
            f"{result['static_peak_miss']:.4f} (< {MIN_STATIC_PEAK_MISS}); "
            "the flash crowd did not stress it"
        )
    if result["miss_ratio"] > GATE_RATIO:
        failures.append(
            f"reactive/static miss ratio {result['miss_ratio']:.3f} exceeds "
            f"the {GATE_RATIO:.2f} acceptance bar"
        )
    if not result["sharded_identical"]:
        failures.append("2-worker sharded rows differ from the serial run")
    return failures


def test_network_placement_gates(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_network_gates, smoke=True)
    report_writer("network", format_report(result), data=result)
    assert not _gate_failures(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="100-cell / 1M-user city for CI; every gate is still enforced",
    )
    arguments = parser.parse_args(argv)
    result = run_network_gates(smoke=arguments.smoke)
    from _emit import emit_report

    name = "network_smoke" if arguments.smoke else "network"
    emit_report(
        pathlib.Path(__file__).parent / "output", name, format_report(result), result
    )
    failures = _gate_failures(result)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
