"""Benchmark E-F8: reproduce paper Figure 8 (p* and TTS vs s_p).

Regenerates, for a typical 8-user 16-QAM instance, the success probability and
TTS(99%) of FA, FR (oracle c_p), RA initialised from Greedy Search, RA from
the exact ground state, and RA from an intermediate-quality candidate, across
the switch/pause location grid, and checks the paper's qualitative findings:

* RA(GS) succeeds over an interior band of s_p and collapses at both extremes;
* RA initialised with the ground state stays successful at high s_p (the red
  dashed reference line);
* the best RA TTS beats the best FA TTS.
"""

import numpy as np
from conftest import run_once

from repro.experiments import Figure8Config, format_figure8_table, run_figure8


def _best(rows, method):
    candidates = [row for row in rows if row.method == method]
    return max(candidates, key=lambda row: row.success_probability)


def test_figure8_tts_sweep(benchmark, report_writer):
    config = Figure8Config(num_reads=500)
    rows = run_once(benchmark, run_figure8, config)
    report_writer("figure8_tts_sweep", format_figure8_table(rows), data=rows)

    ra_rows = sorted(
        (row for row in rows if row.method == "RA-greedy"), key=lambda row: row.switch_s
    )
    fa_rows = [row for row in rows if row.method == "FA"]
    ground_rows = [row for row in rows if row.method == "RA-ground"]

    # RA(GS) succeeds somewhere on the grid...
    ra_best = _best(rows, "RA-greedy")
    assert ra_best.success_probability > 0.0
    # ...but not at the highest switch points (fluctuations too weak to repair
    # the greedy candidate), reproducing the interior-window shape.
    assert ra_rows[-1].success_probability <= ra_best.success_probability * 0.5 + 1e-9

    # The ground-state-initialised reference stays successful at high s_p.
    high_ground = max(ground_rows, key=lambda row: row.switch_s)
    assert high_ground.success_probability > 0.5

    # Headline ordering: the hybrid's best TTS beats forward annealing's best.
    fa_best_tts = min(row.tts_us for row in fa_rows)
    assert np.isfinite(ra_best.tts_us)
    assert ra_best.tts_us < fa_best_tts
