"""Benchmark E-F2: quantify the pipelined hybrid architecture (paper Figure 2).

Figure 2 sketches staged classical/quantum processing of successive channel
uses.  The benchmark runs the same channel-use stream through the pipeline
simulator in pipelined and serialised form and checks that pipelining never
hurts and strictly helps throughput once the stream is long enough to keep
both stages busy.
"""

from conftest import run_once

from repro.experiments import PipelineStudyConfig, format_pipeline_table, run_pipeline_study


def test_pipeline_throughput(benchmark, report_writer):
    config = PipelineStudyConfig(
        num_users=3,
        modulation="16-QAM",
        num_channel_uses=16,
        symbol_period_us=35.7,
        num_reads=30,
        evaluate_solutions=True,
    )
    result = run_once(benchmark, run_pipeline_study, config)
    report_writer("pipeline_throughput", format_pipeline_table(result), data=result)

    # Pipelining can only help: throughput at least as high, latency no worse.
    assert result.throughput_gain >= 1.0 - 1e-9
    assert result.latency_ratio <= 1.0 + 1e-9
    # Both stages actually carry load in the pipelined run.
    assert result.pipelined.classical_utilization > 0.0
    assert result.pipelined.quantum_utilization > 0.0
    # Per-channel-use detection quality is tracked (noiseless ground truth).
    assert result.pipelined.optimum_rate is not None
