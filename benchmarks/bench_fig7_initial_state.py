"""Benchmark E-F7: reproduce paper Figure 7 (RA vs initial-state quality).

Regenerates the success-probability and expected-cost curves of reverse
annealing as a function of the initial state's ΔE_IS% (binned in 2% steps) for
an 8-user 16-QAM instance, and checks the paper's finding that both metrics
degrade as the initial state gets worse.
"""

import numpy as np
from conftest import run_once

from repro.experiments import Figure7Config, format_figure7_table, run_figure7


def test_figure7_initial_state_quality(benchmark, report_writer):
    config = Figure7Config(num_reads=500, candidates_per_bin=3)
    rows = run_once(benchmark, run_figure7, config)
    report_writer("figure7_initial_state", format_figure7_table(rows), data=rows)

    assert len(rows) >= 3, "enough dE_IS% bins must be populated to see the trend"

    # Paper shape: success probability is best for the best initial states and
    # degrades as dE_IS% grows (allowing for sampling noise we compare the
    # first bin against the last and require an overall downward trend).
    first, last = rows[0], rows[-1]
    assert first.success_probability >= last.success_probability
    correlation = np.corrcoef(
        [row.mean_initial_quality for row in rows],
        [row.success_probability for row in rows],
    )[0, 1]
    assert correlation < 0.3, "success probability should not improve with worse initial states"

    # The expected sample cost moves the other way: worse initial states give
    # worse expected Delta-E% after reverse annealing.
    assert last.expectation_delta_e >= first.expectation_delta_e - 0.25
