"""Benchmark E-TL: telemetry must be near-zero-cost when disabled.

The telemetry subsystem's overhead contract (see ``docs/telemetry.md``):

* **Kernel path** — a true instrumented-vs-uninstrumented A/B: the public
  ``sa_sweeps`` dispatcher (which carries the telemetry guard) against a
  direct call of the underlying ``sa_sweeps_vectorized`` implementation
  (no guard at all, i.e. the pre-telemetry code path).  With telemetry
  disabled the dispatcher must be within **3%** of the raw kernel.
* **Serving path** — the simulator's instrumentation is emitted *after* the
  event loop from the completed outcome list, so the disabled-mode loop is
  the pre-telemetry loop by construction (one ``telemetry.active()`` lookup
  per run plus a per-autoscale-tick ``None`` check).  The A/B here is two
  interleaved sets of identical disabled runs — an A/A measurement whose
  ratio gates the *measurement noise* at the same 3%, making a genuine
  regression (someone moving work onto the hot loop) stand out.
* The **enabled-mode** cost of both paths is measured and reported (not
  gated): recording is allowed to cost something, being off is not.

Timings interleave the two sides and take the min of each so a transient
load spike on a shared runner cannot skew the ratio.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_telemetry.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -q
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import telemetry
from repro.annealing import kernels
from repro.utils.rng import spawn_rngs

from bench_serving import _jobs, _pooled_simulator

#: Maximum disabled-mode overhead ratio on each gated path.
OVERHEAD_GATE = 1.03

KERNEL_REPEATS = 7
SERVING_REPEATS = 7


# --------------------------------------------------------------------- #
# Kernel path
# --------------------------------------------------------------------- #


def _kernel_state(reads):
    rng = np.random.default_rng(3)
    n = 32
    fields = rng.normal(size=(1, n))
    upper = np.triu(rng.normal(size=(n, n)), 1)
    symmetric = (upper + upper.T)[None]
    mask = np.ones((1, n), dtype=bool)
    sizes = np.array([n])
    fractions = np.linspace(0.0, 1.0, 48)
    settings = [
        (float(s), float((1.0 - s) ** 3), 0.05 + float((1.0 - s) ** 3), 1.0)
        for s in fractions
    ]
    children = spawn_rngs(7, 1)
    spins = np.ascontiguousarray(children[0].choice([-1.0, 1.0], size=(reads, n)).T)[None]
    local = kernels.initial_local_fields(fields, symmetric, spins)
    return spins, local, symmetric, mask, sizes, children, settings


def _time_kernel(runner, reads):
    args = _kernel_state(reads)
    start = time.perf_counter()
    runner(*args)
    return time.perf_counter() - start


def measure_kernel_overhead(reads=2000):
    """Dispatcher (guarded) vs raw implementation, plus the enabled cost."""
    telemetry.disable()
    dispatcher = lambda *args: kernels.sa_sweeps(*args, implementation="vectorized")  # noqa: E731
    raw = kernels.sa_sweeps_vectorized
    _time_kernel(raw, min(reads, 200))  # warm caches
    guarded_times, raw_times = [], []
    for _ in range(KERNEL_REPEATS):
        guarded_times.append(_time_kernel(dispatcher, reads))
        raw_times.append(_time_kernel(raw, reads))
    with telemetry.session():
        enabled_time = min(_time_kernel(dispatcher, reads) for _ in range(3))
    guarded, baseline = min(guarded_times), min(raw_times)
    return {
        "reads": reads,
        "raw_seconds": baseline,
        "disabled_seconds": guarded,
        "enabled_seconds": enabled_time,
        "disabled_ratio": guarded / baseline,
        "enabled_ratio": enabled_time / baseline,
    }


# --------------------------------------------------------------------- #
# Serving path
# --------------------------------------------------------------------- #


def _time_serving(jobs_per_user):
    jobs = _jobs(4.0, jobs_per_user)
    simulator = _pooled_simulator()
    start = time.perf_counter()
    simulator.run(jobs)
    return time.perf_counter() - start


def measure_serving_overhead(jobs_per_user=400):
    """Interleaved A/A of disabled runs, plus the enabled-mode cost."""
    telemetry.disable()
    # The simulator keeps getting faster for several runs (allocator and
    # cache warm-up), so burn a few full-size runs before timing.
    for _ in range(3):
        _time_serving(jobs_per_user)
    a_times, b_times = [], []
    for repeat in range(SERVING_REPEATS):
        # Alternate which side runs first so allocator/cache drift within an
        # iteration cannot systematically favour one side of the A/A.
        sides = (a_times, b_times) if repeat % 2 == 0 else (b_times, a_times)
        for side in sides:
            side.append(_time_serving(jobs_per_user))
    with telemetry.session():
        enabled_time = min(_time_serving(jobs_per_user) for _ in range(3))
    side_a, side_b = min(a_times), min(b_times)
    baseline = min(side_a, side_b)
    return {
        "jobs_per_user": jobs_per_user,
        "disabled_seconds": baseline,
        "disabled_ratio": max(side_a, side_b) / baseline,
        "enabled_seconds": enabled_time,
        "enabled_ratio": enabled_time / baseline,
    }


def measure_overhead(reads=2000, jobs_per_user=400):
    return {
        "gate": OVERHEAD_GATE,
        "kernel": measure_kernel_overhead(reads),
        "serving": measure_serving_overhead(jobs_per_user),
    }


def format_overhead(result):
    kernel, serving = result["kernel"], result["serving"]
    lines = [
        "Telemetry overhead - disabled mode must be free, enabled mode is reported",
        f"{'path':>8}  {'baseline (s)':>12}  {'disabled ratio':>14}  "
        f"{'enabled ratio':>13}  gate <= {result['gate']:.2f}",
        f"{'kernel':>8}  {kernel['raw_seconds']:>12.4f}  {kernel['disabled_ratio']:>14.3f}  "
        f"{kernel['enabled_ratio']:>13.3f}",
        f"{'serving':>8}  {serving['disabled_seconds']:>12.4f}  "
        f"{serving['disabled_ratio']:>14.3f}  {serving['enabled_ratio']:>13.3f}",
    ]
    return "\n".join(lines)


def _check(result):
    kernel_ratio = result["kernel"]["disabled_ratio"]
    serving_ratio = result["serving"]["disabled_ratio"]
    assert kernel_ratio <= OVERHEAD_GATE, (
        f"disabled-telemetry SA dispatcher is {kernel_ratio:.3f}x the raw kernel "
        f"(gate {OVERHEAD_GATE:.2f}x)"
    )
    assert serving_ratio <= OVERHEAD_GATE, (
        f"disabled-telemetry serving A/A ratio {serving_ratio:.3f}x exceeds the "
        f"noise gate {OVERHEAD_GATE:.2f}x"
    )


def test_telemetry_overhead(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, measure_overhead)
    report_writer("telemetry_overhead", format_overhead(result), data=result)
    _check(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced problem sizes for CI; the 3% gates are still enforced",
    )
    arguments = parser.parse_args(argv)
    result = (
        measure_overhead(reads=800, jobs_per_user=400)
        if arguments.smoke
        else measure_overhead()
    )
    print(format_overhead(result))
    _check(result)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, "src")
    sys.exit(main())
