"""Benchmark: batched multi-instance engine vs the sequential loop.

The paper's Figure 2 architecture only keeps up with large-MIMO traffic if
many channel uses are in flight concurrently.  This benchmark measures the
enabling primitive: solving B independent QUBO instances through one
vectorised ``run_batch`` call instead of B sequential ``run`` calls, on the
schedule-driven annealing backend.

The headline configuration is 32 instances of 16 variables (4-user 16-QAM
detection problems) with 64 reverse-annealing reads each.  Because the
batched kernel consumes per-instance child generators in the same order the
sequential loop does, the two paths return bitwise-identical spins — the
speedup is pure execution efficiency, not a different computation.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_batch_engine.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch_engine.py -q
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.annealing.device import DeviceModel
from repro.annealing.sa_backend import ScheduleDrivenAnnealingBackend
from repro.annealing.schedule import reverse_anneal_schedule
from repro.experiments.instances import synthesize_instances
from repro.qubo.ising import qubo_to_ising
from repro.utils.rng import spawn_rngs

#: Headline configuration: 32 x 16-variable instances (4-user 16-QAM).
BATCH_SIZE = 32
NUM_USERS = 4
MODULATION = "16-QAM"
NUM_READS = 64
SWITCH_S = 0.41
SEED = 7


def _prepare_problems(batch_size: int, num_users: int, modulation: str):
    """Normalised fields/couplings and initial spins for a batch of instances."""
    device = DeviceModel()
    bundles = synthesize_instances(batch_size, num_users, modulation, base_seed=SEED)
    fields, couplings, initial_spins = [], [], []
    for bundle in bundles:
        ising = qubo_to_ising(bundle.encoding.qubo)
        scale = device.normalisation_scale(ising)
        fields.append(ising.fields / scale)
        couplings.append(ising.couplings / scale)
        initial_spins.append(2 * bundle.ground_state.astype(np.int8) - 1)
    return fields, couplings, initial_spins


def run_comparison(
    batch_size: int = BATCH_SIZE,
    num_users: int = NUM_USERS,
    modulation: str = MODULATION,
    num_reads: int = NUM_READS,
) -> dict:
    """Time the sequential loop vs the batched kernel on identical work.

    Returns a dictionary with both wall times, the throughput speedup, and
    whether the two paths produced bitwise-identical spins.
    """
    backend = ScheduleDrivenAnnealingBackend()
    device = DeviceModel()
    schedule = reverse_anneal_schedule(SWITCH_S, pause_duration_us=1.0)
    fields, couplings, initial_spins = _prepare_problems(batch_size, num_users, modulation)
    common = dict(
        schedule=schedule,
        num_reads=num_reads,
        annealing_functions=device.annealing,
        relative_temperature=device.relative_temperature,
    )

    start = time.perf_counter()
    sequential = [
        backend.run(
            fields=fields[index],
            couplings=couplings[index],
            initial_spins=initial_spins[index],
            rng=child,
            **common,
        )
        for index, child in enumerate(spawn_rngs(SEED, batch_size))
    ]
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = backend.run_batch(
        fields=fields,
        couplings=couplings,
        initial_spins=initial_spins,
        rng=SEED,
        **common,
    )
    batched_s = time.perf_counter() - start

    identical = all(np.array_equal(a, b) for a, b in zip(sequential, batched))
    return {
        "batch_size": batch_size,
        "num_variables": int(fields[0].size),
        "num_reads": num_reads,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s,
        "bitwise_identical": identical,
    }


def format_report(result: dict) -> str:
    """Render the comparison as an aligned text report."""
    lines = [
        "Batched multi-instance engine - schedule-driven backend",
        f"{result['batch_size']} instances x {result['num_variables']} variables "
        f"x {result['num_reads']} reads (reverse anneal, s_p = {SWITCH_S})",
        f"{'sequential loop':>18}: {result['sequential_s'] * 1e3:9.1f} ms",
        f"{'batched kernel':>18}: {result['batched_s'] * 1e3:9.1f} ms",
        f"{'throughput gain':>18}: {result['speedup']:9.2f}x",
        f"{'bitwise identical':>18}: {result['bitwise_identical']}",
    ]
    return "\n".join(lines)


def test_batch_engine_throughput(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_comparison)
    report_writer("batch_engine", format_report(result), data=result)
    # The batched kernel must be a faithful reimplementation...
    assert result["bitwise_identical"]
    # ...and the acceptance bar: at least 3x throughput at batch size 32.
    assert result["speedup"] >= 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced configuration for CI: checks correctness and prints "
        "timings without enforcing the speedup bar",
    )
    arguments = parser.parse_args(argv)
    if arguments.smoke:
        result = run_comparison(batch_size=8, num_reads=16)
    else:
        result = run_comparison()
    print(format_report(result))
    if not result["bitwise_identical"]:
        print("FAIL: batched kernel diverged from the sequential loop", file=sys.stderr)
        return 1
    if not arguments.smoke and result["speedup"] < 3.0:
        print("FAIL: batched speedup below the 3x acceptance bar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
