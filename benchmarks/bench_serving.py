"""Benchmark E-SV: serving capacity of the batched backend pool.

The acceptance bar for the serving subsystem: the pooled architecture
(K batched annealer workers with deadline-aware scheduling and compatible-job
coalescing) must sustain at least **2x the offered load** of the
single-server serialized baseline at an equal deadline-miss-rate target.

"Sustained load" is measured by sweeping a grid of offered-load factors over
an identical multi-user workload (same seeds, arrival times rescaled) and
taking the highest factor whose deadline-miss rate stays at or below the
target (5%).  The timing model is deterministic, so the sweep is exactly
reproducible.

Run standalone (CI smoke uses ``--smoke``)::

    python benchmarks/bench_serving.py [--smoke]

or through the pytest-benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q
"""

from __future__ import annotations

import argparse
import sys

from repro.serving.backends import AnnealerServingBackend
from repro.serving.pool import BackendPool
from repro.serving.simulator import RANServingSimulator
from repro.serving.workload import generate_serving_jobs, uniform_cell_profiles
from repro.wireless.mimo import MIMOConfig

#: Offered-load grid (multiples of the nominal per-user rate).
LOAD_GRID = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
#: Deadline-miss-rate target defining "sustained".
MISS_TARGET = 0.05
#: Acceptance bar: pooled sustained load over serialized sustained load.
REQUIRED_GAIN = 2.0

NUM_CELLS = 2
USERS_PER_CELL = 3
NUM_USERS = 2
MODULATIONS = (MIMOConfig(NUM_USERS, "QPSK"), MIMOConfig(NUM_USERS, "16-QAM"))
BASE_SYMBOL_PERIOD_US = 900.0
TURNAROUND_BUDGET_US = 600.0
NUM_READS = 50
POOL_WORKERS = 4
LANES = 8
SEED = 11


def _jobs(load_factor: float, jobs_per_user: int):
    profiles = uniform_cell_profiles(
        num_cells=NUM_CELLS,
        users_per_cell=USERS_PER_CELL,
        configs=MODULATIONS,
        symbol_period_us=BASE_SYMBOL_PERIOD_US / load_factor,
        arrival_process="poisson",
        turnaround_budget_us=TURNAROUND_BUDGET_US,
    )
    return generate_serving_jobs(profiles, jobs_per_user, rng=SEED)


def _serialized_simulator() -> RANServingSimulator:
    """One annealer worker, one job at a time: the single-server baseline."""
    backend = AnnealerServingBackend(num_reads=NUM_READS, lanes=1)
    return RANServingSimulator(
        pool=BackendPool([backend]),
        policy="fifo",
        max_batch_size=1,
        admission_control=False,
    )


def _pooled_simulator() -> RANServingSimulator:
    """K batched annealer workers with EDF scheduling and coalescing."""
    backend = AnnealerServingBackend(num_reads=NUM_READS, lanes=LANES)
    return RANServingSimulator(
        pool=BackendPool([backend] * POOL_WORKERS),
        policy="edf",
        max_batch_size=LANES,
        admission_control=False,
    )


def run_capacity_sweep(jobs_per_user: int = 100) -> dict:
    """Sweep the load grid over both architectures and locate sustained loads."""
    rows = []
    for load in LOAD_GRID:
        jobs = _jobs(load, jobs_per_user)
        serialized = _serialized_simulator().run(jobs)
        pooled = _pooled_simulator().run(jobs)
        rows.append(
            {
                "load": load,
                "offered_jobs_per_ms": pooled.offered_load_jobs_per_ms,
                "serialized_miss": serialized.deadline_miss_rate or 0.0,
                "pooled_miss": pooled.deadline_miss_rate or 0.0,
                "pooled_mean_batch": pooled.mean_batch_size,
                "pooled_p95_us": pooled.p95_latency_us,
            }
        )

    def sustained(key: str) -> float:
        # Largest load such that every load up to it meets the target: a pass
        # above a failing load does not count (the grid is independently
        # generated per load, so miss rate is not guaranteed monotone).
        best = 0.0
        for row in rows:
            if row[key] > MISS_TARGET + 1e-9:
                break
            best = row["load"]
        return best

    serialized_sustained = sustained("serialized_miss")
    pooled_sustained = sustained("pooled_miss")
    gain = pooled_sustained / serialized_sustained if serialized_sustained else float("inf")
    return {
        "rows": rows,
        "jobs_per_user": jobs_per_user,
        "serialized_sustained": serialized_sustained,
        "pooled_sustained": pooled_sustained,
        "gain": gain,
    }


def format_report(result: dict) -> str:
    """Render the capacity sweep as an aligned text report."""
    lines = [
        "Serving capacity - batched backend pool vs single-server serialized baseline",
        f"{NUM_CELLS * USERS_PER_CELL} users x {result['jobs_per_user']} jobs, "
        f"budget {TURNAROUND_BUDGET_US:.0f} us, {NUM_READS} reads; pool = "
        f"{POOL_WORKERS} workers x {LANES} lanes, EDF + coalescing; "
        f"miss target {MISS_TARGET:.0%}",
        f"{'load':>6}  {'jobs/ms':>8}  {'miss(serialized)':>16}  {'miss(pooled)':>12}  "
        f"{'mean B':>6}  {'p95(pool) us':>12}",
    ]
    for row in result["rows"]:
        lines.append(
            f"{row['load']:>6.1f}  {row['offered_jobs_per_ms']:>8.2f}  "
            f"{row['serialized_miss']:>16.3f}  {row['pooled_miss']:>12.3f}  "
            f"{row['pooled_mean_batch']:>6.2f}  {row['pooled_p95_us']:>12.1f}"
        )
    lines.append(
        f"sustained load: serialized {result['serialized_sustained']:.1f}x, "
        f"pooled {result['pooled_sustained']:.1f}x -> capacity gain "
        f"{result['gain']:.1f}x (required >= {REQUIRED_GAIN:.1f}x)"
    )
    return "\n".join(lines)


def test_serving_capacity(benchmark, report_writer):
    from conftest import run_once

    result = run_once(benchmark, run_capacity_sweep)
    report_writer("serving", format_report(result), data=result)
    assert result["serialized_sustained"] > 0.0
    assert result["gain"] >= REQUIRED_GAIN


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced trace length for CI; the 2x capacity bar is still enforced",
    )
    arguments = parser.parse_args(argv)
    result = run_capacity_sweep(jobs_per_user=30 if arguments.smoke else 100)
    print(format_report(result))
    if result["serialized_sustained"] <= 0.0:
        print("FAIL: serialized baseline sustained no load point", file=sys.stderr)
        return 1
    if result["gain"] < REQUIRED_GAIN:
        print(
            f"FAIL: pooled capacity gain {result['gain']:.2f}x below the "
            f"{REQUIRED_GAIN:.1f}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
