"""Benchmark E-AB1: classical-initialiser ablation (paper Sec. 5 next steps).

The paper proposes replacing Greedy Search with application-specific classical
solvers (linear detectors, tree-search sphere decoders) to feed reverse
annealing better initial states.  The benchmark measures, for one instance,
the initial-state quality ΔE_IS% and the hybrid's success probability for each
initialiser the library ships.
"""

from conftest import run_once

from repro.experiments import (
    InitializerAblationConfig,
    format_initializer_table,
    run_initializer_ablation,
)


def test_initializer_ablation(benchmark, report_writer):
    config = InitializerAblationConfig(num_reads=400)
    rows = run_once(benchmark, run_initializer_ablation, config)
    report_writer("initializer_ablation", format_initializer_table(rows), data=rows)

    by_name = {row.initializer: row for row in rows}
    assert set(by_name) == set(config.initializers)

    # Initial-state qualities are valid percentages and the sphere decoders /
    # linear detectors are at least as good as greedy on this noiseless
    # instance (the paper's stated motivation for richer initialisers).
    greedy = by_name["greedy"]
    assert greedy.initial_quality_percent >= -1e-9
    better_candidates = [by_name["zero-forcing"], by_name["mmse"], by_name["k-best"]]
    assert any(
        row.initial_quality_percent <= greedy.initial_quality_percent + 1e-6
        for row in better_candidates
    )

    # Every hybrid run reports a sane probability and a best energy that is
    # never worse than its own classical initial state.
    for row in rows:
        assert 0.0 <= row.success_probability <= 1.0
