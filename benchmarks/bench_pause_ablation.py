"""Benchmark E-X2 (extension): the power of pausing.

The paper fixes a 1 us pause for every schedule, citing the pausing
literature.  This ablation verifies on the simulator that the choice is
justified: adding a pause never hurts the success probability materially, and
the 1 us pause the paper uses improves reverse annealing over the no-pause
schedule.
"""

from conftest import run_once

from repro.experiments import PauseAblationConfig, format_pause_table, run_pause_ablation


def test_pause_ablation(benchmark, report_writer):
    config = PauseAblationConfig(num_reads=500)
    rows = run_once(benchmark, run_pause_ablation, config)
    report_writer("pause_ablation", format_pause_table(rows), data=rows)

    ra_rows = {row.pause_duration_us: row for row in rows if row.method == "RA-greedy"}
    fa_rows = {row.pause_duration_us: row for row in rows if row.method == "FA"}

    assert 0.0 in ra_rows and 1.0 in ra_rows

    # The paper's 1 us pause helps reverse annealing relative to no pause.
    assert ra_rows[1.0].success_probability >= ra_rows[0.0].success_probability
    # Longer pauses never reduce FA's success probability by more than noise.
    assert fa_rows[max(fa_rows)].success_probability >= fa_rows[0.0].success_probability - 0.05
    # Pause duration is correctly reflected in the schedule duration.
    assert ra_rows[1.0].duration_us - ra_rows[0.0].duration_us == 1.0
