"""Processing backends of the RAN serving plant.

The paper's hybrid plant mixes *quantum* processing units (reverse-annealing
hardware fed through the batched engine) with *classical* processing units
(software solvers that are slower per unit of solution quality but always
available and deadline-predictable).  Each backend exposes two faces to the
serving simulator:

* a **timing model** — :meth:`ServingBackend.service_time_us` maps a batch of
  jobs to the wall-clock the backend occupies a worker for, used by the
  discrete-event scheduler; and
* a **solution path** — :meth:`ServingBackend.solve` actually computes
  detection solutions through the batched kernels, consuming one child
  generator per job so results never depend on how the scheduler happened to
  group jobs into batches.

The annealer backend models multi-instance tiling: the device processes up to
``lanes`` same-shape instances side by side per anneal shot sequence, which is
where batching buys throughput (the batched `run_batch` kernels are the
software counterpart).  The classical backend is a sequential software solver
whose service time is linear in the submitted problem volume.

Layering note: this module composes samplers and classical solvers directly
and must **not** import :mod:`repro.hybrid` — the hybrid pipeline simulator
imports :mod:`repro.serving.events`, so a serving→hybrid import would create
a cycle.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.annealing.sampler import QuantumAnnealerSimulator
from repro.annealing.schedule import reverse_anneal_schedule
from repro.classical.base import QuboSolver
from repro.classical.greedy import GreedySearchSolver
from repro.classical.simulated_annealing import SimulatedAnnealingSolver
from repro.exceptions import ConfigurationError
from repro.transform.mimo_to_qubo import is_optimum, mimo_to_qubo
from repro.serving.workload import ServingJob

__all__ = [
    "JobSolution",
    "ServingBackend",
    "AnnealerServingBackend",
    "ClassicalServingBackend",
]


@dataclass(frozen=True)
class JobSolution:
    """Detection outcome of one job when solutions are evaluated.

    ``detected_optimum`` is only available for noiseless transmissions,
    where the transmitted vector is the exact ML solution (the paper's
    evaluation protocol).
    """

    job_id: int
    best_energy: float
    detected_optimum: Optional[bool]


def _solution(job: ServingJob, encoding, best_energy: float) -> JobSolution:
    ground = encoding.noiseless_ground_energy(job.channel_use.transmission)
    return JobSolution(
        job_id=job.job_id,
        best_energy=float(best_energy),
        detected_optimum=is_optimum(best_energy, ground),
    )


class ServingBackend(abc.ABC):
    """One processing unit type the backend pool can instantiate workers of."""

    #: Human-readable backend name used in reports.
    name: str = "serving-backend"

    #: ``"annealer"`` or ``"classical"`` — drives scheduling/demotion policy.
    kind: str = "annealer"

    @abc.abstractmethod
    def service_time_us(self, jobs: Sequence[ServingJob]) -> float:
        """Modelled wall-clock the backend needs to process ``jobs`` as one batch."""

    @abc.abstractmethod
    def solve(
        self, jobs: Sequence[ServingJob], children: Sequence[np.random.Generator]
    ) -> List[JobSolution]:
        """Compute detection solutions for ``jobs`` (child ``b`` serves job ``b``)."""


class AnnealerServingBackend(ServingBackend):
    """A reverse-annealing QPU worker fed through the batched engine.

    Parameters
    ----------
    sampler:
        Annealer simulator executing the reads (shared between workers is
        fine: all randomness flows through per-job child generators).
    initializer:
        Classical initialiser that seeds each reverse anneal (the paper's
        Greedy Search by default).
    switch_s / pause_duration_us / num_reads:
        Reverse-annealing programme.
    lanes:
        Multi-instance tiling capacity: how many same-shape instances the
        device processes side by side per shot sequence.  A batch of ``B``
        jobs costs ``ceil(B / lanes)`` shot sequences.
    programming_overhead_us:
        Per-submission programming/IO overhead, charged once per batch.
    include_qpu_overheads:
        When true, per-read readout and inter-sample delays from the device
        model are added to the shot time (realistic access accounting).
    init_time_per_variable_us:
        Modelled classical initialisation cost per QUBO variable, charged per
        job (kept decoupled from wall-clock measurements so the timing model
        is deterministic).
    """

    kind = "annealer"

    def __init__(
        self,
        sampler: Optional[QuantumAnnealerSimulator] = None,
        initializer: Optional[QuboSolver] = None,
        switch_s: float = 0.41,
        pause_duration_us: float = 1.0,
        num_reads: int = 50,
        lanes: int = 8,
        programming_overhead_us: float = 5.0,
        include_qpu_overheads: bool = False,
        init_time_per_variable_us: float = 0.01,
        name: str = "annealer",
    ) -> None:
        if not 0.0 < switch_s < 1.0:
            raise ConfigurationError(f"switch_s must lie strictly inside (0, 1), got {switch_s}")
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        if lanes <= 0:
            raise ConfigurationError(f"lanes must be positive, got {lanes}")
        if programming_overhead_us < 0:
            raise ConfigurationError(
                f"programming_overhead_us must be non-negative, got {programming_overhead_us}"
            )
        if init_time_per_variable_us < 0:
            raise ConfigurationError(
                f"init_time_per_variable_us must be non-negative, got {init_time_per_variable_us}"
            )
        self.sampler = sampler if sampler is not None else QuantumAnnealerSimulator()
        self.initializer = initializer if initializer is not None else GreedySearchSolver()
        self.schedule = reverse_anneal_schedule(switch_s, pause_duration_us)
        self.switch_s = float(switch_s)
        self.num_reads = int(num_reads)
        self.lanes = int(lanes)
        self.programming_overhead_us = float(programming_overhead_us)
        self.include_qpu_overheads = bool(include_qpu_overheads)
        self.init_time_per_variable_us = float(init_time_per_variable_us)
        self.name = name

    @property
    def shot_time_us(self) -> float:
        """Wall-clock of one full read sequence (all ``num_reads`` anneals)."""
        per_read = self.schedule.duration_us
        if self.include_qpu_overheads:
            device = self.sampler.device
            per_read += device.readout_time_us + device.inter_sample_delay_us
        return per_read * self.num_reads

    def service_time_us(self, jobs: Sequence[ServingJob]) -> float:
        """Batch service time: programming + init + tiled shot sequences."""
        if not jobs:
            return 0.0
        init_us = self.init_time_per_variable_us * sum(job.num_variables for job in jobs)
        sequences = math.ceil(len(jobs) / self.lanes)
        return self.programming_overhead_us + init_us + sequences * self.shot_time_us

    def solve(
        self, jobs: Sequence[ServingJob], children: Sequence[np.random.Generator]
    ) -> List[JobSolution]:
        """Initialise and reverse-anneal the batch through the batched kernels."""
        encodings = [mimo_to_qubo(job.channel_use.transmission.instance) for job in jobs]
        qubos = [encoding.qubo for encoding in encodings]
        initials = self.initializer.solve_batch(qubos, list(children))
        samplesets = self.sampler.sample_qubo_batch(
            qubos,
            self.schedule,
            num_reads=self.num_reads,
            initial_states=[initial.assignment for initial in initials],
            rng=list(children),
        )
        solutions = []
        for job, encoding, initial, sampleset in zip(jobs, encodings, initials, samplesets):
            best_energy = initial.energy
            if len(sampleset):
                best_energy = min(best_energy, sampleset.lowest_energy())
            solutions.append(_solution(job, encoding, best_energy))
        return solutions


class ClassicalServingBackend(ServingBackend):
    """A classical-fallback worker running a software QUBO solver.

    Deadline-pressured jobs are demoted here by admission control: the solver
    is fast and predictable but offers no quantum refinement.  Service time
    is sequential and linear in submitted problem volume.
    """

    kind = "classical"

    def __init__(
        self,
        solver: Optional[QuboSolver] = None,
        time_per_variable_us: float = 0.2,
        name: str = "classical",
    ) -> None:
        if time_per_variable_us <= 0:
            raise ConfigurationError(
                f"time_per_variable_us must be positive, got {time_per_variable_us}"
            )
        self.solver = solver if solver is not None else SimulatedAnnealingSolver(num_sweeps=60)
        self.time_per_variable_us = float(time_per_variable_us)
        self.name = name

    def service_time_us(self, jobs: Sequence[ServingJob]) -> float:
        """Sequential software solve: cost accumulates across the batch."""
        return self.time_per_variable_us * sum(job.num_variables for job in jobs)

    def solve(
        self, jobs: Sequence[ServingJob], children: Sequence[np.random.Generator]
    ) -> List[JobSolution]:
        """Solve the batch with the wrapped software solver."""
        encodings = [mimo_to_qubo(job.channel_use.transmission.instance) for job in jobs]
        qubos = [encoding.qubo for encoding in encodings]
        results = self.solver.solve_batch(qubos, list(children))
        return [
            _solution(job, encoding, result.energy)
            for job, encoding, result in zip(jobs, encodings, results)
        ]
