"""Multi-user, multi-cell RAN detection workloads.

The paper's Figure-2 vision is a *centralised* RAN: detection jobs from many
users in many cells stream into one hybrid classical/quantum processing
plant.  This module turns that picture into data the serving simulator can
consume — each user is described by a :class:`UserProfile` (cell, link
configuration or heterogeneous mix, traffic intensity, turnaround budget),
per-user :class:`~repro.wireless.traffic.TrafficGenerator` streams are drawn
from independent child generators, and the streams are merged into one
arrival-ordered sequence of :class:`ServingJob` objects.

Cell-level load skew (traffic hotspots) is expressed through per-cell load
factors: a factor of 2 halves the symbol period of every user in that cell.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.network.topology import NetworkTopology
from repro.serving.scenarios import NetworkScenario
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.wireless.fading import ChannelImpairments
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import ChannelUse, TrafficGenerator

__all__ = [
    "UserProfile",
    "ServingJob",
    "uniform_cell_profiles",
    "generate_serving_jobs",
]


@dataclass(frozen=True)
class UserProfile:
    """Traffic description of one user equipment attached to a cell.

    Attributes
    ----------
    user_id / cell_id:
        Identity of the user and the cell it is attached to.
    config:
        The user's MIMO link configuration, or a sequence of configurations
        forming a heterogeneous job mix (see
        :class:`~repro.wireless.traffic.TrafficGenerator`).
    symbol_period_us:
        Mean spacing between the user's channel uses.
    arrival_process:
        ``"deterministic"`` or ``"poisson"`` (bursty uplink).
    turnaround_budget_us:
        Relative deadline of each of the user's jobs, or ``None``.
    job_mix:
        Mix sampling mode forwarded to the traffic generator.
    phase_offset_us:
        Start offset of the user's stream.  Every traffic stream begins at
        relative time 0, so without offsets all users emit their first job
        simultaneously — a synchronized burst no real cell exhibits.
        :func:`uniform_cell_profiles` staggers users across one symbol
        period by default.
    """

    user_id: int
    cell_id: int
    config: Union[MIMOConfig, Tuple[MIMOConfig, ...]]
    symbol_period_us: float = 71.4
    arrival_process: str = "poisson"
    turnaround_budget_us: Optional[float] = 500.0
    job_mix: str = "cyclic"
    phase_offset_us: float = 0.0

    def traffic_generator(
        self,
        impairments: Optional[ChannelImpairments] = None,
        interference_scale: Optional[Callable[[float], float]] = None,
    ) -> TrafficGenerator:
        """Build the traffic generator realising this profile.

        ``impairments`` and ``interference_scale`` forward the channel
        impairment engine into the user's stream (see
        :class:`~repro.wireless.traffic.TrafficGenerator`); the serving
        layer derives the scale from neighbouring cells' load.
        """
        return TrafficGenerator(
            self.config,
            symbol_period_us=self.symbol_period_us,
            arrival_process=self.arrival_process,
            turnaround_budget_us=self.turnaround_budget_us,
            job_mix=self.job_mix,
            impairments=impairments,
            interference_scale=interference_scale,
        )


@dataclass(frozen=True)
class ServingJob:
    """One detection job as seen by the serving layer.

    Wraps a :class:`~repro.wireless.traffic.ChannelUse` with its origin
    (user, cell) and a globally arrival-ordered ``job_id``.
    """

    job_id: int
    user_id: int
    cell_id: int
    channel_use: ChannelUse

    @property
    def arrival_us(self) -> float:
        """Arrival time at the central processing plant."""
        return self.channel_use.arrival_time_us

    @property
    def deadline_us(self) -> Optional[float]:
        """Absolute deadline, or ``None`` for best-effort jobs."""
        return self.channel_use.deadline_us

    @property
    def has_deadline(self) -> bool:
        """Whether the job carries a deadline."""
        return self.channel_use.has_deadline

    @property
    def num_variables(self) -> int:
        """QUBO size of the detection problem."""
        return self.channel_use.qubo_variable_count

    @property
    def modulation(self) -> str:
        """Modulation of the underlying channel use."""
        return self.channel_use.modulation

    @property
    def compat_key(self) -> Tuple[int, str]:
        """Batching compatibility key: jobs may share a batch only if equal.

        An annealer submission programs one problem shape, so a batch must
        not mix QUBO sizes (or modulations, whose decode paths differ).
        """
        return (self.num_variables, self.modulation)


def uniform_cell_profiles(
    num_cells: int,
    users_per_cell: int,
    configs: Sequence[MIMOConfig],
    symbol_period_us: float = 71.4,
    arrival_process: str = "poisson",
    turnaround_budget_us: Optional[float] = 500.0,
    cell_load_factors: Optional[Sequence[float]] = None,
    job_mix: str = "cyclic",
    stagger_phases: bool = True,
    topology: Optional[NetworkTopology] = None,
) -> List[UserProfile]:
    """Lay out ``num_cells * users_per_cell`` users, cycling link configs.

    ``configs`` is cycled across users so a multi-entry sequence produces a
    heterogeneous user population (e.g. alternating QPSK and 16-QAM users).
    ``cell_load_factors`` scales each cell's traffic intensity — factor ``f``
    divides the symbol period of that cell's users by ``f``, modelling
    spatially skewed hotspot load.

    With ``stagger_phases`` (default) each cell's users are offset evenly
    across one (cell-scaled) symbol period, so the plant sees a steady
    multi-user stream rather than an artificial synchronized burst at t=0.

    ``topology`` (optional) pins the layout the users live on; it only
    validates the cell count here — pass the same topology to
    :func:`generate_serving_jobs` to make interference coupling follow its
    neighbour graph.
    """
    if num_cells <= 0:
        raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
    if topology is not None and topology.num_cells != num_cells:
        raise ConfigurationError(
            f"topology has {topology.num_cells} cells, profiles were asked for "
            f"{num_cells}"
        )
    if users_per_cell <= 0:
        raise ConfigurationError(f"users_per_cell must be positive, got {users_per_cell}")
    if not configs:
        raise ConfigurationError("configs must not be empty")
    factors = (
        tuple(cell_load_factors) if cell_load_factors is not None else (1.0,) * num_cells
    )
    if len(factors) != num_cells:
        raise ConfigurationError(
            f"{len(factors)} cell_load_factors supplied for {num_cells} cells"
        )
    for factor in factors:
        if factor <= 0:
            raise ConfigurationError(f"cell load factors must be positive, got {factor}")

    profiles: List[UserProfile] = []
    user_id = 0
    for cell_id in range(num_cells):
        cell_period = symbol_period_us / factors[cell_id]
        for position in range(users_per_cell):
            profiles.append(
                UserProfile(
                    user_id=user_id,
                    cell_id=cell_id,
                    config=configs[user_id % len(configs)],
                    symbol_period_us=cell_period,
                    arrival_process=arrival_process,
                    turnaround_budget_us=turnaround_budget_us,
                    job_mix=job_mix,
                    phase_offset_us=(
                        cell_period * position / users_per_cell if stagger_phases else 0.0
                    ),
                )
            )
            user_id += 1
    return profiles


def _interference_scale_for(
    profile: UserProfile,
    scenario: Optional[NetworkScenario],
    cell_load_factors: Optional[Tuple[float, ...]],
    topology: Optional[NetworkTopology] = None,
) -> Optional[Callable[[float], float]]:
    """The interference multiplier a user's stream sees from *other* cells.

    Both branches apply the one coupling rule,
    :meth:`~repro.wireless.fading.ChannelImpairments.neighbour_load_scale`:
    under a scenario to the timeline's intensity field at each arrival
    instant (a flash crowd next door degrades this cell's SINR while it
    lasts), under static ``cell_load_factors`` to the constant factors.  A
    single-cell layout has no interferers, so the scale is 0.

    With a topology (the scenario's, or the explicit one for static
    factors), only the user's cell-graph neighbours couple — and the
    intensity field is evaluated for those neighbours alone, keeping the
    per-arrival cost O(degree) instead of O(num_cells) at city scale.
    """
    own_cell = profile.cell_id
    if scenario is not None:
        if scenario.topology is not None:
            neighbours = scenario.topology.neighbors(own_cell)
            # Compact layout (own cell at slot 0, neighbours after it) so the
            # intensity field is only evaluated at the O(degree) neighbours.
            slots = tuple(range(1, len(neighbours) + 1))
            return lambda t_us: ChannelImpairments.neighbour_load_scale(
                0,
                [0.0] + [scenario.intensity(cell, t_us) for cell in neighbours],
                neighbours=slots,
            )
        cells = range(scenario.num_cells)
        return lambda t_us: ChannelImpairments.neighbour_load_scale(
            own_cell, [scenario.intensity(cell, t_us) for cell in cells]
        )
    if cell_load_factors is not None:
        neighbours = topology.neighbors(own_cell) if topology is not None else None
        constant = ChannelImpairments.neighbour_load_scale(
            own_cell, cell_load_factors, neighbours=neighbours
        )
        return lambda t_us: constant
    return None


def generate_serving_jobs(
    profiles: Sequence[UserProfile],
    jobs_per_user: int,
    rng: RandomState = None,
    scenario: Optional[NetworkScenario] = None,
    impairments: Optional[ChannelImpairments] = None,
    cell_load_factors: Optional[Sequence[float]] = None,
    topology: Optional[NetworkTopology] = None,
) -> List[ServingJob]:
    """Draw every user's stream and merge into one arrival-ordered job list.

    Each profile consumes its own child generator (spawned in profile order
    from the root seed), so the merged workload is reproducible and adding a
    user never perturbs the other users' streams.  Ties in arrival time are
    broken by ``(user_id, per-user index)`` for determinism.

    With a :class:`~repro.serving.scenarios.NetworkScenario`, each user's
    stream becomes a piecewise-inhomogeneous Poisson process over the
    scenario horizon: the scenario's per-cell intensity multiplier modulates
    the user's nominal rate (via
    :meth:`~repro.wireless.traffic.TrafficGenerator.stream_modulated`
    thinning on the same per-user child generators, so fixed seeds still
    yield bitwise-identical workloads).  ``jobs_per_user`` then acts as a
    per-user ceiling — the realised count varies with the scenario's demand
    — and the user's ``phase_offset_us`` staggers the start of its thinning
    clock without shifting the scenario timeline.

    ``impairments`` routes every user's channel realisations through the
    impairment engine (:mod:`repro.wireless.fading`).  Its nominal
    ``interference_power`` is scaled per user by the load of the *other*
    cells: time-varying under a scenario (the same intensity field that
    drives arrivals also degrades SINR, so a flash crowd hurts its
    neighbours' radio quality as well as the queue), constant under
    ``cell_load_factors`` (pass the same factors given to
    :func:`uniform_cell_profiles`).  ``cell_load_factors`` is only
    meaningful with ``impairments`` and is mutually exclusive with
    ``scenario`` (whose timeline already carries the per-cell load).

    ``topology`` restricts static-factor interference coupling to the
    layout's neighbour graph (under a scenario, attach the topology to the
    scenario itself — see :func:`~repro.serving.scenarios.build_scenario`).
    Omitting every topology keeps the legacy fully coupled behaviour
    bitwise.
    """
    if not profiles:
        raise ConfigurationError("profiles must not be empty")
    if topology is not None:
        if scenario is not None:
            raise ConfigurationError(
                "pass the topology on the scenario (build_scenario(..., "
                "topology=...)), not alongside it"
            )
        highest_profile_cell = max(profile.cell_id for profile in profiles)
        if highest_profile_cell >= topology.num_cells:
            raise ConfigurationError(
                f"user cell {highest_profile_cell} outside the topology's "
                f"{topology.num_cells}-cell layout"
            )
    if cell_load_factors is not None:
        if scenario is not None:
            raise ConfigurationError(
                "cell_load_factors and scenario are mutually exclusive; the "
                "scenario timeline already defines per-cell load"
            )
        if impairments is None:
            raise ConfigurationError(
                "cell_load_factors only scales impairment interference; supply "
                "impairments as well"
            )
        factors = tuple(float(factor) for factor in cell_load_factors)
        for factor in factors:
            if factor < 0:
                raise ConfigurationError(
                    f"cell_load_factors must be non-negative, got {factor}"
                )
        highest_cell = max(profile.cell_id for profile in profiles)
        if highest_cell >= len(factors):
            raise ConfigurationError(
                f"user cell {highest_cell} outside the {len(factors)}-cell "
                "cell_load_factors layout"
            )
    else:
        factors = None
    if jobs_per_user <= 0:
        raise ConfigurationError(f"jobs_per_user must be positive, got {jobs_per_user}")
    seen_ids = set()
    for profile in profiles:
        if profile.user_id in seen_ids:
            raise ConfigurationError(f"duplicate user_id {profile.user_id} in profiles")
        seen_ids.add(profile.user_id)

    for profile in profiles:
        if profile.phase_offset_us < 0:
            raise ConfigurationError(
                f"phase_offset_us must be non-negative, got {profile.phase_offset_us}"
            )
        if scenario is not None and not 0 <= profile.cell_id < scenario.num_cells:
            raise ConfigurationError(
                f"user {profile.user_id} sits in cell {profile.cell_id}, outside "
                f"scenario {scenario.name!r}'s {scenario.num_cells}-cell grid"
            )

    root = ensure_rng(rng)
    children = spawn_rngs(root, len(profiles))
    tagged: List[Tuple[float, int, int, int, ChannelUse]] = []
    for profile, child in zip(profiles, children):
        scale = (
            _interference_scale_for(profile, scenario, factors, topology)
            if impairments is not None
            else None
        )
        generator = profile.traffic_generator(
            impairments=impairments, interference_scale=scale
        )
        if scenario is not None:
            cell_id = profile.cell_id
            stream = generator.stream_modulated(
                horizon_us=scenario.duration_us,
                intensity=lambda t_us, cell=cell_id: scenario.intensity(cell, t_us),
                peak_intensity=scenario.peak_intensity(),
                rng=child,
                max_count=jobs_per_user,
                start_us=profile.phase_offset_us,
            )
            for use in stream:
                tagged.append(
                    (use.arrival_time_us, profile.user_id, use.index, profile.cell_id, use)
                )
            continue
        for use in generator.stream(jobs_per_user, child):
            if profile.phase_offset_us:
                use = dataclasses.replace(
                    use,
                    arrival_time_us=use.arrival_time_us + profile.phase_offset_us,
                    deadline_us=(
                        use.deadline_us + profile.phase_offset_us
                        if use.deadline_us is not None
                        else None
                    ),
                )
            tagged.append((use.arrival_time_us, profile.user_id, use.index, profile.cell_id, use))

    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        ServingJob(job_id=job_id, user_id=user_id, cell_id=cell_id, channel_use=use)
        for job_id, (_, user_id, _, cell_id, use) in enumerate(tagged)
    ]
