"""Multi-user, multi-cell RAN detection workloads.

The paper's Figure-2 vision is a *centralised* RAN: detection jobs from many
users in many cells stream into one hybrid classical/quantum processing
plant.  This module turns that picture into data the serving simulator can
consume — each user is described by a :class:`UserProfile` (cell, link
configuration or heterogeneous mix, traffic intensity, turnaround budget),
per-user :class:`~repro.wireless.traffic.TrafficGenerator` streams are drawn
from independent child generators, and the streams are merged into one
arrival-ordered sequence of :class:`ServingJob` objects.

Cell-level load skew (traffic hotspots) is expressed through per-cell load
factors: a factor of 2 halves the symbol period of every user in that cell.

Two QoS extensions ride on top (both default off, reproducing the legacy
workloads bitwise):

* **service classes** — profiles may carry a
  :class:`~repro.serving.qos.ServiceClass` whose per-class turnaround budget
  overrides the profile's generic one and which travels on every
  :class:`ServingJob` into scheduling, admission and reporting;
* **inter-cell handover** — a :class:`HandoverModel` re-homes each user's
  jobs along a per-user Poisson timeline of cell-boundary crossings
  (velocity-coupled via :func:`repro.wireless.fading.handover_rate_per_us`,
  targets drawn from the topology's neighbour graph).  Handover draws come
  from dedicated per-user child seeds, so sweeping the velocity never
  perturbs the traffic streams.
"""

from __future__ import annotations

import bisect
import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.network.topology import NetworkTopology
from repro.serving.qos import DEFAULT_CLASS, ServiceClass, resolve_service_class
from repro.serving.scenarios import NetworkScenario
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs, stable_seed
from repro.wireless.fading import ChannelImpairments, handover_rate_per_us
from repro.wireless.mimo import MIMOConfig
from repro.wireless.traffic import ChannelUse, TrafficGenerator

__all__ = [
    "UserProfile",
    "ServingJob",
    "HandoverModel",
    "uniform_cell_profiles",
    "generate_serving_jobs",
]


@dataclass(frozen=True)
class UserProfile:
    """Traffic description of one user equipment attached to a cell.

    Attributes
    ----------
    user_id / cell_id:
        Identity of the user and the cell it is attached to.
    config:
        The user's MIMO link configuration, or a sequence of configurations
        forming a heterogeneous job mix (see
        :class:`~repro.wireless.traffic.TrafficGenerator`).
    symbol_period_us:
        Mean spacing between the user's channel uses.
    arrival_process:
        ``"deterministic"`` or ``"poisson"`` (bursty uplink).
    turnaround_budget_us:
        Relative deadline of each of the user's jobs, or ``None``.
    job_mix:
        Mix sampling mode forwarded to the traffic generator.
    phase_offset_us:
        Start offset of the user's stream.  Every traffic stream begins at
        relative time 0, so without offsets all users emit their first job
        simultaneously — a synchronized burst no real cell exhibits.
        :func:`uniform_cell_profiles` staggers users across one symbol
        period by default.
    service_class:
        The user's QoS class, or ``None`` for the legacy single-class
        behaviour (:data:`~repro.serving.qos.DEFAULT_CLASS`).  A class with
        its own ``turnaround_budget_us`` overrides the profile's generic
        budget for every job the user emits.
    """

    user_id: int
    cell_id: int
    config: Union[MIMOConfig, Tuple[MIMOConfig, ...]]
    symbol_period_us: float = 71.4
    arrival_process: str = "poisson"
    turnaround_budget_us: Optional[float] = 500.0
    job_mix: str = "cyclic"
    phase_offset_us: float = 0.0
    service_class: Optional[ServiceClass] = None

    @property
    def resolved_service_class(self) -> ServiceClass:
        """The profile's class, defaulting to the legacy single class."""
        return self.service_class if self.service_class is not None else DEFAULT_CLASS

    @property
    def effective_budget_us(self) -> Optional[float]:
        """The turnaround budget the user's jobs actually carry.

        A service class with its own budget wins; a class without one
        (``DEFAULT_CLASS``) defers to the profile's generic budget, which is
        what keeps pre-QoS call sites bitwise-identical.
        """
        class_budget = self.resolved_service_class.turnaround_budget_us
        return class_budget if class_budget is not None else self.turnaround_budget_us

    def traffic_generator(
        self,
        impairments: Optional[ChannelImpairments] = None,
        interference_scale: Optional[Callable[[float], float]] = None,
    ) -> TrafficGenerator:
        """Build the traffic generator realising this profile.

        ``impairments`` and ``interference_scale`` forward the channel
        impairment engine into the user's stream (see
        :class:`~repro.wireless.traffic.TrafficGenerator`); the serving
        layer derives the scale from neighbouring cells' load.
        """
        return TrafficGenerator(
            self.config,
            symbol_period_us=self.symbol_period_us,
            arrival_process=self.arrival_process,
            turnaround_budget_us=self.effective_budget_us,
            job_mix=self.job_mix,
            impairments=impairments,
            interference_scale=interference_scale,
        )


@dataclass(frozen=True)
class ServingJob:
    """One detection job as seen by the serving layer.

    Wraps a :class:`~repro.wireless.traffic.ChannelUse` with its origin
    (user, cell), a globally arrival-ordered ``job_id``, the user's QoS
    class and — when handover is modelled — the cell the user started in
    (``cell_id`` is then the cell serving the job *at arrival time*).
    """

    job_id: int
    user_id: int
    cell_id: int
    channel_use: ChannelUse
    service_class: ServiceClass = DEFAULT_CLASS
    home_cell_id: Optional[int] = None

    @property
    def arrival_us(self) -> float:
        """Arrival time at the central processing plant."""
        return self.channel_use.arrival_time_us

    @property
    def deadline_us(self) -> Optional[float]:
        """Absolute deadline, or ``None`` for best-effort jobs."""
        return self.channel_use.deadline_us

    @property
    def has_deadline(self) -> bool:
        """Whether the job carries a deadline."""
        return self.channel_use.has_deadline

    @property
    def num_variables(self) -> int:
        """QUBO size of the detection problem."""
        return self.channel_use.qubo_variable_count

    @property
    def modulation(self) -> str:
        """Modulation of the underlying channel use."""
        return self.channel_use.modulation

    @property
    def handed_over(self) -> bool:
        """Whether the job arrives in a different cell than the user's home."""
        return self.home_cell_id is not None and self.cell_id != self.home_cell_id

    @property
    def shape_key(self) -> Tuple[int, str]:
        """Physical batching key: QUBO size and modulation only.

        An annealer submission programs one problem shape, so a batch must
        not mix QUBO sizes (or modulations, whose decode paths differ).
        This is the pre-QoS ``compat_key``; class-blind schedulers
        (``class_aware=False``) still batch on it.
        """
        return (self.num_variables, self.modulation)

    @property
    def compat_key(self) -> Tuple[int, str, int]:
        """Batching compatibility key: jobs may share a batch only if equal.

        Extends :attr:`shape_key` with the service class's
        :attr:`~repro.serving.qos.ServiceClass.degradation_tier`, so
        protected jobs never co-batch with degradable ones — a batch is
        demoted or shed as a unit, and a protected URLLC job must not be
        dragged onto the classical path by its batch-mates.  Classes on the
        *same* tier (eMBB and best-effort) still coalesce freely.
        """
        return (self.num_variables, self.modulation, self.service_class.degradation_tier)


@dataclass(frozen=True)
class HandoverModel:
    """User mobility for inter-cell handover.

    The crossing rate couples to user velocity through the same fluid-flow
    model the fading layer uses
    (:func:`~repro.wireless.fading.handover_rate_per_us`): fast users both
    fade harder and hand over more.  Each user's crossing timeline is drawn
    from a dedicated child seed (``stable_seed("handover", seed, user_id)``)
    — *not* from the traffic root — so sweeping the velocity never shifts
    the traffic draws, and ``velocity_mps=0`` reproduces the no-handover
    workload bitwise.

    Attributes
    ----------
    velocity_mps:
        User speed; 0 disables handover entirely.
    cell_radius_m:
        Equivalent circular cell radius of the fluid-flow model.
    seed:
        Root of the per-user handover seed tree, independent of the
        workload seed.
    """

    velocity_mps: float
    cell_radius_m: float = 250.0
    seed: int = 0

    def __post_init__(self) -> None:
        # Delegates range validation (velocity >= 0, radius > 0) so the
        # model and the fading layer can never disagree on what is legal.
        handover_rate_per_us(self.velocity_mps, self.cell_radius_m)

    @property
    def rate_per_us(self) -> float:
        """Mean cell-boundary crossings per microsecond."""
        return handover_rate_per_us(self.velocity_mps, self.cell_radius_m)


def _handover_timeline(
    profile: UserProfile,
    handover: HandoverModel,
    topology: NetworkTopology,
    horizon_us: float,
) -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
    """One user's cell-crossing timeline: event times and post-event cells.

    A Poisson process at the model's crossing rate over ``[0, horizon_us]``;
    each crossing walks to a uniformly drawn neighbour of the current cell.
    All draws come from the user's dedicated handover child generator.
    """
    rate = handover.rate_per_us
    if rate <= 0.0 or horizon_us <= 0.0:
        return (), ()
    child = ensure_rng(stable_seed("handover", handover.seed, profile.user_id))
    times: List[float] = []
    cells: List[int] = []
    current = profile.cell_id
    elapsed = 0.0
    while True:
        elapsed += float(child.exponential(1.0 / rate))
        if elapsed > horizon_us:
            break
        current = topology.random_neighbor(current, child)
        times.append(elapsed)
        cells.append(current)
    return tuple(times), tuple(cells)


def _cell_at(
    arrival_us: float,
    home_cell_id: int,
    times: Tuple[float, ...],
    cells: Tuple[int, ...],
) -> int:
    """The cell serving a user at ``arrival_us`` given its crossing timeline."""
    index = bisect.bisect_right(times, arrival_us) - 1
    return cells[index] if index >= 0 else home_cell_id


def uniform_cell_profiles(
    num_cells: int,
    users_per_cell: int,
    configs: Sequence[MIMOConfig],
    symbol_period_us: float = 71.4,
    arrival_process: str = "poisson",
    turnaround_budget_us: Optional[float] = 500.0,
    cell_load_factors: Optional[Sequence[float]] = None,
    job_mix: str = "cyclic",
    stagger_phases: bool = True,
    topology: Optional[NetworkTopology] = None,
    service_classes: Optional[Sequence[Union[str, ServiceClass]]] = None,
) -> List[UserProfile]:
    """Lay out ``num_cells * users_per_cell`` users, cycling link configs.

    ``configs`` is cycled across users so a multi-entry sequence produces a
    heterogeneous user population (e.g. alternating QPSK and 16-QAM users).
    ``cell_load_factors`` scales each cell's traffic intensity — factor ``f``
    divides the symbol period of that cell's users by ``f``, modelling
    spatially skewed hotspot load.

    With ``stagger_phases`` (default) each cell's users are offset evenly
    across one (cell-scaled) symbol period, so the plant sees a steady
    multi-user stream rather than an artificial synchronized burst at t=0.

    ``topology`` (optional) pins the layout the users live on; it only
    validates the cell count here — pass the same topology to
    :func:`generate_serving_jobs` to make interference coupling follow its
    neighbour graph.

    ``service_classes`` (names or :class:`~repro.serving.qos.ServiceClass`
    instances) is cycled across each cell's users by their in-cell
    position, so every cell carries the full class mix.  Omitting it keeps
    the legacy single-class profiles.
    """
    if num_cells <= 0:
        raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
    if topology is not None and topology.num_cells != num_cells:
        raise ConfigurationError(
            f"topology has {topology.num_cells} cells, profiles were asked for "
            f"{num_cells}"
        )
    if users_per_cell <= 0:
        raise ConfigurationError(f"users_per_cell must be positive, got {users_per_cell}")
    if not configs:
        raise ConfigurationError("configs must not be empty")
    factors = (
        tuple(cell_load_factors) if cell_load_factors is not None else (1.0,) * num_cells
    )
    if len(factors) != num_cells:
        raise ConfigurationError(
            f"{len(factors)} cell_load_factors supplied for {num_cells} cells"
        )
    for factor in factors:
        if factor <= 0:
            raise ConfigurationError(f"cell load factors must be positive, got {factor}")
    if service_classes is not None and not service_classes:
        raise ConfigurationError("service_classes must not be empty when supplied")
    resolved_classes = (
        tuple(resolve_service_class(entry) for entry in service_classes)
        if service_classes is not None
        else None
    )

    profiles: List[UserProfile] = []
    user_id = 0
    for cell_id in range(num_cells):
        cell_period = symbol_period_us / factors[cell_id]
        for position in range(users_per_cell):
            profiles.append(
                UserProfile(
                    user_id=user_id,
                    cell_id=cell_id,
                    config=configs[user_id % len(configs)],
                    symbol_period_us=cell_period,
                    arrival_process=arrival_process,
                    turnaround_budget_us=turnaround_budget_us,
                    job_mix=job_mix,
                    phase_offset_us=(
                        cell_period * position / users_per_cell if stagger_phases else 0.0
                    ),
                    service_class=(
                        resolved_classes[position % len(resolved_classes)]
                        if resolved_classes is not None
                        else None
                    ),
                )
            )
            user_id += 1
    return profiles


def _interference_scale_for(
    profile: UserProfile,
    scenario: Optional[NetworkScenario],
    cell_load_factors: Optional[Tuple[float, ...]],
    topology: Optional[NetworkTopology] = None,
) -> Optional[Callable[[float], float]]:
    """The interference multiplier a user's stream sees from *other* cells.

    Both branches apply the one coupling rule,
    :meth:`~repro.wireless.fading.ChannelImpairments.neighbour_load_scale`:
    under a scenario to the timeline's intensity field at each arrival
    instant (a flash crowd next door degrades this cell's SINR while it
    lasts), under static ``cell_load_factors`` to the constant factors.  A
    single-cell layout has no interferers, so the scale is 0.

    With a topology (the scenario's, or the explicit one for static
    factors), only the user's cell-graph neighbours couple — and the
    intensity field is evaluated for those neighbours alone, keeping the
    per-arrival cost O(degree) instead of O(num_cells) at city scale.
    """
    own_cell = profile.cell_id
    if scenario is not None:
        if scenario.topology is not None:
            neighbours = scenario.topology.neighbors(own_cell)
            # Compact layout (own cell at slot 0, neighbours after it) so the
            # intensity field is only evaluated at the O(degree) neighbours.
            slots = tuple(range(1, len(neighbours) + 1))
            return lambda t_us: ChannelImpairments.neighbour_load_scale(
                0,
                [0.0] + [scenario.intensity(cell, t_us) for cell in neighbours],
                neighbours=slots,
            )
        cells = range(scenario.num_cells)
        return lambda t_us: ChannelImpairments.neighbour_load_scale(
            own_cell, [scenario.intensity(cell, t_us) for cell in cells]
        )
    if cell_load_factors is not None:
        neighbours = topology.neighbors(own_cell) if topology is not None else None
        constant = ChannelImpairments.neighbour_load_scale(
            own_cell, cell_load_factors, neighbours=neighbours
        )
        return lambda t_us: constant
    return None


def generate_serving_jobs(
    profiles: Sequence[UserProfile],
    jobs_per_user: int,
    rng: RandomState = None,
    scenario: Optional[NetworkScenario] = None,
    impairments: Optional[ChannelImpairments] = None,
    cell_load_factors: Optional[Sequence[float]] = None,
    topology: Optional[NetworkTopology] = None,
    handover: Optional[HandoverModel] = None,
) -> List[ServingJob]:
    """Draw every user's stream and merge into one arrival-ordered job list.

    Each profile consumes its own child generator (spawned in profile order
    from the root seed), so the merged workload is reproducible and adding a
    user never perturbs the other users' streams.  Ties in arrival time are
    broken by ``(user_id, per-user index)`` for determinism.

    With a :class:`~repro.serving.scenarios.NetworkScenario`, each user's
    stream becomes a piecewise-inhomogeneous Poisson process over the
    scenario horizon: the scenario's per-cell intensity multiplier modulates
    the user's nominal rate (via
    :meth:`~repro.wireless.traffic.TrafficGenerator.stream_modulated`
    thinning on the same per-user child generators, so fixed seeds still
    yield bitwise-identical workloads).  ``jobs_per_user`` then acts as a
    per-user ceiling — the realised count varies with the scenario's demand
    — and the user's ``phase_offset_us`` staggers the start of its thinning
    clock without shifting the scenario timeline.

    ``impairments`` routes every user's channel realisations through the
    impairment engine (:mod:`repro.wireless.fading`).  Its nominal
    ``interference_power`` is scaled per user by the load of the *other*
    cells: time-varying under a scenario (the same intensity field that
    drives arrivals also degrades SINR, so a flash crowd hurts its
    neighbours' radio quality as well as the queue), constant under
    ``cell_load_factors`` (pass the same factors given to
    :func:`uniform_cell_profiles`).  ``cell_load_factors`` is only
    meaningful with ``impairments`` and is mutually exclusive with
    ``scenario`` (whose timeline already carries the per-cell load).

    ``topology`` restricts static-factor interference coupling to the
    layout's neighbour graph (under a scenario, attach the topology to the
    scenario itself — see :func:`~repro.serving.scenarios.build_scenario`).
    Omitting every topology keeps the legacy fully coupled behaviour
    bitwise.

    ``handover`` re-homes each user's jobs along its cell-crossing timeline
    (see :class:`HandoverModel`): a job emitted after the user crossed into
    a neighbouring cell carries that cell as ``cell_id`` and the user's
    original cell as ``home_cell_id``.  Handover needs a neighbour graph —
    either the explicit ``topology`` or the scenario's.  Handover draws use
    their own per-user child seeds, so the traffic streams (and therefore
    arrival times, deadlines and channel realisations) are bitwise-identical
    with and without it.
    """
    if not profiles:
        raise ConfigurationError("profiles must not be empty")
    if topology is not None:
        if scenario is not None:
            raise ConfigurationError(
                "pass the topology on the scenario (build_scenario(..., "
                "topology=...)), not alongside it"
            )
        highest_profile_cell = max(profile.cell_id for profile in profiles)
        if highest_profile_cell >= topology.num_cells:
            raise ConfigurationError(
                f"user cell {highest_profile_cell} outside the topology's "
                f"{topology.num_cells}-cell layout"
            )
    if cell_load_factors is not None:
        if scenario is not None:
            raise ConfigurationError(
                "cell_load_factors and scenario are mutually exclusive; the "
                "scenario timeline already defines per-cell load"
            )
        if impairments is None:
            raise ConfigurationError(
                "cell_load_factors only scales impairment interference; supply "
                "impairments as well"
            )
        factors = tuple(float(factor) for factor in cell_load_factors)
        for factor in factors:
            if factor < 0:
                raise ConfigurationError(
                    f"cell_load_factors must be non-negative, got {factor}"
                )
        highest_cell = max(profile.cell_id for profile in profiles)
        if highest_cell >= len(factors):
            raise ConfigurationError(
                f"user cell {highest_cell} outside the {len(factors)}-cell "
                "cell_load_factors layout"
            )
    else:
        factors = None
    if handover is not None:
        handover_topology = scenario.topology if scenario is not None else topology
        if handover_topology is None:
            raise ConfigurationError(
                "handover needs a neighbour graph; pass topology= (or attach "
                "one to the scenario via build_scenario(..., topology=...))"
            )
    else:
        handover_topology = None
    if jobs_per_user <= 0:
        raise ConfigurationError(f"jobs_per_user must be positive, got {jobs_per_user}")
    seen_ids = set()
    for profile in profiles:
        if profile.user_id in seen_ids:
            raise ConfigurationError(f"duplicate user_id {profile.user_id} in profiles")
        seen_ids.add(profile.user_id)

    for profile in profiles:
        if profile.phase_offset_us < 0:
            raise ConfigurationError(
                f"phase_offset_us must be non-negative, got {profile.phase_offset_us}"
            )
        if scenario is not None and not 0 <= profile.cell_id < scenario.num_cells:
            raise ConfigurationError(
                f"user {profile.user_id} sits in cell {profile.cell_id}, outside "
                f"scenario {scenario.name!r}'s {scenario.num_cells}-cell grid"
            )

    root = ensure_rng(rng)
    children = spawn_rngs(root, len(profiles))
    tagged: List[Tuple[float, int, int, int, ChannelUse, ServiceClass, Optional[int]]] = []
    for profile, child in zip(profiles, children):
        scale = (
            _interference_scale_for(profile, scenario, factors, topology)
            if impairments is not None
            else None
        )
        generator = profile.traffic_generator(
            impairments=impairments, interference_scale=scale
        )
        if scenario is not None:
            uses = list(
                generator.stream_modulated(
                    horizon_us=scenario.duration_us,
                    intensity=lambda t_us, cell=profile.cell_id: scenario.intensity(
                        cell, t_us
                    ),
                    peak_intensity=scenario.peak_intensity(),
                    rng=child,
                    max_count=jobs_per_user,
                    start_us=profile.phase_offset_us,
                )
            )
        else:
            uses = []
            for use in generator.stream(jobs_per_user, child):
                if profile.phase_offset_us:
                    use = dataclasses.replace(
                        use,
                        arrival_time_us=use.arrival_time_us + profile.phase_offset_us,
                        deadline_us=(
                            use.deadline_us + profile.phase_offset_us
                            if use.deadline_us is not None
                            else None
                        ),
                    )
                uses.append(use)

        service_class = profile.resolved_service_class
        if handover is not None and uses:
            # Timeline draws come from the user's dedicated handover child,
            # never from `child`, so traffic streams stay untouched.
            horizon_us = (
                scenario.duration_us
                if scenario is not None
                else max(use.arrival_time_us for use in uses)
            )
            times, cells = _handover_timeline(
                profile, handover, handover_topology, horizon_us
            )
            home_cell: Optional[int] = profile.cell_id
        else:
            times, cells = (), ()
            home_cell = profile.cell_id if handover is not None else None
        for use in uses:
            cell_id = _cell_at(use.arrival_time_us, profile.cell_id, times, cells)
            tagged.append(
                (
                    use.arrival_time_us,
                    profile.user_id,
                    use.index,
                    cell_id,
                    use,
                    service_class,
                    home_cell,
                )
            )

    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [
        ServingJob(
            job_id=job_id,
            user_id=user_id,
            cell_id=cell_id,
            channel_use=use,
            service_class=service_class,
            home_cell_id=home_cell,
        )
        for job_id, (_, user_id, _, cell_id, use, service_class, home_cell) in enumerate(
            tagged
        )
    ]
