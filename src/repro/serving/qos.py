"""Multi-service QoS classes for the RAN serving layer.

A production RAN does not serve one homogeneous deadline class: URLLC-like
control traffic demands tight turnaround at any cost, eMBB bulk transfers
tolerate hundreds of microseconds, and best-effort background traffic only
asks not to be dropped.  This module names those classes as first-class
:class:`ServiceClass` objects carried by every
:class:`~repro.serving.workload.UserProfile` and
:class:`~repro.serving.workload.ServingJob`:

* a **priority** (0 = most critical) that prefixes the EDF order, so a
  queued URLLC job always outranks a queued best-effort job regardless of
  their absolute deadlines;
* a **per-class turnaround budget** that overrides the profile's generic
  deadline;
* a **degradation ladder** (``demotable`` / ``sheddable``) that tells
  class-aware admission control what may be sacrificed under pressure —
  protected classes (neither flag) are never moved off the annealers, while
  sheddable classes can be offloaded to the classical fallback purely to
  relieve a *higher* class.

The ladder also partitions batching: jobs only coalesce across classes on
the same :attr:`~ServiceClass.degradation_tier`, so a protected URLLC job is
never trapped in a batch behind degradable bulk work (see
:attr:`~repro.serving.workload.ServingJob.compat_key`).

:data:`DEFAULT_CLASS` reproduces the pre-QoS serving layer bitwise: one
priority level, the profile's own budget, demotable under pressure (the
legacy admission-control behaviour) and never shed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.exceptions import ConfigurationError

__all__ = [
    "ServiceClass",
    "DEFAULT_CLASS",
    "URLLC",
    "EMBB",
    "BEST_EFFORT",
    "SERVICE_CLASSES",
    "resolve_service_class",
]


@dataclass(frozen=True)
class ServiceClass:
    """One QoS class: priority, deadline budget and degradation ladder rung.

    Attributes
    ----------
    name:
        Registry key; also the label in per-class reports.
    priority:
        Scheduling rank, 0 = most critical.  Class-aware EDF serves lower
        numbers strictly first.
    turnaround_budget_us:
        Relative deadline of the class's jobs.  ``None`` defers to the
        :class:`~repro.serving.workload.UserProfile`'s own budget (the
        legacy single-class behaviour).
    demotable:
        Whether a deadline-pressured job of this class may be demoted to a
        classical fallback worker by admission control.
    sheddable:
        Whether queued jobs of this class may be offloaded to the classical
        path *pre-emptively* — even when not themselves pressured — to free
        annealer capacity for a pressured higher class.
    """

    name: str
    priority: int
    turnaround_budget_us: Optional[float] = None
    demotable: bool = True
    sheddable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a service class needs a non-empty name")
        if self.priority < 0:
            raise ConfigurationError(
                f"priority must be non-negative, got {self.priority}"
            )
        if self.turnaround_budget_us is not None and self.turnaround_budget_us <= 0:
            raise ConfigurationError(
                f"turnaround_budget_us must be positive or None, got "
                f"{self.turnaround_budget_us}"
            )
        if self.sheddable and not self.demotable:
            raise ConfigurationError(
                f"service class {self.name!r} is sheddable but not demotable; "
                "shedding is a stronger degradation than demotion"
            )

    @property
    def degradation_tier(self) -> int:
        """Batching boundary: 0 = protected, 1 = degradable.

        Protected jobs (neither demotable nor sheddable) must never share a
        batch with degradable jobs — a batch is dispatched as one unit, so
        co-batching would let admission control drag a protected job onto
        the classical path alongside its degradable batch-mates.
        """
        return 0 if not (self.demotable or self.sheddable) else 1


#: The legacy single-class behaviour: profile budgets, one priority level,
#: demotable under deadline pressure (exactly the pre-QoS admission rule).
DEFAULT_CLASS = ServiceClass(
    name="default", priority=1, turnaround_budget_us=None, demotable=True, sheddable=False
)

#: Tight-deadline control traffic: top priority, never degraded.
URLLC = ServiceClass(
    name="urllc", priority=0, turnaround_budget_us=250.0, demotable=False, sheddable=False
)

#: Bulk video/data: mid priority, demoted to classical when pressured.
EMBB = ServiceClass(
    name="embb", priority=1, turnaround_budget_us=900.0, demotable=True, sheddable=False
)

#: Background traffic: lowest priority, shed pre-emptively under pressure.
BEST_EFFORT = ServiceClass(
    name="best_effort",
    priority=2,
    turnaround_budget_us=2_500.0,
    demotable=True,
    sheddable=True,
)

#: The named catalog :func:`resolve_service_class` accepts.
SERVICE_CLASSES: Dict[str, ServiceClass] = {
    cls.name: cls for cls in (DEFAULT_CLASS, URLLC, EMBB, BEST_EFFORT)
}


def resolve_service_class(
    service_class: Union[str, ServiceClass, None],
) -> ServiceClass:
    """Normalise a class name, instance or ``None`` into a :class:`ServiceClass`.

    ``None`` resolves to :data:`DEFAULT_CLASS`, keeping every pre-QoS call
    site valid; unknown names raise with the catalog listed.
    """
    if service_class is None:
        return DEFAULT_CLASS
    if isinstance(service_class, ServiceClass):
        return service_class
    if isinstance(service_class, str):
        try:
            return SERVICE_CLASSES[service_class]
        except KeyError:
            raise ConfigurationError(
                f"unknown service class {service_class!r}; catalog: "
                + ", ".join(sorted(SERVICE_CLASSES))
            ) from None
    raise ConfigurationError(
        "service_class must be a name, ServiceClass or None, got "
        f"{type(service_class).__name__}"
    )
