"""Discrete-event primitives shared by the serving and pipeline simulators.

Both simulators in this library model processing resources as FIFO servers:
a job that becomes ready at time ``t`` on a server that frees up at time
``f`` starts at ``max(t, f)`` and occupies the server for its service time.
:class:`FifoServer` packages that advance rule (plus busy-time accounting for
utilisation reports) so the Figure-2 pipeline simulator and the RAN serving
simulator share one implementation instead of each re-deriving the
``start = max(arrival, free_at)`` arithmetic.

:class:`EventQueue` is a deterministic time-ordered event heap for
simulations whose control flow is event-driven rather than trace-ordered
(the serving simulator reacts to job arrivals and worker-free events in
timestamp order).  Ties are broken by insertion order, so simulation runs
are exactly reproducible.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["StageTiming", "FifoServer", "EventQueue"]


@dataclass(frozen=True)
class StageTiming:
    """When one processing stage started and finished serving a job."""

    start_us: float
    finish_us: float

    @property
    def service_us(self) -> float:
        """Service duration of the stage."""
        return self.finish_us - self.start_us


class FifoServer:
    """A single work-conserving FIFO server.

    Tracks when the server next becomes free and how much cumulative busy
    time it has accrued; :meth:`serve` applies the canonical discrete-event
    advance rule and returns the resulting :class:`StageTiming`.
    """

    __slots__ = ("free_at_us", "busy_us", "jobs_served")

    def __init__(self) -> None:
        self.free_at_us = 0.0
        self.busy_us = 0.0
        self.jobs_served = 0

    def serve(self, ready_us: float, service_us: float) -> StageTiming:
        """Occupy the server for ``service_us`` starting no earlier than ``ready_us``."""
        if service_us < 0:
            raise ValueError(f"service_us must be non-negative, got {service_us}")
        start = max(ready_us, self.free_at_us)
        finish = start + service_us
        self.free_at_us = finish
        self.busy_us += service_us
        self.jobs_served += 1
        return StageTiming(start_us=start, finish_us=finish)

    def idle_at(self, now_us: float) -> bool:
        """Whether the server is free at (or before) ``now_us``."""
        return self.free_at_us <= now_us + 1e-12

    def utilization(self, makespan_us: float) -> float:
        """Busy time as a fraction of the observation window."""
        return self.busy_us / max(makespan_us, 1e-12)


class EventQueue:
    """A time-ordered event heap with deterministic FIFO tie-breaking.

    Events are arbitrary payloads pushed with a timestamp; :meth:`pop`
    returns them in non-decreasing time order, and events that share a
    timestamp come back in insertion order (the payloads themselves are
    never compared, so they need not be orderable).
    """

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Any]] = []
        self._sequence = 0

    def push(self, time_us: float, payload: Any) -> None:
        """Schedule ``payload`` at ``time_us``.

        ``time_us`` must be finite and non-negative: a NaN timestamp
        compares false against everything and silently corrupts the heap
        invariant (events then pop in arbitrary order), and negative or
        infinite times have no meaning on the simulation clock.
        """
        time_us = float(time_us)
        if not math.isfinite(time_us) or time_us < 0.0:
            raise ConfigurationError(
                f"event timestamps must be finite and non-negative, got {time_us}"
            )
        heapq.heappush(self._heap, (time_us, self._sequence, payload))
        self._sequence += 1

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the earliest ``(time_us, payload)`` pair."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        time_us, _, payload = heapq.heappop(self._heap)
        return time_us, payload

    def peek_time(self) -> float:
        """Timestamp of the earliest scheduled event."""
        if not self._heap:
            raise IndexError("peek into an empty EventQueue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
