"""Deadline-aware scheduling policies and batch coalescing.

The serving simulator is work-conserving: whenever a worker is idle and jobs
are queued, a policy picks the next job and the scheduler *coalesces* it with
other queued jobs that are batch-compatible (identical QUBO size and
modulation — an annealer submission programs one problem shape) up to the
configured batch ceiling.  Under light load batches stay small and latency
is minimal; under heavy load queues build and batch occupancy — the batched
engine's throughput lever — rises automatically.

Two policies are provided:

* **FIFO** — arrival order, the baseline any queueing system starts from;
* **EDF** (earliest deadline first) — classic real-time scheduling, which
  minimises deadline misses when the plant is feasibly loaded.  Jobs without
  deadlines sort last.
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.serving.workload import ServingJob

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "EdfPolicy",
    "resolve_policy",
    "select_batch",
]


class SchedulingPolicy(abc.ABC):
    """Total order over queued jobs; the minimum is served next."""

    #: Policy name used in reports and the CLI.
    name: str = "policy"

    @abc.abstractmethod
    def key(self, job: ServingJob) -> Tuple:
        """Sort key; the job with the smallest key is scheduled first."""


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out: serve in arrival order."""

    name = "fifo"

    def key(self, job: ServingJob) -> Tuple:
        return (job.arrival_us, job.job_id)


class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first; deadline-free jobs are served last."""

    name = "edf"

    def key(self, job: ServingJob) -> Tuple:
        # Deadline-free jobs sort last; a non-finite deadline (NaN would
        # poison tuple comparison and make the order depend on input
        # permutation) is treated the same way.  Equal-deadline jobs fall
        # back to arrival order and then the unique job_id, mirroring
        # FifoPolicy, so the policy is a total order: select_batch output
        # is invariant under any permutation of the queue.
        deadline = job.deadline_us
        if deadline is None or not math.isfinite(deadline):
            deadline = float("inf")
        return (deadline, job.arrival_us, job.job_id)


_POLICIES = {"fifo": FifoPolicy, "edf": EdfPolicy}


def resolve_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Normalise a policy name or instance into a :class:`SchedulingPolicy`."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICIES[policy.lower()]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scheduling policy {policy!r}; use one of {sorted(_POLICIES)}"
            ) from None
    raise ConfigurationError(
        f"policy must be a name or SchedulingPolicy, got {type(policy).__name__}"
    )


def select_batch(
    queue: List[ServingJob],
    policy: SchedulingPolicy,
    max_batch_size: Optional[int],
    candidates: Optional[Sequence[ServingJob]] = None,
) -> List[ServingJob]:
    """Pop the policy's next job plus compatible companions from ``queue``.

    The head job is the policy minimum over ``candidates`` (defaults to the
    whole queue — admission control passes a restricted candidate set); the
    rest of the batch is filled with queued candidate jobs sharing the head's
    :attr:`~repro.serving.workload.ServingJob.compat_key`, taken in policy
    order, never exceeding ``max_batch_size`` (``None`` = unbounded).
    Selected jobs are removed from ``queue``; the batch is returned.
    """
    pool = list(queue) if candidates is None else list(candidates)
    if not pool:
        return []
    head = min(pool, key=policy.key)
    compatible = sorted(
        (job for job in pool if job.compat_key == head.compat_key), key=policy.key
    )
    limit = len(compatible) if max_batch_size is None else max_batch_size
    batch = compatible[:limit]
    selected = {job.job_id for job in batch}
    queue[:] = [job for job in queue if job.job_id not in selected]
    return batch
