"""Deadline-aware scheduling policies and batch coalescing.

The serving simulator is work-conserving: whenever a worker is idle and jobs
are queued, a policy picks the next job and the scheduler *coalesces* it with
other queued jobs that are batch-compatible (identical QUBO size and
modulation — an annealer submission programs one problem shape) up to the
configured batch ceiling.  Under light load batches stay small and latency
is minimal; under heavy load queues build and batch occupancy — the batched
engine's throughput lever — rises automatically.

Two policies are provided:

* **FIFO** — arrival order, the baseline any queueing system starts from;
* **EDF** (earliest deadline first) — classic real-time scheduling, which
  minimises deadline misses when the plant is feasibly loaded.  Jobs without
  deadlines sort last.

EDF is **class-aware** by default: the job's
:class:`~repro.serving.qos.ServiceClass` priority prefixes the deadline, so
a queued URLLC job always outranks bulk traffic, and coalescing uses the
class-extended ``compat_key`` (protected classes never co-batch with
degradable ones — see ``docs/qos.md``).  Pass ``class_aware=False`` (or use
the simulator's flag) for the legacy class-blind order and shape-only
batching; with single-default-class workloads the two modes are
bitwise-identical, since every priority is equal and every tier matches.
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.serving.qos import DEFAULT_CLASS
from repro.serving.workload import ServingJob

__all__ = [
    "SchedulingPolicy",
    "FifoPolicy",
    "EdfPolicy",
    "resolve_policy",
    "select_batch",
]


class SchedulingPolicy(abc.ABC):
    """Total order over queued jobs; the minimum is served next."""

    #: Policy name used in reports and the CLI.
    name: str = "policy"

    @abc.abstractmethod
    def key(self, job: ServingJob) -> Tuple:
        """Sort key; the job with the smallest key is scheduled first."""


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out: serve in arrival order."""

    name = "fifo"

    def key(self, job: ServingJob) -> Tuple:
        return (job.arrival_us, job.job_id)


class EdfPolicy(SchedulingPolicy):
    """Earliest-deadline-first; deadline-free jobs are served last.

    With ``class_aware`` (the default) the service-class priority prefixes
    the deadline, so a lower-priority job is never served before a queued
    higher class regardless of absolute deadlines.  Single-class workloads
    have one priority everywhere, making the prefix a constant — the order
    (and therefore every downstream output) is bitwise-identical to the
    class-blind policy.
    """

    name = "edf"

    def __init__(self, class_aware: bool = True) -> None:
        self.class_aware = class_aware

    def key(self, job: ServingJob) -> Tuple:
        # Deadline-free jobs sort last; a non-finite deadline (NaN would
        # poison tuple comparison and make the order depend on input
        # permutation) is treated the same way.  Equal-deadline jobs fall
        # back to arrival order and then the unique job_id, mirroring
        # FifoPolicy, so the policy is a total order: select_batch output
        # is invariant under any permutation of the queue.
        deadline = job.deadline_us
        if deadline is None or not math.isfinite(deadline):
            deadline = float("inf")
        if not self.class_aware:
            return (deadline, job.arrival_us, job.job_id)
        # getattr keeps duck-typed test jobs (plain namespaces) valid.
        priority = getattr(job, "service_class", DEFAULT_CLASS).priority
        return (priority, deadline, job.arrival_us, job.job_id)


_POLICIES = {"fifo": FifoPolicy, "edf": EdfPolicy}


def resolve_policy(policy: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Normalise a policy name or instance into a :class:`SchedulingPolicy`."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICIES[policy.lower()]()
        except KeyError:
            raise ConfigurationError(
                f"unknown scheduling policy {policy!r}; use one of {sorted(_POLICIES)}"
            ) from None
    raise ConfigurationError(
        f"policy must be a name or SchedulingPolicy, got {type(policy).__name__}"
    )


def _batch_key(job: ServingJob, class_aware: bool) -> Tuple:
    """The coalescing key: class-extended by default, shape-only when blind."""
    if class_aware:
        return job.compat_key
    return getattr(job, "shape_key", job.compat_key)


def select_batch(
    queue: List[ServingJob],
    policy: SchedulingPolicy,
    max_batch_size: Optional[int],
    candidates: Optional[Sequence[ServingJob]] = None,
    class_aware: bool = True,
) -> List[ServingJob]:
    """Pop the policy's next job plus compatible companions from ``queue``.

    The head job is the policy minimum over ``candidates`` (defaults to the
    whole queue — admission control passes a restricted candidate set); the
    rest of the batch is filled with queued candidate jobs sharing the head's
    :attr:`~repro.serving.workload.ServingJob.compat_key`, taken in policy
    order, never exceeding ``max_batch_size`` (``None`` = unbounded).
    Selected jobs are removed from ``queue``; the batch is returned.

    ``class_aware=False`` coalesces on the physical
    :attr:`~repro.serving.workload.ServingJob.shape_key` alone — the legacy
    class-blind behaviour, which may batch protected and degradable jobs
    together.
    """
    pool = list(queue) if candidates is None else list(candidates)
    if not pool:
        return []
    head = min(pool, key=policy.key)
    head_key = _batch_key(head, class_aware)
    compatible = sorted(
        (job for job in pool if _batch_key(job, class_aware) == head_key),
        key=policy.key,
    )
    limit = len(compatible) if max_batch_size is None else max_batch_size
    batch = compatible[:limit]
    selected = {job.job_id for job in batch}
    queue[:] = [job for job in queue if job.job_id not in selected]
    return batch
