"""Adaptive worker-pool autoscaling for the RAN serving plant.

Time-varying scenarios (:mod:`repro.serving.scenarios`) make a statically
sized backend pool the wrong answer at every instant: provisioned for the
flash-crowd peak it idles all day, provisioned for the average it melts
during the spike.  This module adds the missing control loop:

* :class:`ElasticBackendPool` — a :class:`~repro.serving.pool.BackendPool`
  whose annealer workers can be *parked* and *activated* at simulation time.
  A newly activated worker warms up for a configurable latency (device
  programming, calibration) before it becomes dispatchable, modelling the
  fact that capacity cannot appear instantaneously.
* :class:`AutoscaleController` — a periodic controller (driven by autoscale
  events on the serving simulator's event queue) that observes queue depth
  per active worker and deadline-miss pressure, and scales the active worker
  count up or down between configured bounds, with a cooldown between
  actions.

Every decision is a deterministic function of simulation state, so
autoscaled runs inherit the serving layer's exact reproducibility.
The control loop and its parameters are documented in ``docs/scenarios.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.serving.backends import (
    AnnealerServingBackend,
    ClassicalServingBackend,
    ServingBackend,
)
from repro.serving.pool import BackendPool, Worker
from repro.serving.workload import ServingJob

__all__ = [
    "AutoscaleConfig",
    "AutoscaleEvent",
    "ElasticBackendPool",
    "AutoscaleController",
]


@dataclass(frozen=True)
class AutoscaleConfig:
    """Tuning knobs of the autoscaling control loop.

    Attributes
    ----------
    interval_us:
        Control-loop period: how often the controller observes the system.
    warmup_us:
        Latency before a newly activated worker becomes dispatchable.
    min_workers / max_workers:
        Bounds on the active annealer worker count.  ``max_workers=None``
        means "every annealer worker the elastic pool holds".
    scale_up_queue_per_worker:
        Scale up when queued jobs per active annealer worker exceed this.
    scale_down_queue_per_worker:
        Scale down when queued jobs per active annealer worker fall below
        this (and no job is deadline-pressured).
    pressure_fraction:
        Scale up when more than this fraction of queued deadline-carrying
        jobs would already miss their deadline on the best annealer.
    cooldown_us:
        Minimum simulated time between two scaling actions, preventing
        thrash around a threshold.
    hotspot_queue_per_cell:
        Optional per-*cell* queue-depth threshold.  When set (and the
        simulator was given a topology so it reports per-cell depths), the
        controller also scales up when any single cell's queued jobs exceed
        this — a localized flash crowd can overload one cell long before
        the network-wide queue per worker looks deep.  ``None`` (default)
        disables the signal and reproduces the pre-network controller
        bitwise.
    critical_pressure_jobs:
        Optional *absolute* count of deadline-pressured **protected**
        (degradation-tier-0, e.g. URLLC) jobs that forces scale-up.  The
        fractional ``pressure_fraction`` signal dilutes a handful of
        pressured critical jobs in a sea of best-effort traffic; this
        threshold reacts to them directly.  ``None`` (default) disables the
        signal and reproduces the class-blind controller bitwise.
    """

    interval_us: float = 250.0
    warmup_us: float = 500.0
    min_workers: int = 1
    max_workers: Optional[int] = None
    scale_up_queue_per_worker: float = 3.0
    scale_down_queue_per_worker: float = 0.5
    pressure_fraction: float = 0.1
    cooldown_us: float = 500.0
    hotspot_queue_per_cell: Optional[float] = None
    critical_pressure_jobs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.interval_us <= 0:
            raise ConfigurationError(
                f"interval_us must be positive, got {self.interval_us}"
            )
        if self.warmup_us < 0:
            raise ConfigurationError(
                f"warmup_us must be non-negative, got {self.warmup_us}"
            )
        if self.min_workers < 1:
            raise ConfigurationError(
                f"min_workers must be at least 1, got {self.min_workers}"
            )
        if self.max_workers is not None and self.max_workers < self.min_workers:
            raise ConfigurationError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.scale_up_queue_per_worker <= self.scale_down_queue_per_worker:
            raise ConfigurationError(
                "scale_up_queue_per_worker must exceed scale_down_queue_per_worker "
                f"({self.scale_up_queue_per_worker} vs "
                f"{self.scale_down_queue_per_worker})"
            )
        if self.scale_down_queue_per_worker < 0:
            raise ConfigurationError(
                "scale_down_queue_per_worker must be non-negative, got "
                f"{self.scale_down_queue_per_worker}"
            )
        if not 0.0 <= self.pressure_fraction <= 1.0:
            raise ConfigurationError(
                f"pressure_fraction must lie in [0, 1], got {self.pressure_fraction}"
            )
        if self.cooldown_us < 0:
            raise ConfigurationError(
                f"cooldown_us must be non-negative, got {self.cooldown_us}"
            )
        if self.hotspot_queue_per_cell is not None and self.hotspot_queue_per_cell <= 0:
            raise ConfigurationError(
                "hotspot_queue_per_cell must be positive or None, got "
                f"{self.hotspot_queue_per_cell}"
            )
        if self.critical_pressure_jobs is not None and self.critical_pressure_jobs < 1:
            raise ConfigurationError(
                "critical_pressure_jobs must be at least 1 or None, got "
                f"{self.critical_pressure_jobs}"
            )


@dataclass(frozen=True)
class AutoscaleEvent:
    """One scaling action taken by the controller."""

    time_us: float
    action: str  # "scale-up" or "scale-down"
    worker: str
    active_after: int
    queue_depth: int
    reason: str


class ElasticBackendPool(BackendPool):
    """A backend pool whose annealer worker count flexes at simulation time.

    The pool is built with ``max_annealer_workers`` annealer workers (all
    sharing one backend object — identical devices) plus the classical
    fallbacks; workers beyond ``initial_annealer_workers`` start *parked*
    and are activated/parked by the :class:`AutoscaleController`.
    """

    def __init__(
        self,
        annealer: Optional[AnnealerServingBackend] = None,
        max_annealer_workers: int = 4,
        initial_annealer_workers: int = 1,
        num_classical_workers: int = 1,
        classical: Optional[ClassicalServingBackend] = None,
    ) -> None:
        if max_annealer_workers < 1:
            raise ConfigurationError(
                f"max_annealer_workers must be at least 1, got {max_annealer_workers}"
            )
        if not 1 <= initial_annealer_workers <= max_annealer_workers:
            raise ConfigurationError(
                f"initial_annealer_workers must lie in [1, {max_annealer_workers}], "
                f"got {initial_annealer_workers}"
            )
        if num_classical_workers < 0:
            raise ConfigurationError(
                f"num_classical_workers must be non-negative, got {num_classical_workers}"
            )
        annealer_backend = annealer if annealer is not None else AnnealerServingBackend()
        backends: List[ServingBackend] = [annealer_backend] * max_annealer_workers
        if num_classical_workers:
            classical_backend = (
                classical if classical is not None else ClassicalServingBackend()
            )
            backends.extend([classical_backend] * num_classical_workers)
        super().__init__(backends)
        self.max_annealer_workers = int(max_annealer_workers)
        self.initial_annealer_workers = int(initial_annealer_workers)
        self._park_to_initial()

    def _park_to_initial(self) -> None:
        for position, worker in enumerate(self.annealer_workers):
            worker.active = position < self.initial_annealer_workers
            worker.available_from_us = 0.0

    def reset(self) -> None:
        """Fresh timelines and the initial active-worker layout."""
        super().reset()
        self._park_to_initial()

    @property
    def active_annealer_count(self) -> int:
        """Number of active (including warming) annealer workers."""
        return len(self.active_annealer_workers)

    @property
    def parked_annealer_workers(self) -> List[Worker]:
        """Annealer workers currently outside the schedulable pool."""
        return [worker for worker in self.annealer_workers if not worker.active]

    def activate_worker(self, now_us: float, warmup_us: float) -> Optional[Worker]:
        """Activate the lowest-index parked worker; dispatchable after warm-up."""
        parked = self.parked_annealer_workers
        if not parked:
            return None
        worker = parked[0]
        worker.active = True
        worker.available_from_us = now_us + warmup_us
        return worker

    def deactivate_worker(self, now_us: float) -> Optional[Worker]:
        """Park the *idlest* active annealer worker; never one that is busy.

        A worker whose server frees up in the future (``free_at_us`` beyond
        ``now_us``) is mid-batch: parking it would silently strand its
        in-flight work, so busy workers are never candidates.  Among the
        idle workers the one idle longest (smallest ``free_at_us``, ties
        broken toward the highest index for determinism) is parked — it is
        the least likely to be warm-path capacity.  If every active worker
        is occupied the scale-down is skipped and the controller retries on
        a later tick.
        """
        idle = [
            worker
            for worker in self.active_annealer_workers
            if worker.server.idle_at(now_us)
        ]
        if not idle:
            return None
        worker = min(idle, key=lambda candidate: (candidate.server.free_at_us, -candidate.index))
        worker.active = False
        return worker


class AutoscaleController:
    """The periodic scale-up/scale-down decision loop.

    The serving simulator schedules an autoscale event every
    ``config.interval_us`` and hands the controller the current queue and
    pool; the controller observes two signals —

    * **queue depth per active annealer worker** (backlog), and
    * **deadline pressure**: the fraction of queued deadline-carrying jobs
      that would miss even if served next on the best annealer —

    and activates or parks one worker per tick within
    ``[min_workers, max_workers]``, honouring the cooldown.  Scaling events
    are recorded for reporting, and :meth:`average_active_workers` yields
    the time-weighted mean active worker count (the basis of the
    equal-average-capacity comparison in ``benchmarks/bench_scenarios.py``).
    """

    def __init__(self, config: Optional[AutoscaleConfig] = None) -> None:
        self.config = config if config is not None else AutoscaleConfig()
        self.events: List[AutoscaleEvent] = []
        self._trace: List[Tuple[float, int]] = []
        self._last_action_us = -float("inf")

    def reset(self) -> None:
        """Clear recorded events and the active-count trace between runs."""
        self.events = []
        self._trace = []
        self._last_action_us = -float("inf")

    def begin(self, start_us: float, pool: ElasticBackendPool) -> None:
        """Record the initial active-worker count at the start of a run."""
        if not isinstance(pool, ElasticBackendPool):
            raise ConfigurationError(
                "AutoscaleController requires an ElasticBackendPool, got "
                f"{type(pool).__name__}"
            )
        self._trace = [(start_us, pool.active_annealer_count)]

    def step(
        self,
        now_us: float,
        queue: Sequence[ServingJob],
        pool: ElasticBackendPool,
        pressured_count: int,
        cell_queue_depths: Optional[Dict[int, int]] = None,
        critical_pressured: int = 0,
    ) -> Optional[AutoscaleEvent]:
        """Observe the system at ``now_us`` and take at most one scaling action.

        ``cell_queue_depths`` (queued jobs per cell id) feeds the optional
        ``hotspot_queue_per_cell`` signal; the simulator supplies it when a
        topology is attached and the threshold is configured.
        ``critical_pressured`` (deadline-pressured protected jobs) feeds the
        optional ``critical_pressure_jobs`` signal the same way.
        """
        config = self.config
        active = pool.active_annealer_count
        ceiling = pool.max_annealer_workers
        if config.max_workers is not None:
            ceiling = min(ceiling, config.max_workers)
        depth = len(queue)
        per_worker = depth / max(active, 1)
        deadline_jobs = sum(1 for job in queue if job.deadline_us is not None)
        pressure = pressured_count / deadline_jobs if deadline_jobs else 0.0
        hotspot = (
            config.hotspot_queue_per_cell is not None
            and cell_queue_depths is not None
            and any(
                cell_depth > config.hotspot_queue_per_cell
                for cell_depth in cell_queue_depths.values()
            )
        )
        critical = (
            config.critical_pressure_jobs is not None
            and critical_pressured >= config.critical_pressure_jobs
        )
        if now_us - self._last_action_us < config.cooldown_us - 1e-9:
            return None

        event: Optional[AutoscaleEvent] = None
        if active < ceiling and (
            per_worker > config.scale_up_queue_per_worker
            or pressure > config.pressure_fraction
            or hotspot
            or critical
        ):
            worker = pool.activate_worker(now_us, config.warmup_us)
            if worker is not None:
                if critical:
                    reason = "critical-pressure"
                elif pressure > config.pressure_fraction:
                    reason = "deadline-pressure"
                elif per_worker > config.scale_up_queue_per_worker:
                    reason = "queue-depth"
                else:
                    reason = "cell-hotspot"
                event = AutoscaleEvent(
                    time_us=now_us,
                    action="scale-up",
                    worker=worker.name,
                    active_after=pool.active_annealer_count,
                    queue_depth=depth,
                    reason=reason,
                )
        elif (
            active > config.min_workers
            and pressured_count == 0
            and per_worker < config.scale_down_queue_per_worker
        ):
            worker = pool.deactivate_worker(now_us)
            if worker is not None:
                event = AutoscaleEvent(
                    time_us=now_us,
                    action="scale-down",
                    worker=worker.name,
                    active_after=pool.active_annealer_count,
                    queue_depth=depth,
                    reason="idle",
                )

        if event is not None:
            self.events.append(event)
            self._trace.append((event.time_us, event.active_after))
            self._last_action_us = now_us
        return event

    def average_active_workers(self, end_us: float) -> float:
        """Time-weighted mean active annealer workers over ``[start, end_us]``."""
        if not self._trace:
            raise ConfigurationError(
                "no trace recorded; run a simulation with this controller first"
            )
        start_us = self._trace[0][0]
        if end_us <= start_us:
            return float(self._trace[0][1])
        weighted = 0.0
        boundaries = list(self._trace[1:]) + [(end_us, 0)]
        for (time_us, active), (next_us, _) in zip(self._trace, boundaries):
            span = min(next_us, end_us) - time_us
            if span > 0:
                weighted += span * active
        return weighted / (end_us - start_us)
