"""The deadline-aware RAN serving subsystem (paper Figure 2 at system scale).

The packages below turn the repo's single-stream pipeline into a multi-user
serving plant:

* :mod:`repro.serving.events` — discrete-event primitives (FIFO servers and
  a deterministic event queue) shared with the Figure-2 pipeline simulator;
* :mod:`repro.serving.qos` — multi-service QoS classes (urllc / embb /
  best-effort) with per-class deadlines, priorities and degradation
  ladders (see ``docs/qos.md``);
* :mod:`repro.serving.workload` — multi-user / multi-cell job generation on
  top of :class:`repro.wireless.traffic.TrafficGenerator`, including
  velocity-coupled inter-cell handover (:class:`HandoverModel`);
* :mod:`repro.serving.scenarios` — time-varying load scenarios: composable
  :class:`LoadPhase` segments (diurnal waves, flash crowds, hotspot drift,
  cell outages) stitched into a named :class:`NetworkScenario` catalog that
  modulates per-cell arrival intensity over simulated time;
* :mod:`repro.serving.autoscale` — the elastic pool
  (:class:`ElasticBackendPool`) and the queue-depth / deadline-pressure
  :class:`AutoscaleController` that flexes the active worker count;
* :mod:`repro.serving.scheduler` — FIFO and EDF policies plus compatible-job
  batch coalescing;
* :mod:`repro.serving.backends` — annealer (batched, multi-lane) and
  classical-fallback processing units with deterministic timing models;
* :mod:`repro.serving.pool` — the heterogeneous worker pool;
* :mod:`repro.serving.simulator` — the event-driven serving simulation with
  admission-control demotion;
* :mod:`repro.serving.report` — :class:`ServingReport` with latency
  percentiles, deadline-miss rate, batch occupancy and per-backend
  utilisation.

Quickstart::

    from repro.serving import (
        RANServingSimulator, build_pool, uniform_cell_profiles,
        generate_serving_jobs, format_serving_report,
    )
    from repro.wireless import MIMOConfig

    profiles = uniform_cell_profiles(
        num_cells=2, users_per_cell=3,
        configs=[MIMOConfig(2, "QPSK"), MIMOConfig(2, "16-QAM")],
        symbol_period_us=400.0,
    )
    jobs = generate_serving_jobs(profiles, jobs_per_user=8, rng=1)
    report = RANServingSimulator(policy="edf").run(jobs, rng=2)
    print(format_serving_report(report))
"""

from repro.serving.events import EventQueue, FifoServer, StageTiming
from repro.serving.scenarios import (
    CellOutagePhase,
    ConstantPhase,
    DiurnalPhase,
    FlashCrowdPhase,
    HotspotDriftPhase,
    LoadPhase,
    NetworkScenario,
    SCENARIO_NAMES,
    build_scenario,
)
from repro.serving.qos import (
    BEST_EFFORT,
    DEFAULT_CLASS,
    EMBB,
    SERVICE_CLASSES,
    URLLC,
    ServiceClass,
    resolve_service_class,
)
from repro.serving.workload import (
    HandoverModel,
    ServingJob,
    UserProfile,
    generate_serving_jobs,
    uniform_cell_profiles,
)
from repro.serving.autoscale import (
    AutoscaleConfig,
    AutoscaleController,
    AutoscaleEvent,
    ElasticBackendPool,
)
from repro.serving.scheduler import (
    EdfPolicy,
    FifoPolicy,
    SchedulingPolicy,
    resolve_policy,
    select_batch,
)
from repro.serving.backends import (
    AnnealerServingBackend,
    ClassicalServingBackend,
    JobSolution,
    ServingBackend,
)
from repro.serving.pool import BackendPool, Worker, build_pool
from repro.serving.report import (
    BackendUtilization,
    JobOutcome,
    ServiceClassReport,
    ServingReport,
    format_serving_report,
)
from repro.serving.simulator import RANServingSimulator

__all__ = [
    "EventQueue",
    "FifoServer",
    "StageTiming",
    "LoadPhase",
    "ConstantPhase",
    "DiurnalPhase",
    "FlashCrowdPhase",
    "HotspotDriftPhase",
    "CellOutagePhase",
    "NetworkScenario",
    "SCENARIO_NAMES",
    "build_scenario",
    "AutoscaleConfig",
    "AutoscaleController",
    "AutoscaleEvent",
    "ElasticBackendPool",
    "ServiceClass",
    "DEFAULT_CLASS",
    "URLLC",
    "EMBB",
    "BEST_EFFORT",
    "SERVICE_CLASSES",
    "resolve_service_class",
    "ServingJob",
    "UserProfile",
    "HandoverModel",
    "generate_serving_jobs",
    "uniform_cell_profiles",
    "SchedulingPolicy",
    "FifoPolicy",
    "EdfPolicy",
    "resolve_policy",
    "select_batch",
    "ServingBackend",
    "AnnealerServingBackend",
    "ClassicalServingBackend",
    "JobSolution",
    "BackendPool",
    "Worker",
    "build_pool",
    "JobOutcome",
    "BackendUtilization",
    "ServiceClassReport",
    "ServingReport",
    "format_serving_report",
    "RANServingSimulator",
]
