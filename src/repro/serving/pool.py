"""The heterogeneous backend pool: workers wrapping serving backends.

A :class:`BackendPool` holds K workers, each binding one
:class:`~repro.serving.backends.ServingBackend` to one
:class:`~repro.serving.events.FifoServer`.  Several workers may share a
backend object (K identical QPUs); the pool only cares about each worker's
availability timeline and per-worker statistics.  Workers are dispatched in
index order, which keeps simulation runs deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.serving.backends import (
    AnnealerServingBackend,
    ClassicalServingBackend,
    ServingBackend,
)
from repro.serving.events import FifoServer

__all__ = ["Worker", "BackendPool", "build_pool"]


class Worker:
    """One schedulable processing unit: a backend plus its availability timeline."""

    __slots__ = ("backend", "index", "server", "batches", "batch_sizes")

    def __init__(self, backend: ServingBackend, index: int) -> None:
        self.backend = backend
        self.index = index
        self.server = FifoServer()
        self.batches = 0
        self.batch_sizes: List[int] = []

    @property
    def name(self) -> str:
        """Unique worker name: ``<backend>#<index>``."""
        return f"{self.backend.name}#{self.index}"

    @property
    def kind(self) -> str:
        """The worker's backend kind (``annealer`` or ``classical``)."""
        return self.backend.kind

    def record_batch(self, size: int) -> None:
        """Track one dispatched batch for occupancy statistics."""
        self.batches += 1
        self.batch_sizes.append(size)

    def reset(self) -> None:
        """Fresh timeline and statistics (used between simulation runs)."""
        self.server = FifoServer()
        self.batches = 0
        self.batch_sizes = []


class BackendPool:
    """An ordered collection of workers the scheduler dispatches onto."""

    def __init__(self, backends: Sequence[ServingBackend]) -> None:
        if not backends:
            raise ConfigurationError("the backend pool must contain at least one backend")
        self.workers = [Worker(backend, index) for index, backend in enumerate(backends)]

    @property
    def annealer_workers(self) -> List[Worker]:
        """Workers backed by annealer (quantum) processing units."""
        return [worker for worker in self.workers if worker.kind == "annealer"]

    @property
    def classical_workers(self) -> List[Worker]:
        """Workers backed by classical-fallback processing units."""
        return [worker for worker in self.workers if worker.kind == "classical"]

    def idle_workers(self, now_us: float, kind: Optional[str] = None) -> List[Worker]:
        """Workers free at ``now_us``, optionally filtered by backend kind."""
        return [
            worker
            for worker in self.workers
            if worker.server.idle_at(now_us) and (kind is None or worker.kind == kind)
        ]


def build_pool(
    num_annealer_workers: int = 2,
    num_classical_workers: int = 1,
    annealer: Optional[AnnealerServingBackend] = None,
    classical: Optional[ClassicalServingBackend] = None,
) -> BackendPool:
    """Convenience constructor for the common K-annealers + L-fallbacks pool.

    All annealer workers share one backend object (identical devices) and all
    classical workers share another; pass explicit backends to customise.
    """
    if num_annealer_workers < 0 or num_classical_workers < 0:
        raise ConfigurationError("worker counts must be non-negative")
    if num_annealer_workers + num_classical_workers == 0:
        raise ConfigurationError("the pool needs at least one worker")
    backends: List[ServingBackend] = []
    if num_annealer_workers:
        annealer_backend = annealer if annealer is not None else AnnealerServingBackend()
        backends.extend([annealer_backend] * num_annealer_workers)
    if num_classical_workers:
        classical_backend = classical if classical is not None else ClassicalServingBackend()
        backends.extend([classical_backend] * num_classical_workers)
    return BackendPool(backends)
