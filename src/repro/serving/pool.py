"""The heterogeneous backend pool: workers wrapping serving backends.

A :class:`BackendPool` holds K workers, each binding one
:class:`~repro.serving.backends.ServingBackend` to one
:class:`~repro.serving.events.FifoServer`.  Several workers may share a
backend object (K identical QPUs); the pool only cares about each worker's
availability timeline and per-worker statistics.  Workers are dispatched in
index order, which keeps simulation runs deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.serving.backends import (
    AnnealerServingBackend,
    ClassicalServingBackend,
    ServingBackend,
)
from repro.serving.events import FifoServer

__all__ = ["Worker", "BackendPool", "build_pool"]


class Worker:
    """One schedulable processing unit: a backend plus its availability timeline.

    ``active`` and ``available_from_us`` support elastic pools (see
    :class:`repro.serving.autoscale.ElasticBackendPool`): a parked worker
    (``active=False``) never receives work, and a freshly activated worker is
    warming up until ``available_from_us``.  Static pools leave both at their
    defaults (always active, available from t=0).
    """

    __slots__ = (
        "backend",
        "index",
        "server",
        "batches",
        "batch_sizes",
        "active",
        "available_from_us",
    )

    def __init__(self, backend: ServingBackend, index: int) -> None:
        self.backend = backend
        self.index = index
        self.server = FifoServer()
        self.batches = 0
        self.batch_sizes: List[int] = []
        self.active = True
        self.available_from_us = 0.0

    @property
    def name(self) -> str:
        """Unique worker name: ``<backend>#<index>``."""
        return f"{self.backend.name}#{self.index}"

    @property
    def kind(self) -> str:
        """The worker's backend kind (``annealer`` or ``classical``)."""
        return self.backend.kind

    def dispatchable_at(self, now_us: float) -> bool:
        """Whether the worker can accept a batch at ``now_us``."""
        return (
            self.active
            and self.available_from_us <= now_us + 1e-12
            and self.server.idle_at(now_us)
        )

    def record_batch(self, size: int) -> None:
        """Track one dispatched batch for occupancy statistics."""
        self.batches += 1
        self.batch_sizes.append(size)

    def reset(self) -> None:
        """Fresh timeline and statistics (used between simulation runs)."""
        self.server = FifoServer()
        self.batches = 0
        self.batch_sizes = []
        self.active = True
        self.available_from_us = 0.0


class BackendPool:
    """An ordered collection of workers the scheduler dispatches onto."""

    def __init__(self, backends: Sequence[ServingBackend]) -> None:
        if not backends:
            raise ConfigurationError("the backend pool must contain at least one backend")
        self.workers = [Worker(backend, index) for index, backend in enumerate(backends)]

    @property
    def annealer_workers(self) -> List[Worker]:
        """Workers backed by annealer (quantum) processing units."""
        return [worker for worker in self.workers if worker.kind == "annealer"]

    @property
    def classical_workers(self) -> List[Worker]:
        """Workers backed by classical-fallback processing units."""
        return [worker for worker in self.workers if worker.kind == "classical"]

    @property
    def active_annealer_workers(self) -> List[Worker]:
        """Annealer workers currently part of the schedulable pool.

        In a static pool this is every annealer worker; an elastic pool
        excludes parked workers (warming workers count as active — they are
        committed capacity, just not dispatchable yet).
        """
        return [worker for worker in self.annealer_workers if worker.active]

    def idle_workers(self, now_us: float, kind: Optional[str] = None) -> List[Worker]:
        """Dispatchable workers at ``now_us``, optionally filtered by kind."""
        return [
            worker
            for worker in self.workers
            if worker.dispatchable_at(now_us) and (kind is None or worker.kind == kind)
        ]

    def reset(self) -> None:
        """Clear every worker's timeline and statistics between runs."""
        for worker in self.workers:
            worker.reset()


def build_pool(
    num_annealer_workers: int = 2,
    num_classical_workers: int = 1,
    annealer: Optional[AnnealerServingBackend] = None,
    classical: Optional[ClassicalServingBackend] = None,
) -> BackendPool:
    """Convenience constructor for the common K-annealers + L-fallbacks pool.

    All annealer workers share one backend object (identical devices) and all
    classical workers share another; pass explicit backends to customise.
    """
    if num_annealer_workers < 0 or num_classical_workers < 0:
        raise ConfigurationError("worker counts must be non-negative")
    if num_annealer_workers + num_classical_workers == 0:
        raise ConfigurationError("the pool needs at least one worker")
    backends: List[ServingBackend] = []
    if num_annealer_workers:
        annealer_backend = annealer if annealer is not None else AnnealerServingBackend()
        backends.extend([annealer_backend] * num_annealer_workers)
    if num_classical_workers:
        classical_backend = classical if classical is not None else ClassicalServingBackend()
        backends.extend([classical_backend] * num_classical_workers)
    return BackendPool(backends)
