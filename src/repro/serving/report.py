"""Serving-layer result containers and report formatting.

A serving run produces one :class:`JobOutcome` per submitted job — jobs that
miss their deadline are *counted, never dropped* — and the aggregate
:class:`ServingReport`: throughput, latency percentiles (p50/p95/p99),
deadline-miss rate, demotion rate, batch occupancy and per-backend-worker
utilisation.  These are the quantities the load-sweep study and the serving
benchmark plot against offered load.

Reports also break every latency/miss/demotion statistic down **per service
class** (:class:`ServiceClassReport`): a multi-class run shows whether the
degradation ladder actually protected URLLC while best-effort absorbed the
overload.  Single-class runs compute the breakdown too (one ``default``
entry) but omit it from the formatted text, keeping legacy output
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "JobOutcome",
    "BackendUtilization",
    "ServiceClassReport",
    "ServingReport",
    "format_serving_report",
]


@dataclass(frozen=True)
class JobOutcome:
    """Per-job result of one serving simulation."""

    job_id: int
    user_id: int
    cell_id: int
    arrival_us: float
    start_us: float
    finish_us: float
    deadline_us: Optional[float]
    met_deadline: Optional[bool]
    backend: str
    backend_kind: str
    demoted: bool
    batch_size: int
    best_energy: Optional[float] = None
    detected_optimum: Optional[bool] = None
    service_class: str = "default"

    @property
    def latency_us(self) -> float:
        """Arrival-to-completion turnaround."""
        return self.finish_us - self.arrival_us

    @property
    def queueing_us(self) -> float:
        """Time spent waiting before service began."""
        return self.start_us - self.arrival_us


@dataclass(frozen=True)
class BackendUtilization:
    """Aggregate statistics of one worker in the pool."""

    name: str
    kind: str
    jobs: int
    batches: int
    busy_us: float
    utilization: float
    mean_batch_size: float


@dataclass(frozen=True)
class ServiceClassReport:
    """Per-service-class slice of a serving run's statistics.

    The same definitions as the run-level report, restricted to one class's
    outcomes: percentiles use the conservative ``"higher"`` method and
    ``deadline_miss_rate`` is ``None`` when no job of the class carried a
    deadline.  A class with users but no completed jobs (e.g. a scenario
    phase that starved it) simply has no entry.
    """

    service_class: str
    jobs: int
    mean_latency_us: float
    p50_latency_us: float
    p95_latency_us: float
    p99_latency_us: float
    deadline_miss_rate: Optional[float]
    missed_jobs: int
    demotion_rate: float


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one RAN serving simulation run."""

    outcomes: List[JobOutcome]
    policy: str
    makespan_us: float
    offered_load_jobs_per_ms: float
    throughput_jobs_per_ms: float
    mean_latency_us: float
    p50_latency_us: float
    p95_latency_us: float
    p99_latency_us: float
    deadline_miss_rate: Optional[float]
    missed_jobs: int
    demotion_rate: float
    mean_batch_size: float
    max_batch_size: int
    backend_utilization: Tuple[BackendUtilization, ...]
    optimum_rate: Optional[float]
    metadata: Dict = field(default_factory=dict)
    class_reports: Tuple[ServiceClassReport, ...] = ()

    @property
    def num_jobs(self) -> int:
        """Number of jobs processed (every submitted job is accounted for)."""
        return len(self.outcomes)

    def class_report(self, service_class: str) -> Optional[ServiceClassReport]:
        """The named class's slice, or ``None`` if no job of it completed."""
        for entry in self.class_reports:
            if entry.service_class == service_class:
                return entry
        return None


def _class_reports(outcomes: Sequence[JobOutcome]) -> Tuple[ServiceClassReport, ...]:
    """Per-class statistic slices, in class-name order."""
    by_class: Dict[str, List[JobOutcome]] = {}
    for outcome in outcomes:
        by_class.setdefault(outcome.service_class, []).append(outcome)
    reports = []
    for name in sorted(by_class):
        members = by_class[name]
        latencies = np.array([outcome.latency_us for outcome in members])
        flags = [o.met_deadline for o in members if o.met_deadline is not None]
        reports.append(
            ServiceClassReport(
                service_class=name,
                jobs=len(members),
                mean_latency_us=float(np.mean(latencies)),
                p50_latency_us=float(np.percentile(latencies, 50)),
                p95_latency_us=float(np.percentile(latencies, 95, method="higher")),
                p99_latency_us=float(np.percentile(latencies, 99, method="higher")),
                deadline_miss_rate=(1.0 - float(np.mean(flags))) if flags else None,
                missed_jobs=sum(1 for flag in flags if not flag),
                demotion_rate=float(np.mean([o.demoted for o in members])),
            )
        )
    return tuple(reports)


def build_serving_report(
    outcomes: Sequence[JobOutcome],
    policy: str,
    backend_utilization: Sequence[BackendUtilization],
    metadata: Optional[Dict] = None,
) -> ServingReport:
    """Aggregate per-job outcomes into a :class:`ServingReport`.

    Degenerate inputs stay well-defined: an empty outcome list (a run that
    completed no jobs) yields a zeroed report with ``deadline_miss_rate``
    and ``optimum_rate`` of ``None``, and a single job reports its own
    latency at every percentile with an offered load of 0 (a lone arrival
    has no meaningful rate).
    """
    outcomes = list(outcomes)
    if not outcomes:
        return ServingReport(
            outcomes=[],
            policy=policy,
            makespan_us=0.0,
            offered_load_jobs_per_ms=0.0,
            throughput_jobs_per_ms=0.0,
            mean_latency_us=0.0,
            p50_latency_us=0.0,
            p95_latency_us=0.0,
            p99_latency_us=0.0,
            deadline_miss_rate=None,
            missed_jobs=0,
            demotion_rate=0.0,
            mean_batch_size=0.0,
            max_batch_size=0,
            backend_utilization=tuple(backend_utilization),
            optimum_rate=None,
            metadata=dict(metadata or {}),
            class_reports=(),
        )
    latencies = np.array([outcome.latency_us for outcome in outcomes])
    arrivals = np.array([outcome.arrival_us for outcome in outcomes])
    makespan = max(float(max(o.finish_us for o in outcomes) - arrivals.min()), 1e-9)

    arrival_span = float(arrivals.max() - arrivals.min())
    # A degenerate workload (single job, or all arrivals coincident) has no
    # meaningful rate; report 0 rather than an absurd clamped division.
    offered = len(outcomes) / (arrival_span / 1000.0) if arrival_span > 0.0 else 0.0

    deadline_flags = [o.met_deadline for o in outcomes if o.met_deadline is not None]
    miss_rate = (1.0 - float(np.mean(deadline_flags))) if deadline_flags else None
    missed = sum(1 for flag in deadline_flags if not flag)

    optimum_flags = [o.detected_optimum for o in outcomes if o.detected_optimum is not None]
    optimum_rate = float(np.mean(optimum_flags)) if optimum_flags else None

    batch_sizes = [o.batch_size for o in outcomes]
    return ServingReport(
        outcomes=outcomes,
        policy=policy,
        makespan_us=makespan,
        offered_load_jobs_per_ms=float(offered),
        throughput_jobs_per_ms=float(len(outcomes) / (makespan / 1000.0)),
        mean_latency_us=float(np.mean(latencies)),
        p50_latency_us=float(np.percentile(latencies, 50)),
        # Tail percentiles use the conservative "higher" method: linear
        # interpolation on small job counts reports a p95/p99 *below any
        # observed job*, understating the tail the deadline analysis cares
        # about.  "higher" always returns an actually-observed latency.
        p95_latency_us=float(np.percentile(latencies, 95, method="higher")),
        p99_latency_us=float(np.percentile(latencies, 99, method="higher")),
        deadline_miss_rate=miss_rate,
        missed_jobs=missed,
        demotion_rate=float(np.mean([o.demoted for o in outcomes])),
        mean_batch_size=float(np.mean(batch_sizes)),
        max_batch_size=int(max(batch_sizes)),
        backend_utilization=tuple(backend_utilization),
        optimum_rate=optimum_rate,
        metadata=dict(metadata or {}),
        class_reports=_class_reports(outcomes),
    )


def format_serving_report(report: ServingReport, title: str = "RAN serving report") -> str:
    """Render a :class:`ServingReport` as an aligned text table.

    The per-class breakdown is only printed for genuinely multi-class runs
    (any class other than ``default`` present), so single-class output stays
    byte-identical to the pre-QoS format.
    """
    lines = [
        title,
        f"{'policy':>26}  {report.policy}",
        f"{'jobs served':>26}  {report.num_jobs}",
        f"{'offered load (jobs/ms)':>26}  {report.offered_load_jobs_per_ms:.3f}",
        f"{'throughput (jobs/ms)':>26}  {report.throughput_jobs_per_ms:.3f}",
        f"{'mean latency (us)':>26}  {report.mean_latency_us:.1f}",
        f"{'p50 latency (us)':>26}  {report.p50_latency_us:.1f}",
        f"{'p95 latency (us)':>26}  {report.p95_latency_us:.1f}",
        f"{'p99 latency (us)':>26}  {report.p99_latency_us:.1f}",
    ]
    if report.deadline_miss_rate is not None:
        lines.append(
            f"{'deadline miss rate':>26}  {report.deadline_miss_rate:.3f} "
            f"({report.missed_jobs} missed)"
        )
    lines.append(f"{'demotion rate':>26}  {report.demotion_rate:.3f}")
    lines.append(
        f"{'batch occupancy':>26}  mean {report.mean_batch_size:.2f}, "
        f"max {report.max_batch_size}"
    )
    if report.optimum_rate is not None:
        lines.append(f"{'optimum detection rate':>26}  {report.optimum_rate:.3f}")
    if any(entry.service_class != "default" for entry in report.class_reports):
        lines.append(f"{'per-class breakdown':>26}")
        for entry in report.class_reports:
            miss = (
                f"miss={entry.deadline_miss_rate:.3f}"
                if entry.deadline_miss_rate is not None
                else "miss=n/a"
            )
            lines.append(
                f"{entry.service_class:>26}  jobs={entry.jobs:<5d} "
                f"p99={entry.p99_latency_us:<8.1f} {miss:<11} "
                f"demoted={entry.demotion_rate:.3f}"
            )
    lines.append(f"{'per-backend utilisation':>26}")
    for stats in report.backend_utilization:
        lines.append(
            f"{stats.name:>26}  {stats.kind:<9} jobs={stats.jobs:<5d} "
            f"batches={stats.batches:<4d} mean B={stats.mean_batch_size:<5.2f} "
            f"util={stats.utilization:.3f}"
        )
    return "\n".join(lines)
