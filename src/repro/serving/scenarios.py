"""Time-varying network load scenarios for the RAN serving layer.

The load-sweep study (PR 2) exercises *stationary* traffic: every cell keeps
one fixed hotspot factor for the whole run.  Real networks drift — demand
follows diurnal waves, flash crowds erupt around events, hotspots migrate
across the cell grid as users move, and cell outages spill traffic onto
neighbouring cells.  This module expresses those dynamics as composable
:class:`LoadPhase` segments stitched into a :class:`NetworkScenario`: a named
timeline that maps ``(cell_id, time)`` to an *intensity multiplier* on each
cell's nominal arrival rate.

The multiplier field drives piecewise-inhomogeneous Poisson arrivals via
thinning (see :meth:`repro.wireless.traffic.TrafficGenerator.stream_modulated`
and :func:`repro.serving.workload.generate_serving_jobs`), so a scenario
changes *when and where* jobs arrive while the per-user child-generator
discipline keeps every workload exactly reproducible for a fixed seed.

A catalog of named, documented scenarios is exposed through
:func:`build_scenario` / :data:`SCENARIO_NAMES`; the parameters and phase
timelines are described in ``docs/scenarios.md``.

Scenarios are *topology-aware*: attaching a
:class:`~repro.network.topology.NetworkTopology` switches the spatial phases
from implicit index arithmetic (``cell_id +- 1`` adjacency, index distance)
to the layout's real neighbour graph and plane positions.  On a ``line``
topology both formulations agree bitwise — the compatibility contract spelled
out in ``docs/network.md`` — and with no topology attached (the default)
every code path is byte-for-byte the pre-topology implementation.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.network.topology import NetworkTopology

__all__ = [
    "LoadPhase",
    "ConstantPhase",
    "DiurnalPhase",
    "FlashCrowdPhase",
    "HotspotDriftPhase",
    "CellOutagePhase",
    "NetworkScenario",
    "SCENARIO_NAMES",
    "build_scenario",
]

_EPS = 1e-9


class LoadPhase(abc.ABC):
    """One segment of a scenario timeline.

    A phase covers ``duration_us`` of simulated time and maps each cell and
    each *phase-local* instant to a non-negative intensity multiplier on the
    cell's nominal arrival rate (1.0 = nominal, 0.0 = silent).
    """

    duration_us: float

    @abc.abstractmethod
    def intensity(self, cell_id: int, num_cells: int, t_us: float) -> float:
        """Intensity multiplier for ``cell_id`` at phase-local time ``t_us``."""

    @abc.abstractmethod
    def peak_intensity(self) -> float:
        """A tight upper bound on :meth:`intensity` over all cells and times.

        Used as the majorising rate of the thinning sampler — it must never
        be exceeded, and the closer it is to the true supremum the fewer
        candidate arrivals are rejected.
        """

    def target_cells(self) -> Tuple[int, ...]:
        """Cell ids this phase singles out (validated against the grid)."""
        return ()

    def _check_duration(self) -> None:
        if self.duration_us <= 0:
            raise ConfigurationError(
                f"phase duration_us must be positive, got {self.duration_us}"
            )


@dataclass(frozen=True)
class ConstantPhase(LoadPhase):
    """Uniform load at ``level`` times the nominal rate on every cell."""

    duration_us: float
    level: float = 1.0

    def __post_init__(self) -> None:
        self._check_duration()
        if self.level < 0:
            raise ConfigurationError(f"level must be non-negative, got {self.level}")

    def intensity(self, cell_id: int, num_cells: int, t_us: float) -> float:
        return self.level

    def peak_intensity(self) -> float:
        return self.level


@dataclass(frozen=True)
class DiurnalPhase(LoadPhase):
    """A sinusoidal day/night wave, optionally phase-lagged across the grid.

    Cell ``c`` sees ``base * (1 + amplitude * sin(2*pi*(cycles * t/duration -
    lag)))`` where ``lag = cell_lag_fraction * c / num_cells`` — a non-zero
    ``cell_lag_fraction`` makes the demand crest sweep across the cell grid
    (morning in cell 0, evening in the last cell) instead of breathing in
    unison.
    """

    duration_us: float
    base: float = 1.0
    amplitude: float = 0.5
    cycles: float = 1.0
    cell_lag_fraction: float = 0.0

    def __post_init__(self) -> None:
        self._check_duration()
        if self.base <= 0:
            raise ConfigurationError(f"base must be positive, got {self.base}")
        if not 0.0 <= self.amplitude <= 1.0:
            raise ConfigurationError(
                f"amplitude must lie in [0, 1], got {self.amplitude}"
            )
        if self.cycles <= 0:
            raise ConfigurationError(f"cycles must be positive, got {self.cycles}")

    def intensity(self, cell_id: int, num_cells: int, t_us: float) -> float:
        lag = self.cell_lag_fraction * cell_id / max(num_cells, 1)
        wave = math.sin(2.0 * math.pi * (self.cycles * t_us / self.duration_us - lag))
        return self.base * (1.0 + self.amplitude * wave)

    def peak_intensity(self) -> float:
        return self.base * (1.0 + self.amplitude)


@dataclass(frozen=True)
class FlashCrowdPhase(LoadPhase):
    """A localized demand spike: one cell ramps to ``peak`` and back down.

    The target cell's multiplier ramps linearly from ``background`` to
    ``peak`` over the first ``ramp_fraction`` of the phase, holds the peak,
    then ramps back down over the last ``ramp_fraction``.  Every other cell
    stays at ``background`` — unless a ``topology`` is attached and
    ``neighbor_fraction`` is positive, in which case the target's topology
    neighbours ride the same ramp at ``neighbor_fraction`` of its amplitude
    (the crowd's fringe spilling into adjacent cells).
    """

    duration_us: float
    cell_id: int
    peak: float = 6.0
    ramp_fraction: float = 0.25
    background: float = 1.0
    neighbor_fraction: float = 0.0
    topology: Optional[NetworkTopology] = None

    def __post_init__(self) -> None:
        self._check_duration()
        if self.cell_id < 0:
            raise ConfigurationError(f"cell_id must be non-negative, got {self.cell_id}")
        if self.peak < self.background:
            raise ConfigurationError(
                f"peak ({self.peak}) must be >= background ({self.background})"
            )
        if self.background < 0:
            raise ConfigurationError(
                f"background must be non-negative, got {self.background}"
            )
        if not 0.0 < self.ramp_fraction <= 0.5:
            raise ConfigurationError(
                f"ramp_fraction must lie in (0, 0.5], got {self.ramp_fraction}"
            )
        if not 0.0 <= self.neighbor_fraction <= 1.0:
            raise ConfigurationError(
                f"neighbor_fraction must lie in [0, 1], got {self.neighbor_fraction}"
            )
        if self.neighbor_fraction > 0.0 and self.topology is None:
            raise ConfigurationError(
                "neighbor_fraction needs a topology to know who the neighbours are"
            )

    def _weight(self, t_us: float) -> float:
        u = min(max(t_us / self.duration_us, 0.0), 1.0)
        if u < self.ramp_fraction:
            return u / self.ramp_fraction
        if u > 1.0 - self.ramp_fraction:
            return (1.0 - u) / self.ramp_fraction
        return 1.0

    def intensity(self, cell_id: int, num_cells: int, t_us: float) -> float:
        if cell_id != self.cell_id:
            if (
                self.neighbor_fraction > 0.0
                and self.topology is not None
                and cell_id in self.topology.neighbors(self.cell_id)
            ):
                spill = self.neighbor_fraction * (self.peak - self.background)
                return self.background + spill * self._weight(t_us)
            return self.background
        return self.background + (self.peak - self.background) * self._weight(t_us)

    def peak_intensity(self) -> float:
        return self.peak

    def target_cells(self) -> Tuple[int, ...]:
        return (self.cell_id,)


@dataclass(frozen=True)
class HotspotDriftPhase(LoadPhase):
    """A hotspot that migrates across the cell grid over the phase.

    The hotspot centre moves linearly from the first cell to the last; a
    cell within ``width_cells`` of the centre is boosted toward ``peak``
    with a triangular profile, modelling a crowd (commuters, a convoy)
    traversing the coverage area.  Without a topology the centre moves
    through *index* space (cell 0 to cell ``num_cells - 1``); with one it
    moves through the coverage *plane*, from the first cell's position to the
    last cell's, and proximity is Euclidean distance — on a line layout the
    two are bitwise identical.
    """

    duration_us: float
    peak: float = 4.0
    width_cells: float = 1.0
    background: float = 1.0
    topology: Optional[NetworkTopology] = None

    def __post_init__(self) -> None:
        self._check_duration()
        if self.peak < self.background:
            raise ConfigurationError(
                f"peak ({self.peak}) must be >= background ({self.background})"
            )
        if self.background < 0:
            raise ConfigurationError(
                f"background must be non-negative, got {self.background}"
            )
        if self.width_cells <= 0:
            raise ConfigurationError(
                f"width_cells must be positive, got {self.width_cells}"
            )

    def intensity(self, cell_id: int, num_cells: int, t_us: float) -> float:
        u = min(max(t_us / self.duration_us, 0.0), 1.0)
        if self.topology is not None:
            first_x, first_y = self.topology.position(0)
            last_x, last_y = self.topology.position(self.topology.num_cells - 1)
            centre_x = first_x + u * (last_x - first_x)
            centre_y = first_y + u * (last_y - first_y)
            cell_x, cell_y = self.topology.position(cell_id)
            offset = math.hypot(cell_x - centre_x, cell_y - centre_y)
        else:
            centre = u * max(num_cells - 1, 0)
            offset = abs(cell_id - centre)
        proximity = max(0.0, 1.0 - offset / self.width_cells)
        return self.background + (self.peak - self.background) * proximity

    def peak_intensity(self) -> float:
        return self.peak


@dataclass(frozen=True)
class CellOutagePhase(LoadPhase):
    """A cell goes dark and its traffic spills onto the neighbouring cells.

    The outage cell's multiplier drops to ``residual`` (0 by default — the
    cell is silent) and ``spill_fraction`` of its nominal load is split
    evenly between its neighbours, modelling users re-attaching to adjacent
    cells.  With a ``topology`` attached the neighbours come from its graph
    (4 on a grid, up to 6 on a hex tiling); without one they are the legacy
    implicit line neighbours ``cell_id +- 1`` where they exist.  The
    remaining cells stay at ``background``.
    """

    duration_us: float
    cell_id: int
    spill_fraction: float = 1.0
    background: float = 1.0
    residual: float = 0.0
    topology: Optional[NetworkTopology] = None

    def __post_init__(self) -> None:
        self._check_duration()
        if self.cell_id < 0:
            raise ConfigurationError(f"cell_id must be non-negative, got {self.cell_id}")
        if not 0.0 <= self.spill_fraction <= 1.0:
            raise ConfigurationError(
                f"spill_fraction must lie in [0, 1], got {self.spill_fraction}"
            )
        if self.background <= 0:
            raise ConfigurationError(
                f"background must be positive, got {self.background}"
            )
        if not 0.0 <= self.residual < self.background:
            raise ConfigurationError(
                f"residual must lie in [0, background), got {self.residual}"
            )

    def _neighbours(self, num_cells: int) -> Tuple[int, ...]:
        if self.topology is not None:
            return self.topology.neighbors(self.cell_id)
        return tuple(
            cell
            for cell in (self.cell_id - 1, self.cell_id + 1)
            if 0 <= cell < num_cells
        )

    def intensity(self, cell_id: int, num_cells: int, t_us: float) -> float:
        if cell_id == self.cell_id:
            return self.residual
        neighbours = self._neighbours(num_cells)
        if cell_id in neighbours:
            spilt = self.spill_fraction * (self.background - self.residual)
            return self.background + spilt / len(neighbours)
        return self.background

    def peak_intensity(self) -> float:
        # Worst case: a single neighbour absorbs the whole spilt load.
        return self.background + self.spill_fraction * (self.background - self.residual)

    def target_cells(self) -> Tuple[int, ...]:
        return (self.cell_id,)


@dataclass(frozen=True)
class NetworkScenario:
    """A named timeline of :class:`LoadPhase` segments over a cell grid.

    ``intensity(cell_id, t_us)`` evaluates the phase containing absolute
    time ``t_us`` (phases abut; time before 0 or at/after ``duration_us``
    yields 0 — no arrivals are generated outside the scenario horizon).

    An optional :class:`~repro.network.topology.NetworkTopology` records the
    layout the phases were built against; it must agree with ``num_cells``.
    """

    name: str
    num_cells: int
    phases: Tuple[LoadPhase, ...]
    description: str = ""
    topology: Optional[NetworkTopology] = None

    def __post_init__(self) -> None:
        if self.num_cells <= 0:
            raise ConfigurationError(
                f"num_cells must be positive, got {self.num_cells}"
            )
        if self.topology is not None and self.topology.num_cells != self.num_cells:
            raise ConfigurationError(
                f"topology has {self.topology.num_cells} cells, scenario declares "
                f"{self.num_cells}"
            )
        if not self.phases:
            raise ConfigurationError("a scenario needs at least one phase")
        for phase in self.phases:
            if not isinstance(phase, LoadPhase):
                raise ConfigurationError(
                    f"phases must be LoadPhase instances, got {type(phase).__name__}"
                )
            for cell in phase.target_cells():
                if not 0 <= cell < self.num_cells:
                    raise ConfigurationError(
                        f"{type(phase).__name__} targets cell {cell}, outside the "
                        f"{self.num_cells}-cell grid"
                    )

    @property
    def duration_us(self) -> float:
        """Total simulated-time horizon covered by the phases."""
        return sum(phase.duration_us for phase in self.phases)

    def phase_at(self, t_us: float) -> Tuple[LoadPhase, float]:
        """The phase containing absolute time ``t_us`` and the local offset."""
        if t_us < 0 or t_us >= self.duration_us:
            raise ConfigurationError(
                f"t_us {t_us} outside the scenario horizon [0, {self.duration_us})"
            )
        start = 0.0
        for phase in self.phases:
            if t_us < start + phase.duration_us - _EPS or phase is self.phases[-1]:
                return phase, t_us - start
            start += phase.duration_us
        raise AssertionError("unreachable")  # pragma: no cover

    def intensity(self, cell_id: int, t_us: float) -> float:
        """Intensity multiplier for ``cell_id`` at absolute time ``t_us``."""
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(
                f"cell_id {cell_id} outside the {self.num_cells}-cell grid"
            )
        if t_us < 0 or t_us >= self.duration_us:
            return 0.0
        phase, local = self.phase_at(t_us)
        return phase.intensity(cell_id, self.num_cells, local)

    def peak_intensity(self) -> float:
        """Upper bound on the multiplier over all cells and times."""
        return max(phase.peak_intensity() for phase in self.phases)


# --------------------------------------------------------------------- #
# The scenario catalog (documented in docs/scenarios.md)
# --------------------------------------------------------------------- #

#: Names accepted by :func:`build_scenario`, in catalog order.
SCENARIO_NAMES: Tuple[str, ...] = (
    "steady",
    "diurnal",
    "flash-crowd",
    "hotspot-drift",
    "cell-outage",
    "busy-day",
)


def build_scenario(
    name: str,
    num_cells: int,
    horizon_us: float = 20_000.0,
    topology: Optional[NetworkTopology] = None,
) -> NetworkScenario:
    """Instantiate a named catalog scenario for a ``num_cells`` grid.

    ``horizon_us`` is the total simulated-time span of the scenario; each
    catalog entry splits it into its characteristic phase timeline.  See
    ``docs/scenarios.md`` for the timelines and the reproduce commands.

    Passing a ``topology`` (with ``topology.num_cells == num_cells``) makes
    the spatial phases use its neighbour graph and positions; omitting it
    keeps the legacy implicit-line behaviour bitwise.
    """
    if num_cells <= 0:
        raise ConfigurationError(f"num_cells must be positive, got {num_cells}")
    if horizon_us <= 0:
        raise ConfigurationError(f"horizon_us must be positive, got {horizon_us}")
    if topology is not None and topology.num_cells != num_cells:
        raise ConfigurationError(
            f"topology has {topology.num_cells} cells, build_scenario was asked "
            f"for {num_cells}"
        )

    mid_cell = num_cells // 2
    if name == "steady":
        return NetworkScenario(
            name=name,
            num_cells=num_cells,
            phases=(ConstantPhase(horizon_us),),
            description="stationary nominal load on every cell (the control arm)",
            topology=topology,
        )
    if name == "diurnal":
        return NetworkScenario(
            name=name,
            num_cells=num_cells,
            phases=(
                DiurnalPhase(
                    horizon_us, amplitude=0.6, cycles=2.0, cell_lag_fraction=0.5
                ),
            ),
            description="two day/night waves whose crest sweeps across the grid",
            topology=topology,
        )
    if name == "flash-crowd":
        return NetworkScenario(
            name=name,
            num_cells=num_cells,
            phases=(
                ConstantPhase(0.25 * horizon_us),
                FlashCrowdPhase(
                    0.5 * horizon_us, cell_id=mid_cell, peak=6.0, topology=topology
                ),
                ConstantPhase(0.25 * horizon_us),
            ),
            description="a 6x demand spike erupts in the middle cell and subsides",
            topology=topology,
        )
    if name == "hotspot-drift":
        return NetworkScenario(
            name=name,
            num_cells=num_cells,
            phases=(HotspotDriftPhase(horizon_us, peak=4.0, topology=topology),),
            description="a 4x hotspot migrates from the first cell to the last",
            topology=topology,
        )
    if name == "cell-outage":
        return NetworkScenario(
            name=name,
            num_cells=num_cells,
            phases=(
                ConstantPhase(0.25 * horizon_us),
                CellOutagePhase(0.5 * horizon_us, cell_id=mid_cell, topology=topology),
                ConstantPhase(0.25 * horizon_us),
            ),
            description="the middle cell goes dark; its load spills to neighbours",
            topology=topology,
        )
    if name == "busy-day":
        return NetworkScenario(
            name=name,
            num_cells=num_cells,
            phases=(
                DiurnalPhase(0.4 * horizon_us, amplitude=0.5, cycles=1.0),
                FlashCrowdPhase(
                    0.25 * horizon_us, cell_id=mid_cell, peak=5.0, topology=topology
                ),
                CellOutagePhase(0.2 * horizon_us, cell_id=0, topology=topology),
                ConstantPhase(0.15 * horizon_us, level=0.8),
            ),
            description="a composite day: diurnal ramp, flash crowd, outage, cool-down",
            topology=topology,
        )
    raise ConfigurationError(
        f"unknown scenario {name!r}; catalog: {', '.join(SCENARIO_NAMES)}"
    )
