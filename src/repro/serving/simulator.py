"""The deadline-aware RAN serving simulator.

This is the Figure-2 "centralised RAN" layer: timestamped detection jobs from
many users stream into a plant of heterogeneous workers (annealer QPUs plus
classical fallbacks), a deadline-aware policy (EDF or FIFO) picks what runs
next, compatible jobs are coalesced into batches for the batched kernels, and
admission control demotes jobs that would blow their turnaround deadline
waiting for an annealer onto the fast classical path.

The simulation is event-driven (arrivals and worker-free events through
:class:`~repro.serving.events.EventQueue`) and work-conserving: no worker
idles while an eligible job is queued.  Batch occupancy therefore adapts to
load — light traffic is served solo with minimal latency, heavy traffic
queues and rides the batched engine's throughput.

Reproducibility follows the library-wide child-generator discipline: when
solutions are evaluated, job ``j`` draws exclusively from child generator
``j`` (keyed by job id).  For a fixed job-to-backend assignment — an
annealer-only pool, or admission control disabled — detection outcomes are
therefore identical for every batch ceiling and scheduling order; only the
*timing* changes.  With admission control enabled, scheduling decides
*which backend* serves a deadline-pressured job, so the demoted set (and
those jobs' solutions) legitimately responds to timing knobs.  Every run is
exactly reproducible from its seeds either way, and jobs that miss their
deadline are counted in the report, never dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.network.topology import NetworkTopology
from repro.serving.autoscale import AutoscaleController, ElasticBackendPool
from repro.serving.events import EventQueue
from repro.serving.pool import BackendPool, Worker, build_pool
from repro.serving.qos import DEFAULT_CLASS, ServiceClass
from repro.serving.report import (
    BackendUtilization,
    JobOutcome,
    ServingReport,
    build_serving_report,
)
from repro.serving.scheduler import EdfPolicy, SchedulingPolicy, resolve_policy, select_batch
from repro.serving.workload import ServingJob
from repro.utils.rng import BatchRandomState, ensure_rng_batch

__all__ = ["RANServingSimulator"]

_ARRIVAL = "arrival"
_WORKER_FREE = "worker-free"
_AUTOSCALE = "autoscale"
_WARMUP_DONE = "warmup-done"
_TIME_EPS = 1e-12


def _service_class_of(job: ServingJob) -> ServiceClass:
    """The job's service class; duck-typed jobs default to the legacy class."""
    return getattr(job, "service_class", DEFAULT_CLASS)


class RANServingSimulator:
    """Discrete-event simulation of the multi-user hybrid serving plant.

    Parameters
    ----------
    pool:
        The worker pool; defaults to :func:`repro.serving.pool.build_pool`'s
        two annealer workers plus one classical fallback.
    policy:
        ``"edf"``, ``"fifo"`` or a :class:`SchedulingPolicy` instance.
    max_batch_size:
        Ceiling on coalesced batch size (``None`` = unbounded; the annealer's
        lane count still bounds how much a large batch helps).
    admission_control:
        When true, a queued job whose deadline would be missed even if it were
        served *next* on the earliest-free annealer is eligible for demotion
        to an idle classical worker.  When false, classical workers serve only
        if the pool contains no annealers at all.
    evaluate_solutions:
        When true each dispatched batch is actually solved through the
        batched kernels (slower; enables quality metrics).  When false only
        the timing model runs — the mode for long load sweeps.
    autoscaler:
        Optional :class:`~repro.serving.autoscale.AutoscaleController`.
        Requires ``pool`` to be an
        :class:`~repro.serving.autoscale.ElasticBackendPool`; the simulator
        then schedules periodic autoscale events on the event queue and the
        controller flexes the active annealer worker count from observed
        queue depth and deadline pressure.
    topology:
        Optional :class:`~repro.network.topology.NetworkTopology` the
        workload's cells live on.  Job cell ids are validated against it,
        it is recorded in the report metadata, and — when the autoscaler's
        ``hotspot_queue_per_cell`` threshold is set — per-cell queue depths
        are fed to the controller so a single overloaded cell can trigger
        scale-up before the *network-wide* queue looks deep.  Omitting it
        changes nothing about the simulation.
    class_aware:
        When true (default) scheduling honours service classes: EDF order
        is prefixed by class priority, batches never cross the degradation
        boundary, and admission control follows the class ladder — only
        *demotable* pressured jobs move to the classical path, and
        *sheddable* lower classes may be offloaded pre-emptively to relieve
        a pressured higher class.  With a single-default-class workload all
        of this collapses to the legacy behaviour bitwise.  ``False``
        forces the legacy class-blind semantics even on multi-class
        workloads (the "classless baseline" arm of the QoS study).
    """

    def __init__(
        self,
        pool: Optional[BackendPool] = None,
        policy: Union[str, SchedulingPolicy] = "edf",
        max_batch_size: Optional[int] = 16,
        admission_control: bool = True,
        evaluate_solutions: bool = False,
        autoscaler: Optional[AutoscaleController] = None,
        topology: Optional[NetworkTopology] = None,
        class_aware: bool = True,
    ) -> None:
        if max_batch_size is not None and max_batch_size <= 0:
            raise ConfigurationError(
                f"max_batch_size must be positive or None, got {max_batch_size}"
            )
        self.pool = pool if pool is not None else build_pool()
        self.policy = resolve_policy(policy)
        self.class_aware = bool(class_aware)
        if not self.class_aware and isinstance(self.policy, EdfPolicy):
            self.policy = EdfPolicy(class_aware=False)
        self.max_batch_size = max_batch_size
        self.admission_control = bool(admission_control)
        self.evaluate_solutions = bool(evaluate_solutions)
        if autoscaler is not None and not isinstance(self.pool, ElasticBackendPool):
            raise ConfigurationError(
                "an autoscaler requires an ElasticBackendPool, got "
                f"{type(self.pool).__name__}"
            )
        self.autoscaler = autoscaler
        self.topology = topology

    # ------------------------------------------------------------------ #

    def run(self, jobs: Sequence[ServingJob], rng: BatchRandomState = None) -> ServingReport:
        """Serve a workload and return the aggregate :class:`ServingReport`."""
        if not jobs:
            raise ConfigurationError("jobs must not be empty")
        ordered = sorted(jobs, key=lambda job: (job.arrival_us, job.job_id))
        ids = [job.job_id for job in ordered]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("jobs must carry unique job_ids")
        if self.topology is not None:
            for job in ordered:
                if not 0 <= job.cell_id < self.topology.num_cells:
                    raise ConfigurationError(
                        f"job {job.job_id} sits in cell {job.cell_id}, outside the "
                        f"topology's {self.topology.num_cells}-cell layout"
                    )
        # One lookup per run; job-lifecycle spans are emitted post-hoc from
        # the outcomes, so the event loop below carries no per-job telemetry
        # cost and disabled mode is equivalent to the uninstrumented loop.
        tel = telemetry.active()

        # Child generator j belongs to job j (keyed by sorted job id), so
        # solutions are independent of batching and scheduling order.
        child_of: Dict[int, np.random.Generator] = {}
        if self.evaluate_solutions:
            children = ensure_rng_batch(rng, len(ordered))
            for job_id, child in zip(sorted(ids), children):
                child_of[job_id] = child

        self._reset_pool()
        events = EventQueue()
        for job in ordered:
            events.push(job.arrival_us, (_ARRIVAL, job))
        if self.autoscaler is not None:
            self.autoscaler.reset()
            start_us = ordered[0].arrival_us
            self.autoscaler.begin(start_us, self.pool)
            events.push(start_us + self.autoscaler.config.interval_us, (_AUTOSCALE, None))

        queue: List[ServingJob] = []
        outcomes: List[JobOutcome] = []
        arrivals_remaining = len(ordered)
        while events:
            now, payload = events.pop()
            pending = [payload]
            while events and events.peek_time() <= now + _TIME_EPS:
                pending.append(events.pop()[1])
            autoscale_tick = False
            for kind, item in pending:
                if kind == _ARRIVAL:
                    queue.append(item)
                    arrivals_remaining -= 1
                elif kind == _AUTOSCALE:
                    autoscale_tick = True
            if autoscale_tick and self.autoscaler is not None:
                pressured_jobs = [job for job in queue if self._pressured(job, now)]
                pressured = len(pressured_jobs)
                step_kwargs: Dict = {}
                if self.autoscaler.config.critical_pressure_jobs is not None:
                    step_kwargs["critical_pressured"] = sum(
                        1
                        for job in pressured_jobs
                        if _service_class_of(job).degradation_tier == 0
                    )
                if self.autoscaler.config.hotspot_queue_per_cell is not None:
                    depths: Dict[int, int] = {}
                    for job in queue:
                        depths[job.cell_id] = depths.get(job.cell_id, 0) + 1
                    step_kwargs["cell_queue_depths"] = depths
                action = self.autoscaler.step(
                    now, queue, self.pool, pressured, **step_kwargs
                )
                if tel is not None:
                    active = self.pool.active_annealer_count
                    tel.registry.gauge("repro_serving_queue_depth").set(len(queue))
                    tel.registry.gauge("repro_serving_deadline_pressure").set(pressured)
                    tel.registry.gauge("repro_serving_active_annealers").set(active)
                    tel.tracer.event(
                        "serving.autoscale",
                        time_us=now,
                        clock=telemetry.CLOCK_SIM,
                        queue_depth=len(queue),
                        pressured=pressured,
                        active_annealers=active,
                        action=action.action if action is not None else "hold",
                    )
                if action is not None and action.action == "scale-up":
                    # Wake the dispatcher the instant the warm-up completes;
                    # otherwise the new worker could idle until the next
                    # arrival/tick while pressured jobs queue.
                    events.push(
                        now + self.autoscaler.config.warmup_us, (_WARMUP_DONE, None)
                    )
                # Keep ticking while load can still arrive or is still queued;
                # once both dry up, the remaining worker-free events just
                # drain in-flight batches and no scaling decision is needed.
                if queue or arrivals_remaining:
                    events.push(now + self.autoscaler.config.interval_us, (_AUTOSCALE, None))
            self._dispatch(now, queue, events, outcomes, child_of)

        if queue:  # pragma: no cover - defensive; dispatch drains every queue
            raise ConfigurationError(f"{len(queue)} jobs were never scheduled")

        outcomes.sort(key=lambda outcome: outcome.job_id)
        metadata = {
            "max_batch_size": self.max_batch_size,
            "admission_control": self.admission_control,
            "evaluate_solutions": self.evaluate_solutions,
            "class_aware": self.class_aware,
            "num_annealer_workers": len(self.pool.annealer_workers),
            "num_classical_workers": len(self.pool.classical_workers),
        }
        if self.topology is not None:
            metadata["topology_kind"] = self.topology.kind
            metadata["num_cells"] = self.topology.num_cells
        if self.autoscaler is not None:
            end_us = max(outcome.finish_us for outcome in outcomes)
            metadata.update(
                {
                    "autoscale_events": len(self.autoscaler.events),
                    "autoscale_average_active": self.autoscaler.average_active_workers(
                        end_us
                    ),
                    "autoscale_final_active": self.pool.active_annealer_count,
                }
            )
        report = build_serving_report(
            outcomes,
            policy=self.policy.name,
            backend_utilization=self._utilization(outcomes),
            metadata=metadata,
        )
        if tel is not None:
            _emit_serving_telemetry(tel, report)
        return report

    # ------------------------------------------------------------------ #

    def _reset_pool(self) -> None:
        """Clear worker timelines so consecutive runs are independent."""
        self.pool.reset()

    def _dispatch(
        self,
        now: float,
        queue: List[ServingJob],
        events: EventQueue,
        outcomes: List[JobOutcome],
        child_of: Dict[int, np.random.Generator],
    ) -> None:
        """Work-conserving dispatch of queued jobs onto idle workers at ``now``."""
        has_annealers = bool(self.pool.annealer_workers)
        progress = True
        while progress and queue:
            progress = False
            for worker in self.pool.idle_workers(now, kind="annealer"):
                if not queue:
                    break
                batch = select_batch(
                    queue,
                    self.policy,
                    self.max_batch_size,
                    class_aware=self.class_aware,
                )
                if batch:
                    self._serve(worker, batch, now, events, outcomes, child_of, demoted=False)
                    progress = True
            for worker in self.pool.idle_workers(now, kind="classical"):
                if not queue:
                    break
                if has_annealers and not self.admission_control:
                    break  # fallbacks only activate through admission control
                candidates = (
                    self._degradation_candidates(queue, now) if has_annealers else queue
                )
                if not candidates:
                    continue
                batch = select_batch(
                    queue,
                    self.policy,
                    self.max_batch_size,
                    candidates,
                    class_aware=self.class_aware,
                )
                if batch:
                    self._serve(
                        worker, batch, now, events, outcomes, child_of, demoted=has_annealers
                    )
                    progress = True

    def _degradation_candidates(
        self, queue: List[ServingJob], now: float
    ) -> List[ServingJob]:
        """Jobs eligible for the classical fallback at ``now``.

        Class-blind mode (and the single-default-class identity case, where
        every job is demotable and none sheddable) reduces to the legacy
        rule: every deadline-pressured job.  Class-aware mode follows the
        degradation ladder instead — pressured jobs move only if their class
        is *demotable*, and queued jobs of a *sheddable* class strictly below
        the most critical pressured class may be offloaded pre-emptively to
        free annealer capacity for it.
        """
        pressured = [job for job in queue if self._pressured(job, now)]
        if not self.class_aware:
            return pressured
        demotable = [job for job in pressured if _service_class_of(job).demotable]
        if not pressured:
            return demotable
        min_priority = min(_service_class_of(job).priority for job in pressured)
        chosen = {job.job_id for job in demotable}
        shed = [
            job
            for job in queue
            if job.job_id not in chosen
            and _service_class_of(job).sheddable
            and _service_class_of(job).priority > min_priority
        ]
        return demotable + shed

    def _pressured(self, job: ServingJob, now: float) -> bool:
        """Whether waiting for an annealer already blows the deadline.

        Uses the best projected solo completion over the *active* annealer
        workers (each with its own availability, warm-up horizon and service
        model), so demotion is correct for heterogeneous and elastic pools.
        Parked workers are no capacity; warming workers count from the
        moment they become dispatchable.
        """
        if job.deadline_us is None:
            return False
        workers = self.pool.active_annealer_workers
        if not workers:
            return True
        best_completion = min(
            max(now, worker.server.free_at_us, worker.available_from_us)
            + worker.backend.service_time_us([job])
            for worker in workers
        )
        return best_completion > job.deadline_us + 1e-9

    def _serve(
        self,
        worker: Worker,
        batch: List[ServingJob],
        now: float,
        events: EventQueue,
        outcomes: List[JobOutcome],
        child_of: Dict[int, np.random.Generator],
        demoted: bool,
    ) -> None:
        """Dispatch one batch onto one worker and record per-job outcomes."""
        service = worker.backend.service_time_us(batch)
        timing = worker.server.serve(now, service)
        worker.record_batch(len(batch))
        events.push(timing.finish_us, (_WORKER_FREE, worker))

        solutions = None
        if self.evaluate_solutions:
            solutions = worker.backend.solve(batch, [child_of[job.job_id] for job in batch])

        for position, job in enumerate(batch):
            met: Optional[bool] = None
            if job.deadline_us is not None:
                met = bool(timing.finish_us <= job.deadline_us + 1e-9)
            best_energy = detected = None
            if solutions is not None:
                best_energy = solutions[position].best_energy
                detected = solutions[position].detected_optimum
            outcomes.append(
                JobOutcome(
                    job_id=job.job_id,
                    user_id=job.user_id,
                    cell_id=job.cell_id,
                    arrival_us=job.arrival_us,
                    start_us=timing.start_us,
                    finish_us=timing.finish_us,
                    deadline_us=job.deadline_us,
                    met_deadline=met,
                    backend=worker.name,
                    backend_kind=worker.kind,
                    demoted=demoted,
                    batch_size=len(batch),
                    best_energy=best_energy,
                    detected_optimum=detected,
                    service_class=_service_class_of(job).name,
                )
            )

    def _utilization(self, outcomes: Sequence[JobOutcome]) -> List[BackendUtilization]:
        makespan = max(
            max(outcome.finish_us for outcome in outcomes)
            - min(outcome.arrival_us for outcome in outcomes),
            1e-9,
        )
        stats = []
        for worker in self.pool.workers:
            jobs = sum(worker.batch_sizes)
            stats.append(
                BackendUtilization(
                    name=worker.name,
                    kind=worker.kind,
                    jobs=jobs,
                    batches=worker.batches,
                    busy_us=worker.server.busy_us,
                    utilization=worker.server.utilization(makespan),
                    mean_batch_size=(
                        float(np.mean(worker.batch_sizes)) if worker.batch_sizes else 0.0
                    ),
                )
            )
        return stats


def _emit_serving_telemetry(tel: "telemetry.TelemetrySession", report: ServingReport) -> None:
    """Emit per-job lifecycle spans and run-level metrics from a finished run.

    Runs entirely *after* the event loop, on the completed outcome list —
    every timestamp is simulation time already decided by the simulator, so
    emission order cannot perturb scheduling, timing or RNG draws.  Per job:
    a root ``serving.job`` span (arrival → completion) with ``serving.queue``
    (arrival → service start) and ``serving.solve`` (service → completion)
    children, which is exactly the queue→solve breakdown the run summary and
    the acceptance test reconstruct.
    """
    run_index = tel.next_run_index()
    policy = report.policy
    jobs = tel.registry.counter("repro_serving_jobs_total", policy=policy)
    misses = tel.registry.counter("repro_serving_deadline_misses_total", policy=policy)
    demotions = tel.registry.counter("repro_serving_demotions_total", policy=policy)
    latency = tel.registry.histogram("repro_serving_latency_us", policy=policy)
    # Per-cell O&M counters: the KPI stream the network layer's hotspot
    # detector consumes (see repro.network.kpi).
    cell_jobs: Dict[int, object] = {}
    cell_misses: Dict[int, object] = {}
    for outcome in report.outcomes:
        jobs.inc()
        cell = outcome.cell_id
        if cell not in cell_jobs:
            cell_jobs[cell] = tel.registry.counter(
                "repro_serving_cell_jobs_total", cell=str(cell)
            )
            cell_misses[cell] = tel.registry.counter(
                "repro_serving_cell_deadline_misses_total", cell=str(cell)
            )
        cell_jobs[cell].inc()
        latency.observe(outcome.latency_us)
        job_span = tel.tracer.record_span(
            "serving.job",
            outcome.arrival_us,
            outcome.finish_us,
            clock=telemetry.CLOCK_SIM,
            run_index=run_index,
            job_id=outcome.job_id,
            user_id=outcome.user_id,
            cell_id=outcome.cell_id,
            backend=outcome.backend,
            backend_kind=outcome.backend_kind,
            demoted=outcome.demoted,
            batch_size=outcome.batch_size,
            met_deadline=outcome.met_deadline,
        )
        tel.tracer.record_span(
            "serving.queue",
            outcome.arrival_us,
            outcome.start_us,
            clock=telemetry.CLOCK_SIM,
            parent_id=job_span,
            run_index=run_index,
            job_id=outcome.job_id,
        )
        tel.tracer.record_span(
            "serving.solve",
            outcome.start_us,
            outcome.finish_us,
            clock=telemetry.CLOCK_SIM,
            parent_id=job_span,
            run_index=run_index,
            job_id=outcome.job_id,
        )
        if outcome.demoted:
            demotions.inc()
            tel.tracer.event(
                "serving.demotion",
                time_us=outcome.start_us,
                clock=telemetry.CLOCK_SIM,
                parent_id=job_span,
                run_index=run_index,
                job_id=outcome.job_id,
                backend=outcome.backend,
            )
        if outcome.met_deadline is False:
            misses.inc()
            cell_misses[cell].inc()
    # The run event carries the report's own percentiles, so a trace file is
    # self-contained: consumers can check span-derived latencies against the
    # authoritative report without re-running anything.
    end_us = max(outcome.finish_us for outcome in report.outcomes) if report.outcomes else 0.0
    tel.tracer.event(
        "serving.run",
        time_us=end_us,
        clock=telemetry.CLOCK_SIM,
        run_index=run_index,
        policy=policy,
        jobs=report.num_jobs,
        p50_latency_us=report.p50_latency_us,
        p95_latency_us=report.p95_latency_us,
        p99_latency_us=report.p99_latency_us,
        deadline_miss_rate=report.deadline_miss_rate,
        demotion_rate=report.demotion_rate,
    )
