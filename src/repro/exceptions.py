"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so downstream users can catch the whole family with a
single ``except`` clause while still distinguishing configuration mistakes
from runtime solver failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DimensionError",
    "ModulationError",
    "ScheduleError",
    "EmbeddingError",
    "SolverError",
    "TransformError",
    "PipelineError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class DimensionError(ReproError):
    """Array/matrix dimensions do not match what an operation requires."""


class ModulationError(ReproError):
    """An unknown or unsupported modulation scheme was requested."""


class ScheduleError(ReproError):
    """An annealing schedule is malformed (non-monotone time, s out of range)."""


class EmbeddingError(ReproError):
    """A minor embedding could not be found or is invalid for the topology."""


class SolverError(ReproError):
    """A solver failed to produce a solution for the given problem."""


class TransformError(ReproError):
    """A problem transformation (e.g. MIMO -> QUBO) received invalid input."""


class PipelineError(ReproError):
    """The classical-quantum pipeline simulator was misconfigured."""
