"""Spin-vector Monte Carlo (SVMC) backend.

SVMC is a widely used classical surrogate for transverse-field quantum
annealing dynamics (Shin et al., and the "spin-vector" models in the quantum
annealing benchmarking literature): each qubit is replaced by a classical
planar rotor with angle ``theta_i``; the transverse field pulls rotors toward
``theta = pi/2`` (the "superposition" direction) with strength A(s) while the
problem Hamiltonian pulls the projections ``cos(theta_i)`` toward the Ising
minimum with strength B(s).  Metropolis updates of the angles at the device
temperature evolve the system along the anneal schedule; at the end of the
schedule each rotor is projected onto a classical spin.

The surrogate reproduces the qualitative behaviour the paper's experiments
depend on: a reverse anneal initialised near the optimum performs a *refined
local search* around it (fluctuations strong enough to repair a few wrong
bits but not strong enough to erase the state), while pushing the switch point
``s_p`` too low erases the initialisation and pushing it too high freezes the
dynamics entirely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.annealing.backend import AnnealingBackend, broadcast_initial_spins
from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

__all__ = ["SpinVectorMonteCarloBackend"]


class SpinVectorMonteCarloBackend(AnnealingBackend):
    """Schedule-aware spin-vector Monte Carlo.

    Parameters
    ----------
    sweeps_per_microsecond:
        Number of full Metropolis sweeps executed per microsecond of schedule
        time; it controls how thoroughly the rotor system equilibrates at each
        point of the schedule.
    proposal_width:
        Standard deviation (radians) of the Gaussian angle proposals; a full
        uniform re-draw is mixed in with probability ``uniform_fraction``.
    uniform_fraction:
        Probability of proposing an entirely new uniform angle instead of a
        local Gaussian perturbation (helps escape frozen rotors).
    freeze_scale:
        Transverse-field scale (relative to B(1)) below which the single-spin
        dynamics freeze out.  Physical annealers relax only while quantum
        fluctuations are appreciable; once A(s) drops well below the problem
        scale the state is essentially read-only.  Each spin update is
        attempted with probability ``min(1, A(s)/B(1)/freeze_scale)`` (floored
        at ``residual_activity``), which reproduces the hardware behaviour the
        paper's Figure 6 depends on: a reverse anneal from a *random* state
        cannot be rescued by the final ramp, so its samples stay poor.
    residual_activity:
        Floor on the attempt probability, modelling the weak residual thermal
        relaxation near s = 1.
    """

    name = "spin-vector-monte-carlo"

    def __init__(
        self,
        sweeps_per_microsecond: float = 48.0,
        proposal_width: float = 0.6,
        uniform_fraction: float = 0.05,
        freeze_scale: float = 0.15,
        residual_activity: float = 0.02,
    ) -> None:
        if sweeps_per_microsecond <= 0:
            raise ConfigurationError(
                f"sweeps_per_microsecond must be positive, got {sweeps_per_microsecond}"
            )
        if proposal_width <= 0:
            raise ConfigurationError(f"proposal_width must be positive, got {proposal_width}")
        if not 0.0 <= uniform_fraction <= 1.0:
            raise ConfigurationError(
                f"uniform_fraction must lie in [0, 1], got {uniform_fraction}"
            )
        if freeze_scale <= 0:
            raise ConfigurationError(f"freeze_scale must be positive, got {freeze_scale}")
        if not 0.0 <= residual_activity <= 1.0:
            raise ConfigurationError(
                f"residual_activity must lie in [0, 1], got {residual_activity}"
            )
        self.sweeps_per_microsecond = float(sweeps_per_microsecond)
        self.proposal_width = float(proposal_width)
        self.uniform_fraction = float(uniform_fraction)
        self.freeze_scale = float(freeze_scale)
        self.residual_activity = float(residual_activity)

    # ------------------------------------------------------------------ #

    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run the SVMC dynamics along the schedule; see the backend interface."""
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        generator = ensure_rng(rng)
        fields = np.asarray(fields, dtype=float).ravel()
        couplings = np.asarray(couplings, dtype=float)
        num_spins = fields.size

        if num_spins == 0:
            return np.zeros((num_reads, 0), dtype=np.int8)

        symmetric = couplings + couplings.T
        temperature = max(relative_temperature, 1e-6)

        initial = broadcast_initial_spins(initial_spins, num_reads, num_spins)
        if schedule.requires_initial_state and initial is None:
            raise ConfigurationError(
                f"schedule {schedule.name!r} starts at s = 1 and requires an initial state"
            )

        theta = self._initial_angles(initial, num_reads, num_spins, generator)

        num_steps = max(2, int(round(schedule.duration_us * self.sweeps_per_microsecond)))
        waypoints = schedule.discretise(num_steps)

        cosines = np.cos(theta)
        # local[r, i] = h_i + sum_j J_ij cos(theta_j)   (problem local field)
        local = fields[None, :] + cosines @ symmetric

        for _, s in waypoints:
            transverse = annealing_functions.relative_transverse(float(s))
            problem = annealing_functions.relative_problem(float(s))
            # Freeze-out: spin updates only happen while quantum fluctuations
            # remain appreciable relative to the problem scale.
            activity = max(min(1.0, transverse / self.freeze_scale), self.residual_activity)
            order = generator.permutation(num_spins)
            for index in order:
                current_theta = theta[:, index]
                current_cos = cosines[:, index]
                current_sin = np.sin(current_theta)

                gaussian = current_theta + generator.normal(
                    0.0, self.proposal_width, size=num_reads
                )
                uniform = generator.uniform(0.0, np.pi, size=num_reads)
                use_uniform = generator.random(num_reads) < self.uniform_fraction
                proposed_theta = np.where(use_uniform, uniform, np.clip(gaussian, 0.0, np.pi))
                proposed_cos = np.cos(proposed_theta)
                proposed_sin = np.sin(proposed_theta)

                # Local field excluding spin `index` itself (J_ii = 0 always).
                problem_field = local[:, index]
                delta_energy = problem * problem_field * (proposed_cos - current_cos)
                delta_energy -= transverse * (proposed_sin - current_sin)

                accept = (delta_energy <= 0.0) | (
                    generator.random(num_reads) < np.exp(-np.clip(delta_energy, 0.0, 700.0) / temperature)
                )
                if activity < 1.0:
                    accept &= generator.random(num_reads) < activity
                if not np.any(accept):
                    continue

                new_theta = np.where(accept, proposed_theta, current_theta)
                new_cos = np.cos(new_theta)
                change = new_cos - current_cos
                theta[:, index] = new_theta
                cosines[:, index] = new_cos
                # Rank-1 update of every read's local fields.
                local += change[:, None] * symmetric[index][None, :]

        return self._project(cosines, generator)

    # ------------------------------------------------------------------ #

    def _initial_angles(
        self,
        initial_spins: Optional[np.ndarray],
        num_reads: int,
        num_spins: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Angles for the start of the schedule.

        Reverse anneals start from the programmed classical state (angles 0 or
        pi); forward anneals start in the fully "quantum" configuration where
        every rotor points along the transverse field (pi/2), plus a tiny
        symmetric jitter so reads decorrelate immediately.
        """
        if initial_spins is not None:
            theta = np.where(initial_spins > 0, 0.0, np.pi).astype(float)
            return theta
        jitter = generator.normal(0.0, 1e-3, size=(num_reads, num_spins))
        return np.full((num_reads, num_spins), np.pi / 2.0) + jitter

    @staticmethod
    def _project(cosines: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        """Project rotor angles onto classical spins at the end of the anneal."""
        spins = np.where(cosines > 0.0, 1, -1).astype(np.int8)
        undecided = np.isclose(cosines, 0.0)
        if np.any(undecided):
            random_spins = generator.choice(np.array([-1, 1], dtype=np.int8), size=int(undecided.sum()))
            spins[undecided] = random_spins
        return spins
