"""Spin-vector Monte Carlo (SVMC) backend.

SVMC is a widely used classical surrogate for transverse-field quantum
annealing dynamics (Shin et al., and the "spin-vector" models in the quantum
annealing benchmarking literature): each qubit is replaced by a classical
planar rotor with angle ``theta_i``; the transverse field pulls rotors toward
``theta = pi/2`` (the "superposition" direction) with strength A(s) while the
problem Hamiltonian pulls the projections ``cos(theta_i)`` toward the Ising
minimum with strength B(s).  Metropolis updates of the angles at the device
temperature evolve the system along the anneal schedule; at the end of the
schedule each rotor is projected onto a classical spin.

The surrogate reproduces the qualitative behaviour the paper's experiments
depend on: a reverse anneal initialised near the optimum performs a *refined
local search* around it (fluctuations strong enough to repair a few wrong
bits but not strong enough to erase the state), while pushing the switch point
``s_p`` too low erases the initialisation and pushing it too high freezes the
dynamics entirely.

Paper linkage
-------------
SVMC is the higher-fidelity of the two device surrogates and the default
backend of :class:`repro.annealing.QuantumAnnealerSimulator`.  It models the
transverse-field mechanism behind the paper's Figure 5 schedules and the
Figure 6/8 reverse-annealing band structure (success over a window of
``s_p``, collapse on both sides).  Like the schedule-driven backend it
implements the batched engine contract: both entry points advance through
the replica-parallel rotor kernels of :mod:`repro.annealing.kernels` — one
array program over ``(batch, spins, reads)`` per sweep — with per-instance
child generators so batched and sequential results are bitwise-identical
and independent of batch grouping.  The ``REPRO_KERNEL`` environment
variable selects the kernel implementation (vectorized / reference / numba /
legacy); see ``docs/kernels.md``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.annealing import kernels
from repro.annealing.backend import AnnealingBackend, broadcast_initial_spins, pad_problem_batch
from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.utils.rng import BatchRandomState, ensure_rng, ensure_rng_batch

__all__ = ["SpinVectorMonteCarloBackend"]


class SpinVectorMonteCarloBackend(AnnealingBackend):
    """Schedule-aware spin-vector Monte Carlo.

    Parameters
    ----------
    sweeps_per_microsecond:
        Number of full Metropolis sweeps executed per microsecond of schedule
        time; it controls how thoroughly the rotor system equilibrates at each
        point of the schedule.
    proposal_width:
        Standard deviation (radians) of the Gaussian angle proposals; a full
        uniform re-draw is mixed in with probability ``uniform_fraction``.
    uniform_fraction:
        Probability of proposing an entirely new uniform angle instead of a
        local Gaussian perturbation (helps escape frozen rotors).
    freeze_scale:
        Transverse-field scale (relative to B(1)) below which the single-spin
        dynamics freeze out.  Physical annealers relax only while quantum
        fluctuations are appreciable; once A(s) drops well below the problem
        scale the state is essentially read-only.  Each spin update is
        attempted with probability ``min(1, A(s)/B(1)/freeze_scale)`` (floored
        at ``residual_activity``), which reproduces the hardware behaviour the
        paper's Figure 6 depends on: a reverse anneal from a *random* state
        cannot be rescued by the final ramp, so its samples stay poor.
    residual_activity:
        Floor on the attempt probability, modelling the weak residual thermal
        relaxation near s = 1.
    """

    name = "spin-vector-monte-carlo"

    def __init__(
        self,
        sweeps_per_microsecond: float = 48.0,
        proposal_width: float = 0.6,
        uniform_fraction: float = 0.05,
        freeze_scale: float = 0.15,
        residual_activity: float = 0.02,
    ) -> None:
        if sweeps_per_microsecond <= 0:
            raise ConfigurationError(
                f"sweeps_per_microsecond must be positive, got {sweeps_per_microsecond}"
            )
        if proposal_width <= 0:
            raise ConfigurationError(f"proposal_width must be positive, got {proposal_width}")
        if not 0.0 <= uniform_fraction <= 1.0:
            raise ConfigurationError(
                f"uniform_fraction must lie in [0, 1], got {uniform_fraction}"
            )
        if freeze_scale <= 0:
            raise ConfigurationError(f"freeze_scale must be positive, got {freeze_scale}")
        if not 0.0 <= residual_activity <= 1.0:
            raise ConfigurationError(
                f"residual_activity must lie in [0, 1], got {residual_activity}"
            )
        self.sweeps_per_microsecond = float(sweeps_per_microsecond)
        self.proposal_width = float(proposal_width)
        self.uniform_fraction = float(uniform_fraction)
        self.freeze_scale = float(freeze_scale)
        self.residual_activity = float(residual_activity)

    # ------------------------------------------------------------------ #

    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run the SVMC dynamics along the schedule; see the backend interface.

        Implemented as a batch of one: the same rotor kernel serves both entry
        points, so a single run is bitwise-identical to the corresponding lane
        of any batched run seeded with the same generator.
        """
        generator = ensure_rng(rng)
        return self.run_batch(
            [np.asarray(fields, dtype=float).ravel()],
            [np.asarray(couplings, dtype=float)],
            schedule,
            num_reads,
            annealing_functions,
            relative_temperature,
            initial_spins=None if initial_spins is None else [initial_spins],
            rng=[generator],
        )[0]

    def _sweep_settings(
        self,
        schedule: AnnealSchedule,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
    ) -> List[tuple]:
        """Per-sweep ``(problem, transverse, temperature, activity)`` scalars."""
        temperature = max(relative_temperature, 1e-6)
        num_steps = max(2, int(round(schedule.duration_us * self.sweeps_per_microsecond)))
        settings = []
        for _, s in schedule.discretise(num_steps):
            problem = annealing_functions.relative_problem(float(s))
            transverse = annealing_functions.relative_transverse(float(s))
            # Freeze-out: spin updates only happen while quantum fluctuations
            # remain appreciable relative to the problem scale.
            activity = max(min(1.0, transverse / self.freeze_scale), self.residual_activity)
            settings.append((problem, transverse, temperature, activity))
        return settings

    def run_batch(
        self,
        fields: Sequence[np.ndarray],
        couplings: Sequence[np.ndarray],
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[Sequence[Optional[np.ndarray]]] = None,
        rng: BatchRandomState = None,
    ) -> List[np.ndarray]:
        """Vectorised multi-instance SVMC kernel; see the backend interface.

        All B rotor systems evolve through the shared schedule as one
        replica-parallel array computation (see
        :mod:`repro.annealing.kernels`), padded to a common size, with
        instance ``b`` drawing exclusively from child generator ``b`` — so
        results are independent of how a workload is grouped into batches.
        The sweep implementation is selected by the ``REPRO_KERNEL``
        environment variable; ``REPRO_KERNEL=legacy`` reproduces the
        pre-kernel-rewrite sequential dynamics bit for bit.
        """
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        batch = len(fields)
        if initial_spins is not None and len(initial_spins) != batch:
            raise ConfigurationError(
                f"{len(initial_spins)} initial states supplied for a batch of {batch}"
            )
        if batch == 0:
            return []
        children = ensure_rng_batch(rng, batch)
        padded_fields, symmetric, mask, sizes = pad_problem_batch(fields, couplings)
        max_size = padded_fields.shape[1]

        initials: List[Optional[np.ndarray]] = []
        for index in range(batch):
            supplied = None if initial_spins is None else initial_spins[index]
            initial = broadcast_initial_spins(supplied, num_reads, int(sizes[index]))
            if schedule.requires_initial_state and initial is None and sizes[index] > 0:
                raise ConfigurationError(
                    f"schedule {schedule.name!r} starts at s = 1 and requires an "
                    f"initial state (missing for instance {index})"
                )
            initials.append(initial)

        if max_size == 0:
            return [np.zeros((num_reads, 0), dtype=np.int8) for _ in range(batch)]

        settings = self._sweep_settings(schedule, annealing_functions, relative_temperature)
        kernel = kernels.active_kernel_name()

        if kernel == "legacy":
            # Pre-rewrite read-major layout and sequential per-position sweeps.
            theta = np.zeros((batch, num_reads, max_size))
            cosines = np.ones((batch, num_reads, max_size))
            local = np.zeros((batch, num_reads, max_size))
            for index in range(batch):
                size = int(sizes[index])
                if size == 0:
                    continue
                theta[index, :, :size] = self._initial_angles(
                    initials[index], num_reads, size, children[index]
                )
                cosines[index, :, :size] = np.cos(theta[index, :, :size])
                local[index, :, :size] = (
                    padded_fields[index, :size][None, :]
                    + cosines[index, :, :size] @ symmetric[index, :size, :size]
                )
            kernels.svmc_sweeps_legacy(
                theta,
                cosines,
                local,
                symmetric,
                mask,
                sizes,
                children,
                settings,
                proposal_width=self.proposal_width,
                uniform_fraction=self.uniform_fraction,
            )
            return [
                self._project(cosines[index, :, : int(sizes[index])], children[index])
                for index in range(batch)
            ]

        # Replica-parallel kernels use the spin-major (batch, spins, reads)
        # layout.  Padding rotors sit at theta = 0 (cos 1, sin 0) with zero
        # couplings: they cannot influence real spins and the kernel's mask
        # keeps them frozen.
        theta = np.zeros((batch, max_size, num_reads))
        for index in range(batch):
            size = int(sizes[index])
            if size == 0:
                continue
            theta[index, :size] = self._initial_angles(
                initials[index], num_reads, size, children[index]
            ).T
        # Padding rotors at theta = 0 land exactly on cos 1 / sin 0.
        cosines = np.cos(theta)
        sines = np.sin(theta)
        local = kernels.initial_local_fields(padded_fields, symmetric, cosines)
        kernels.svmc_sweeps(
            theta,
            cosines,
            sines,
            local,
            symmetric,
            mask,
            sizes,
            children,
            settings,
            implementation=kernel,
            proposal_width=self.proposal_width,
            uniform_fraction=self.uniform_fraction,
        )
        return [
            self._project(cosines[index, : int(sizes[index])].T, children[index])
            for index in range(batch)
        ]

    # ------------------------------------------------------------------ #

    def _initial_angles(
        self,
        initial_spins: Optional[np.ndarray],
        num_reads: int,
        num_spins: int,
        generator: np.random.Generator,
    ) -> np.ndarray:
        """Angles for the start of the schedule.

        Reverse anneals start from the programmed classical state (angles 0 or
        pi); forward anneals start in the fully "quantum" configuration where
        every rotor points along the transverse field (pi/2), plus a tiny
        symmetric jitter so reads decorrelate immediately.
        """
        if initial_spins is not None:
            theta = np.where(initial_spins > 0, 0.0, np.pi).astype(float)
            return theta
        jitter = generator.normal(0.0, 1e-3, size=(num_reads, num_spins))
        return np.full((num_reads, num_spins), np.pi / 2.0) + jitter

    @staticmethod
    def _project(cosines: np.ndarray, generator: np.random.Generator) -> np.ndarray:
        """Project rotor angles onto classical spins at the end of the anneal."""
        spins = np.where(cosines > 0.0, 1, -1).astype(np.int8)
        undecided = np.isclose(cosines, 0.0)
        if np.any(undecided):
            random_spins = generator.choice(
                np.array([-1, 1], dtype=np.int8), size=int(undecided.sum())
            )
            spins[undecided] = random_spins
        return spins
