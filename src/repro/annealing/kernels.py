"""Replica-parallel sweep kernels shared by the anneal backends and solvers.

This module is the numerical core of the library: the Metropolis sweep loops
of :class:`~repro.annealing.sa_backend.ScheduleDrivenAnnealingBackend`,
:class:`~repro.annealing.svmc.SpinVectorMonteCarloBackend` and the classical
:class:`~repro.classical.simulated_annealing.SimulatedAnnealingSolver` all
execute here.  Each family (SA spin flips, SVMC rotor updates) is implemented
several times over the *same* dynamics specification:

``vectorized`` (default)
    One array program over ``(batch, spins, reads)`` per sweep — every read
    of every instance advances in a single sequence of numpy operations.
``reference``
    Per-read python loops spelling out the decision logic one scalar at a
    time.  Slow, but the executable specification: ``tests/test_kernels.py``
    asserts the other implementations match it bit for bit.
``numba``
    The vectorized data flow with the per-chunk decision loops fused by a
    numba JIT (see :mod:`repro.annealing._kernels_numba`).  Optional: when
    numba is not importable the library falls back to ``vectorized`` with a
    one-time warning, so nothing ever requires it.
``legacy``
    The pre-kernel-rewrite sequential dynamics (one python iteration per spin
    position per sweep), preserved verbatim as the benchmark baseline for the
    vectorized kernels and as an escape hatch for reproducing historical
    bitstreams.

Select an implementation with the ``REPRO_KERNEL`` environment variable
(``vectorized`` | ``reference`` | ``numba`` | ``legacy``); see
``docs/kernels.md``.

Chunked replica-parallel dynamics
---------------------------------
The replica-parallel kernels sweep the spins in fixed index order in chunks
of ``spins_per_step`` positions.  Within a chunk all proposals are evaluated
against the *same* stale local fields and committed simultaneously; after a
chunk the local fields of every spin are refreshed with one rank-``C`` BLAS
contraction.  Fixed order and fixed chunk boundaries make the dynamics
independent of batch composition, and simultaneous within-chunk updates are
what turn the per-position python loop into one array program.  (dwave-neal's
compiled SA sweeps use the same fixed-order structure.)

The Metropolis accept tests are evaluated in log space: each spin draws one
uniform ``u`` per sweep and accepts iff ``dE+ < -T*log(u/activity)`` where
``dE+ = max(dE, 0)`` — probabilistically identical to the legacy pair of
``exp`` gates (accept with probability ``activity * min(1, exp(-dE/T))``)
but computable as a single per-sweep ``log`` block instead of a per-chunk
``exp``.  The freeze-out ``activity`` gate therefore costs no extra draw.

Bitwise-equivalence design rules
--------------------------------
The implementations of one family agree bit for bit because they follow
three rules, which any future kernel must preserve:

* **Exact arithmetic may differ in shape.**  IEEE-754 ``+ - * /``,
  comparisons, and min/max are exact per element, so the reference kernel
  may compute them on python scalars while the vectorized kernel uses whole
  arrays.
* **Transcendentals are evaluated on identical blocks.**  numpy's
  ``log``/``exp``/``cos``/``sin`` pick different code paths for scalars and
  arrays (and numba's libm differs again), so every transcendental is
  computed on a per-instance block of the same values in every
  implementation — never on a 0-d scalar, never inside a JIT loop.
* **Reductions go through shared helpers.**  BLAS contractions are not
  bitwise shape-stable (a ``(R,C)@(C,N)`` gemm differs from row-by-row
  gemv), so the local-field refresh and the energy bookkeeping run through
  :func:`commit_chunk` / :func:`apply_couplings` with identically-shaped
  inputs in every implementation.

Random-draw discipline
----------------------
Instance ``b`` of a batch draws exclusively from child generator ``b``:
per sweep the replica-parallel SA kernel consumes one ``(n, reads)`` uniform
block, and the SVMC kernel one normal block plus two uniform blocks, in that
order.  Draw consumption therefore depends only on the instance's own size,
sweep count and read count — never on batch composition or chunking — which
is what keeps experiment results invariant to batching and worker counts.
"""

from __future__ import annotations

import functools
import os
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.telemetry.log import get_logger

__all__ = [
    "KERNEL_ENV_VAR",
    "KERNEL_CHOICES",
    "DEFAULT_SPINS_PER_STEP",
    "SweepSettings",
    "numba_available",
    "requested_kernel_name",
    "active_kernel_name",
    "initial_local_fields",
    "apply_couplings",
    "commit_chunk",
    "sa_sweeps",
    "sa_sweeps_vectorized",
    "sa_sweeps_reference",
    "sa_sweeps_numba",
    "sa_sweeps_legacy",
    "svmc_sweeps",
    "svmc_sweeps_vectorized",
    "svmc_sweeps_reference",
    "svmc_sweeps_numba",
    "svmc_sweeps_legacy",
]

#: Environment variable selecting the sweep-kernel implementation.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Recognised values of :data:`KERNEL_ENV_VAR`.
KERNEL_CHOICES = ("vectorized", "reference", "numba", "legacy")

#: Spins updated simultaneously per chunk of a sweep.  A constant (rather
#: than e.g. a fraction of the problem size) so chunk boundaries — and with
#: them the dynamics — depend only on the problem size itself.
DEFAULT_SPINS_PER_STEP = 64

#: Per-sweep schedule row: ``(problem, transverse, temperature, activity)``.
#: ``temperature`` may be a ``(batch,)`` array for per-instance schedules
#: (the classical SA solver); the other entries are scalars.
SweepSettings = Sequence[Tuple[float, float, Union[float, np.ndarray], float]]

_log = get_logger(__name__)

_numba_fallback_warned = False


def numba_available() -> bool:
    """True when the optional numba JIT path can be used."""
    from repro.annealing import _kernels_numba

    return _kernels_numba.HAVE_NUMBA


def requested_kernel_name() -> str:
    """The kernel named by ``REPRO_KERNEL``, before availability fallback."""
    raw = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
    if not raw:
        return "vectorized"
    if raw not in KERNEL_CHOICES:
        raise ConfigurationError(
            f"{KERNEL_ENV_VAR}={raw!r} is not a known kernel; "
            f"choose one of {', '.join(KERNEL_CHOICES)}"
        )
    return raw


def active_kernel_name() -> str:
    """The kernel implementation that will actually run.

    Resolves ``REPRO_KERNEL`` and applies the numba fallback: when the JIT
    path is requested but numba is not importable, the vectorized kernel is
    used instead and a warning is emitted once per process.
    """
    name = requested_kernel_name()
    if name == "numba" and not numba_available():
        global _numba_fallback_warned
        if not _numba_fallback_warned:
            _log.warning(
                "kernel.numba_fallback",
                requested="numba",
                used="vectorized",
                reason="numba is not importable",
            )
            _numba_fallback_warned = True
        return "vectorized"
    return name


# --------------------------------------------------------------------- #
# Telemetry instrumentation (timing wrappers around the kernel entry points)
# --------------------------------------------------------------------- #


def _instrumented_call(tel, family, implementation, kernel, args, kwargs, sweeps, batch, reads):
    """Run one kernel call under a wall span with throughput counters.

    Only reached when telemetry is enabled; the timing wraps the call from
    the *outside*, so the kernel's arithmetic and draw sequence are untouched
    and results stay bitwise-identical to the uninstrumented path.
    """
    labels = {"family": family, "implementation": implementation}
    tel.registry.counter("repro_kernel_calls_total", **labels).inc()
    tel.registry.counter("repro_kernel_sweeps_total", **labels).inc(sweeps)
    read_sweeps = sweeps * batch * reads
    tel.registry.counter("repro_kernel_read_sweeps_total", **labels).inc(read_sweeps)
    with tel.tracer.span(
        f"kernel.{family}",
        implementation=implementation,
        sweeps=sweeps,
        batch=batch,
        reads=reads,
    ) as span:
        result = kernel(*args, **kwargs)
    seconds = span.duration_us / 1e6
    tel.registry.counter("repro_kernel_seconds_total", **labels).inc(seconds)
    if seconds > 0.0:
        # The span object stays live in the buffer, so the post-call
        # throughput lands in the exported record.
        span.attrs["read_sweeps_per_s"] = read_sweeps / seconds
    return result


def _dispatch_instrumented(family, implementation, kernel, args, kwargs):
    """Instrument one replica-parallel kernel call when telemetry is enabled.

    Geometry comes from the leading state array ``(batch, max_size, reads)``
    and the trailing ``settings`` sequence (one row per sweep); fully-keyword
    calls skip instrumentation rather than guess at argument positions.
    """
    tel = telemetry.active()
    if tel is None or not args:
        return kernel(*args, **kwargs)
    settings = kwargs["settings"] if "settings" in kwargs else args[-1]
    return _instrumented_call(
        tel,
        family,
        implementation,
        kernel,
        args,
        kwargs,
        sweeps=len(settings),
        batch=args[0].shape[0],
        reads=args[0].shape[-1],
    )


def _instrument_legacy(family):
    """Decorator timing the preserved legacy kernels under telemetry.

    The legacy state layout is ``(batch, reads, max_size)``, hence the
    different ``reads`` axis from :func:`_dispatch_instrumented`.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = telemetry.active()
            if tel is None or not args:
                return fn(*args, **kwargs)
            settings = kwargs["settings"] if "settings" in kwargs else args[-1]
            return _instrumented_call(
                tel,
                family,
                "legacy",
                fn,
                args,
                kwargs,
                sweeps=len(settings),
                batch=args[0].shape[0],
                reads=args[0].shape[1],
            )

        return wrapper

    return decorate


# --------------------------------------------------------------------- #
# Shared numerics (identical call shapes in every implementation)
# --------------------------------------------------------------------- #


def initial_local_fields(
    padded_fields: np.ndarray, symmetric: np.ndarray, state: np.ndarray
) -> np.ndarray:
    """``local[b, i, r] = h_i + sum_j Jsym_ij * state[b, j, r]``.

    One batched gemm shared by every replica-parallel implementation so the
    starting local fields are bitwise-identical across kernels.
    """
    return padded_fields[:, :, None] + np.matmul(symmetric, state)


def apply_couplings(
    local: np.ndarray,
    symmetric: np.ndarray,
    change: np.ndarray,
    p0: int,
    p1: int,
    out: np.ndarray,
) -> np.ndarray:
    """Refresh all local fields after a chunk's simultaneous state changes.

    ``change`` holds the state deltas of chunk positions ``p0..p1``; the
    rank-``C`` contraction ``Jsym[:, :, p0:p1] @ change`` is the single BLAS
    call every implementation shares (a reduction's float result depends on
    its shape, so the shapes must be identical everywhere).
    """
    np.matmul(symmetric[:, :, p0:p1], change, out=out)
    local += out
    return out


def commit_chunk(
    spins: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    change: np.ndarray,
    p0: int,
    p1: int,
    coupled: np.ndarray,
    energies: Optional[np.ndarray] = None,
) -> None:
    """Apply a chunk's simultaneous spin flips and refresh the local fields.

    With ``energies`` supplied, also advances the per-read Ising energies
    exactly for simultaneous flips:
    ``dE = sum_i change_i * local_i(stale) + 1/2 * change^T Jsym change``
    (the second term corrects for pairs flipped in the same chunk).  The
    einsum/gemm reduction order is part of the kernel contract — reference
    and vectorized kernels call this helper with identical arrays.
    """
    if energies is not None:
        gain = np.einsum("bcr,bcr->br", change, local[:, p0:p1])
    spins[:, p0:p1] += change
    apply_couplings(local, symmetric, change, p0, p1, coupled)
    if energies is not None:
        gain += 0.5 * np.einsum("bcr,bcr->br", change, coupled[:, p0:p1])
        energies += gain


def _track_best(
    spins: np.ndarray,
    energies: np.ndarray,
    best_spins: np.ndarray,
    best_energies: np.ndarray,
) -> None:
    """Fold the current states into the running per-read minima (exact copies)."""
    improved = energies < best_energies
    if improved.any():
        np.copyto(best_energies, energies, where=improved)
        np.copyto(best_spins, spins, where=improved[:, None, :])


def _sa_threshold_coefficients(problem, temperature, log_activity):
    """Coefficients of the SA log-space accept threshold.

    Accepting iff ``dE+ < -T*log(u/activity)`` with ``dE = -2*p*s_i*L_i``
    rearranges (for ``p > 0``) to ``min(s_i*L_i, 0) > c1*log(u) + c0``.
    ``temperature`` may be a per-instance array; the arithmetic sequence here
    must match the reference kernel's scalar evaluation exactly.
    """
    denominator = 2.0 * problem
    c1 = temperature / denominator
    c0 = -(temperature * log_activity) / denominator
    return c1, c0


def _sa_fill_thresholds(children, sizes, num_reads, out, problem, temperature, log_activity):
    """Draw each instance's sweep uniforms and scale them into thresholds.

    Writes ``c1*log(u) + c0`` into the real rows of ``out`` (for
    ``problem > 0``) or the raw ``log(u)`` (for ``problem == 0``, where the
    accept rule degenerates to the bare activity gate ``log u < log a``).
    Padding rows are left at their initial zeros, which can never accept.
    """
    temperature = np.asarray(temperature, dtype=float)
    for index, child in enumerate(children):
        size = int(sizes[index])
        if size == 0:
            continue
        block = out[index, :size]
        child.random(out=block)
        with np.errstate(divide="ignore"):
            # u == 0.0 (possible, if vanishingly rare) maps to a -inf
            # threshold, i.e. certain acceptance — exactly the legacy
            # semantics of u < exp(...).
            np.log(block, out=block)
        if problem > 0.0:
            instance_temperature = (
                float(temperature) if temperature.ndim == 0 else float(temperature[index])
            )
            c1, c0 = _sa_threshold_coefficients(problem, instance_temperature, log_activity)
            np.multiply(block, c1, out=block)
            block += c0


def _svmc_fill_blocks(
    children, sizes, num_reads, proposal_width, normals, mixes, thresholds,
    temperature, log_activity,
):
    """Draw each instance's SVMC sweep blocks: normals, mix uniforms, thresholds.

    The third uniform block becomes the log-space accept threshold
    ``-T*log(u) + T*log(activity)`` (accept iff ``dE+ < threshold``).
    Padding rows stay at zero, which can never accept (``dE+ >= 0 >= T*log a``).
    """
    offset = temperature * log_activity
    for index, child in enumerate(children):
        size = int(sizes[index])
        if size == 0:
            continue
        normals[index, :size] = child.normal(0.0, proposal_width, size=(size, num_reads))
        child.random(out=mixes[index, :size])
        block = thresholds[index, :size]
        child.random(out=block)
        with np.errstate(divide="ignore"):
            # u == 0.0 becomes a +inf threshold after negation: certain
            # acceptance, matching the legacy u < exp(...) semantics.
            np.log(block, out=block)
        np.multiply(block, -temperature, out=block)
        block += offset


# --------------------------------------------------------------------- #
# SA (spin-flip Metropolis) replica-parallel kernels
# --------------------------------------------------------------------- #


def sa_sweeps_vectorized(
    spins: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    spins_per_step: int = DEFAULT_SPINS_PER_STEP,
    energies: Optional[np.ndarray] = None,
    best_spins: Optional[np.ndarray] = None,
    best_energies: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Replica-parallel SA sweeps as one array program per chunk.

    ``spins``/``local`` are ``(batch, max_size, reads)`` float64 arrays
    updated in place (padding lanes at +1 / 0).  ``settings`` holds one
    ``(problem, transverse, temperature, activity)`` row per sweep.  With
    ``energies``/``best_spins``/``best_energies`` supplied, per-read Ising
    energies are tracked exactly and running minima maintained (the classical
    SA solver's best-seen-state contract).
    """
    batch, max_size, reads = spins.shape
    track = best_energies is not None
    all_active = bool(mask.all())
    chunk_cap = min(spins_per_step, max_size)
    thresholds = np.zeros((batch, max_size, reads))
    change = np.empty((batch, chunk_cap, reads))
    accept = np.empty((batch, chunk_cap, reads), dtype=bool)
    coupled = np.empty((batch, max_size, reads))
    for problem, _transverse, temperature, activity in settings:
        log_activity = np.log(activity)
        _sa_fill_thresholds(
            children, sizes, reads, thresholds, problem, temperature, log_activity
        )
        for p0 in range(0, max_size, spins_per_step):
            p1 = min(p0 + spins_per_step, max_size)
            width = p1 - p0
            current = spins[:, p0:p1]
            flips = change[:, :width]
            decided = accept[:, :width]
            if problem > 0.0:
                np.multiply(current, local[:, p0:p1], out=flips)
                np.minimum(flips, 0.0, out=flips)
                np.greater(flips, thresholds[:, p0:p1], out=decided)
            else:
                np.less(thresholds[:, p0:p1], log_activity, out=decided)
            if not all_active:
                decided &= mask[:, p0:p1, None]
            np.multiply(decided, -2.0, out=flips)
            flips *= current
            commit_chunk(spins, local, symmetric, flips, p0, p1, coupled, energies)
            if track:
                _track_best(spins, energies, best_spins, best_energies)
    return spins


def sa_sweeps_reference(
    spins: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    spins_per_step: int = DEFAULT_SPINS_PER_STEP,
    energies: Optional[np.ndarray] = None,
    best_spins: Optional[np.ndarray] = None,
    best_energies: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The SA dynamics spelled out with per-read scalar loops.

    The executable specification the fast kernels are tested against: every
    accept decision and flip value is computed one read at a time with exact
    scalar arithmetic, while draws, thresholds and the chunk commit go
    through the same shared helpers (see the module docstring's equivalence
    rules).  Intended for tests only — O(batch * spins * reads) python work.
    """
    batch, max_size, reads = spins.shape
    track = best_energies is not None
    chunk_cap = min(spins_per_step, max_size)
    thresholds = np.zeros((batch, max_size, reads))
    change = np.empty((batch, chunk_cap, reads))
    coupled = np.empty((batch, max_size, reads))
    for problem, _transverse, temperature, activity in settings:
        log_activity = np.log(activity)
        _sa_fill_thresholds(
            children, sizes, reads, thresholds, problem, temperature, log_activity
        )
        for p0 in range(0, max_size, spins_per_step):
            p1 = min(p0 + spins_per_step, max_size)
            flips = change[:, : p1 - p0]
            for b in range(batch):
                size = int(sizes[b])
                for p in range(p0, p1):
                    row = p - p0
                    for r in range(reads):
                        cur = spins[b, p, r]
                        if p >= size:
                            ok = False
                        elif problem > 0.0:
                            prod = cur * local[b, p, r]
                            clipped = prod if prod < 0.0 else 0.0
                            ok = clipped > thresholds[b, p, r]
                        else:
                            ok = thresholds[b, p, r] < log_activity
                        flips[b, row, r] = (-2.0 if ok else -0.0) * cur
            commit_chunk(spins, local, symmetric, flips, p0, p1, coupled, energies)
            if track:
                _track_best(spins, energies, best_spins, best_energies)
    return spins


def sa_sweeps_numba(
    spins: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    spins_per_step: int = DEFAULT_SPINS_PER_STEP,
    energies: Optional[np.ndarray] = None,
    best_spins: Optional[np.ndarray] = None,
    best_energies: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The vectorized SA data flow with JIT-fused chunk decision loops."""
    from repro.annealing import _kernels_numba

    if not _kernels_numba.HAVE_NUMBA:  # pragma: no cover - guarded by dispatch
        raise ConfigurationError("numba kernel requested but numba is not importable")
    batch, max_size, reads = spins.shape
    track = best_energies is not None
    chunk_cap = min(spins_per_step, max_size)
    thresholds = np.zeros((batch, max_size, reads))
    change = np.empty((batch, chunk_cap, reads))
    coupled = np.empty((batch, max_size, reads))
    for problem, _transverse, temperature, activity in settings:
        log_activity = np.log(activity)
        _sa_fill_thresholds(
            children, sizes, reads, thresholds, problem, temperature, log_activity
        )
        for p0 in range(0, max_size, spins_per_step):
            p1 = min(p0 + spins_per_step, max_size)
            flips = change[:, : p1 - p0]
            _kernels_numba.sa_chunk_changes(
                spins,
                local,
                thresholds,
                mask,
                p0,
                p1,
                problem > 0.0,
                float(log_activity),
                flips,
            )
            commit_chunk(spins, local, symmetric, flips, p0, p1, coupled, energies)
            if track:
                _track_best(spins, energies, best_spins, best_energies)
    return spins


_SA_IMPLEMENTATIONS = {
    "vectorized": sa_sweeps_vectorized,
    "reference": sa_sweeps_reference,
    "numba": sa_sweeps_numba,
}


def sa_sweeps(*args, implementation: str = "vectorized", **kwargs) -> np.ndarray:
    """Dispatch SA sweeps to a replica-parallel implementation by name."""
    try:
        kernel = _SA_IMPLEMENTATIONS[implementation]
    except KeyError:
        raise ConfigurationError(
            f"unknown replica-parallel SA kernel {implementation!r}; "
            f"choose one of {', '.join(_SA_IMPLEMENTATIONS)}"
        ) from None
    return _dispatch_instrumented("sa", implementation, kernel, args, kwargs)


@_instrument_legacy("sa")
def sa_sweeps_legacy(
    spins: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
) -> np.ndarray:
    """The pre-rewrite sequential SA dynamics (one python step per position).

    Operates on the historical ``(batch, reads, max_size)`` layout with
    per-sweep random visit orders and per-position ``exp`` accept gates.
    Preserved bit-for-bit as the benchmark baseline and for reproducing
    pre-rewrite bitstreams via ``REPRO_KERNEL=legacy``.
    """
    batch, num_reads, max_size = spins.shape
    lanes = np.arange(batch)
    for problem, _transverse, temperature, activity in settings:
        temperature = float(np.asarray(temperature).reshape(-1)[0]) if not np.isscalar(
            temperature
        ) else float(temperature)
        draws_per_spin = 2 if activity < 1.0 else 1

        orders = np.zeros((batch, max_size), dtype=int)
        draws = np.zeros((batch, max_size, draws_per_spin, num_reads))
        for index in range(batch):
            size = int(sizes[index])
            if size == 0:
                continue
            orders[index, :size] = children[index].permutation(size)
            draws[index, :size] = children[index].random((size, draws_per_spin, num_reads))

        for position in range(max_size):
            active = mask[:, position]
            if not np.any(active):
                break
            index = orders[:, position]
            current = spins[lanes, :, index]
            delta_energy = -2.0 * current * local[lanes, :, index] * problem
            accept = (delta_energy <= 0.0) | (
                draws[:, position, 0]
                < np.exp(-np.clip(delta_energy, 0.0, 700.0) / temperature)
            )
            if activity < 1.0:
                accept &= draws[:, position, 1] < activity
            accept &= active[:, None]
            touched = np.nonzero(np.any(accept, axis=1))[0]
            if touched.size == 0:
                continue
            flipped = np.where(accept, -current, current)
            change = flipped - current
            spins[lanes, :, index] = flipped
            rows = symmetric[touched, index[touched], :]
            local[touched] += change[touched][:, :, None] * rows[:, None, :]
    return spins


# --------------------------------------------------------------------- #
# SVMC (rotor-angle Metropolis) replica-parallel kernels
# --------------------------------------------------------------------- #


def _svmc_propose_block(theta_chunk, normals_chunk, mixes_chunk, uniform_fraction, out):
    """Assemble a chunk's proposal angles into ``out`` (elementwise, exact).

    Gaussian step clipped to ``[0, pi]``; with probability
    ``uniform_fraction`` the mix uniform itself is rescaled into a fresh
    ``U[0, pi)`` angle (conditioned on ``u < f``, ``u/f`` is again uniform,
    so the gate and the angle can share one draw).
    """
    np.add(theta_chunk, normals_chunk, out=out)
    np.clip(out, 0.0, np.pi, out=out)
    if uniform_fraction > 0.0:
        redraw = mixes_chunk < uniform_fraction
        np.copyto(out, mixes_chunk * (np.pi / uniform_fraction), where=redraw)
    return out


def _svmc_cos_sin_block(angles, cos_out, sin_out):
    """Cosines and sines of a proposal block.

    ``sin = sqrt(1 - cos^2)`` — valid because rotor angles live in
    ``[0, pi]`` — replaces the second transcendental with an exact
    (correctly-rounded, therefore bitwise shape-independent) square root.
    Every implementation shares this helper so the one genuine
    transcendental, ``cos``, is always evaluated on an identical block.
    """
    np.cos(angles, out=cos_out)
    np.multiply(cos_out, cos_out, out=sin_out)
    np.subtract(1.0, sin_out, out=sin_out)
    np.sqrt(sin_out, out=sin_out)
    return cos_out, sin_out


def svmc_sweeps_vectorized(
    theta: np.ndarray,
    cosines: np.ndarray,
    sines: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    proposal_width: float,
    uniform_fraction: float,
    spins_per_step: int = DEFAULT_SPINS_PER_STEP,
) -> np.ndarray:
    """Replica-parallel SVMC sweeps as one array program per chunk.

    State arrays are ``(batch, max_size, reads)`` float64: rotor angles plus
    their cosines/sines (maintained so only proposal angles need fresh
    transcendentals) and the problem local fields on the cosines.
    """
    batch, max_size, reads = theta.shape
    chunk_cap = min(spins_per_step, max_size)
    normals = np.zeros((batch, max_size, reads))
    mixes = np.zeros((batch, max_size, reads))
    thresholds = np.zeros((batch, max_size, reads))
    proposed = np.empty((batch, chunk_cap, reads))
    proposed_cos = np.empty((batch, chunk_cap, reads))
    proposed_sin = np.empty((batch, chunk_cap, reads))
    diff = np.empty((batch, chunk_cap, reads))
    delta = np.empty((batch, chunk_cap, reads))
    shift = np.empty((batch, chunk_cap, reads))
    scratch = np.empty((batch, chunk_cap, reads))
    accept = np.empty((batch, chunk_cap, reads), dtype=bool)
    change = np.empty((batch, chunk_cap, reads))
    coupled = np.empty((batch, max_size, reads))
    all_active = bool(mask.all())
    for problem, transverse, temperature, activity in settings:
        log_activity = np.log(activity)
        _svmc_fill_blocks(
            children,
            sizes,
            reads,
            proposal_width,
            normals,
            mixes,
            thresholds,
            float(temperature),
            log_activity,
        )
        for p0 in range(0, max_size, spins_per_step):
            p1 = min(p0 + spins_per_step, max_size)
            width = p1 - p0
            theta_chunk = theta[:, p0:p1]
            cos_chunk = cosines[:, p0:p1]
            sin_chunk = sines[:, p0:p1]
            prop = _svmc_propose_block(
                theta_chunk,
                normals[:, p0:p1],
                mixes[:, p0:p1],
                uniform_fraction,
                proposed[:, :width],
            )
            cos_p, sin_p = _svmc_cos_sin_block(
                prop, proposed_cos[:, :width], proposed_sin[:, :width]
            )
            gap = diff[:, :width]
            np.subtract(cos_p, cos_chunk, out=gap)
            sdiff = shift[:, :width]
            np.subtract(sin_p, sin_chunk, out=sdiff)
            step = delta[:, :width]
            np.multiply(gap, local[:, p0:p1], out=step)
            step *= problem
            scaled = scratch[:, :width]
            np.multiply(sdiff, transverse, out=scaled)
            step -= scaled
            np.maximum(step, 0.0, out=step)
            decided = accept[:, :width]
            np.less(step, thresholds[:, p0:p1], out=decided)
            if not all_active:
                decided &= mask[:, p0:p1, None]
            flips = change[:, :width]
            np.multiply(decided, gap, out=flips)
            cos_chunk += flips
            sdiff *= decided
            sin_chunk += sdiff
            np.subtract(prop, theta_chunk, out=scaled)
            scaled *= decided
            theta_chunk += scaled
            apply_couplings(local, symmetric, flips, p0, p1, coupled)
    return cosines


def svmc_sweeps_reference(
    theta: np.ndarray,
    cosines: np.ndarray,
    sines: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    proposal_width: float,
    uniform_fraction: float,
    spins_per_step: int = DEFAULT_SPINS_PER_STEP,
) -> np.ndarray:
    """The SVMC dynamics spelled out with per-read scalar loops.

    Proposal blocks (elementwise arithmetic and their transcendentals) are
    assembled with the same shared block helpers as the vectorized kernel —
    numpy transcendentals are not bitwise-reproducible on python scalars —
    while every accept decision and state update is an explicit per-read
    scalar computation.  Tests only.
    """
    batch, max_size, reads = theta.shape
    chunk_cap = min(spins_per_step, max_size)
    normals = np.zeros((batch, max_size, reads))
    mixes = np.zeros((batch, max_size, reads))
    thresholds = np.zeros((batch, max_size, reads))
    proposed = np.empty((batch, chunk_cap, reads))
    proposed_cos = np.empty((batch, chunk_cap, reads))
    proposed_sin = np.empty((batch, chunk_cap, reads))
    change = np.empty((batch, chunk_cap, reads))
    coupled = np.empty((batch, max_size, reads))
    for problem, transverse, temperature, activity in settings:
        log_activity = np.log(activity)
        _svmc_fill_blocks(
            children,
            sizes,
            reads,
            proposal_width,
            normals,
            mixes,
            thresholds,
            float(temperature),
            log_activity,
        )
        for p0 in range(0, max_size, spins_per_step):
            p1 = min(p0 + spins_per_step, max_size)
            width = p1 - p0
            prop = _svmc_propose_block(
                theta[:, p0:p1],
                normals[:, p0:p1],
                mixes[:, p0:p1],
                uniform_fraction,
                proposed[:, :width],
            )
            cos_p, sin_p = _svmc_cos_sin_block(
                prop, proposed_cos[:, :width], proposed_sin[:, :width]
            )
            flips = change[:, :width]
            for b in range(batch):
                size = int(sizes[b])
                for p in range(p0, p1):
                    row = p - p0
                    for r in range(reads):
                        gap = cos_p[b, row, r] - cosines[b, p, r]
                        sdiff = sin_p[b, row, r] - sines[b, p, r]
                        ok = False
                        if p < size:
                            step = gap * local[b, p, r] * problem
                            step = step - sdiff * transverse
                            uphill = step if step > 0.0 else 0.0
                            ok = uphill < thresholds[b, p, r]
                        keep = 1.0 if ok else 0.0
                        flip = keep * gap
                        flips[b, row, r] = flip
                        cosines[b, p, r] += flip
                        sines[b, p, r] += sdiff * keep
                        theta[b, p, r] += (prop[b, row, r] - theta[b, p, r]) * keep
            apply_couplings(local, symmetric, flips, p0, p1, coupled)
    return cosines


def svmc_sweeps_numba(
    theta: np.ndarray,
    cosines: np.ndarray,
    sines: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    proposal_width: float,
    uniform_fraction: float,
    spins_per_step: int = DEFAULT_SPINS_PER_STEP,
) -> np.ndarray:
    """The vectorized SVMC data flow with JIT-fused chunk decision loops."""
    from repro.annealing import _kernels_numba

    if not _kernels_numba.HAVE_NUMBA:  # pragma: no cover - guarded by dispatch
        raise ConfigurationError("numba kernel requested but numba is not importable")
    batch, max_size, reads = theta.shape
    chunk_cap = min(spins_per_step, max_size)
    normals = np.zeros((batch, max_size, reads))
    mixes = np.zeros((batch, max_size, reads))
    thresholds = np.zeros((batch, max_size, reads))
    proposed = np.empty((batch, chunk_cap, reads))
    proposed_cos = np.empty((batch, chunk_cap, reads))
    proposed_sin = np.empty((batch, chunk_cap, reads))
    change = np.empty((batch, chunk_cap, reads))
    coupled = np.empty((batch, max_size, reads))
    for problem, transverse, temperature, activity in settings:
        log_activity = np.log(activity)
        _svmc_fill_blocks(
            children,
            sizes,
            reads,
            proposal_width,
            normals,
            mixes,
            thresholds,
            float(temperature),
            log_activity,
        )
        for p0 in range(0, max_size, spins_per_step):
            p1 = min(p0 + spins_per_step, max_size)
            width = p1 - p0
            prop = _svmc_propose_block(
                theta[:, p0:p1],
                normals[:, p0:p1],
                mixes[:, p0:p1],
                uniform_fraction,
                proposed[:, :width],
            )
            cos_p, sin_p = _svmc_cos_sin_block(
                prop, proposed_cos[:, :width], proposed_sin[:, :width]
            )
            flips = change[:, :width]
            _kernels_numba.svmc_chunk_updates(
                theta,
                cosines,
                sines,
                local,
                thresholds,
                mask,
                prop,
                cos_p,
                sin_p,
                float(problem),
                float(transverse),
                p0,
                p1,
                flips,
            )
            apply_couplings(local, symmetric, flips, p0, p1, coupled)
    return cosines


_SVMC_IMPLEMENTATIONS = {
    "vectorized": svmc_sweeps_vectorized,
    "reference": svmc_sweeps_reference,
    "numba": svmc_sweeps_numba,
}


def svmc_sweeps(*args, implementation: str = "vectorized", **kwargs) -> np.ndarray:
    """Dispatch SVMC sweeps to a replica-parallel implementation by name."""
    try:
        kernel = _SVMC_IMPLEMENTATIONS[implementation]
    except KeyError:
        raise ConfigurationError(
            f"unknown replica-parallel SVMC kernel {implementation!r}; "
            f"choose one of {', '.join(_SVMC_IMPLEMENTATIONS)}"
        ) from None
    return _dispatch_instrumented("svmc", implementation, kernel, args, kwargs)


@_instrument_legacy("svmc")
def svmc_sweeps_legacy(
    theta: np.ndarray,
    cosines: np.ndarray,
    local: np.ndarray,
    symmetric: np.ndarray,
    mask: np.ndarray,
    sizes: np.ndarray,
    children: Sequence[np.random.Generator],
    settings: SweepSettings,
    *,
    proposal_width: float,
    uniform_fraction: float,
) -> np.ndarray:
    """The pre-rewrite sequential SVMC dynamics, preserved verbatim.

    Operates on the historical ``(batch, reads, max_size)`` layout with
    per-sweep random visit orders, separate uniform-angle/mix/accept draws
    and per-position ``exp`` gates.  Benchmark baseline and
    ``REPRO_KERNEL=legacy`` escape hatch.
    """
    batch, num_reads, max_size = theta.shape
    lanes = np.arange(batch)
    for problem, transverse, temperature, activity in settings:
        temperature = float(temperature)
        draws_per_spin = 2 if activity < 1.0 else 1

        orders = np.zeros((batch, max_size), dtype=int)
        normals = np.zeros((batch, max_size, num_reads))
        uniform_angles = np.zeros((batch, max_size, num_reads))
        use_draws = np.ones((batch, max_size, num_reads))
        accept_draws = np.ones((batch, max_size, draws_per_spin, num_reads))
        for index in range(batch):
            size = int(sizes[index])
            if size == 0:
                continue
            child = children[index]
            orders[index, :size] = child.permutation(size)
            normals[index, :size] = child.normal(0.0, proposal_width, size=(size, num_reads))
            uniform_angles[index, :size] = child.uniform(0.0, np.pi, size=(size, num_reads))
            use_draws[index, :size] = child.random((size, num_reads))
            accept_draws[index, :size] = child.random((size, draws_per_spin, num_reads))

        for position in range(max_size):
            active = mask[:, position]
            if not np.any(active):
                break
            index = orders[:, position]
            current_theta = theta[lanes, :, index]
            current_cos = cosines[lanes, :, index]
            current_sin = np.sin(current_theta)

            gaussian = current_theta + normals[:, position]
            use_uniform = use_draws[:, position] < uniform_fraction
            proposed_theta = np.where(
                use_uniform, uniform_angles[:, position], np.clip(gaussian, 0.0, np.pi)
            )
            proposed_cos = np.cos(proposed_theta)
            proposed_sin = np.sin(proposed_theta)

            problem_field = local[lanes, :, index]
            delta_energy = problem * problem_field * (proposed_cos - current_cos)
            delta_energy -= transverse * (proposed_sin - current_sin)

            accept = (delta_energy <= 0.0) | (
                accept_draws[:, position, 0]
                < np.exp(-np.clip(delta_energy, 0.0, 700.0) / temperature)
            )
            if activity < 1.0:
                accept &= accept_draws[:, position, 1] < activity
            accept &= active[:, None]
            touched = np.nonzero(np.any(accept, axis=1))[0]
            if touched.size == 0:
                continue

            new_theta = np.where(accept, proposed_theta, current_theta)
            new_cos = np.cos(new_theta)
            change = new_cos - current_cos
            theta[lanes, :, index] = new_theta
            cosines[lanes, :, index] = new_cos
            rows = symmetric[touched, index[touched], :]
            local[touched] += change[touched][:, :, None] * rows[:, None, :]
    return cosines
