"""Backend interface shared by the annealing simulator physics surrogates.

A backend executes one anneal *schedule* on a (normalised) Ising problem for a
batch of independent reads and returns the final spin configurations.  Two
backends ship with the library:

* :class:`repro.annealing.svmc.SpinVectorMonteCarloBackend` — models each
  qubit as a classical O(2) spin angle driven by the transverse-field and
  problem energy scales A(s), B(s);
* :class:`repro.annealing.sa_backend.ScheduleDrivenAnnealingBackend` — models
  the anneal as Metropolis dynamics whose effective temperature tracks the
  schedule (quantum fluctuations mapped onto thermal ones).

Both capture the mechanism the paper's experiments rely on: at s = 1 the state
is frozen, at s = 0 it is randomised, and at intermediate s the device
performs a local stochastic search around its current state.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError

__all__ = ["AnnealingBackend", "broadcast_initial_spins"]


def broadcast_initial_spins(
    initial_spins: Optional[np.ndarray], num_reads: int, num_spins: int
) -> Optional[np.ndarray]:
    """Normalise an initial-state specification to shape (num_reads, num_spins).

    Accepts ``None`` (no initial state), a single spin vector shared by every
    read, or a per-read matrix; validates that values are +/-1.
    """
    if initial_spins is None:
        return None
    spins = np.asarray(initial_spins, dtype=np.int8)
    if spins.ndim == 1:
        if spins.size != num_spins:
            raise ConfigurationError(
                f"initial state has {spins.size} spins, expected {num_spins}"
            )
        spins = np.tile(spins, (num_reads, 1))
    elif spins.ndim == 2:
        if spins.shape != (num_reads, num_spins):
            raise ConfigurationError(
                f"initial state has shape {spins.shape}, expected {(num_reads, num_spins)}"
            )
    else:
        raise ConfigurationError("initial state must be a vector or a matrix")
    if spins.size and not np.all(np.isin(spins, (-1, 1))):
        raise ConfigurationError("initial spins must be -1 or +1")
    return spins.copy()


class AnnealingBackend(abc.ABC):
    """Executes anneal schedules on normalised Ising problems."""

    #: Backend label recorded in sample-set metadata.
    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run ``num_reads`` independent anneals and return final spins.

        Parameters
        ----------
        fields, couplings:
            Normalised Ising coefficients (couplings strictly upper
            triangular).
        schedule:
            The anneal schedule to follow.
        num_reads:
            Number of independent anneals.
        annealing_functions:
            The device's A(s)/B(s) energy scales.
        relative_temperature:
            Operating temperature normalised by B(1).
        initial_spins:
            Required when the schedule starts at s = 1 (reverse annealing);
            either one vector shared by all reads or a per-read matrix.
        rng:
            Random generator (required to be a Generator, not a seed).

        Returns
        -------
        numpy.ndarray
            Array of shape (num_reads, num_spins) with entries +/-1.
        """
