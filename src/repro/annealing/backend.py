"""Backend interface shared by the annealing simulator physics surrogates.

A backend executes one anneal *schedule* on a (normalised) Ising problem for a
batch of independent reads and returns the final spin configurations.  Two
backends ship with the library:

* :class:`repro.annealing.svmc.SpinVectorMonteCarloBackend` — models each
  qubit as a classical O(2) spin angle driven by the transverse-field and
  problem energy scales A(s), B(s);
* :class:`repro.annealing.sa_backend.ScheduleDrivenAnnealingBackend` — models
  the anneal as Metropolis dynamics whose effective temperature tracks the
  schedule (quantum fluctuations mapped onto thermal ones).

Both capture the mechanism the paper's experiments rely on: at s = 1 the state
is frozen, at s = 0 it is randomised, and at intermediate s the device
performs a local stochastic search around its current state.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.utils.rng import BatchRandomState, ensure_rng_batch

__all__ = ["AnnealingBackend", "broadcast_initial_spins", "pad_problem_batch"]


def broadcast_initial_spins(
    initial_spins: Optional[np.ndarray], num_reads: int, num_spins: int
) -> Optional[np.ndarray]:
    """Normalise an initial-state specification to shape (num_reads, num_spins).

    Accepts ``None`` (no initial state), a single spin vector shared by every
    read, or a per-read matrix; validates that values are +/-1.
    """
    if initial_spins is None:
        return None
    spins = np.asarray(initial_spins, dtype=np.int8)
    if spins.ndim == 1:
        if spins.size != num_spins:
            raise ConfigurationError(
                f"initial state has {spins.size} spins, expected {num_spins}"
            )
        spins = np.tile(spins, (num_reads, 1))
    elif spins.ndim == 2:
        if spins.shape != (num_reads, num_spins):
            raise ConfigurationError(
                f"initial state has shape {spins.shape}, expected {(num_reads, num_spins)}"
            )
    else:
        raise ConfigurationError("initial state must be a vector or a matrix")
    if spins.size and not np.all(np.isin(spins, (-1, 1))):
        raise ConfigurationError("initial spins must be -1 or +1")
    return spins.copy()


def pad_problem_batch(
    fields: Sequence[np.ndarray], couplings: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack variable-size Ising problems into common-size padded arrays.

    Returns ``(padded_fields, padded_symmetric, mask, sizes)`` where
    ``padded_fields`` has shape ``(B, N_max)``, ``padded_symmetric`` has shape
    ``(B, N_max, N_max)`` and holds ``J + J.T`` per instance, ``mask`` is a
    boolean ``(B, N_max)`` array marking real (non-padding) spins, and
    ``sizes`` records each instance's true spin count.  Padding lanes carry
    zero fields and couplings, so they can never change the energy of — or the
    dynamics on — real spins.
    """
    if len(fields) != len(couplings):
        raise ConfigurationError(
            f"{len(fields)} field vectors supplied for {len(couplings)} coupling matrices"
        )
    batch = len(fields)
    clean_fields = [np.asarray(vector, dtype=float).ravel() for vector in fields]
    clean_couplings = [np.asarray(matrix, dtype=float) for matrix in couplings]
    sizes = np.array([vector.size for vector in clean_fields], dtype=int)
    for index, (vector, matrix) in enumerate(zip(clean_fields, clean_couplings)):
        if matrix.shape != (vector.size, vector.size):
            raise ConfigurationError(
                f"instance {index}: couplings have shape {matrix.shape}, "
                f"expected {(vector.size, vector.size)}"
            )
    max_size = int(sizes.max()) if batch else 0
    padded_fields = np.zeros((batch, max_size))
    padded_symmetric = np.zeros((batch, max_size, max_size))
    mask = np.zeros((batch, max_size), dtype=bool)
    for index, (vector, matrix) in enumerate(zip(clean_fields, clean_couplings)):
        size = vector.size
        padded_fields[index, :size] = vector
        padded_symmetric[index, :size, :size] = matrix + matrix.T
        mask[index, :size] = True
    return padded_fields, padded_symmetric, mask, sizes


class AnnealingBackend(abc.ABC):
    """Executes anneal schedules on normalised Ising problems."""

    #: Backend label recorded in sample-set metadata.
    name: str = "backend"

    @abc.abstractmethod
    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run ``num_reads`` independent anneals and return final spins.

        Parameters
        ----------
        fields, couplings:
            Normalised Ising coefficients (couplings strictly upper
            triangular).
        schedule:
            The anneal schedule to follow.
        num_reads:
            Number of independent anneals.
        annealing_functions:
            The device's A(s)/B(s) energy scales.
        relative_temperature:
            Operating temperature normalised by B(1).
        initial_spins:
            Required when the schedule starts at s = 1 (reverse annealing);
            either one vector shared by all reads or a per-read matrix.
        rng:
            Random generator (required to be a Generator, not a seed).

        Returns
        -------
        numpy.ndarray
            Array of shape (num_reads, num_spins) with entries +/-1.
        """

    def run_batch(
        self,
        fields: Sequence[np.ndarray],
        couplings: Sequence[np.ndarray],
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[Sequence[Optional[np.ndarray]]] = None,
        rng: BatchRandomState = None,
    ) -> List[np.ndarray]:
        """Run one anneal schedule on ``B`` independent Ising problems.

        The batch shares a schedule, device functions and temperature; each
        instance keeps its own size, coefficients and (optional) initial
        state.  Instance ``b`` draws exclusively from per-instance child
        generator ``b`` (see :func:`repro.utils.rng.ensure_rng_batch`), so the
        result list is bitwise-identical to calling :meth:`run` once per
        instance with those children — regardless of how instances are grouped
        into batches.

        This default implementation is exactly that sequential loop.  Backends
        with a vectorised multi-instance kernel override it; the contract
        (per-instance child streams, identical results) must be preserved.

        Parameters
        ----------
        fields, couplings:
            Per-instance normalised Ising coefficients; instances may have
            different sizes (they are padded internally by batched kernels).
        initial_spins:
            Optional per-instance initial states (``None`` entries allowed for
            forward schedules).
        rng:
            A root seed (spawned into one child per instance) or an explicit
            sequence of per-instance generators.

        Returns
        -------
        list of numpy.ndarray
            One ``(num_reads, num_spins_b)`` array of +/-1 spins per instance.
        """
        batch = len(fields)
        if initial_spins is not None and len(initial_spins) != batch:
            raise ConfigurationError(
                f"{len(initial_spins)} initial states supplied for a batch of {batch}"
            )
        children = ensure_rng_batch(rng, batch)
        results: List[np.ndarray] = []
        for index in range(batch):
            results.append(
                self.run(
                    fields=fields[index],
                    couplings=couplings[index],
                    schedule=schedule,
                    num_reads=num_reads,
                    annealing_functions=annealing_functions,
                    relative_temperature=relative_temperature,
                    initial_spins=None if initial_spins is None else initial_spins[index],
                    rng=children[index],
                )
            )
        return results
