"""The Chimera hardware topology of the D-Wave 2000Q.

The 2000Q used by the paper arranges qubits in a ``16 x 16`` grid of *unit
cells*; each cell is a complete bipartite graph K4,4 (8 qubits), horizontally
adjacent cells connect corresponding "horizontal" qubits, vertically adjacent
cells connect corresponding "vertical" qubits.  Dense QUBOs such as the MIMO
detection problems must be *minor-embedded* onto this sparse graph (see
:mod:`repro.annealing.embedding`).

The generator below follows the standard Chimera indexing: a qubit is
identified by ``(row, column, side, offset)`` with ``side`` 0 for the vertical
shore and 1 for the horizontal shore, and linearised as

    index = ((row * columns) + column) * 2 * shore + side * shore + offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import networkx as nx

from repro.exceptions import ConfigurationError

__all__ = ["ChimeraCoordinates", "chimera_graph"]


@dataclass(frozen=True)
class ChimeraCoordinates:
    """Coordinate <-> linear index conversions for a Chimera lattice.

    Parameters
    ----------
    rows, columns:
        Grid dimensions in unit cells.
    shore:
        Qubits per shore of each cell (4 for all production Chimera chips).
    """

    rows: int
    columns: int
    shore: int = 4

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.columns <= 0 or self.shore <= 0:
            raise ConfigurationError(
                "rows, columns and shore must all be positive, got "
                f"{self.rows} x {self.columns} shore {self.shore}"
            )

    @property
    def num_qubits(self) -> int:
        """Total number of qubits in the lattice."""
        return self.rows * self.columns * 2 * self.shore

    def linear_index(self, row: int, column: int, side: int, offset: int) -> int:
        """Linearise a (row, column, side, offset) coordinate."""
        self._check(row, column, side, offset)
        cell = row * self.columns + column
        return cell * 2 * self.shore + side * self.shore + offset

    def coordinates(self, index: int) -> Tuple[int, int, int, int]:
        """Invert :meth:`linear_index`."""
        if not 0 <= index < self.num_qubits:
            raise ConfigurationError(f"qubit index {index} out of range")
        cell, within = divmod(index, 2 * self.shore)
        side, offset = divmod(within, self.shore)
        row, column = divmod(cell, self.columns)
        return row, column, side, offset

    def _check(self, row: int, column: int, side: int, offset: int) -> None:
        if not 0 <= row < self.rows:
            raise ConfigurationError(f"row {row} out of range [0, {self.rows})")
        if not 0 <= column < self.columns:
            raise ConfigurationError(f"column {column} out of range [0, {self.columns})")
        if side not in (0, 1):
            raise ConfigurationError(f"side must be 0 or 1, got {side}")
        if not 0 <= offset < self.shore:
            raise ConfigurationError(f"offset {offset} out of range [0, {self.shore})")

    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (row, column) unit-cell coordinates."""
        for row in range(self.rows):
            for column in range(self.columns):
                yield row, column


def chimera_graph(rows: int, columns: int = None, shore: int = 4) -> nx.Graph:
    """Build the Chimera graph C_{rows, columns, shore} as a networkx graph.

    The D-Wave 2000Q corresponds to ``chimera_graph(16, 16, 4)`` (2048 qubits);
    tests typically use much smaller lattices.
    """
    columns = columns if columns is not None else rows
    coords = ChimeraCoordinates(rows=rows, columns=columns, shore=shore)
    graph = nx.Graph(name=f"chimera({rows},{columns},{shore})")
    graph.add_nodes_from(range(coords.num_qubits))

    for row, column in coords.iter_cells():
        # Intra-cell complete bipartite couplers.
        for vertical_offset in range(shore):
            vertical = coords.linear_index(row, column, 0, vertical_offset)
            for horizontal_offset in range(shore):
                horizontal = coords.linear_index(row, column, 1, horizontal_offset)
                graph.add_edge(vertical, horizontal)
        # Vertical shore couples to the cell below (same column offset).
        if row + 1 < rows:
            for offset in range(shore):
                graph.add_edge(
                    coords.linear_index(row, column, 0, offset),
                    coords.linear_index(row + 1, column, 0, offset),
                )
        # Horizontal shore couples to the cell to the right.
        if column + 1 < columns:
            for offset in range(shore):
                graph.add_edge(
                    coords.linear_index(row, column, 1, offset),
                    coords.linear_index(row, column + 1, 1, offset),
                )

    graph.graph["rows"] = rows
    graph.graph["columns"] = columns
    graph.graph["shore"] = shore
    return graph
