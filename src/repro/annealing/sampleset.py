"""Sample containers in the style of the D-Wave Ocean SDK.

A sampler call produces many anneal *reads*; each read yields one bitstring
and its energy.  :class:`SampleSet` aggregates identical bitstrings, keeps the
collection sorted by energy, and provides the aggregate statistics the paper's
metrics are computed from (ground-state hit counts, energy distributions,
sample weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionError

__all__ = ["SampleRecord", "SampleSet"]


@dataclass(frozen=True)
class SampleRecord:
    """One distinct bitstring observed by a sampler.

    Attributes
    ----------
    assignment:
        The 0/1 assignment.
    energy:
        Its energy under the problem the sampler was given.
    num_occurrences:
        How many reads returned exactly this assignment.
    chain_break_fraction:
        Fraction of embedded chains that were broken in the raw hardware
        sample (0.0 when the problem was not embedded).
    """

    assignment: np.ndarray
    energy: float
    num_occurrences: int = 1
    chain_break_fraction: float = 0.0

    def __post_init__(self) -> None:
        assignment = np.asarray(self.assignment, dtype=np.int8).ravel()
        object.__setattr__(self, "assignment", assignment)
        if self.num_occurrences <= 0:
            raise ValueError(
                f"num_occurrences must be positive, got {self.num_occurrences}"
            )
        if not 0.0 <= self.chain_break_fraction <= 1.0:
            raise ValueError(
                "chain_break_fraction must lie in [0, 1], "
                f"got {self.chain_break_fraction}"
            )

    @property
    def key(self) -> Tuple[int, ...]:
        """Hashable form of the assignment, used for aggregation."""
        return tuple(int(bit) for bit in self.assignment)


class SampleSet:
    """An energy-sorted, aggregated collection of sampler reads.

    Parameters
    ----------
    records:
        Sample records; duplicates (same bitstring) are merged and their
        occurrence counts summed.
    metadata:
        Sampler-provided context (schedule, timing, backend name, ...).
    """

    def __init__(
        self,
        records: Iterable[SampleRecord],
        metadata: Optional[Dict] = None,
    ) -> None:
        merged: Dict[Tuple[int, ...], SampleRecord] = {}
        for record in records:
            key = record.key
            if key in merged:
                existing = merged[key]
                total = existing.num_occurrences + record.num_occurrences
                # Occurrence-weighted chain-break fraction keeps the aggregate meaningful.
                weighted_breaks = (
                    existing.chain_break_fraction * existing.num_occurrences
                    + record.chain_break_fraction * record.num_occurrences
                ) / total
                merged[key] = SampleRecord(
                    assignment=existing.assignment,
                    energy=existing.energy,
                    num_occurrences=total,
                    chain_break_fraction=weighted_breaks,
                )
            else:
                merged[key] = record

        self._records: List[SampleRecord] = sorted(
            merged.values(), key=lambda item: (item.energy, item.key)
        )
        self.metadata: Dict = dict(metadata) if metadata else {}

        sizes = {record.assignment.size for record in self._records}
        if len(sizes) > 1:
            raise DimensionError(
                f"all samples must have the same length, got lengths {sorted(sizes)}"
            )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_arrays(
        cls,
        assignments: np.ndarray,
        energies: Sequence[float],
        metadata: Optional[Dict] = None,
    ) -> "SampleSet":
        """Build a sample set from parallel arrays of assignments and energies."""
        assignments = np.atleast_2d(np.asarray(assignments, dtype=np.int8))
        energies = np.asarray(energies, dtype=float).ravel()
        if assignments.shape[0] != energies.size:
            raise DimensionError(
                f"{assignments.shape[0]} assignments but {energies.size} energies"
            )
        records = [
            SampleRecord(assignment=assignment, energy=float(energy))
            for assignment, energy in zip(assignments, energies)
        ]
        return cls(records, metadata)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SampleRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SampleRecord:
        return self._records[index]

    @property
    def records(self) -> List[SampleRecord]:
        """All distinct records, lowest energy first."""
        return list(self._records)

    @property
    def num_reads(self) -> int:
        """Total number of reads represented (sum of occurrence counts)."""
        return int(sum(record.num_occurrences for record in self._records))

    @property
    def num_variables(self) -> int:
        """Number of variables per sample (0 for an empty set)."""
        if not self._records:
            return 0
        return int(self._records[0].assignment.size)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def first(self) -> SampleRecord:
        """The lowest-energy record."""
        if not self._records:
            raise IndexError("sample set is empty")
        return self._records[0]

    def lowest_energy(self) -> float:
        """Lowest energy observed."""
        return self.first.energy

    def energies(self, expanded: bool = False) -> np.ndarray:
        """Energies of the records.

        With ``expanded=True`` each energy is repeated by its occurrence count
        so the result has one entry per read (what the paper's ΔE%
        distributions are computed over).
        """
        if expanded:
            return np.concatenate(
                [np.full(record.num_occurrences, record.energy) for record in self._records]
            ) if self._records else np.empty(0)
        return np.array([record.energy for record in self._records])

    def occurrences(self) -> np.ndarray:
        """Occurrence counts aligned with :meth:`energies` (non-expanded)."""
        return np.array([record.num_occurrences for record in self._records], dtype=int)

    def success_probability(self, ground_energy: float, tolerance: float = 1e-6) -> float:
        """Fraction of reads that reached the ground-state energy."""
        if self.num_reads == 0:
            return 0.0
        hits = sum(
            record.num_occurrences
            for record in self._records
            if record.energy <= ground_energy + tolerance
        )
        return hits / self.num_reads

    def expectation_energy(self) -> float:
        """Occurrence-weighted mean energy of the reads."""
        if self.num_reads == 0:
            raise ValueError("cannot compute the expectation of an empty sample set")
        weights = self.occurrences()
        return float(np.average(self.energies(), weights=weights))

    def truncate(self, max_records: int) -> "SampleSet":
        """Keep only the ``max_records`` lowest-energy records."""
        return SampleSet(self._records[:max_records], self.metadata)

    def merge(self, other: "SampleSet") -> "SampleSet":
        """Combine two sample sets (metadata of ``self`` wins on conflicts)."""
        metadata = dict(other.metadata)
        metadata.update(self.metadata)
        return SampleSet(self._records + other._records, metadata)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._records:
            return "SampleSet(empty)"
        return (
            f"SampleSet(num_reads={self.num_reads}, distinct={len(self)}, "
            f"best_energy={self.lowest_energy():.6g})"
        )
