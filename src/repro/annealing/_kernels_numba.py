"""Optional numba-JIT inner loops for the anneal sweep kernels.

This module is the only place the library touches :mod:`numba`, and it is
always safe to import: when numba is not installed ``HAVE_NUMBA`` is false and
the module defines nothing else.  :mod:`repro.annealing.kernels` consults
``HAVE_NUMBA`` before dispatching and silently falls back to the pure-numpy
vectorized kernel (with a one-time warning) when the JIT path is unavailable,
so no part of the test suite or CI ever *requires* numba.

Bitwise contract
----------------
The JIT functions fuse only the per-chunk *decision* loops: exact IEEE-754
float64 multiplies, subtractions, comparisons and selections.  Everything
whose result could depend on the evaluation backend stays in numpy, shared
with the other kernels:

* transcendentals (``log`` of the uniforms, ``cos``/``sin`` of proposal
  angles) — numpy's SIMD loops and numba's libm are not bitwise-identical,
  so those blocks are precomputed in numpy and passed in;
* random draws — generated per instance by numpy ``Generator`` children;
* the local-field contraction — a shared BLAS ``matmul`` in
  :func:`repro.annealing.kernels.commit_chunk`.

Under that split the numba kernel produces bit-for-bit the same spins as the
reference and vectorized kernels; ``tests/test_kernels.py`` asserts it.
"""

from __future__ import annotations

try:
    from numba import njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - exercised only where numba is absent
    HAVE_NUMBA = False

if HAVE_NUMBA:

    @njit(cache=True)
    def sa_chunk_changes(  # pragma: no cover - measured via equivalence tests
        spins, local, thresholds, mask, p0, p1, use_threshold, log_activity, change
    ):
        """Fused accept/flip decisions for one SA chunk.

        Writes the signed flip values into ``change`` (rows ``p0..p1`` of the
        sweep) exactly as the vectorized kernel computes them, including the
        signed zeros of rejected proposals, so the downstream shared
        ``commit_chunk`` contraction receives identical inputs.
        """
        batch = spins.shape[0]
        reads = spins.shape[2]
        for b in range(batch):
            for p in range(p0, p1):
                row = p - p0
                if mask[b, p]:
                    for r in range(reads):
                        cur = spins[b, p, r]
                        if use_threshold:
                            prod = cur * local[b, p, r]
                            clipped = prod if prod < 0.0 else 0.0
                            ok = clipped > thresholds[b, p, r]
                        else:
                            ok = thresholds[b, p, r] < log_activity
                        change[b, row, r] = (-2.0 if ok else -0.0) * cur
                else:
                    for r in range(reads):
                        change[b, row, r] = -0.0 * spins[b, p, r]

    @njit(cache=True)
    def svmc_chunk_updates(  # pragma: no cover - measured via equivalence tests
        theta,
        cos_t,
        sin_t,
        local,
        thresholds,
        mask,
        proposed,
        cos_p,
        sin_p,
        problem,
        transverse,
        p0,
        p1,
        change,
    ):
        """Fused accept/update decisions for one SVMC chunk.

        ``proposed``/``cos_p``/``sin_p`` are the numpy-computed proposal
        blocks; this loop evaluates the rotor energy change, the Metropolis
        decision against the precomputed log-threshold, and blends the
        accepted updates into the state arrays with the same exact
        ``state += keep * delta`` arithmetic as the vectorized kernel,
        writing the ``cos`` deltas into ``change`` for the shared coupling
        contraction.
        """
        batch = theta.shape[0]
        reads = theta.shape[2]
        for b in range(batch):
            for p in range(p0, p1):
                row = p - p0
                for r in range(reads):
                    diff = cos_p[b, row, r] - cos_t[b, p, r]
                    sdiff = sin_p[b, row, r] - sin_t[b, p, r]
                    ok = False
                    if mask[b, p]:
                        delta = diff * local[b, p, r] * problem
                        delta = delta - sdiff * transverse
                        uphill = delta if delta > 0.0 else 0.0
                        ok = uphill < thresholds[b, p, r]
                    keep = 1.0 if ok else 0.0
                    flip = keep * diff
                    change[b, row, r] = flip
                    cos_t[b, p, r] += flip
                    sin_t[b, p, r] += sdiff * keep
                    theta[b, p, r] += (proposed[b, row, r] - theta[b, p, r]) * keep
