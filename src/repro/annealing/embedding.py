"""Minor embedding of dense problems onto the Chimera hardware graph.

The MIMO detection QUBOs the paper studies are fully dense, while Chimera
qubits have degree at most 6 — so each *logical* variable must be represented
by a *chain* of physical qubits held together with a strong ferromagnetic
coupling.  This module implements:

* the standard triangular clique embedding of K_n onto a Chimera lattice
  (chains of length ``m + 1`` on a ``m x m`` lattice with ``n <= 4 m``);
* :func:`embed_ising`, which spreads logical fields over chain members,
  places logical couplings on available physical couplers, and adds the
  chain-holding couplings;
* :func:`unembed_sampleset`, which maps physical samples back to logical
  variables with majority-vote chain-break resolution and re-evaluates the
  logical energies.

The simulator front-end treats embedding as optional: solving the logical
problem directly is faster and is the default, but embedded solving is exposed
so that chain-break behaviour — a genuine effect on the 2000Q — can be studied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.annealing.sampleset import SampleRecord, SampleSet
from repro.annealing.topology import ChimeraCoordinates, chimera_graph
from repro.exceptions import EmbeddingError
from repro.qubo.ising import IsingModel
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "Embedding",
    "find_clique_embedding",
    "embed_ising",
    "unembed_sampleset",
    "resolve_chain_breaks",
]


@dataclass(frozen=True)
class Embedding:
    """A minor embedding: logical variable index -> chain of physical qubits."""

    chains: Tuple[Tuple[int, ...], ...]
    target_graph: nx.Graph

    @property
    def num_logical_variables(self) -> int:
        """Number of logical variables the embedding covers."""
        return len(self.chains)

    @property
    def num_physical_qubits(self) -> int:
        """Total number of physical qubits used across all chains."""
        return sum(len(chain) for chain in self.chains)

    @property
    def max_chain_length(self) -> int:
        """Length of the longest chain."""
        return max((len(chain) for chain in self.chains), default=0)

    def chain_for(self, logical_index: int) -> Tuple[int, ...]:
        """Physical qubits representing one logical variable."""
        return self.chains[logical_index]

    def validate(self) -> None:
        """Check chain disjointness, connectivity and physical-qubit existence.

        Raises :class:`EmbeddingError` when any requirement is violated.
        """
        seen: set = set()
        for logical_index, chain in enumerate(self.chains):
            if not chain:
                raise EmbeddingError(f"chain for logical variable {logical_index} is empty")
            for qubit in chain:
                if qubit not in self.target_graph:
                    raise EmbeddingError(
                        f"chain for variable {logical_index} uses qubit {qubit} "
                        "which is not in the target graph"
                    )
                if qubit in seen:
                    raise EmbeddingError(
                        f"qubit {qubit} appears in more than one chain"
                    )
                seen.add(qubit)
            subgraph = self.target_graph.subgraph(chain)
            if len(chain) > 1 and not nx.is_connected(subgraph):
                raise EmbeddingError(
                    f"chain for logical variable {logical_index} is not connected"
                )

    def coupler_between(self, logical_i: int, logical_j: int) -> List[Tuple[int, int]]:
        """Physical couplers available between two logical variables' chains."""
        chain_i = set(self.chains[logical_i])
        chain_j = set(self.chains[logical_j])
        couplers = []
        for qubit in chain_i:
            for neighbour in self.target_graph.neighbors(qubit):
                if neighbour in chain_j:
                    couplers.append((qubit, neighbour))
        return couplers


def find_clique_embedding(
    num_variables: int,
    lattice_size: Optional[int] = None,
    shore: int = 4,
) -> Embedding:
    """Triangular clique embedding of K_{num_variables} onto a Chimera lattice.

    Parameters
    ----------
    num_variables:
        Size of the logical clique.
    lattice_size:
        Chimera lattice dimension ``m``; defaults to the smallest lattice that
        fits (``ceil(num_variables / shore)``).  The D-Wave 2000Q corresponds
        to ``lattice_size=16, shore=4``, which fits cliques up to 64 variables
        (matching the problem sizes QuAMax reports).
    shore:
        Qubits per cell shore (4 on production hardware).
    """
    if num_variables <= 0:
        raise EmbeddingError(f"num_variables must be positive, got {num_variables}")
    minimum_lattice = int(np.ceil(num_variables / shore))
    size = lattice_size if lattice_size is not None else minimum_lattice
    if size < minimum_lattice:
        raise EmbeddingError(
            f"a {size}x{size} Chimera lattice with shore {shore} fits at most "
            f"{size * shore} clique variables; {num_variables} requested"
        )

    graph = chimera_graph(size, size, shore)
    coords = ChimeraCoordinates(rows=size, columns=size, shore=shore)

    chains: List[Tuple[int, ...]] = []
    for logical in range(num_variables):
        diagonal_cell, offset = divmod(logical, shore)
        vertical_arm = [
            coords.linear_index(row, diagonal_cell, 0, offset)
            for row in range(0, diagonal_cell + 1)
        ]
        horizontal_arm = [
            coords.linear_index(diagonal_cell, column, 1, offset)
            for column in range(diagonal_cell, size)
        ]
        chains.append(tuple(vertical_arm + horizontal_arm))

    embedding = Embedding(chains=tuple(chains), target_graph=graph)
    embedding.validate()
    return embedding


def embed_ising(
    ising: IsingModel,
    embedding: Embedding,
    chain_strength: Optional[float] = None,
) -> Tuple[Dict[int, float], Dict[Tuple[int, int], float], float]:
    """Map a logical Ising model onto the embedding's physical qubits.

    Returns ``(physical_fields, physical_couplings, chain_strength)``.  Logical
    fields are split evenly over chain members; each logical coupling is split
    evenly over the available physical couplers between the two chains; every
    intra-chain coupler receives the ferromagnetic chain-holding coupling
    ``-chain_strength``.

    ``chain_strength`` defaults to 1.5x the largest absolute logical
    coefficient, the conventional rule of thumb.
    """
    if ising.num_spins != embedding.num_logical_variables:
        raise EmbeddingError(
            f"model has {ising.num_spins} spins but embedding covers "
            f"{embedding.num_logical_variables} logical variables"
        )
    strength = chain_strength
    if strength is None:
        strength = 1.5 * max(ising.max_abs_coefficient(), 1e-12)
    if strength <= 0:
        raise EmbeddingError(f"chain_strength must be positive, got {strength}")

    fields: Dict[int, float] = {}
    couplings: Dict[Tuple[int, int], float] = {}

    for logical, chain in enumerate(embedding.chains):
        share = ising.fields[logical] / len(chain)
        for qubit in chain:
            fields[qubit] = fields.get(qubit, 0.0) + share
        # Ferromagnetic chain-holding couplings along a spanning tree of the chain.
        subgraph = embedding.target_graph.subgraph(chain)
        tree_edges = nx.minimum_spanning_edges(subgraph, data=False) if len(chain) > 1 else []
        for qubit_a, qubit_b in tree_edges:
            key = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
            couplings[key] = couplings.get(key, 0.0) - strength

    for i in range(ising.num_spins):
        for j in range(i + 1, ising.num_spins):
            value = ising.couplings[i, j]
            if value == 0.0:
                continue
            available = embedding.coupler_between(i, j)
            if not available:
                raise EmbeddingError(
                    f"no physical coupler available between logical variables {i} and {j}"
                )
            share = value / len(available)
            for qubit_a, qubit_b in available:
                key = (qubit_a, qubit_b) if qubit_a < qubit_b else (qubit_b, qubit_a)
                couplings[key] = couplings.get(key, 0.0) + share

    return fields, couplings, float(strength)


def resolve_chain_breaks(
    physical_spins: Dict[int, int], chain: Sequence[int], rng: RandomState = None
) -> Tuple[int, bool]:
    """Majority-vote a chain's physical spins into one logical spin.

    Returns ``(logical_spin, was_broken)``; exact ties are broken uniformly at
    random, matching the default Ocean behaviour.
    """
    values = [physical_spins[qubit] for qubit in chain]
    total = sum(values)
    was_broken = len(set(values)) > 1
    if total > 0:
        return 1, was_broken
    if total < 0:
        return -1, was_broken
    generator = ensure_rng(rng)
    return (1 if generator.random() < 0.5 else -1), was_broken


def unembed_sampleset(
    physical_samples: Sequence[Dict[int, int]],
    embedding: Embedding,
    logical_ising: IsingModel,
    rng: RandomState = None,
) -> SampleSet:
    """Map physical spin samples back to logical variables.

    Each physical sample is a mapping ``qubit -> spin (+/-1)``.  Chains are
    collapsed by majority vote, the fraction of broken chains is recorded per
    sample, and logical energies are re-evaluated on the *logical* model (so
    chain-holding terms never leak into reported energies).
    """
    generator = ensure_rng(rng)
    records = []
    for sample in physical_samples:
        spins = np.empty(embedding.num_logical_variables, dtype=np.int8)
        broken = 0
        for logical, chain in enumerate(embedding.chains):
            spin, was_broken = resolve_chain_breaks(sample, chain, generator)
            spins[logical] = spin
            broken += int(was_broken)
        bits = ((spins + 1) // 2).astype(np.int8)
        energy = logical_ising.energy(spins)
        fraction = broken / embedding.num_logical_variables
        records.append(
            SampleRecord(
                assignment=bits,
                energy=float(energy),
                num_occurrences=1,
                chain_break_fraction=fraction,
            )
        )
    return SampleSet(records, metadata={"embedded": True})
