"""Schedule-driven simulated annealing backend.

A cruder — but faster — surrogate than spin-vector Monte Carlo: the anneal
fraction s is mapped onto an *effective temperature* for single-spin-flip
Metropolis dynamics.  Quantum fluctuations (strength A(s)) are modelled as an
additional thermal contribution, and the problem Hamiltonian is weighted by
B(s), so:

    T_eff(s)  =  relative_temperature + fluctuation_gain * A(s)/B(1)
    accept    =  exp( - B(s)/B(1) * dE / T_eff(s) )

At s = 1 the dynamics are a near-greedy descent at the device temperature; at
s = 0 flips are essentially free and the state randomises; in between the
backend performs a local stochastic search whose radius grows as s decreases —
the same mechanism the paper's reverse-annealing discussion relies on.

Paper linkage
-------------
This backend is the workhorse surrogate behind the paper's evaluation
(Section 4.2, Figures 6-8): the reverse-anneal schedules of Figure 5 map
directly onto its effective-temperature trajectory, and its freeze-out model
reproduces the "too late to repair a random state" behaviour Figure 6's
RA(random) series depends on.  It is also the backend the batched
multi-instance engine (Figure 2's requirement that many channel uses be in
flight at once) is benchmarked on: :meth:`run_batch` executes B independent
QUBO instances as one ``(B, num_reads, num_spins)`` vectorised Metropolis
computation while drawing each instance's randomness from its own child
generator, so batched and sequential results are bitwise-identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.annealing.backend import AnnealingBackend, broadcast_initial_spins, pad_problem_batch
from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.utils.rng import BatchRandomState, ensure_rng, ensure_rng_batch

__all__ = ["ScheduleDrivenAnnealingBackend"]


class ScheduleDrivenAnnealingBackend(AnnealingBackend):
    """Single-flip Metropolis dynamics with a schedule-driven temperature.

    Parameters
    ----------
    sweeps_per_microsecond:
        Metropolis sweeps per microsecond of schedule time.
    fluctuation_gain:
        How strongly the transverse-field scale A(s) contributes to the
        effective temperature; larger values make low-s excursions more
        disruptive.
    freeze_scale / residual_activity:
        Freeze-out model shared with the SVMC backend: spin updates are
        attempted with probability ``min(1, A(s)/B(1)/freeze_scale)`` (floored
        at ``residual_activity``), so the dynamics stall once quantum
        fluctuations vanish instead of behaving like an ideal classical
        quench.
    """

    name = "schedule-driven-annealing"

    def __init__(
        self,
        sweeps_per_microsecond: float = 48.0,
        fluctuation_gain: float = 1.0,
        freeze_scale: float = 0.15,
        residual_activity: float = 0.02,
    ) -> None:
        if sweeps_per_microsecond <= 0:
            raise ConfigurationError(
                f"sweeps_per_microsecond must be positive, got {sweeps_per_microsecond}"
            )
        if fluctuation_gain < 0:
            raise ConfigurationError(
                f"fluctuation_gain must be non-negative, got {fluctuation_gain}"
            )
        if freeze_scale <= 0:
            raise ConfigurationError(f"freeze_scale must be positive, got {freeze_scale}")
        if not 0.0 <= residual_activity <= 1.0:
            raise ConfigurationError(
                f"residual_activity must lie in [0, 1], got {residual_activity}"
            )
        self.sweeps_per_microsecond = float(sweeps_per_microsecond)
        self.fluctuation_gain = float(fluctuation_gain)
        self.freeze_scale = float(freeze_scale)
        self.residual_activity = float(residual_activity)

    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run the Metropolis dynamics along the schedule; see the backend interface."""
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        generator = ensure_rng(rng)
        fields = np.asarray(fields, dtype=float).ravel()
        couplings = np.asarray(couplings, dtype=float)
        num_spins = fields.size

        if num_spins == 0:
            return np.zeros((num_reads, 0), dtype=np.int8)

        symmetric = couplings + couplings.T
        base_temperature = max(relative_temperature, 1e-6)

        initial = broadcast_initial_spins(initial_spins, num_reads, num_spins)
        if schedule.requires_initial_state and initial is None:
            raise ConfigurationError(
                f"schedule {schedule.name!r} starts at s = 1 and requires an initial state"
            )

        if initial is not None:
            spins = initial.astype(float)
        else:
            spins = generator.choice([-1.0, 1.0], size=(num_reads, num_spins))

        num_steps = max(2, int(round(schedule.duration_us * self.sweeps_per_microsecond)))
        waypoints = schedule.discretise(num_steps)

        # local[r, i] = h_i + sum_j J_ij s_j
        local = fields[None, :] + spins @ symmetric

        for _, s in waypoints:
            problem = annealing_functions.relative_problem(float(s))
            transverse = annealing_functions.relative_transverse(float(s))
            temperature = base_temperature + self.fluctuation_gain * transverse
            activity = max(min(1.0, transverse / self.freeze_scale), self.residual_activity)
            order = generator.permutation(num_spins)
            # One blocked draw per sweep consumes the generator stream exactly
            # like the per-spin draws it replaces (row k = spin k's uniforms),
            # but costs one RNG call instead of one or two per spin.
            draws_per_spin = 2 if activity < 1.0 else 1
            draws = generator.random((num_spins, draws_per_spin, num_reads))
            for position, index in enumerate(order):
                current = spins[:, index]
                # Energy change of flipping spin `index`: dE = -2 * s_i * local_i
                delta_energy = -2.0 * current * local[:, index] * problem
                accept = (delta_energy <= 0.0) | (
                    draws[position, 0]
                    < np.exp(-np.clip(delta_energy, 0.0, 700.0) / temperature)
                )
                if activity < 1.0:
                    accept &= draws[position, 1] < activity
                if not np.any(accept):
                    continue
                flipped = np.where(accept, -current, current)
                change = flipped - current
                spins[:, index] = flipped
                local += change[:, None] * symmetric[index][None, :]

        return spins.astype(np.int8)

    def run_batch(
        self,
        fields: Sequence[np.ndarray],
        couplings: Sequence[np.ndarray],
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[Sequence[Optional[np.ndarray]]] = None,
        rng: BatchRandomState = None,
    ) -> List[np.ndarray]:
        """Vectorised multi-instance Metropolis kernel; see the backend interface.

        All B instances advance through the shared schedule as one
        ``(B, num_reads, num_spins)`` computation.  Instances are padded to a
        common size with zero fields/couplings and a validity mask, and each
        instance draws exclusively from its own child generator in the same
        order :meth:`run` would, so the results are bitwise-identical to the
        sequential loop over :meth:`run` with those children.
        """
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        batch = len(fields)
        if initial_spins is not None and len(initial_spins) != batch:
            raise ConfigurationError(
                f"{len(initial_spins)} initial states supplied for a batch of {batch}"
            )
        if batch == 0:
            return []
        children = ensure_rng_batch(rng, batch)
        padded_fields, symmetric, mask, sizes = pad_problem_batch(fields, couplings)
        max_size = padded_fields.shape[1]

        initials: List[Optional[np.ndarray]] = []
        for index in range(batch):
            supplied = None if initial_spins is None else initial_spins[index]
            initial = broadcast_initial_spins(supplied, num_reads, int(sizes[index]))
            if schedule.requires_initial_state and initial is None and sizes[index] > 0:
                raise ConfigurationError(
                    f"schedule {schedule.name!r} starts at s = 1 and requires an "
                    f"initial state (missing for instance {index})"
                )
            initials.append(initial)

        if max_size == 0:
            return [np.zeros((num_reads, 0), dtype=np.int8) for _ in range(batch)]

        base_temperature = max(relative_temperature, 1e-6)
        # Padding lanes start at +1 and, having zero couplings, never influence
        # real spins; their own flips are suppressed by the mask below.
        spins = np.ones((batch, num_reads, max_size))
        local = np.zeros((batch, num_reads, max_size))
        for index in range(batch):
            size = int(sizes[index])
            if size == 0:
                continue
            if initials[index] is not None:
                spins[index, :, :size] = initials[index].astype(float)
            else:
                spins[index, :, :size] = children[index].choice(
                    [-1.0, 1.0], size=(num_reads, size)
                )
            local[index, :, :size] = (
                padded_fields[index, :size][None, :]
                + spins[index, :, :size] @ symmetric[index, :size, :size]
            )

        num_steps = max(2, int(round(schedule.duration_us * self.sweeps_per_microsecond)))
        waypoints = schedule.discretise(num_steps)
        lanes = np.arange(batch)

        for _, s in waypoints:
            problem = annealing_functions.relative_problem(float(s))
            transverse = annealing_functions.relative_transverse(float(s))
            temperature = base_temperature + self.fluctuation_gain * transverse
            activity = max(min(1.0, transverse / self.freeze_scale), self.residual_activity)
            draws_per_spin = 2 if activity < 1.0 else 1

            # Per-instance sweep orders and uniforms, drawn from each child in
            # the same blocked layout the single-instance kernel uses.
            orders = np.zeros((batch, max_size), dtype=int)
            draws = np.zeros((batch, max_size, draws_per_spin, num_reads))
            for index in range(batch):
                size = int(sizes[index])
                if size == 0:
                    continue
                orders[index, :size] = children[index].permutation(size)
                draws[index, :size] = children[index].random(
                    (size, draws_per_spin, num_reads)
                )

            for position in range(max_size):
                # Padding is trailing, so the mask column doubles as "does
                # this instance still have a spin to visit at this position".
                active = mask[:, position]
                if not np.any(active):
                    break
                index = orders[:, position]
                current = spins[lanes, :, index]
                delta_energy = -2.0 * current * local[lanes, :, index] * problem
                accept = (delta_energy <= 0.0) | (
                    draws[:, position, 0]
                    < np.exp(-np.clip(delta_energy, 0.0, 700.0) / temperature)
                )
                if activity < 1.0:
                    accept &= draws[:, position, 1] < activity
                accept &= active[:, None]
                touched = np.nonzero(np.any(accept, axis=1))[0]
                if touched.size == 0:
                    continue
                flipped = np.where(accept, -current, current)
                change = flipped - current
                spins[lanes, :, index] = flipped
                rows = symmetric[touched, index[touched], :]
                local[touched] += change[touched][:, :, None] * rows[:, None, :]

        return [
            spins[index, :, : int(sizes[index])].astype(np.int8) for index in range(batch)
        ]
