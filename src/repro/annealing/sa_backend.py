"""Schedule-driven simulated annealing backend.

A cruder — but faster — surrogate than spin-vector Monte Carlo: the anneal
fraction s is mapped onto an *effective temperature* for single-spin-flip
Metropolis dynamics.  Quantum fluctuations (strength A(s)) are modelled as an
additional thermal contribution, and the problem Hamiltonian is weighted by
B(s), so:

    T_eff(s)  =  relative_temperature + fluctuation_gain * A(s)/B(1)
    accept    =  exp( - B(s)/B(1) * dE / T_eff(s) )

At s = 1 the dynamics are a near-greedy descent at the device temperature; at
s = 0 flips are essentially free and the state randomises; in between the
backend performs a local stochastic search whose radius grows as s decreases —
the same mechanism the paper's reverse-annealing discussion relies on.

Paper linkage
-------------
This backend is the workhorse surrogate behind the paper's evaluation
(Section 4.2, Figures 6-8): the reverse-anneal schedules of Figure 5 map
directly onto its effective-temperature trajectory, and its freeze-out model
reproduces the "too late to repair a random state" behaviour Figure 6's
RA(random) series depends on.  It is also the backend the batched
multi-instance engine (Figure 2's requirement that many channel uses be in
flight at once) is benchmarked on: both entry points execute through the
replica-parallel sweep kernels of :mod:`repro.annealing.kernels` — one array
program over ``(batch, spins, reads)`` per sweep — while drawing each
instance's randomness from its own child generator, so batched and
sequential results are bitwise-identical and independent of batch grouping.
The ``REPRO_KERNEL`` environment variable selects the kernel implementation
(vectorized / reference / numba / legacy); see ``docs/kernels.md``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.annealing import kernels
from repro.annealing.backend import AnnealingBackend, broadcast_initial_spins, pad_problem_batch
from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.utils.rng import BatchRandomState, ensure_rng, ensure_rng_batch

__all__ = ["ScheduleDrivenAnnealingBackend"]


class ScheduleDrivenAnnealingBackend(AnnealingBackend):
    """Single-flip Metropolis dynamics with a schedule-driven temperature.

    Parameters
    ----------
    sweeps_per_microsecond:
        Metropolis sweeps per microsecond of schedule time.
    fluctuation_gain:
        How strongly the transverse-field scale A(s) contributes to the
        effective temperature; larger values make low-s excursions more
        disruptive.
    freeze_scale / residual_activity:
        Freeze-out model shared with the SVMC backend: spin updates are
        attempted with probability ``min(1, A(s)/B(1)/freeze_scale)`` (floored
        at ``residual_activity``), so the dynamics stall once quantum
        fluctuations vanish instead of behaving like an ideal classical
        quench.
    """

    name = "schedule-driven-annealing"

    def __init__(
        self,
        sweeps_per_microsecond: float = 48.0,
        fluctuation_gain: float = 1.0,
        freeze_scale: float = 0.15,
        residual_activity: float = 0.02,
    ) -> None:
        if sweeps_per_microsecond <= 0:
            raise ConfigurationError(
                f"sweeps_per_microsecond must be positive, got {sweeps_per_microsecond}"
            )
        if fluctuation_gain < 0:
            raise ConfigurationError(
                f"fluctuation_gain must be non-negative, got {fluctuation_gain}"
            )
        if freeze_scale <= 0:
            raise ConfigurationError(f"freeze_scale must be positive, got {freeze_scale}")
        if not 0.0 <= residual_activity <= 1.0:
            raise ConfigurationError(
                f"residual_activity must lie in [0, 1], got {residual_activity}"
            )
        self.sweeps_per_microsecond = float(sweeps_per_microsecond)
        self.fluctuation_gain = float(fluctuation_gain)
        self.freeze_scale = float(freeze_scale)
        self.residual_activity = float(residual_activity)

    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run the Metropolis dynamics along the schedule; see the backend interface.

        Implemented as a batch of one: the same sweep kernel serves both entry
        points, so a single run is bitwise-identical to the corresponding lane
        of any batched run seeded with the same generator.
        """
        generator = ensure_rng(rng)
        return self.run_batch(
            [np.asarray(fields, dtype=float).ravel()],
            [np.asarray(couplings, dtype=float)],
            schedule,
            num_reads,
            annealing_functions,
            relative_temperature,
            initial_spins=None if initial_spins is None else [initial_spins],
            rng=[generator],
        )[0]

    def _sweep_settings(
        self,
        schedule: AnnealSchedule,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
    ) -> List[tuple]:
        """Per-sweep ``(problem, transverse, temperature, activity)`` scalars."""
        base_temperature = max(relative_temperature, 1e-6)
        num_steps = max(2, int(round(schedule.duration_us * self.sweeps_per_microsecond)))
        settings = []
        for _, s in schedule.discretise(num_steps):
            problem = annealing_functions.relative_problem(float(s))
            transverse = annealing_functions.relative_transverse(float(s))
            temperature = base_temperature + self.fluctuation_gain * transverse
            activity = max(min(1.0, transverse / self.freeze_scale), self.residual_activity)
            settings.append((problem, transverse, temperature, activity))
        return settings

    def run_batch(
        self,
        fields: Sequence[np.ndarray],
        couplings: Sequence[np.ndarray],
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[Sequence[Optional[np.ndarray]]] = None,
        rng: BatchRandomState = None,
    ) -> List[np.ndarray]:
        """Vectorised multi-instance Metropolis kernel; see the backend interface.

        All B instances advance through the shared schedule as one
        replica-parallel array computation (see
        :mod:`repro.annealing.kernels`): instances are padded to a common
        size with zero fields/couplings and a validity mask, and instance
        ``b`` draws exclusively from child generator ``b``, so results are
        independent of how a workload is grouped into batches.  The sweep
        implementation is selected by the ``REPRO_KERNEL`` environment
        variable; ``REPRO_KERNEL=legacy`` reproduces the pre-kernel-rewrite
        sequential dynamics bit for bit.
        """
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        batch = len(fields)
        if initial_spins is not None and len(initial_spins) != batch:
            raise ConfigurationError(
                f"{len(initial_spins)} initial states supplied for a batch of {batch}"
            )
        if batch == 0:
            return []
        children = ensure_rng_batch(rng, batch)
        padded_fields, symmetric, mask, sizes = pad_problem_batch(fields, couplings)
        max_size = padded_fields.shape[1]

        initials: List[Optional[np.ndarray]] = []
        for index in range(batch):
            supplied = None if initial_spins is None else initial_spins[index]
            initial = broadcast_initial_spins(supplied, num_reads, int(sizes[index]))
            if schedule.requires_initial_state and initial is None and sizes[index] > 0:
                raise ConfigurationError(
                    f"schedule {schedule.name!r} starts at s = 1 and requires an "
                    f"initial state (missing for instance {index})"
                )
            initials.append(initial)

        if max_size == 0:
            return [np.zeros((num_reads, 0), dtype=np.int8) for _ in range(batch)]

        settings = self._sweep_settings(schedule, annealing_functions, relative_temperature)
        kernel = kernels.active_kernel_name()

        if kernel == "legacy":
            # Pre-rewrite read-major layout and sequential per-position sweeps.
            spins = np.ones((batch, num_reads, max_size))
            local = np.zeros((batch, num_reads, max_size))
            for index in range(batch):
                size = int(sizes[index])
                if size == 0:
                    continue
                if initials[index] is not None:
                    spins[index, :, :size] = initials[index].astype(float)
                else:
                    spins[index, :, :size] = children[index].choice(
                        [-1.0, 1.0], size=(num_reads, size)
                    )
                local[index, :, :size] = (
                    padded_fields[index, :size][None, :]
                    + spins[index, :, :size] @ symmetric[index, :size, :size]
                )
            kernels.sa_sweeps_legacy(spins, local, symmetric, mask, sizes, children, settings)
            return [
                spins[index, :, : int(sizes[index])].astype(np.int8) for index in range(batch)
            ]

        # Replica-parallel kernels use the spin-major (batch, spins, reads)
        # layout.  Padding lanes start at +1 and, having zero couplings, never
        # influence real spins; the kernel's mask suppresses their own flips.
        state = np.ones((batch, max_size, num_reads))
        for index in range(batch):
            size = int(sizes[index])
            if size == 0:
                continue
            if initials[index] is not None:
                state[index, :size] = initials[index].astype(float).T
            else:
                state[index, :size] = children[index].choice(
                    [-1.0, 1.0], size=(num_reads, size)
                ).T
        local = kernels.initial_local_fields(padded_fields, symmetric, state)
        kernels.sa_sweeps(
            state, local, symmetric, mask, sizes, children, settings, implementation=kernel
        )
        return [
            state[index, : int(sizes[index])].T.astype(np.int8) for index in range(batch)
        ]
