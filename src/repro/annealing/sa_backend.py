"""Schedule-driven simulated annealing backend.

A cruder — but faster — surrogate than spin-vector Monte Carlo: the anneal
fraction s is mapped onto an *effective temperature* for single-spin-flip
Metropolis dynamics.  Quantum fluctuations (strength A(s)) are modelled as an
additional thermal contribution, and the problem Hamiltonian is weighted by
B(s), so:

    T_eff(s)  =  relative_temperature + fluctuation_gain * A(s)/B(1)
    accept    =  exp( - B(s)/B(1) * dE / T_eff(s) )

At s = 1 the dynamics are a near-greedy descent at the device temperature; at
s = 0 flips are essentially free and the state randomises; in between the
backend performs a local stochastic search whose radius grows as s decreases —
the same mechanism the paper's reverse-annealing discussion relies on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.annealing.backend import AnnealingBackend, broadcast_initial_spins
from repro.annealing.device import AnnealingFunctions
from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng

__all__ = ["ScheduleDrivenAnnealingBackend"]


class ScheduleDrivenAnnealingBackend(AnnealingBackend):
    """Single-flip Metropolis dynamics with a schedule-driven temperature.

    Parameters
    ----------
    sweeps_per_microsecond:
        Metropolis sweeps per microsecond of schedule time.
    fluctuation_gain:
        How strongly the transverse-field scale A(s) contributes to the
        effective temperature; larger values make low-s excursions more
        disruptive.
    freeze_scale / residual_activity:
        Freeze-out model shared with the SVMC backend: spin updates are
        attempted with probability ``min(1, A(s)/B(1)/freeze_scale)`` (floored
        at ``residual_activity``), so the dynamics stall once quantum
        fluctuations vanish instead of behaving like an ideal classical
        quench.
    """

    name = "schedule-driven-annealing"

    def __init__(
        self,
        sweeps_per_microsecond: float = 48.0,
        fluctuation_gain: float = 1.0,
        freeze_scale: float = 0.15,
        residual_activity: float = 0.02,
    ) -> None:
        if sweeps_per_microsecond <= 0:
            raise ConfigurationError(
                f"sweeps_per_microsecond must be positive, got {sweeps_per_microsecond}"
            )
        if fluctuation_gain < 0:
            raise ConfigurationError(
                f"fluctuation_gain must be non-negative, got {fluctuation_gain}"
            )
        if freeze_scale <= 0:
            raise ConfigurationError(f"freeze_scale must be positive, got {freeze_scale}")
        if not 0.0 <= residual_activity <= 1.0:
            raise ConfigurationError(
                f"residual_activity must lie in [0, 1], got {residual_activity}"
            )
        self.sweeps_per_microsecond = float(sweeps_per_microsecond)
        self.fluctuation_gain = float(fluctuation_gain)
        self.freeze_scale = float(freeze_scale)
        self.residual_activity = float(residual_activity)

    def run(
        self,
        fields: np.ndarray,
        couplings: np.ndarray,
        schedule: AnnealSchedule,
        num_reads: int,
        annealing_functions: AnnealingFunctions,
        relative_temperature: float,
        initial_spins: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Run the Metropolis dynamics along the schedule; see the backend interface."""
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        generator = ensure_rng(rng)
        fields = np.asarray(fields, dtype=float).ravel()
        couplings = np.asarray(couplings, dtype=float)
        num_spins = fields.size

        if num_spins == 0:
            return np.zeros((num_reads, 0), dtype=np.int8)

        symmetric = couplings + couplings.T
        base_temperature = max(relative_temperature, 1e-6)

        initial = broadcast_initial_spins(initial_spins, num_reads, num_spins)
        if schedule.requires_initial_state and initial is None:
            raise ConfigurationError(
                f"schedule {schedule.name!r} starts at s = 1 and requires an initial state"
            )

        if initial is not None:
            spins = initial.astype(float)
        else:
            spins = generator.choice([-1.0, 1.0], size=(num_reads, num_spins))

        num_steps = max(2, int(round(schedule.duration_us * self.sweeps_per_microsecond)))
        waypoints = schedule.discretise(num_steps)

        # local[r, i] = h_i + sum_j J_ij s_j
        local = fields[None, :] + spins @ symmetric

        for _, s in waypoints:
            problem = annealing_functions.relative_problem(float(s))
            transverse = annealing_functions.relative_transverse(float(s))
            temperature = base_temperature + self.fluctuation_gain * transverse
            activity = max(min(1.0, transverse / self.freeze_scale), self.residual_activity)
            order = generator.permutation(num_spins)
            for index in order:
                current = spins[:, index]
                # Energy change of flipping spin `index`: dE = -2 * s_i * local_i
                delta_energy = -2.0 * current * local[:, index] * problem
                accept = (delta_energy <= 0.0) | (
                    generator.random(num_reads)
                    < np.exp(-np.clip(delta_energy, 0.0, 700.0) / temperature)
                )
                if activity < 1.0:
                    accept &= generator.random(num_reads) < activity
                if not np.any(accept):
                    continue
                flipped = np.where(accept, -current, current)
                change = flipped - current
                spins[:, index] = flipped
                local += change[:, None] * symmetric[index][None, :]

        return spins.astype(np.int8)
