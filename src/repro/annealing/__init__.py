"""Quantum annealing simulator substrate.

The paper prototypes on a D-Wave 2000Q analog quantum annealer.  Real quantum
hardware is not available to this library, so — per the substitution note in
DESIGN.md — this package provides a *software* annealer with the same
programming surface:

* :mod:`repro.annealing.schedule` — the FA / RA / FR anneal schedules of paper
  Section 4.1, expressed as piecewise-linear ``[time (us), s]`` waypoints.
* :mod:`repro.annealing.sampleset` — Ocean-SDK-style sample containers.
* :mod:`repro.annealing.topology` — the Chimera hardware graph of the 2000Q.
* :mod:`repro.annealing.embedding` — clique minor-embedding, chain strength,
  and chain-break resolution.
* :mod:`repro.annealing.device` — device timing constants, control-error
  (ICE-like) noise, and annealing energy scales A(s)/B(s).
* :mod:`repro.annealing.kernels` — the replica-parallel Metropolis sweep
  kernels (vectorized / reference / numba / legacy, selected by the
  ``REPRO_KERNEL`` environment variable) shared by both backends and the
  classical SA solver.
* :mod:`repro.annealing.svmc` — a schedule-aware spin-vector Monte Carlo
  backend (the default physics surrogate).
* :mod:`repro.annealing.sa_backend` — a schedule-driven simulated annealing
  backend (a faster, cruder surrogate).
* :mod:`repro.annealing.sampler` — the :class:`QuantumAnnealerSimulator`
  front-end that ties schedules, device model and backends together.
"""

from repro.annealing.schedule import (
    AnnealSchedule,
    SchedulePoint,
    forward_anneal_schedule,
    reverse_anneal_schedule,
    forward_reverse_anneal_schedule,
)
from repro.annealing.sampleset import SampleRecord, SampleSet
from repro.annealing.topology import chimera_graph, ChimeraCoordinates
from repro.annealing.embedding import (
    Embedding,
    find_clique_embedding,
    embed_ising,
    unembed_sampleset,
    resolve_chain_breaks,
)
from repro.annealing.device import DeviceModel, AnnealingFunctions
from repro.annealing.backend import AnnealingBackend, pad_problem_batch
from repro.annealing.kernels import (
    KERNEL_CHOICES,
    KERNEL_ENV_VAR,
    active_kernel_name,
    numba_available,
    requested_kernel_name,
)
from repro.annealing.svmc import SpinVectorMonteCarloBackend
from repro.annealing.sa_backend import ScheduleDrivenAnnealingBackend
from repro.annealing.sampler import QuantumAnnealerSimulator

__all__ = [
    "AnnealSchedule",
    "SchedulePoint",
    "forward_anneal_schedule",
    "reverse_anneal_schedule",
    "forward_reverse_anneal_schedule",
    "SampleRecord",
    "SampleSet",
    "chimera_graph",
    "ChimeraCoordinates",
    "Embedding",
    "find_clique_embedding",
    "embed_ising",
    "unembed_sampleset",
    "resolve_chain_breaks",
    "DeviceModel",
    "AnnealingFunctions",
    "AnnealingBackend",
    "pad_problem_batch",
    "KERNEL_CHOICES",
    "KERNEL_ENV_VAR",
    "active_kernel_name",
    "numba_available",
    "requested_kernel_name",
    "SpinVectorMonteCarloBackend",
    "ScheduleDrivenAnnealingBackend",
    "QuantumAnnealerSimulator",
]
