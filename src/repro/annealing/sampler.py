"""The quantum annealer simulator front-end.

:class:`QuantumAnnealerSimulator` exposes an Ocean-SDK-like sampling API on
top of the schedule definitions, the device model, the (optional) Chimera
minor embedding, and one of the Monte Carlo physics backends:

>>> from repro.annealing import QuantumAnnealerSimulator, reverse_anneal_schedule
>>> sampler = QuantumAnnealerSimulator(seed=7)
>>> schedule = reverse_anneal_schedule(switch_s=0.41, pause_duration_us=1.0)
>>> result = sampler.sample_qubo(qubo, schedule, num_reads=500, initial_state=bits)
>>> result.first.energy

The paper's three solver flavours map onto the convenience methods
:meth:`forward_anneal`, :meth:`reverse_anneal` and
:meth:`forward_reverse_anneal`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.annealing import kernels
from repro.annealing.backend import AnnealingBackend
from repro.annealing.device import DeviceModel
from repro.annealing.embedding import embed_ising, find_clique_embedding, unembed_sampleset
from repro.annealing.sampleset import SampleSet
from repro.annealing.schedule import (
    AnnealSchedule,
    forward_anneal_schedule,
    forward_reverse_anneal_schedule,
    reverse_anneal_schedule,
)
from repro.annealing.svmc import SpinVectorMonteCarloBackend
from repro.exceptions import ConfigurationError
from repro.qubo.ising import IsingModel, bits_to_spins, qubo_to_ising
from repro.qubo.model import QUBOModel
from repro.utils.rng import (
    BatchRandomState,
    RandomState,
    ensure_rng,
    ensure_rng_batch,
    spawn_rngs,
)

__all__ = ["QuantumAnnealerSimulator"]


class QuantumAnnealerSimulator:
    """A software stand-in for the D-Wave 2000Q used by the paper.

    Parameters
    ----------
    device:
        Device model (energy scales, temperature, noise, timing).  Defaults to
        the simulated 2000Q description.
    backend:
        Physics surrogate; defaults to spin-vector Monte Carlo.
    use_embedding:
        When true, problems are minor-embedded onto the device's Chimera graph
        and samples are unembedded with majority-vote chain-break resolution —
        slower but faithful to how dense problems run on real hardware.
    seed:
        Seed for the simulator's private random stream (used when a call does
        not pass its own ``rng``).
    """

    def __init__(
        self,
        device: Optional[DeviceModel] = None,
        backend: Optional[AnnealingBackend] = None,
        use_embedding: bool = False,
        lattice_size: Optional[int] = None,
        seed: RandomState = None,
    ) -> None:
        self.device = device if device is not None else DeviceModel()
        self.backend = backend if backend is not None else SpinVectorMonteCarloBackend()
        self.use_embedding = bool(use_embedding)
        self.lattice_size = lattice_size
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------ #
    # Core sampling entry points
    # ------------------------------------------------------------------ #

    def sample_qubo(
        self,
        qubo: QUBOModel,
        schedule: AnnealSchedule,
        num_reads: int = 100,
        initial_state: Optional[Sequence[int]] = None,
        rng: RandomState = None,
    ) -> SampleSet:
        """Sample a QUBO along an anneal schedule.

        ``initial_state`` is a 0/1 assignment and is required whenever the
        schedule starts from a classical state (reverse annealing).
        """
        ising = qubo_to_ising(qubo)
        initial_spins = None
        if initial_state is not None:
            initial_spins = bits_to_spins(np.asarray(initial_state, dtype=int))
        sampleset = self.sample_ising(ising, schedule, num_reads, initial_spins, rng)
        return self._requbo_sampleset(qubo, sampleset)

    @staticmethod
    def _requbo_sampleset(qubo: QUBOModel, sampleset: SampleSet) -> SampleSet:
        # Re-evaluate energies under the QUBO so offsets/conventions match the
        # caller's model exactly (the conversion is exact, but recomputing
        # avoids accumulating floating-point drift through two conversions).
        assignments = np.array([record.assignment for record in sampleset.records])
        occurrences = sampleset.occurrences()
        energies = qubo.energies(assignments) if len(sampleset) else np.empty(0)
        from repro.annealing.sampleset import SampleRecord

        records = [
            SampleRecord(
                assignment=assignment,
                energy=float(energy),
                num_occurrences=int(count),
                chain_break_fraction=record.chain_break_fraction,
            )
            for assignment, energy, count, record in zip(
                assignments, energies, occurrences, sampleset.records
            )
        ]
        return SampleSet(records, metadata=sampleset.metadata)

    def sample_ising(
        self,
        ising: IsingModel,
        schedule: AnnealSchedule,
        num_reads: int = 100,
        initial_spins: Optional[np.ndarray] = None,
        rng: RandomState = None,
    ) -> SampleSet:
        """Sample an Ising model along an anneal schedule."""
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        generator = ensure_rng(rng) if rng is not None else self._rng

        if schedule.requires_initial_state and initial_spins is None:
            raise ConfigurationError(
                f"schedule {schedule.name!r} starts from a classical state; "
                "supply initial_state/initial_spins"
            )

        if self.use_embedding and ising.num_spins > 1:
            sampleset = self._sample_embedded(ising, schedule, num_reads, initial_spins, generator)
        else:
            sampleset = self._sample_logical(ising, schedule, num_reads, initial_spins, generator)

        sampleset.metadata.update(self._metadata(schedule, num_reads))
        return sampleset

    # ------------------------------------------------------------------ #
    # Batched multi-instance entry points
    # ------------------------------------------------------------------ #

    def sample_qubo_batch(
        self,
        qubos: Sequence[QUBOModel],
        schedule: AnnealSchedule,
        num_reads: int = 100,
        initial_states: Optional[Sequence[Optional[Sequence[int]]]] = None,
        rng: BatchRandomState = None,
    ) -> List[SampleSet]:
        """Sample a batch of independent QUBOs along one shared anneal schedule.

        Instances may have different sizes; each draws from its own child
        generator (``rng`` is a root seed or an explicit per-instance
        generator sequence), so the returned sample sets are bitwise-identical
        to calling :meth:`sample_qubo` once per instance with those children —
        regardless of batch composition.
        """
        if initial_states is not None and len(initial_states) != len(qubos):
            raise ConfigurationError(
                f"{len(initial_states)} initial states supplied for a batch of {len(qubos)}"
            )
        isings = [qubo_to_ising(qubo) for qubo in qubos]
        initial_spins: Optional[List[Optional[np.ndarray]]] = None
        if initial_states is not None:
            initial_spins = [
                None if state is None else bits_to_spins(np.asarray(state, dtype=int))
                for state in initial_states
            ]
        samplesets = self.sample_ising_batch(isings, schedule, num_reads, initial_spins, rng)
        return [
            self._requbo_sampleset(qubo, sampleset)
            for qubo, sampleset in zip(qubos, samplesets)
        ]

    def sample_ising_batch(
        self,
        isings: Sequence[IsingModel],
        schedule: AnnealSchedule,
        num_reads: int = 100,
        initial_spins: Optional[Sequence[Optional[np.ndarray]]] = None,
        rng: BatchRandomState = None,
    ) -> List[SampleSet]:
        """Sample a batch of independent Ising models along one schedule.

        The whole batch is handed to the backend's vectorised
        :meth:`~repro.annealing.backend.AnnealingBackend.run_batch` kernel in
        a single call (embedded sampling falls back to a per-instance loop).
        """
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        if initial_spins is not None and len(initial_spins) != len(isings):
            raise ConfigurationError(
                f"{len(initial_spins)} initial states supplied for a batch of {len(isings)}"
            )
        batch = len(isings)
        children = ensure_rng_batch(rng if rng is not None else self._rng, batch)

        for index, ising in enumerate(isings):
            supplied = None if initial_spins is None else initial_spins[index]
            if schedule.requires_initial_state and supplied is None:
                raise ConfigurationError(
                    f"schedule {schedule.name!r} starts from a classical state; "
                    f"supply initial_state/initial_spins (missing for instance {index})"
                )

        if self.use_embedding:
            return [
                self.sample_ising(
                    ising,
                    schedule,
                    num_reads,
                    None if initial_spins is None else initial_spins[index],
                    children[index],
                )
                for index, ising in enumerate(isings)
            ]

        fields_list = []
        couplings_list = []
        kernel_children = []
        for index, ising in enumerate(isings):
            fields, couplings, _ = self._normalise(ising, children[index])
            fields_list.append(fields)
            couplings_list.append(couplings)
            # Mirrors the single-instance path (normalise, then spawn the
            # kernel child) so batch-of-one stays bitwise-identical to single.
            kernel_children.append(self._kernel_rng(children[index]))
        spins_list = self.backend.run_batch(
            fields=fields_list,
            couplings=couplings_list,
            schedule=schedule,
            num_reads=num_reads,
            annealing_functions=self.device.annealing,
            relative_temperature=self.device.relative_temperature,
            initial_spins=initial_spins,
            rng=kernel_children,
        )
        samplesets = []
        for ising, spins in zip(isings, spins_list):
            bits = ((spins + 1) // 2).astype(np.int8)
            energies = ising.energies(spins)
            sampleset = SampleSet.from_arrays(bits, energies, metadata={"embedded": False})
            sampleset.metadata.update(self._metadata(schedule, num_reads))
            samplesets.append(sampleset)
        return samplesets

    def forward_anneal_batch(
        self,
        qubos: Sequence[QUBOModel],
        num_reads: int = 100,
        anneal_time_us: float = 1.0,
        pause_s: Optional[float] = None,
        pause_duration_us: float = 1.0,
        rng: BatchRandomState = None,
    ) -> List[SampleSet]:
        """Forward-anneal a batch of QUBOs under one shared schedule."""
        schedule = forward_anneal_schedule(anneal_time_us, pause_s, pause_duration_us)
        return self.sample_qubo_batch(qubos, schedule, num_reads, None, rng)

    def reverse_anneal_batch(
        self,
        qubos: Sequence[QUBOModel],
        initial_states: Sequence[Sequence[int]],
        switch_s: float,
        num_reads: int = 100,
        pause_duration_us: float = 1.0,
        rng: BatchRandomState = None,
    ) -> List[SampleSet]:
        """Reverse-anneal a batch of QUBOs from per-instance initial states."""
        schedule = reverse_anneal_schedule(switch_s, pause_duration_us)
        return self.sample_qubo_batch(qubos, schedule, num_reads, initial_states, rng)

    # ------------------------------------------------------------------ #
    # Paper solver flavours
    # ------------------------------------------------------------------ #

    def forward_anneal(
        self,
        qubo: QUBOModel,
        num_reads: int = 100,
        anneal_time_us: float = 1.0,
        pause_s: Optional[float] = None,
        pause_duration_us: float = 1.0,
        rng: RandomState = None,
    ) -> SampleSet:
        """Forward annealing (FA), optionally with a mid-anneal pause."""
        schedule = forward_anneal_schedule(anneal_time_us, pause_s, pause_duration_us)
        return self.sample_qubo(qubo, schedule, num_reads, None, rng)

    def reverse_anneal(
        self,
        qubo: QUBOModel,
        initial_state: Sequence[int],
        switch_s: float,
        num_reads: int = 100,
        pause_duration_us: float = 1.0,
        rng: RandomState = None,
    ) -> SampleSet:
        """Reverse annealing (RA) from a classical initial state."""
        schedule = reverse_anneal_schedule(switch_s, pause_duration_us)
        return self.sample_qubo(qubo, schedule, num_reads, initial_state, rng)

    def forward_reverse_anneal(
        self,
        qubo: QUBOModel,
        turning_s: float,
        switch_s: float,
        num_reads: int = 100,
        pause_duration_us: float = 1.0,
        anneal_time_us: float = 1.0,
        rng: RandomState = None,
    ) -> SampleSet:
        """Single-step forward-reverse annealing (FR)."""
        schedule = forward_reverse_anneal_schedule(
            turning_s, switch_s, pause_duration_us, anneal_time_us
        )
        return self.sample_qubo(qubo, schedule, num_reads, None, rng)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _normalise(self, ising: IsingModel, generator: np.random.Generator):
        scale = self.device.normalisation_scale(ising)
        fields = ising.fields / scale
        couplings = ising.couplings / scale
        fields, couplings = self.device.apply_control_noise(fields, couplings, generator)
        return fields, couplings, scale

    @staticmethod
    def _kernel_rng(generator: np.random.Generator) -> np.random.Generator:
        """Child generator feeding the anneal kernel's draws.

        The kernel consumes a number of draws that scales with ``num_reads``;
        *spawning* a child (which advances only the seed-sequence spawn
        counter, never the caller's bitstream) instead of drawing directly
        means sweeping ``num_reads`` can never shift the draws any downstream
        consumer takes from the caller's generator.  ``REPRO_KERNEL=legacy``
        keeps the pre-rewrite behaviour — kernel draws taken straight from
        the caller's stream — so historical bitstreams stay reproducible.
        """
        if kernels.active_kernel_name() == "legacy":
            return generator
        return spawn_rngs(generator, 1)[0]

    def _sample_logical(
        self,
        ising: IsingModel,
        schedule: AnnealSchedule,
        num_reads: int,
        initial_spins: Optional[np.ndarray],
        generator: np.random.Generator,
    ) -> SampleSet:
        fields, couplings, _ = self._normalise(ising, generator)
        spins = self.backend.run(
            fields=fields,
            couplings=couplings,
            schedule=schedule,
            num_reads=num_reads,
            annealing_functions=self.device.annealing,
            relative_temperature=self.device.relative_temperature,
            initial_spins=initial_spins,
            rng=self._kernel_rng(generator),
        )
        bits = ((spins + 1) // 2).astype(np.int8)
        energies = ising.energies(spins)
        return SampleSet.from_arrays(bits, energies, metadata={"embedded": False})

    def _sample_embedded(
        self,
        ising: IsingModel,
        schedule: AnnealSchedule,
        num_reads: int,
        initial_spins: Optional[np.ndarray],
        generator: np.random.Generator,
    ) -> SampleSet:
        embedding = find_clique_embedding(ising.num_spins, self.lattice_size)
        fields, couplings, _ = self._normalise(ising, generator)
        logical = IsingModel(fields=fields, couplings=couplings)
        physical_fields, physical_couplings, chain_strength = embed_ising(logical, embedding)

        used_qubits = sorted({qubit for chain in embedding.chains for qubit in chain})
        position = {qubit: index for index, qubit in enumerate(used_qubits)}
        dense_fields = np.zeros(len(used_qubits))
        dense_couplings = np.zeros((len(used_qubits), len(used_qubits)))
        for qubit, value in physical_fields.items():
            dense_fields[position[qubit]] = value
        for (qubit_a, qubit_b), value in physical_couplings.items():
            low, high = sorted((position[qubit_a], position[qubit_b]))
            dense_couplings[low, high] += value

        physical_initial = None
        if initial_spins is not None:
            initial_spins = np.asarray(initial_spins, dtype=np.int8)
            if initial_spins.ndim != 1:
                raise ConfigurationError(
                    "embedded sampling supports a single shared initial state"
                )
            physical_initial = np.zeros(len(used_qubits), dtype=np.int8)
            for logical_index, chain in enumerate(embedding.chains):
                for qubit in chain:
                    physical_initial[position[qubit]] = initial_spins[logical_index]

        # Re-normalise the embedded problem (chain couplings may exceed range).
        max_abs = max(
            float(np.max(np.abs(dense_fields))) if dense_fields.size else 0.0,
            float(np.max(np.abs(dense_couplings))) if dense_couplings.size else 0.0,
            1e-12,
        )
        spins = self.backend.run(
            fields=dense_fields / max_abs,
            couplings=dense_couplings / max_abs,
            schedule=schedule,
            num_reads=num_reads,
            annealing_functions=self.device.annealing,
            relative_temperature=self.device.relative_temperature,
            initial_spins=physical_initial,
            rng=self._kernel_rng(generator),
        )
        physical_samples = [
            {qubit: int(spins[read, position[qubit]]) for qubit in used_qubits}
            for read in range(num_reads)
        ]
        # Energies are re-evaluated on the *unnormalised* logical model so the
        # caller sees energies in their own units.  Chain-break tie resolution
        # draws from its own spawned child for the same reason the kernel
        # does: its consumption scales with num_reads.
        sampleset = unembed_sampleset(
            physical_samples, embedding, ising, self._kernel_rng(generator)
        )
        sampleset.metadata["chain_strength"] = chain_strength
        sampleset.metadata["max_chain_length"] = embedding.max_chain_length
        return sampleset

    def _metadata(self, schedule: AnnealSchedule, num_reads: int) -> Dict:
        return {
            "schedule": schedule.as_pairs(),
            "schedule_name": schedule.name,
            "schedule_duration_us": schedule.duration_us,
            "num_reads": num_reads,
            "backend": self.backend.name,
            "device": self.device.describe(),
            "qpu_access_time_us": self.device.qpu_access_time_us(schedule, num_reads),
        }
