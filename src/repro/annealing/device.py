"""Device model: energy scales, operating temperature, control noise, timing.

The simulator reproduces the *programming surface* of an analog annealer like
the D-Wave 2000Q the paper uses:

* **Annealing functions** A(s) and B(s): the transverse-field and problem
  Hamiltonian energy scales as functions of the anneal fraction.  At s = 0 the
  transverse term dominates (fully quantum, a measurement would return random
  bits); at s = 1 the problem term dominates and the device behaves as a
  classical memory register — exactly the picture of paper Figure 5.
* **Operating temperature**, which sets the thermal fluctuation scale the
  Monte Carlo backends use.
* **Integrated control errors (ICE)**: Gaussian perturbations applied to the
  programmed fields/couplings of every anneal, modelling the analog precision
  limits of real hardware.
* **Timing**: programming, per-read readout and inter-read delays, so
  experiments can report QPU-access-time style figures in addition to the
  pure anneal-schedule durations the paper's TTS metric uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.annealing.schedule import AnnealSchedule
from repro.exceptions import ConfigurationError
from repro.qubo.ising import IsingModel
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["AnnealingFunctions", "DeviceModel"]


@dataclass(frozen=True)
class AnnealingFunctions:
    """The A(s) / B(s) energy scales of the annealer, in GHz.

    The default shapes follow the qualitative form of the published 2000Q
    curves: the transverse field A(s) decays super-linearly and is effectively
    zero by s ~ 0.8, while the problem scale B(s) grows close to linearly.

    Attributes
    ----------
    transverse_max_ghz:
        A(0), the maximum transverse-field energy scale.
    problem_max_ghz:
        B(1), the maximum problem-Hamiltonian energy scale.
    transverse_exponent:
        Exponent of the (1 - s) decay of A(s); 1.0 gives a linear decay,
        larger values suppress quantum fluctuations earlier in the anneal.
    """

    transverse_max_ghz: float = 6.0
    problem_max_ghz: float = 12.0
    transverse_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.transverse_max_ghz <= 0 or self.problem_max_ghz <= 0:
            raise ConfigurationError("annealing energy scales must be positive")
        if self.transverse_exponent <= 0:
            raise ConfigurationError("transverse_exponent must be positive")

    def transverse_energy(self, s: float) -> float:
        """A(s): the transverse-field scale at anneal fraction s."""
        s = float(np.clip(s, 0.0, 1.0))
        return self.transverse_max_ghz * (1.0 - s) ** self.transverse_exponent

    def problem_energy(self, s: float) -> float:
        """B(s): the problem-Hamiltonian scale at anneal fraction s."""
        s = float(np.clip(s, 0.0, 1.0))
        return self.problem_max_ghz * s

    def relative_transverse(self, s: float) -> float:
        """A(s) normalised by B(1), the form the Monte Carlo backends use."""
        return self.transverse_energy(s) / self.problem_max_ghz

    def relative_problem(self, s: float) -> float:
        """B(s) normalised by B(1)."""
        return self.problem_energy(s) / self.problem_max_ghz


@dataclass(frozen=True)
class DeviceModel:
    """Static description of the simulated annealing device.

    Attributes
    ----------
    name:
        Device label (defaults to the simulated 2000Q).
    num_qubits:
        Number of physical qubits (2048 for the 2000Q's C16 Chimera).
    annealing:
        The A(s)/B(s) energy scales.
    temperature_ghz:
        Operating temperature expressed as an energy (k_B T / h).  Physical
        devices run at 12-15 mK (~0.25-0.3 GHz); the default of 0.12 GHz is
        the calibration at which the simulator's FA/RA/FR orderings best match
        the paper's published behaviour (see DESIGN.md).
    field_noise_sigma / coupling_noise_sigma:
        Standard deviation of the ICE-like Gaussian perturbation applied to
        programmed h / J values (in units of the maximum programmable value,
        i.e. after normalisation).
    programming_time_us / readout_time_us / inter_sample_delay_us:
        Timing constants used for QPU-access-time estimates.
    h_range / j_range:
        Programmable ranges; problems are rescaled into them before execution.
    """

    name: str = "simulated-2000Q"
    num_qubits: int = 2048
    annealing: AnnealingFunctions = field(default_factory=AnnealingFunctions)
    temperature_ghz: float = 0.12
    field_noise_sigma: float = 0.0
    coupling_noise_sigma: float = 0.0
    programming_time_us: float = 10_000.0
    readout_time_us: float = 120.0
    inter_sample_delay_us: float = 20.0
    h_range: Tuple[float, float] = (-2.0, 2.0)
    j_range: Tuple[float, float] = (-1.0, 1.0)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ConfigurationError(f"num_qubits must be positive, got {self.num_qubits}")
        if self.temperature_ghz < 0:
            raise ConfigurationError(
                f"temperature_ghz must be non-negative, got {self.temperature_ghz}"
            )
        if self.field_noise_sigma < 0 or self.coupling_noise_sigma < 0:
            raise ConfigurationError("noise sigmas must be non-negative")
        if (
            self.programming_time_us < 0
            or self.readout_time_us < 0
            or self.inter_sample_delay_us < 0
        ):
            raise ConfigurationError("timing constants must be non-negative")

    # ------------------------------------------------------------------ #
    # Problem conditioning
    # ------------------------------------------------------------------ #

    def normalisation_scale(self, ising: IsingModel) -> float:
        """Scale factor that brings the model into the programmable range."""
        max_field = float(np.max(np.abs(ising.fields))) if ising.num_spins else 0.0
        max_coupling = (
            float(np.max(np.abs(ising.couplings))) if ising.num_spins else 0.0
        )
        limits = []
        if max_field > 0:
            limits.append(max_field / max(abs(self.h_range[0]), abs(self.h_range[1])))
        if max_coupling > 0:
            limits.append(max_coupling / max(abs(self.j_range[0]), abs(self.j_range[1])))
        scale = max(limits) if limits else 1.0
        return max(scale, 1e-12)

    def apply_control_noise(
        self, fields: np.ndarray, couplings: np.ndarray, rng: RandomState = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Perturb normalised fields/couplings with ICE-like Gaussian noise."""
        if self.field_noise_sigma == 0.0 and self.coupling_noise_sigma == 0.0:
            return fields, couplings
        generator = ensure_rng(rng)
        noisy_fields = fields + generator.normal(0.0, self.field_noise_sigma, size=fields.shape)
        noisy_couplings = couplings.copy()
        if self.coupling_noise_sigma > 0.0:
            rows, cols = np.nonzero(np.triu(couplings, k=1))
            noise = generator.normal(0.0, self.coupling_noise_sigma, size=rows.size)
            noisy_couplings[rows, cols] += noise
        return noisy_fields, noisy_couplings

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #

    @property
    def relative_temperature(self) -> float:
        """Operating temperature normalised by the problem energy scale B(1)."""
        return self.temperature_ghz / self.annealing.problem_max_ghz

    def qpu_access_time_us(self, schedule: AnnealSchedule, num_reads: int) -> float:
        """Estimate total QPU access time for ``num_reads`` anneals of a schedule."""
        if num_reads <= 0:
            raise ConfigurationError(f"num_reads must be positive, got {num_reads}")
        per_read = schedule.duration_us + self.readout_time_us + self.inter_sample_delay_us
        return self.programming_time_us + num_reads * per_read

    def describe(self) -> Dict[str, float]:
        """Summary dictionary used in sampler metadata."""
        return {
            "name": self.name,
            "num_qubits": self.num_qubits,
            "temperature_ghz": self.temperature_ghz,
            "relative_temperature": self.relative_temperature,
            "field_noise_sigma": self.field_noise_sigma,
            "coupling_noise_sigma": self.coupling_noise_sigma,
        }
