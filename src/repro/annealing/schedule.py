"""Anneal schedules: forward, reverse, and forward-reverse (paper Sec. 4.1, Fig. 5).

An anneal schedule is a piecewise-linear trajectory of the annealing fraction
``s`` (0 = fully quantum / transverse field dominates, 1 = classical /
problem Hamiltonian dominates) against physical time in microseconds.  The
paper compares three schedule shapes, parameterised by the anneal time
``t_a``, the pause duration ``t_p``, the switch/pause location ``s_p``, and
(for FR only) the turning point ``c_p``:

* Forward Annealing (FA)::

    [0, 0] -F-> [s_p, s_p] -P-> [s_p + t_p, s_p] -F-> [t_a + t_p, 1]

* Reverse Annealing (RA)::

    [0, 1] -R-> [1 - s_p, s_p] -P-> [1 - s_p + t_p, s_p]
          -F-> [2(1 - s_p) + t_p, 1]

* Forward-Reverse Annealing (FR)::

    [0, 0] -F-> [c_p, c_p] -R-> [2 c_p - s_p, s_p] -P-> [2 c_p - s_p + t_p, s_p]
          -F-> [2 c_p - 2 s_p + t_p + t_a, 1]

(The FA shape uses the unit-slope ramp convention of the paper, i.e. reaching
``s_p`` takes ``s_p`` microseconds when ``t_a = 1``; the final ramp completes
the remaining ``1 - s_p`` within the remaining ``t_a - s_p`` so the total
sweep time excluding the pause equals ``t_a``.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ScheduleError

__all__ = [
    "SchedulePoint",
    "AnnealSchedule",
    "forward_anneal_schedule",
    "reverse_anneal_schedule",
    "forward_reverse_anneal_schedule",
]


@dataclass(frozen=True)
class SchedulePoint:
    """One waypoint of a schedule: time in microseconds and anneal fraction s."""

    time_us: float
    s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.s <= 1.0:
            raise ScheduleError(f"anneal fraction s must lie in [0, 1], got {self.s}")
        if self.time_us < 0.0:
            raise ScheduleError(f"schedule time must be non-negative, got {self.time_us}")


@dataclass(frozen=True)
class AnnealSchedule:
    """A piecewise-linear anneal schedule.

    Attributes
    ----------
    points:
        Waypoints in non-decreasing time order.  The first point defines the
        initial s (1.0 for reverse annealing, 0.0 for forward annealing).
    name:
        Schedule family label ("FA", "RA", "FR", or custom).
    requires_initial_state:
        Whether this schedule needs a classical initial state (true whenever
        the schedule starts at s = 1).
    """

    points: Tuple[SchedulePoint, ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        points = tuple(self.points)
        if len(points) < 2:
            raise ScheduleError("a schedule needs at least two waypoints")
        times = [point.time_us for point in points]
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ScheduleError(f"schedule times must be non-decreasing, got {times}")
        if points[-1].s != 1.0:
            raise ScheduleError(
                f"schedules must terminate at s = 1 (classical readout), got {points[-1].s}"
            )
        object.__setattr__(self, "points", points)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pairs(cls, pairs: Sequence[Sequence[float]], name: str = "custom") -> "AnnealSchedule":
        """Build a schedule from ``[[time_us, s], ...]`` pairs (D-Wave style)."""
        points = tuple(SchedulePoint(float(time), float(s)) for time, s in pairs)
        return cls(points=points, name=name)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def duration_us(self) -> float:
        """Total schedule duration in microseconds."""
        return self.points[-1].time_us - self.points[0].time_us

    @property
    def initial_s(self) -> float:
        """The anneal fraction at the start of the schedule."""
        return self.points[0].s

    @property
    def requires_initial_state(self) -> bool:
        """True when the schedule starts from a classical state (s = 1)."""
        return self.initial_s == 1.0

    @property
    def minimum_s(self) -> float:
        """The lowest anneal fraction reached (depth of quantum fluctuations)."""
        return min(point.s for point in self.points)

    @property
    def pause_duration_us(self) -> float:
        """Total time spent in segments where s stays constant."""
        total = 0.0
        for earlier, later in zip(self.points, self.points[1:]):
            if np.isclose(earlier.s, later.s):
                total += later.time_us - earlier.time_us
        return total

    def s_at(self, time_us: float) -> float:
        """Linearly interpolate the anneal fraction at an absolute time."""
        times = np.array([point.time_us for point in self.points])
        fractions = np.array([point.s for point in self.points])
        if time_us <= times[0]:
            return float(fractions[0])
        if time_us >= times[-1]:
            return float(fractions[-1])
        return float(np.interp(time_us, times, fractions))

    def discretise(self, num_steps: int) -> np.ndarray:
        """Sample the schedule at ``num_steps`` evenly spaced times.

        Returns an array of shape (num_steps, 2) with columns (time_us, s);
        the simulator backends run one Monte Carlo sweep per step.
        """
        if num_steps < 2:
            raise ScheduleError(f"num_steps must be at least 2, got {num_steps}")
        times = np.linspace(self.points[0].time_us, self.points[-1].time_us, num_steps)
        fractions = np.array([self.s_at(time) for time in times])
        return np.column_stack([times, fractions])

    def as_pairs(self) -> List[List[float]]:
        """Return the waypoints as ``[[time_us, s], ...]`` (D-Wave style)."""
        return [[point.time_us, point.s] for point in self.points]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"[{p.time_us:.3g}, {p.s:.3g}]" for p in self.points)
        return f"AnnealSchedule({self.name}: {pairs})"


def forward_anneal_schedule(
    anneal_time_us: float = 1.0,
    pause_s: float = None,
    pause_duration_us: float = 0.0,
) -> AnnealSchedule:
    """Forward annealing, optionally with a mid-anneal pause (paper FA).

    Parameters
    ----------
    anneal_time_us:
        Total sweep time t_a excluding the pause (the 2000Q minimum of 1 us is
        the paper's setting).
    pause_s:
        Pause location s_p in (0, 1), or ``None`` for a plain linear ramp.
    pause_duration_us:
        Pause duration t_p (ignored when ``pause_s`` is ``None``).
    """
    if anneal_time_us <= 0:
        raise ScheduleError(f"anneal_time_us must be positive, got {anneal_time_us}")
    if pause_s is None or pause_duration_us == 0.0:
        if pause_s is None:
            return AnnealSchedule.from_pairs(
                [[0.0, 0.0], [anneal_time_us, 1.0]], name="FA"
            )
    if not 0.0 < pause_s < 1.0:
        raise ScheduleError(f"pause_s must lie strictly inside (0, 1), got {pause_s}")
    if pause_duration_us < 0:
        raise ScheduleError(f"pause_duration_us must be non-negative, got {pause_duration_us}")
    # Unit-proportional ramps: reaching s_p takes s_p * t_a, completing the
    # rest takes (1 - s_p) * t_a, so the sweep time excluding the pause is t_a.
    time_to_pause = pause_s * anneal_time_us
    return AnnealSchedule.from_pairs(
        [
            [0.0, 0.0],
            [time_to_pause, pause_s],
            [time_to_pause + pause_duration_us, pause_s],
            [anneal_time_us + pause_duration_us, 1.0],
        ],
        name="FA",
    )


def reverse_anneal_schedule(
    switch_s: float,
    pause_duration_us: float = 1.0,
    ramp_rate_us_per_s: float = 1.0,
) -> AnnealSchedule:
    """Reverse annealing (paper RA).

    The schedule starts from a classical state at s = 1, anneals backwards to
    the switch point ``s_p``, pauses there for ``t_p`` microseconds, and then
    anneals forward to s = 1.  As in the paper the ramp durations are
    proportional to the traversed s range (``1 - s_p`` microseconds each way
    at the default unit ramp rate), so the total duration is
    ``2 (1 - s_p) + t_p``.

    Parameters
    ----------
    switch_s:
        Switch and pause location s_p in (0, 1).
    pause_duration_us:
        Pause duration t_p.
    ramp_rate_us_per_s:
        Microseconds spent per unit of s traversed on each ramp (1.0
        reproduces the paper's timing arithmetic).
    """
    if not 0.0 < switch_s < 1.0:
        raise ScheduleError(f"switch_s must lie strictly inside (0, 1), got {switch_s}")
    if pause_duration_us < 0:
        raise ScheduleError(f"pause_duration_us must be non-negative, got {pause_duration_us}")
    if ramp_rate_us_per_s <= 0:
        raise ScheduleError(f"ramp_rate_us_per_s must be positive, got {ramp_rate_us_per_s}")
    ramp = (1.0 - switch_s) * ramp_rate_us_per_s
    return AnnealSchedule.from_pairs(
        [
            [0.0, 1.0],
            [ramp, switch_s],
            [ramp + pause_duration_us, switch_s],
            [2.0 * ramp + pause_duration_us, 1.0],
        ],
        name="RA",
    )


def forward_reverse_anneal_schedule(
    turning_s: float,
    switch_s: float,
    pause_duration_us: float = 1.0,
    anneal_time_us: float = 1.0,
    ramp_rate_us_per_s: float = 1.0,
) -> AnnealSchedule:
    """Single-step forward-reverse annealing (paper FR).

    The anneal runs forward from s = 0 up to the turning point ``c_p``,
    reverses down to ``s_p`` (without a measurement in between), pauses, and
    finally anneals forward to s = 1.

    Parameters
    ----------
    turning_s:
        Turning point c_p in (0, 1); must satisfy ``c_p >= s_p``.
    switch_s:
        Pause location s_p in (0, 1).
    pause_duration_us:
        Pause duration t_p.
    anneal_time_us:
        Duration t_a of the final forward ramp in the paper's parameterisation.
    ramp_rate_us_per_s:
        Microseconds per unit s for the initial forward and the reverse ramp.
    """
    if not 0.0 < turning_s < 1.0:
        raise ScheduleError(f"turning_s must lie strictly inside (0, 1), got {turning_s}")
    if not 0.0 < switch_s < 1.0:
        raise ScheduleError(f"switch_s must lie strictly inside (0, 1), got {switch_s}")
    if turning_s < switch_s:
        raise ScheduleError(
            f"turning point c_p ({turning_s}) must be at least the switch point s_p ({switch_s})"
        )
    if pause_duration_us < 0:
        raise ScheduleError(f"pause_duration_us must be non-negative, got {pause_duration_us}")
    if anneal_time_us <= 0:
        raise ScheduleError(f"anneal_time_us must be positive, got {anneal_time_us}")
    if ramp_rate_us_per_s <= 0:
        raise ScheduleError(f"ramp_rate_us_per_s must be positive, got {ramp_rate_us_per_s}")

    rise = turning_s * ramp_rate_us_per_s
    fall = (turning_s - switch_s) * ramp_rate_us_per_s
    pause_start = rise + fall
    pause_end = pause_start + pause_duration_us
    final_end = pause_end + anneal_time_us
    return AnnealSchedule.from_pairs(
        [
            [0.0, 0.0],
            [rise, turning_s],
            [pause_start, switch_s],
            [pause_end, switch_s],
            [final_end, 1.0],
        ],
        name="FR",
    )
