"""Declarative ablation/HPO harness over the sharded parallel runner.

A frozen :class:`AblationSpec` (base config overrides + swept axes +
expansion strategy + metric selectors + optional budget) expands into a
deterministic, de-duplicated list of :class:`StudyPoint`\\ s; each point
compiles into the target experiment's own ``ShardTask`` list; one
:class:`~repro.parallel.ParallelRunner` call executes everything with
result caching; and the study aggregates into a tidy metrics table plus an
optional Pareto front.  See ``docs/ablation.md`` for the full contract.
"""

from repro.ablation.io import load_spec, spec_from_mapping
from repro.ablation.pareto import ParetoExclusion, ParetoExclusionWarning, pareto_front
from repro.ablation.registry import (
    ExperimentTarget,
    available_targets,
    get_target,
    register_target,
)
from repro.ablation.spec import (
    AblationSpec,
    StudyPoint,
    compile_config,
    expand_spec,
    point_fingerprint,
    spec_from_config,
)
from repro.ablation.study import (
    PointResult,
    StudyResult,
    StudyRow,
    format_study_table,
    run_single_config,
    run_study,
)

__all__ = [
    "AblationSpec",
    "StudyPoint",
    "StudyRow",
    "StudyResult",
    "PointResult",
    "ExperimentTarget",
    "ParetoExclusion",
    "ParetoExclusionWarning",
    "available_targets",
    "compile_config",
    "expand_spec",
    "format_study_table",
    "get_target",
    "load_spec",
    "pareto_front",
    "point_fingerprint",
    "register_target",
    "run_single_config",
    "run_study",
    "spec_from_config",
    "spec_from_mapping",
]
