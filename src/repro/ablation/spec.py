"""Declarative ablation/HPO study specifications and their expansion.

An :class:`AblationSpec` is the whole description of a tradeoff study: which
registered experiment to sweep (see :mod:`repro.ablation.registry`), a preset
plus base-config overrides, the axes to vary, and how the resulting grid is
explored (full cartesian product or a seed-keyed subsample).  The spec is a
frozen value object — :func:`expand_spec` turns it into a deterministic,
de-duplicated tuple of :class:`StudyPoint` work units, and every point owns a
content fingerprint that is

* **injective** — distinct (experiment, preset, base, assignments) tuples
  map to distinct fingerprints (the payload is built from
  :func:`~repro.parallel.cache.canonical_token`, which witnesses values
  exactly), and
* **stable across process restarts** — only SHA-256 over canonical JSON is
  involved, never ``hash()`` or iteration order of user mappings.

Subsampling ranks the full cartesian expansion by the SHA-256 of
``(sample_seed, point fingerprint)`` and keeps the best-ranked points in
expansion order, so the subset is a pure function of the spec: the same seed
always selects the same points, and growing ``sample_count`` only ever adds
points (the k-smallest-rank prefix property the test suite pins down).

The hypothesis suite in ``tests/test_ablation_harness.py`` holds these
properties under randomly generated specs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.parallel.cache import canonical_token
from repro.telemetry.log import get_logger

__all__ = [
    "SPEC_FORMAT_VERSION",
    "STRATEGIES",
    "OBJECTIVE_DIRECTIONS",
    "AblationSpec",
    "StudyPoint",
    "expand_spec",
    "point_fingerprint",
    "compile_config",
    "spec_from_config",
]

_log = get_logger(__name__)

#: Bumping re-keys every study point (fingerprint payload layout changes).
SPEC_FORMAT_VERSION = 1

#: How a spec explores its axis grid.
STRATEGIES = ("cartesian", "subsample")

#: Valid optimisation directions of a Pareto objective.
OBJECTIVE_DIRECTIONS = ("min", "max")


def _value_key(value: Any) -> str:
    """A canonical string identity for one axis/base value (for dedup)."""
    return json.dumps(canonical_token(value), sort_keys=True, separators=(",", ":"))


def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples so spec values are immutable."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _as_pairs(value: Any, *, what: str) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a mapping (or pair sequence) into sorted key/value pairs."""
    if isinstance(value, Mapping):
        items = list(value.items())
    elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        items = [tuple(item) for item in value]
    else:
        raise ConfigurationError(f"{what} must be a mapping, got {type(value).__name__}")
    pairs = []
    for item in items:
        if len(item) != 2 or not isinstance(item[0], str) or not item[0]:
            raise ConfigurationError(f"{what} entries must be (name, value) pairs, got {item!r}")
        pairs.append((item[0], _freeze(item[1])))
    names = [name for name, _ in pairs]
    duplicates = {name for name in names if names.count(name) > 1}
    if duplicates:
        raise ConfigurationError(f"duplicate {what} key(s): {', '.join(sorted(duplicates))}")
    return tuple(sorted(pairs, key=lambda pair: pair[0]))


@dataclass(frozen=True)
class AblationSpec:
    """One declarative ablation/HPO study.

    Attributes
    ----------
    name:
        Human-readable study identity (used in shard logs, telemetry events
        and the artifact filename); not part of point fingerprints, so two
        differently named but otherwise identical specs share cache entries.
    experiment:
        A registered experiment target (see
        :func:`repro.ablation.registry.available_targets`).
    preset:
        Which of the target's configuration presets seeds the base config
        (``default`` / ``quick`` / ``paper`` where supported).
    base:
        Field overrides applied to the preset config at every point.
        Accepts a mapping; normalised into name-sorted pairs.
    axes:
        The swept fields: each axis maps a config field to the values it
        takes.  Values are de-duplicated (by canonical token, preserving
        author order) at construction, so the cartesian expansion has exactly
        ``prod(len(axis))`` unique points.
    strategy:
        ``"cartesian"`` sweeps the full product grid; ``"subsample"`` keeps a
        deterministic seed-keyed subset of ``sample_count`` points.
    sample_count, sample_seed:
        Subsample size and ranking seed (``subsample`` only).
    budget:
        Optional early-stop budget: at most this many points run, keeping the
        expansion-order prefix; the truncation is logged, never silent.
    metrics:
        Metric selectors restricting the tidy results table; empty keeps every
        metric the target computes.
    objectives:
        ``(metric, direction)`` pairs defining the Pareto front; empty skips
        front computation.
    """

    name: str
    experiment: str
    preset: str = "default"
    base: Tuple[Tuple[str, Any], ...] = ()
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    strategy: str = "cartesian"
    sample_count: Optional[int] = None
    sample_seed: int = 0
    budget: Optional[int] = None
    metrics: Tuple[str, ...] = ()
    objectives: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError("spec key 'name' must be a non-empty string")
        if not isinstance(self.experiment, str) or not self.experiment:
            raise ConfigurationError("spec key 'experiment' must be a non-empty string")
        if not isinstance(self.preset, str) or not self.preset:
            raise ConfigurationError("spec key 'preset' must be a non-empty string")
        object.__setattr__(self, "base", _as_pairs(self.base, what="base"))
        object.__setattr__(self, "axes", self._normalise_axes(self.axes))
        overlap = {name for name, _ in self.base} & {name for name, _ in self.axes}
        if overlap:
            raise ConfigurationError(
                f"key(s) {', '.join(sorted(overlap))} appear in both 'base' and 'axes'; "
                "a field is either fixed or swept, not both"
            )
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; valid strategies: "
                + ", ".join(STRATEGIES)
            )
        if self.strategy == "subsample":
            if self.sample_count is None or int(self.sample_count) < 1:
                raise ConfigurationError(
                    "strategy 'subsample' requires a positive 'sample_count', "
                    f"got {self.sample_count!r}"
                )
            object.__setattr__(self, "sample_count", int(self.sample_count))
        elif self.sample_count is not None:
            raise ConfigurationError(
                "spec key 'sample_count' is only valid with strategy 'subsample'"
            )
        if not isinstance(self.sample_seed, int) or isinstance(self.sample_seed, bool):
            raise ConfigurationError(
                f"spec key 'sample_seed' must be an integer, got {self.sample_seed!r}"
            )
        if self.budget is not None:
            if not isinstance(self.budget, int) or isinstance(self.budget, bool) or self.budget < 1:
                raise ConfigurationError(
                    f"spec key 'budget' must be a positive integer, got {self.budget!r}"
                )
        metrics = tuple(self.metrics)
        for metric in metrics:
            if not isinstance(metric, str) or not metric:
                raise ConfigurationError(
                    f"spec key 'metrics' must list metric names, got {metric!r}"
                )
        object.__setattr__(self, "metrics", metrics)
        object.__setattr__(self, "objectives", self._normalise_objectives(self.objectives))

    @staticmethod
    def _normalise_axes(axes: Any) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
        normalised = []
        for axis, values in _as_pairs(axes, what="axes"):
            if not isinstance(values, tuple):
                raise ConfigurationError(
                    f"axis {axis!r} must map to a sequence of values, got {values!r}"
                )
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")
            deduped: List[Any] = []
            seen = set()
            for value in values:
                key = _value_key(value)
                if key not in seen:
                    seen.add(key)
                    deduped.append(value)
            normalised.append((axis, tuple(deduped)))
        return tuple(normalised)

    @staticmethod
    def _normalise_objectives(objectives: Any) -> Tuple[Tuple[str, str], ...]:
        normalised = []
        for entry in tuple(objectives):
            if isinstance(entry, Mapping):
                entry = (entry.get("metric"), entry.get("direction", "min"))
            entry = tuple(entry) if isinstance(entry, (list, tuple)) else (entry,)
            if len(entry) != 2 or not isinstance(entry[0], str) or not entry[0]:
                raise ConfigurationError(
                    "spec key 'objectives' must list (metric, direction) pairs, "
                    f"got {entry!r}"
                )
            metric, direction = entry
            if direction not in OBJECTIVE_DIRECTIONS:
                raise ConfigurationError(
                    f"objective {metric!r} has unknown direction {direction!r}; "
                    "valid directions: " + ", ".join(OBJECTIVE_DIRECTIONS)
                )
            normalised.append((metric, direction))
        return tuple(normalised)

    def axis_names(self) -> Tuple[str, ...]:
        """The swept field names, in expansion (name-sorted) order."""
        return tuple(name for name, _ in self.axes)

    def num_cartesian_points(self) -> int:
        """Size of the full product grid (before subsampling/budget)."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count


@dataclass(frozen=True)
class StudyPoint:
    """One expanded study point: an assignment of every axis to one value.

    ``index`` is the point's position in the full cartesian expansion (stable
    under subsampling and budget truncation, so a point keeps its identity
    when the exploration strategy changes); ``fingerprint`` is the SHA-256
    content address of (experiment, preset, base, assignments).
    """

    index: int
    assignments: Tuple[Tuple[str, Any], ...]
    fingerprint: str

    @property
    def point_id(self) -> str:
        """Short fingerprint prefix used in tables, keys and telemetry."""
        return self.fingerprint[:12]


def point_fingerprint(spec: AblationSpec, assignments: Mapping[str, Any]) -> str:
    """The stable content address of one study point.

    Built from :func:`~repro.parallel.cache.canonical_token` over canonical
    JSON, so it is injective on distinct points, independent of mapping
    iteration order, and identical across process restarts.  The spec's
    ``name`` is deliberately excluded: renaming a study must not re-key its
    points.
    """
    payload = {
        "version": SPEC_FORMAT_VERSION,
        "experiment": spec.experiment,
        "preset": spec.preset,
        "base": canonical_token(dict(spec.base)),
        "assignments": canonical_token(dict(assignments)),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _sample_rank(spec: AblationSpec, fingerprint: str) -> str:
    """The subsample ranking key of one point (seed-keyed, deterministic)."""
    text = f"{int(spec.sample_seed)}:{fingerprint}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def expand_spec(spec: AblationSpec) -> Tuple[StudyPoint, ...]:
    """Expand a spec into its deterministic, de-duplicated study points.

    Cartesian expansion iterates axes in name-sorted order (the last-sorted
    axis varies fastest) over the per-axis de-duplicated values, so the
    result has exactly ``spec.num_cartesian_points()`` points and the same
    spec always expands to the same tuple, in the same order.  Subsampling
    keeps the ``sample_count`` best-ranked points (see :func:`_sample_rank`)
    in expansion order; a ``budget`` keeps the order prefix and logs what was
    dropped.
    """
    names = spec.axis_names()
    grids = [values for _, values in spec.axes]
    points: List[StudyPoint] = []
    seen: dict = {}
    for index, combo in enumerate(itertools.product(*grids)):
        assignments = tuple(zip(names, combo))
        fingerprint = point_fingerprint(spec, dict(assignments))
        if fingerprint in seen:
            raise ConfigurationError(
                f"point fingerprint collision between assignments "
                f"{seen[fingerprint]!r} and {dict(assignments)!r} in study "
                f"{spec.name!r}; this indicates a canonicalisation bug"
            )
        seen[fingerprint] = dict(assignments)
        points.append(StudyPoint(index=index, assignments=assignments, fingerprint=fingerprint))

    if spec.strategy == "subsample" and spec.sample_count is not None:
        count = min(spec.sample_count, len(points))
        ranked = sorted(points, key=lambda point: _sample_rank(spec, point.fingerprint))
        keep = {point.index for point in ranked[:count]}
        points = [point for point in points if point.index in keep]

    if spec.budget is not None and len(points) > spec.budget:
        dropped = len(points) - spec.budget
        points = points[: spec.budget]
        _log.info(
            "ablation.budget_truncated",
            study=spec.name,
            kept=len(points),
            dropped=dropped,
        )
    return tuple(points)


def _coerce_like(current: Any, value: Any, key: str) -> Any:
    """Coerce a spec value to the shape of the config field it replaces.

    Spec files are TOML/JSON, whose types are looser than the config
    dataclasses': integers stand in for floats, arrays for tuples.  Coercion
    follows the *current* field value's type so e.g. ``snr_db = 14`` and
    ``snr_db = 14.0`` compile to the same config (and therefore the same
    shard fingerprints).  Mismatches that would silently change meaning
    (a string for a number, a fractional float for an int) are rejected.
    """
    if value is None:
        # Optional fields: None always means "disabled", whatever the
        # field's populated type is.
        return None
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
        raise ConfigurationError(f"config field {key!r} expects a boolean, got {value!r}")
    if isinstance(current, float):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise ConfigurationError(f"config field {key!r} expects a number, got {value!r}")
    if isinstance(current, int):
        if isinstance(value, int) and not isinstance(value, bool):
            return int(value)
        if isinstance(value, float) and float(value).is_integer():
            return int(value)
        raise ConfigurationError(f"config field {key!r} expects an integer, got {value!r}")
    if isinstance(current, str):
        if isinstance(value, str):
            return value
        raise ConfigurationError(f"config field {key!r} expects a string, got {value!r}")
    if isinstance(current, tuple):
        if isinstance(value, (list, tuple)):
            return _freeze(value)
        raise ConfigurationError(f"config field {key!r} expects a sequence, got {value!r}")
    # Optional fields currently None (and anything exotic) pass through,
    # list-to-tuple frozen so frozen configs stay hashable.
    return _freeze(value)


def compile_config(spec: AblationSpec, point: StudyPoint, base_config: Any) -> Any:
    """Compile one study point into its per-point-restricted config.

    Applies the spec's base overrides and the point's axis assignments onto
    ``base_config`` via ``dataclasses.replace``, so a point's config carries
    exactly its own coordinates: editing one axis value re-keys (and
    therefore recomputes) only the points that use it, every other point's
    shard fingerprints are untouched.
    """
    valid = {field.name for field in dataclasses.fields(base_config)}
    overrides = {}
    for key, value in (*spec.base, *point.assignments):
        if key not in valid:
            raise ConfigurationError(
                f"unknown config field {key!r} for experiment {spec.experiment!r}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        overrides[key] = _coerce_like(getattr(base_config, key), value, key)
    return dataclasses.replace(base_config, **overrides)


def spec_from_config(name: str, experiment: str, config: Any) -> AblationSpec:
    """The degenerate one-point spec equivalent to running ``config`` directly.

    Every config field becomes a base override, so the single expanded point
    compiles back to exactly ``config`` — this is how the rewired experiment
    drivers (fig8, robustness) express themselves as thin specs over the
    harness.
    """
    base = {
        field.name: _freeze(getattr(config, field.name))
        for field in dataclasses.fields(config)
    }
    return AblationSpec(name=name, experiment=experiment, base=base)
