"""Canonical in-tree study specs.

``fig8_quick_spec`` and ``robustness_quick_spec`` are the two paper drivers
re-expressed as degenerate (single-point, no-axis) studies — running them
through :func:`~repro.ablation.study.run_study` executes exactly the shards
a ``repro-experiments fig8`` / ``robustness`` quick run would, so their rows
match the imperative drivers bitwise.

``ablation_quick_spec`` is the micro two-axis robustness study frozen as the
``ablation_quick`` golden fixture and exercised by the CI smoke step: a
2×2 grid over SNR and annealing switch time with a BER/latency Pareto front.
"""

from __future__ import annotations

from typing import List

from repro.ablation.spec import AblationSpec

__all__ = [
    "fig8_quick_spec",
    "robustness_quick_spec",
    "ablation_quick_spec",
    "ablation_quick_rows",
]


def fig8_quick_spec() -> AblationSpec:
    """The fig8 quick run as a one-point study."""
    return AblationSpec(name="fig8-quick", experiment="fig8", preset="quick")


def robustness_quick_spec() -> AblationSpec:
    """The robustness quick run as a one-point study."""
    return AblationSpec(name="robustness-quick", experiment="robustness", preset="quick")


def ablation_quick_spec() -> AblationSpec:
    """A seconds-scale 2×2 SNR × switch-time study with a Pareto front.

    The correlated 3×3 channel at low SNR keeps the hybrid detector's BER
    off the floor, so the two objectives genuinely trade off and the front
    is a strict subset of the grid.
    """
    return AblationSpec(
        name="ablation-quick",
        experiment="robustness",
        preset="quick",
        base={
            "num_users": 3,
            "num_receive_antennas": 3,
            "channel_uses_per_point": 3,
            "num_reads": 30,
            "correlation_grid": (0.6,),
            "velocity_grid_mps": (),
            "csi_error_grid": (),
            "interference_grid": (),
        },
        axes={
            "snr_db": (0.0, 8.0),
            "switch_s": (0.35, 0.45),
        },
        objectives=(
            ("hybrid_ber_mean", "min"),
            ("hybrid_time_us_mean", "min"),
        ),
    )


def ablation_quick_rows() -> List:
    """Table rows of the quick study (golden-fixture entry point)."""
    from repro.ablation.study import run_study

    return run_study(ablation_quick_spec()).table_rows()
