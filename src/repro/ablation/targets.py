"""Built-in ablation targets: fig8, robustness, the serving/scenario/network
drivers, and a synthetic SA HPO sweep.

The experiment targets bind the drivers' existing shard builders
(:func:`~repro.experiments.fig8_tts.figure8_tasks`,
:func:`~repro.experiments.robustness_study.robustness_tasks`,
:func:`~repro.experiments.load_study.load_study_tasks`,
:func:`~repro.experiments.scenario_study.scenario_study_tasks`,
:func:`~repro.experiments.network_study.network_study_tasks`) so a study
point's shards are *the same work units* — same functions, same kwargs, same
cache fingerprints — that a direct ``repro-experiments fig8`` /
``robustness`` / ``serve`` / ``scenarios`` / ``network`` run produces.  This
is what makes the harness subsume the imperative drivers bitwise, and it
means the declarative and imperative paths share one warm cache.  The
serving-side targets turn pool sizes, autoscale thresholds, and the network
study's detector/embedder knobs into sweepable axes.

``anneal-hpo`` is a self-contained hyper-parameter target (simulated
annealing over a planted random QUBO) used by examples, the property-test
suite and CI smoke: it exercises the full spec → points → shards → metrics →
Pareto path in milliseconds without touching the MIMO stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.ablation.registry import ExperimentTarget, register_target
from repro.parallel import ShardTask

__all__ = [
    "AnnealHPOConfig",
    "AnnealHPORow",
    "anneal_hpo_tasks",
    "register_builtin_targets",
]


def _finite_or_nan(values: Sequence[float]) -> float:
    """Minimum of the finite values, NaN when there are none."""
    finite = [value for value in values if math.isfinite(value)]
    return min(finite) if finite else float("nan")


def _mean_or_nan(values: Sequence[float]) -> float:
    return float(np.mean(values)) if len(values) else float("nan")


# ---------------------------------------------------------------------------
# fig8 — success probability and TTS vs s_p (paper Figure 8)
# ---------------------------------------------------------------------------

FIG8_METRICS = (
    "success_probability_max",
    "fa_tts_us_min",
    "ra_greedy_tts_us_min",
    "tts_speedup",
    "duration_us_mean",
)


def _fig8_presets():
    from repro.experiments.fig8_tts import Figure8Config

    return {
        "default": Figure8Config,
        "quick": Figure8Config.quick,
        "paper": Figure8Config.paper_scale,
    }


def _fig8_tasks(config: Any) -> Sequence[ShardTask]:
    from repro.experiments.fig8_tts import figure8_tasks

    return figure8_tasks(config)


def _flatten_shards(config: Any, shards: Sequence[Any]) -> List[Any]:
    """Row lists per shard -> one flat row list, in task order."""
    return [row for shard in shards for row in shard]


def _fig8_metrics(rows: Sequence[Any]) -> Tuple[Tuple[str, float], ...]:
    fa_tts = _finite_or_nan([row.tts_us for row in rows if row.method == "FA"])
    ra_tts = _finite_or_nan([row.tts_us for row in rows if row.method == "RA-greedy"])
    if math.isfinite(fa_tts) and math.isfinite(ra_tts) and ra_tts > 0:
        speedup = fa_tts / ra_tts
    else:
        speedup = float("nan")
    return (
        (
            "success_probability_max",
            max((row.success_probability for row in rows), default=float("nan")),
        ),
        ("fa_tts_us_min", fa_tts),
        ("ra_greedy_tts_us_min", ra_tts),
        ("tts_speedup", speedup),
        ("duration_us_mean", _mean_or_nan([row.duration_us for row in rows])),
    )


# ---------------------------------------------------------------------------
# robustness — detection quality under channel impairments (E-X3)
# ---------------------------------------------------------------------------

ROBUSTNESS_METRICS = (
    "hybrid_ber_mean",
    "mmse_ber_mean",
    "zero_forcing_ber_mean",
    "hybrid_optimum_rate_mean",
    "hybrid_time_us_mean",
    "hybrid_time_us_p95",
)


def _robustness_presets():
    from repro.experiments.robustness_study import RobustnessStudyConfig

    return {
        "default": RobustnessStudyConfig,
        "quick": RobustnessStudyConfig.quick,
        "paper": RobustnessStudyConfig.paper_scale,
    }


def _robustness_tasks(config: Any) -> Sequence[ShardTask]:
    from repro.experiments.robustness_study import robustness_tasks

    return robustness_tasks(config)


def _identity_collect(config: Any, shards: Sequence[Any]) -> List[Any]:
    """Each shard result already is one row."""
    return list(shards)


def _robustness_metrics(rows: Sequence[Any]) -> Tuple[Tuple[str, float], ...]:
    times = [row.hybrid_time_us for row in rows]
    return (
        ("hybrid_ber_mean", _mean_or_nan([row.hybrid_ber for row in rows])),
        ("mmse_ber_mean", _mean_or_nan([row.mmse_ber for row in rows])),
        ("zero_forcing_ber_mean", _mean_or_nan([row.zero_forcing_ber for row in rows])),
        ("hybrid_optimum_rate_mean", _mean_or_nan([row.hybrid_optimum_rate for row in rows])),
        ("hybrid_time_us_mean", _mean_or_nan(times)),
        ("hybrid_time_us_p95", float(np.percentile(times, 95)) if times else float("nan")),
    )


# ---------------------------------------------------------------------------
# serve — offered-load sweep of the serving architectures (E-SV)
# ---------------------------------------------------------------------------

SERVE_METRICS = (
    "pooled_miss_rate_mean",
    "pooled_miss_rate_max",
    "serialized_miss_rate_mean",
    "pipelined_miss_rate_mean",
    "pooled_p95_us_max",
    "pooled_demotion_rate_mean",
)


def _serve_presets():
    from repro.experiments.load_study import LoadStudyConfig

    return {
        "default": LoadStudyConfig,
        "quick": LoadStudyConfig.quick,
        "paper": LoadStudyConfig.paper_scale,
    }


def _serve_tasks(config: Any) -> Sequence[ShardTask]:
    from repro.experiments.load_study import load_study_tasks

    return load_study_tasks(config)


def _serve_collect(config: Any, shards: Sequence[Any]) -> List[Any]:
    from repro.experiments.load_study import collect_load_rows

    return collect_load_rows(config, shards)


def _serve_metrics(rows: Sequence[Any]) -> Tuple[Tuple[str, float], ...]:
    pooled = [row.pooled_miss_rate for row in rows]
    return (
        ("pooled_miss_rate_mean", _mean_or_nan(pooled)),
        ("pooled_miss_rate_max", max(pooled, default=float("nan"))),
        ("serialized_miss_rate_mean", _mean_or_nan([row.serialized_miss_rate for row in rows])),
        ("pipelined_miss_rate_mean", _mean_or_nan([row.pipelined_miss_rate for row in rows])),
        ("pooled_p95_us_max", max((row.pooled_p95_us for row in rows), default=float("nan"))),
        ("pooled_demotion_rate_mean", _mean_or_nan([row.pooled_demotion_rate for row in rows])),
    )


# ---------------------------------------------------------------------------
# scenarios — static vs autoscaled pools across the scenario catalog (E-SC)
# ---------------------------------------------------------------------------

SCENARIOS_METRICS = (
    "autoscaled_miss_rate_mean",
    "autoscaled_miss_rate_max",
    "static_miss_rate_mean",
    "autoscaled_p99_us_max",
    "mean_active_workers_mean",
    "scale_events_total",
)


def _scenarios_presets():
    from repro.experiments.scenario_study import ScenarioStudyConfig

    return {
        "default": ScenarioStudyConfig,
        "quick": ScenarioStudyConfig.quick,
        "paper": ScenarioStudyConfig.paper_scale,
    }


def _scenarios_tasks(config: Any) -> Sequence[ShardTask]:
    from repro.experiments.scenario_study import scenario_study_tasks

    return scenario_study_tasks(config)


def _scenarios_collect(config: Any, shards: Sequence[Any]) -> List[Any]:
    from repro.experiments.scenario_study import collect_scenario_rows

    return collect_scenario_rows(config, list(shards))


def _scenarios_metrics(rows: Sequence[Any]) -> Tuple[Tuple[str, float], ...]:
    autoscaled = [row.autoscaled_miss_rate for row in rows]
    return (
        ("autoscaled_miss_rate_mean", _mean_or_nan(autoscaled)),
        ("autoscaled_miss_rate_max", max(autoscaled, default=float("nan"))),
        ("static_miss_rate_mean", _mean_or_nan([row.static_miss_rate for row in rows])),
        (
            "autoscaled_p99_us_max",
            max((row.autoscaled_p99_us for row in rows), default=float("nan")),
        ),
        ("mean_active_workers_mean", _mean_or_nan([row.mean_active_workers for row in rows])),
        ("scale_events_total", float(sum(row.scale_events for row in rows))),
    )


# ---------------------------------------------------------------------------
# network — capacity placement on a city-scale topology (network study)
# ---------------------------------------------------------------------------

NETWORK_METRICS = (
    "static_miss_rate",
    "reactive_miss_rate",
    "oracle_miss_rate",
    "reactive_vs_static_ratio",
    "reactive_capacity_moved",
    "detection_latency_windows",
    "false_positive_raises",
)


def _network_presets():
    from repro.experiments.network_study import NetworkStudyConfig

    return {
        "default": NetworkStudyConfig,
        "quick": NetworkStudyConfig.quick,
        "paper": NetworkStudyConfig.city_scale,
        "city": NetworkStudyConfig.city_scale,
    }


def _network_tasks(config: Any) -> Sequence[ShardTask]:
    from repro.experiments.network_study import network_study_tasks

    return network_study_tasks(config)


def _network_row(rows: Sequence[Any], placement: str) -> Any:
    for row in rows:
        if row.placement == placement:
            return row
    return None


def _network_metrics(rows: Sequence[Any]) -> Tuple[Tuple[str, float], ...]:
    static = _network_row(rows, "static")
    reactive = _network_row(rows, "reactive")
    oracle = _network_row(rows, "oracle")
    nan = float("nan")
    static_miss = static.miss_rate if static else nan
    reactive_miss = reactive.miss_rate if reactive else nan
    if static and reactive and static.miss_rate > 0:
        ratio = reactive.miss_rate / static.miss_rate
    else:
        ratio = nan
    return (
        ("static_miss_rate", static_miss),
        ("reactive_miss_rate", reactive_miss),
        ("oracle_miss_rate", oracle.miss_rate if oracle else nan),
        ("reactive_vs_static_ratio", ratio),
        ("reactive_capacity_moved", reactive.capacity_moved if reactive else nan),
        (
            "detection_latency_windows",
            float(reactive.detection_latency_windows) if reactive else nan,
        ),
        (
            "false_positive_raises",
            float(reactive.false_positive_raises) if reactive else nan,
        ),
    )


# ---------------------------------------------------------------------------
# anneal-hpo — classical SA hyper-parameters on a planted random QUBO
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnnealHPOConfig:
    """Configuration of the synthetic SA hyper-parameter target.

    One fixed random QUBO (selected by ``instance_seed``) is annealed
    ``num_restarts`` times per point; the study's axes typically sweep
    ``num_sweeps`` and ``final_temperature`` against solution energy and
    modelled compute time.  Each restart is one shard with its own explicit
    child seed, so the target shards freely and caches per restart.
    """

    num_variables: int = 12
    density: float = 1.0
    num_sweeps: int = 60
    final_temperature: float = 0.01
    num_restarts: int = 4
    instance_seed: int = 7
    base_seed: int = 0

    @classmethod
    def quick(cls) -> "AnnealHPOConfig":
        """A minimal configuration used by tests and CI smoke."""
        return cls(num_variables=6, num_sweeps=12, num_restarts=2)


@dataclass(frozen=True)
class AnnealHPORow:
    """One SA restart of the synthetic HPO target."""

    restart: int
    energy: float
    compute_time_us: float
    sweeps: int


ANNEAL_HPO_METRICS = (
    "best_energy",
    "mean_energy",
    "compute_time_us_mean",
    "sweeps_total",
)


def _anneal_hpo_shard(config: AnnealHPOConfig, restart: int) -> AnnealHPORow:
    """One SA restart (module-level so the process pool can pickle it)."""
    from repro.classical.simulated_annealing import SimulatedAnnealingSolver
    from repro.qubo.generators import random_qubo
    from repro.utils.rng import stable_seed

    qubo = random_qubo(
        config.num_variables,
        density=config.density,
        rng=stable_seed("anneal-hpo-instance", config.instance_seed),
    )
    solver = SimulatedAnnealingSolver(
        num_sweeps=config.num_sweeps, final_temperature=config.final_temperature
    )
    solution = solver.solve(
        qubo, rng=stable_seed("anneal-hpo-restart", config.base_seed, restart)
    )
    return AnnealHPORow(
        restart=restart,
        energy=float(solution.energy),
        compute_time_us=float(solution.compute_time_us),
        sweeps=int(solution.iterations),
    )


def anneal_hpo_tasks(config: AnnealHPOConfig) -> List[ShardTask]:
    """One shard per SA restart, each seeded by (base_seed, restart)."""
    return [
        ShardTask(
            key=("anneal-hpo", restart),
            fn=_anneal_hpo_shard,
            kwargs={"config": config, "restart": restart},
        )
        for restart in range(config.num_restarts)
    ]


def _anneal_hpo_metrics(rows: Sequence[AnnealHPORow]) -> Tuple[Tuple[str, float], ...]:
    energies = [row.energy for row in rows]
    return (
        ("best_energy", min(energies) if energies else float("nan")),
        ("mean_energy", _mean_or_nan(energies)),
        ("compute_time_us_mean", _mean_or_nan([row.compute_time_us for row in rows])),
        ("sweeps_total", float(sum(row.sweeps for row in rows))),
    )


def register_builtin_targets() -> None:
    """Register the built-in targets (idempotent via replace=True)."""
    register_target(
        ExperimentTarget(
            name="fig8",
            presets=_fig8_presets(),
            tasks=_fig8_tasks,
            collect=_flatten_shards,
            metrics=_fig8_metrics,
            metric_names=FIG8_METRICS,
            description="Figure 8 — success probability and TTS(99%) vs s_p",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget(
            name="robustness",
            presets=_robustness_presets(),
            tasks=_robustness_tasks,
            collect=_identity_collect,
            metrics=_robustness_metrics,
            metric_names=ROBUSTNESS_METRICS,
            description="E-X3 — detection robustness under channel impairments",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget(
            name="serve",
            presets=_serve_presets(),
            tasks=_serve_tasks,
            collect=_serve_collect,
            metrics=_serve_metrics,
            metric_names=SERVE_METRICS,
            description="E-SV — deadline-miss rate vs offered load (serving pool)",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget(
            name="scenarios",
            presets=_scenarios_presets(),
            tasks=_scenarios_tasks,
            collect=_scenarios_collect,
            metrics=_scenarios_metrics,
            metric_names=SCENARIOS_METRICS,
            description="E-SC — static vs autoscaled pools across the scenario catalog",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget(
            name="network",
            presets=_network_presets(),
            tasks=_network_tasks,
            collect=_identity_collect,
            metrics=_network_metrics,
            metric_names=NETWORK_METRICS,
            description="city-scale capacity placement: static vs reactive vs oracle",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget(
            name="anneal-hpo",
            presets={"default": AnnealHPOConfig, "quick": AnnealHPOConfig.quick},
            tasks=anneal_hpo_tasks,
            collect=_identity_collect,
            metrics=_anneal_hpo_metrics,
            metric_names=ANNEAL_HPO_METRICS,
            description="synthetic SA hyper-parameter sweep on a random QUBO",
        ),
        replace=True,
    )
