"""Built-in ablation targets: fig8, robustness, the serving/scenario/network/
QoS drivers, and a synthetic SA HPO sweep.

The experiment targets bind the drivers' :class:`~repro.experiments.driver.
ExperimentDriver` objects via :meth:`~repro.ablation.registry.
ExperimentTarget.from_driver`: a study point's shards are *the same work
units* — same functions, same kwargs, same cache fingerprints — that a
direct ``repro-experiments fig8`` / ``robustness`` / ``serve`` /
``scenarios`` / ``network`` / ``qos`` run produces, and the rows and metrics
come from the driver's own pure ``aggregate``/``metrics`` pair.  This is
what makes the harness subsume the imperative drivers bitwise, and it means
the declarative and imperative paths share one warm cache.  The
serving-side targets turn pool sizes, autoscale thresholds, QoS class mixes
and the network study's detector/embedder knobs into sweepable axes.

``anneal-hpo`` is a self-contained hyper-parameter target (simulated
annealing over a planted random QUBO) used by examples, the property-test
suite and CI smoke: it exercises the full spec → points → shards → metrics →
Pareto path in milliseconds without touching the MIMO stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.ablation.registry import ExperimentTarget, register_target
from repro.parallel import ShardTask

__all__ = [
    "AnnealHPOConfig",
    "AnnealHPORow",
    "anneal_hpo_tasks",
    "register_builtin_targets",
]


def _mean_or_nan(values: Sequence[float]) -> float:
    return float(np.mean(values)) if len(values) else float("nan")


def _fig8_presets():
    from repro.experiments.fig8_tts import Figure8Config

    return {
        "default": Figure8Config,
        "quick": Figure8Config.quick,
        "paper": Figure8Config.paper_scale,
    }


def _robustness_presets():
    from repro.experiments.robustness_study import RobustnessStudyConfig

    return {
        "default": RobustnessStudyConfig,
        "quick": RobustnessStudyConfig.quick,
        "paper": RobustnessStudyConfig.paper_scale,
    }


def _serve_presets():
    from repro.experiments.load_study import LoadStudyConfig

    return {
        "default": LoadStudyConfig,
        "quick": LoadStudyConfig.quick,
        "paper": LoadStudyConfig.paper_scale,
    }


def _scenarios_presets():
    from repro.experiments.scenario_study import ScenarioStudyConfig

    return {
        "default": ScenarioStudyConfig,
        "quick": ScenarioStudyConfig.quick,
        "paper": ScenarioStudyConfig.paper_scale,
    }


def _network_presets():
    from repro.experiments.network_study import NetworkStudyConfig

    return {
        "default": NetworkStudyConfig,
        "quick": NetworkStudyConfig.quick,
        "paper": NetworkStudyConfig.city_scale,
        "city": NetworkStudyConfig.city_scale,
    }


def _qos_presets():
    from repro.experiments.qos_study import QoSStudyConfig

    return {
        "default": QoSStudyConfig,
        "quick": QoSStudyConfig.quick,
        "paper": QoSStudyConfig.paper_scale,
    }


def _identity_collect(config: Any, shards: Sequence[Any]) -> List[Any]:
    """Each shard result already is one row."""
    return list(shards)


# ---------------------------------------------------------------------------
# anneal-hpo — classical SA hyper-parameters on a planted random QUBO
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnnealHPOConfig:
    """Configuration of the synthetic SA hyper-parameter target.

    One fixed random QUBO (selected by ``instance_seed``) is annealed
    ``num_restarts`` times per point; the study's axes typically sweep
    ``num_sweeps`` and ``final_temperature`` against solution energy and
    modelled compute time.  Each restart is one shard with its own explicit
    child seed, so the target shards freely and caches per restart.
    """

    num_variables: int = 12
    density: float = 1.0
    num_sweeps: int = 60
    final_temperature: float = 0.01
    num_restarts: int = 4
    instance_seed: int = 7
    base_seed: int = 0

    @classmethod
    def quick(cls) -> "AnnealHPOConfig":
        """A minimal configuration used by tests and CI smoke."""
        return cls(num_variables=6, num_sweeps=12, num_restarts=2)


@dataclass(frozen=True)
class AnnealHPORow:
    """One SA restart of the synthetic HPO target."""

    restart: int
    energy: float
    compute_time_us: float
    sweeps: int


ANNEAL_HPO_METRICS = (
    "best_energy",
    "mean_energy",
    "compute_time_us_mean",
    "sweeps_total",
)


def _anneal_hpo_shard(config: AnnealHPOConfig, restart: int) -> AnnealHPORow:
    """One SA restart (module-level so the process pool can pickle it)."""
    from repro.classical.simulated_annealing import SimulatedAnnealingSolver
    from repro.qubo.generators import random_qubo
    from repro.utils.rng import stable_seed

    qubo = random_qubo(
        config.num_variables,
        density=config.density,
        rng=stable_seed("anneal-hpo-instance", config.instance_seed),
    )
    solver = SimulatedAnnealingSolver(
        num_sweeps=config.num_sweeps, final_temperature=config.final_temperature
    )
    solution = solver.solve(
        qubo, rng=stable_seed("anneal-hpo-restart", config.base_seed, restart)
    )
    return AnnealHPORow(
        restart=restart,
        energy=float(solution.energy),
        compute_time_us=float(solution.compute_time_us),
        sweeps=int(solution.iterations),
    )


def anneal_hpo_tasks(config: AnnealHPOConfig) -> List[ShardTask]:
    """One shard per SA restart, each seeded by (base_seed, restart)."""
    return [
        ShardTask(
            key=("anneal-hpo", restart),
            fn=_anneal_hpo_shard,
            kwargs={"config": config, "restart": restart},
        )
        for restart in range(config.num_restarts)
    ]


def _anneal_hpo_metrics(rows: Sequence[AnnealHPORow]) -> Tuple[Tuple[str, float], ...]:
    energies = [row.energy for row in rows]
    return (
        ("best_energy", min(energies) if energies else float("nan")),
        ("mean_energy", _mean_or_nan(energies)),
        ("compute_time_us_mean", _mean_or_nan([row.compute_time_us for row in rows])),
        ("sweeps_total", float(sum(row.sweeps for row in rows))),
    )


def register_builtin_targets() -> None:
    """Register the built-in targets (idempotent via replace=True)."""
    from repro.experiments.fig8_tts import Figure8Driver
    from repro.experiments.load_study import LoadStudyDriver
    from repro.experiments.network_study import NetworkStudyDriver
    from repro.experiments.qos_study import QoSStudyDriver
    from repro.experiments.robustness_study import RobustnessStudyDriver
    from repro.experiments.scenario_study import ScenarioStudyDriver

    register_target(
        ExperimentTarget.from_driver(
            Figure8Driver(),
            presets=_fig8_presets(),
            description="Figure 8 — success probability and TTS(99%) vs s_p",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget.from_driver(
            RobustnessStudyDriver(),
            presets=_robustness_presets(),
            description="E-X3 — detection robustness under channel impairments",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget.from_driver(
            LoadStudyDriver(),
            presets=_serve_presets(),
            description="E-SV — deadline-miss rate vs offered load (serving pool)",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget.from_driver(
            ScenarioStudyDriver(),
            presets=_scenarios_presets(),
            description="E-SC — static vs autoscaled pools across the scenario catalog",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget.from_driver(
            NetworkStudyDriver(),
            presets=_network_presets(),
            description="city-scale capacity placement: static vs reactive vs oracle",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget.from_driver(
            QoSStudyDriver(),
            presets=_qos_presets(),
            description="E-QS — classless vs class-aware serving across the catalog",
        ),
        replace=True,
    )
    register_target(
        ExperimentTarget(
            name="anneal-hpo",
            presets={"default": AnnealHPOConfig, "quick": AnnealHPOConfig.quick},
            tasks=anneal_hpo_tasks,
            collect=_identity_collect,
            metrics=_anneal_hpo_metrics,
            metric_names=ANNEAL_HPO_METRICS,
            description="synthetic SA hyper-parameter sweep on a random QUBO",
        ),
        replace=True,
    )
