"""The ablation target registry: experiments the harness knows how to sweep.

An :class:`ExperimentTarget` adapts one experiment driver to the declarative
harness: configuration presets, the driver's existing ``ShardTask`` builder
(the same function the imperative entry point uses, so a study point's
shards carry the same cache fingerprints as a direct run), a collector that
turns shard results back into the driver's row type, and a metrics reducer
producing the scalar columns of the tidy results table.

Targets register by name; the built-in bindings (``fig8``, ``robustness``,
``serve``, ``scenarios``, ``network``, ``anneal-hpo``) load lazily on first
lookup so importing
:mod:`repro.ablation` never triggers the experiment modules (which
themselves call back into the harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.parallel import ShardTask

__all__ = [
    "ExperimentTarget",
    "register_target",
    "get_target",
    "available_targets",
]


@dataclass(frozen=True)
class ExperimentTarget:
    """One sweepable experiment, as the harness sees it.

    Attributes
    ----------
    name:
        Registry key (the spec's ``experiment`` value).
    presets:
        Maps preset names (``default``/``quick``/``paper``/...) to
        zero-argument config factories.
    tasks:
        ``config -> ShardTask list`` — the driver's own shard builder, so
        per-point cache keys are identical to the imperative entry point's.
    collect:
        ``(config, shard_results) -> rows`` — reassembles the driver's result
        rows from the shard results, in task order.
    metrics:
        ``rows -> ((name, value), ...)`` — the scalar summary metrics of one
        study point, in a fixed declaration order.
    metric_names:
        The names ``metrics`` emits, used to validate spec selectors and
        objectives before any compute is spent.
    description:
        One line for docs and error messages.
    """

    name: str
    presets: Mapping[str, Callable[[], Any]]
    tasks: Callable[[Any], Sequence[ShardTask]]
    collect: Callable[[Any, Sequence[Any]], Sequence[Any]]
    metrics: Callable[[Sequence[Any]], Tuple[Tuple[str, float], ...]]
    metric_names: Tuple[str, ...]
    description: str = ""

    def make_config(self, preset: str) -> Any:
        """Instantiate one of the target's preset configurations."""
        try:
            factory = self.presets[preset]
        except KeyError:
            raise ConfigurationError(
                f"experiment {self.name!r} has no preset {preset!r}; presets: "
                + ", ".join(sorted(self.presets))
            ) from None
        return factory()

    @classmethod
    def from_driver(
        cls,
        driver: Any,
        presets: Mapping[str, Callable[[], Any]],
        description: str = "",
    ) -> "ExperimentTarget":
        """Bind an :class:`~repro.experiments.driver.ExperimentDriver`.

        The driver's own ``tasks`` builder produces the shard list (so a
        study point's cache fingerprints are identical to the imperative
        entry point's), ``collect`` routes the shard results through the
        driver's pure ``aggregate``/``rows`` pair, and ``metrics`` /
        ``metric_names`` come straight off the driver — no per-target glue.
        """
        return cls(
            name=driver.name,
            presets=presets,
            tasks=driver.tasks,
            collect=lambda config, shards: list(
                driver.rows(driver.aggregate(config, list(shards)))
            ),
            metrics=driver.metrics,
            metric_names=tuple(driver.metric_names),
            description=description,
        )


_REGISTRY: Dict[str, ExperimentTarget] = {}
_builtin_loaded = False


def _ensure_builtin() -> None:
    global _builtin_loaded
    if not _builtin_loaded:
        _builtin_loaded = True
        from repro.ablation import targets

        targets.register_builtin_targets()


def register_target(target: ExperimentTarget, replace: bool = False) -> ExperimentTarget:
    """Register an experiment target; re-registration requires ``replace``."""
    if not isinstance(target, ExperimentTarget):
        raise ConfigurationError(
            f"expected an ExperimentTarget, got {type(target).__name__}"
        )
    if target.name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"experiment target {target.name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[target.name] = target
    return target


def get_target(name: str) -> ExperimentTarget:
    """Look up a registered target by its spec ``experiment`` name."""
    _ensure_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered experiments: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


def available_targets() -> Tuple[str, ...]:
    """The registered target names, sorted."""
    _ensure_builtin()
    return tuple(sorted(_REGISTRY))
