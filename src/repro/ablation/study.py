"""Compile and run a declarative study on the sharded parallel runner.

:func:`run_study` is the tentpole pipeline: spec → deterministic point
expansion → per-point-restricted configs → the target driver's own
``ShardTask`` list per point → **one** :class:`~repro.parallel.ParallelRunner`
call over the concatenated task list (so sharding spans study points and the
:class:`~repro.parallel.ResultCache` works per inner shard) → per-point rows,
scalar metrics, ``experiment.point`` telemetry events, and an optional
Pareto front over the spec's objectives.

Because a point's shards are exactly the work units the imperative driver
would build for the same config, a study is bitwise-identical to running the
driver once per point — serial, at any worker count, or warm from cache —
and editing one axis value recomputes only the points that use it.

:func:`run_single_config` is the degenerate one-point study the rewired
drivers (``run_figure8``, ``run_robustness_study``) are thin wrappers over.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro import telemetry
from repro.ablation.pareto import ParetoExclusion, pareto_front
from repro.ablation.registry import ExperimentTarget, get_target
from repro.ablation.spec import AblationSpec, StudyPoint, compile_config, expand_spec
from repro.exceptions import ConfigurationError
from repro.parallel import ParallelRunner, ResultCache, ShardTask
from repro.parallel.runner import RunStats
from repro.telemetry.log import get_logger

__all__ = [
    "ABLATION_ARTIFACT_SCHEMA_VERSION",
    "PointResult",
    "StudyRow",
    "StudyResult",
    "run_study",
    "run_single_config",
    "format_study_table",
]

_log = get_logger(__name__)

#: Schema version of the per-study JSON artifact (mirrors ``benchmarks/_emit``).
ABLATION_ARTIFACT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PointResult:
    """One completed study point: its coordinates, raw rows and metrics."""

    point: StudyPoint
    metrics: Tuple[Tuple[str, float], ...]
    rows: Tuple[Any, ...]

    @property
    def point_id(self) -> str:
        return self.point.point_id

    def metric(self, name: str) -> float:
        for metric, value in self.metrics:
            if metric == name:
                return value
        raise KeyError(name)


@dataclass(frozen=True)
class StudyRow:
    """One row of the tidy results table (what the golden fixture freezes)."""

    point_id: str
    index: int
    assignments: Tuple[Tuple[str, Any], ...]
    metrics: Tuple[Tuple[str, float], ...]
    on_front: bool


@dataclass
class StudyResult:
    """Everything one :func:`run_study` call produced."""

    spec: AblationSpec
    points: List[PointResult]
    front: Tuple[str, ...]
    excluded: Tuple[ParetoExclusion, ...]
    stats: RunStats

    def table_rows(self) -> List[StudyRow]:
        """The tidy table: one row per point, front membership flagged."""
        on_front = set(self.front)
        return [
            StudyRow(
                point_id=result.point_id,
                index=result.point.index,
                assignments=result.point.assignments,
                metrics=result.metrics,
                on_front=result.point_id in on_front,
            )
            for result in self.points
        ]

    def payload(self) -> dict:
        """The per-study JSON artifact (``benchmarks/_emit`` conventions)."""
        return {
            "schema_version": ABLATION_ARTIFACT_SCHEMA_VERSION,
            "study": self.spec.name,
            "data": {
                "experiment": self.spec.experiment,
                "preset": self.spec.preset,
                "strategy": self.spec.strategy,
                "base": {name: _jsonable(value) for name, value in self.spec.base},
                "axes": {name: _jsonable(values) for name, values in self.spec.axes},
                "objectives": [list(pair) for pair in self.spec.objectives],
                "points": [
                    {
                        "point_id": row.point_id,
                        "index": row.index,
                        "assignments": {k: _jsonable(v) for k, v in row.assignments},
                        "metrics": {k: _jsonable(v) for k, v in row.metrics},
                        "on_front": row.on_front,
                    }
                    for row in self.table_rows()
                ],
                "pareto": {
                    "front": list(self.front),
                    "excluded": [dataclasses.asdict(item) for item in self.excluded],
                },
                "stats": dataclasses.asdict(self.stats),
            },
        }


def _jsonable(value: Any) -> Any:
    """JSON-safe reduction (non-finite floats become ``repr`` strings)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def _validate_metric_names(spec: AblationSpec, target: ExperimentTarget) -> None:
    known = set(target.metric_names)
    for selector in spec.metrics:
        if selector not in known:
            raise ConfigurationError(
                f"unknown metric {selector!r} for experiment {spec.experiment!r}; "
                f"metrics: {', '.join(target.metric_names)}"
            )
    selectable = set(spec.metrics) if spec.metrics else known
    for metric, _ in spec.objectives:
        if metric not in known:
            raise ConfigurationError(
                f"objective metric {metric!r} is not computed by experiment "
                f"{spec.experiment!r}; metrics: {', '.join(target.metric_names)}"
            )
        if metric not in selectable:
            raise ConfigurationError(
                f"objective metric {metric!r} is filtered out by the spec's "
                "'metrics' selectors; add it there or drop the objective"
            )


def compile_study(
    spec: AblationSpec,
) -> Tuple[ExperimentTarget, Tuple[StudyPoint, ...], List[Any], List[ShardTask], List[slice]]:
    """Validate and compile a spec into its points, configs and shard tasks.

    Returns ``(target, points, configs, tasks, slices)`` where ``slices[i]``
    selects point ``i``'s tasks inside the concatenated ``tasks`` list.
    """
    target = get_target(spec.experiment)
    base_config = target.make_config(spec.preset)
    _validate_metric_names(spec, target)
    points = expand_spec(spec)
    configs: List[Any] = []
    tasks: List[ShardTask] = []
    slices: List[slice] = []
    for point in points:
        config = compile_config(spec, point, base_config)
        inner = list(target.tasks(config))
        slices.append(slice(len(tasks), len(tasks) + len(inner)))
        tasks.extend(inner)
        configs.append(config)
    return target, points, configs, tasks, slices


def run_study(
    spec: AblationSpec,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> StudyResult:
    """Run one declarative study and return its aggregated results.

    ``workers`` shards the concatenated task list across a process pool —
    results are bitwise-identical to the serial path at any worker count —
    and ``cache`` reuses shard results across runs and across the imperative
    drivers (the shards are identical work units); see :mod:`repro.parallel`.
    """
    target, points, configs, tasks, slices = compile_study(spec)
    _log.info(
        "ablation.study_start",
        study=spec.name,
        experiment=spec.experiment,
        points=len(points),
        shards=len(tasks),
        workers=workers or 1,
    )
    runner = ParallelRunner(workers=workers, cache=cache)
    shard_results = runner.run_sharded(tasks)

    selected = spec.metrics or target.metric_names
    results: List[PointResult] = []
    for point, config, task_slice in zip(points, configs, slices):
        rows = tuple(target.collect(config, shard_results[task_slice]))
        all_metrics = dict(target.metrics(rows))
        metrics = tuple((name, float(all_metrics[name])) for name in selected)
        results.append(PointResult(point=point, metrics=metrics, rows=rows))
        telemetry.emit_progress(
            f"ablation:{spec.name}",
            point.point_id,
            **{name: _jsonable(value) for name, value in metrics},
        )

    front: Tuple[str, ...] = ()
    excluded: Tuple[ParetoExclusion, ...] = ()
    if spec.objectives and results:
        indices, exclusions = pareto_front(
            [dict(result.metrics) for result in results],
            spec.objectives,
            [result.point_id for result in results],
        )
        front = tuple(results[index].point_id for index in indices)
        excluded = tuple(exclusions)

    stats = dataclasses.replace(runner.last_run)
    _log.info(
        "ablation.study_done",
        study=spec.name,
        points=len(results),
        executed=stats.executed,
        cache_hits=stats.cache_hits,
        front=len(front),
    )
    return StudyResult(spec=spec, points=results, front=front, excluded=excluded, stats=stats)


def run_single_config(
    experiment: str,
    config: Any,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
) -> Tuple[List[ShardTask], List[Any]]:
    """Run one explicit config as a degenerate one-point study.

    This is the execution path of the rewired imperative drivers: the
    target's shard builder produces the work units, the parallel runner
    executes them, and ``(tasks, shard_results)`` come back in task order for
    the driver's own row assembly and progress events.
    """
    target = get_target(experiment)
    tasks = list(target.tasks(config))
    shard_results = ParallelRunner(workers=workers, cache=cache).run_sharded(tasks)
    return tasks, shard_results


def format_study_table(result: StudyResult) -> str:
    """Render a study as an aligned text table plus the Pareto summary."""
    spec = result.spec
    rows = result.table_rows()
    axis_names = spec.axis_names()
    metric_names = [name for name, _ in rows[0].metrics] if rows else list(spec.metrics)

    lines = [
        f"Ablation study '{spec.name}' over experiment '{spec.experiment}' "
        f"(preset: {spec.preset}, strategy: {spec.strategy})",
        f"{len(rows)} point(s); {result.stats.executed} shard(s) executed, "
        f"{result.stats.cache_hits} cache hit(s) at {result.stats.workers} worker(s)",
    ]
    headers = ["point", *axis_names, *metric_names] + (["front"] if spec.objectives else [])
    table: List[List[str]] = [headers]
    for row in rows:
        assignments = dict(row.assignments)
        cells = [row.point_id]
        cells.extend(_format_cell(assignments[name]) for name in axis_names)
        metrics = dict(row.metrics)
        cells.extend(_format_cell(metrics[name]) for name in metric_names)
        if spec.objectives:
            cells.append("*" if row.on_front else "")
        table.append(cells)
    widths = [max(len(line[column]) for line in table) for column in range(len(headers))]
    for line in table:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
    if spec.objectives:
        objectives = ", ".join(f"{metric} ({direction})" for metric, direction in spec.objectives)
        front = ", ".join(result.front) if result.front else "(empty)"
        lines.append(f"Pareto objectives: {objectives}")
        lines.append(f"Pareto front: {front}")
        for exclusion in result.excluded:
            lines.append(f"  excluded: {exclusion.message()}")
    return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple)):
        return json.dumps(_jsonable(value))
    return str(value)
